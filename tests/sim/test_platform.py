"""Tests for platform profiles, including the Table 1 derivation."""

import pytest

from repro.sim import PLATFORMS, get_platform


def test_all_expected_platforms_registered():
    for name in ("linux_x86", "mac_g5", "solaris", "ibm_sp", "alpha",
                 "ia64", "opteron", "bluegene_l", "windows"):
        assert name in PLATFORMS


def test_get_platform_unknown():
    with pytest.raises(KeyError):
        get_platform("cray_xmp")


def test_layout_matches_word_size():
    assert get_platform("linux_x86").layout().word_bits == 32
    assert get_platform("alpha").layout().word_bits == 64
    assert get_platform("bluegene_l").layout().word_bits == 32


def test_cycles_to_ns():
    opteron = get_platform("opteron")
    assert opteron.cycles_to_ns(22) == pytest.approx(10.0)


def test_with_overrides():
    base = get_platform("linux_x86")
    fast = base.with_overrides(cpu_ghz=3.2)
    assert fast.cpu_ghz == 3.2
    assert base.cpu_ghz == 1.6         # original untouched (frozen dataclass)
    assert fast.name == base.name


# -- Table 1: the portability matrix must be derivable from feature flags --

TABLE1_EXPECTED = {
    # platform      (stack copy, isomalloc, memory alias)
    "linux_x86":    ("Yes", "Yes", "Yes"),
    "ia64":         ("Maybe", "Yes", "Yes"),
    "opteron":      ("Yes", "Yes", "Yes"),
    "mac_g5":       ("Maybe", "Yes", "Yes"),
    "ibm_sp":       ("Yes", "Yes", "Yes"),
    "solaris":      ("Yes", "Yes", "Yes"),
    "alpha":        ("Yes", "Yes", "Yes"),
    "bluegene_l":   ("Maybe", "No", "Maybe"),
    "windows":      ("Yes", "Maybe", "Maybe"),
}


@pytest.mark.parametrize("name,expected", TABLE1_EXPECTED.items())
def test_table1_portability_derivation(name, expected):
    p = get_platform(name)
    assert (p.stack_copy_support(), p.isomalloc_support(),
            p.memory_alias_support()) == expected


def test_quirk_flags():
    assert get_platform("ibm_sp").ignores_repeated_sched_yield
    assert get_platform("alpha").ignores_repeated_sched_yield
    assert not get_platform("linux_x86").ignores_repeated_sched_yield


def test_table2_limits_encoded():
    assert get_platform("linux_x86").max_kthreads == 250
    assert get_platform("ibm_sp").max_processes == 100
    assert get_platform("solaris").max_processes == 25_000
    assert get_platform("mac_g5").max_processes == 500
    # "90000+" entries are encoded as unlimited.
    assert get_platform("alpha").max_kthreads is None
    assert get_platform("ia64").max_processes is None


def test_bluegene_has_no_pthreads_or_fork():
    bgl = get_platform("bluegene_l")
    assert bgl.max_kthreads == 0
    assert bgl.max_processes == 1
    assert bgl.microkernel
