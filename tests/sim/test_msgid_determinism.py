"""Regression: message ids must be per-cluster, not per-host-process.

``Message.msg_id`` was once drawn from a module-level counter in
``repro.sim.network``, so the ids a run observed depended on how many
simulations had executed earlier in the same host process — two
identical ``(seed, schedule)`` runs inside one pytest process got
different ids, silently breaking any replay or fingerprint comparison
keyed on them.  The counter now lives on the :class:`Cluster`; these
tests pin the fixed semantics and fail on the old code.
"""

from repro.sim import Cluster


def run_ping_round(n_msgs=5):
    """One tiny deterministic run; returns the delivered-id sequence."""
    cl = Cluster(2)
    seen = []
    for proc in cl.processors:
        proc.set_message_handler(lambda msg: seen.append(msg.msg_id))
    for i in range(n_msgs):
        cl.send(i % 2, (i + 1) % 2, payload=i, size_bytes=64, tag="t")
    cl.run()
    return seen


def test_two_runs_in_one_process_see_identical_msg_ids():
    # A polluter run first: under the old module-global counter this
    # advanced the ids every later run in the process would observe.
    run_ping_round(n_msgs=3)
    first = run_ping_round()
    second = run_ping_round()
    assert first == second
    assert first, "the run must actually deliver messages"


def test_msg_ids_start_at_one_per_cluster():
    run_ping_round()                       # another would-be polluter
    cl = Cluster(2)
    cl.processors[1].set_message_handler(lambda msg: None)
    msg = cl.send(0, 1, payload="x", size_bytes=16)
    assert msg.msg_id == 1
    assert cl.send(0, 1, payload="y", size_bytes=16).msg_id == 2


def test_full_send_record_is_byte_identical_across_runs():
    """The end-to-end property the bug broke: rendering every message
    field (including msg_id) from two identical runs must match."""

    def render():
        cl = Cluster(3)
        log = []
        for proc in cl.processors:
            proc.set_message_handler(
                lambda msg: log.append(
                    (msg.msg_id, msg.src, msg.dst, msg.tag, msg.send_time)))
        for i in range(9):
            cl.send(i % 3, (i + 1) % 3, payload=i, size_bytes=32 * (i + 1),
                    tag=f"t{i % 2}")
        cl.run()
        return repr(log).encode()

    assert render() == render()
