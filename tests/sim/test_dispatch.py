"""Tests for tag-based message dispatch."""

import pytest

from repro.errors import CommError
from repro.sim import Cluster
from repro.sim.dispatch import TagDispatcher


def test_routes_by_prefix():
    cl = Cluster(2)
    got = {"a": [], "b": []}
    disp = TagDispatcher.of(cl[1])
    disp.register("a", lambda m: got["a"].append(m.payload))
    disp.register("b", lambda m: got["b"].append(m.payload))
    cl.send(0, 1, 1, 8, tag="a")
    cl.send(0, 1, 2, 8, tag="b:sub")       # prefix before the colon
    cl.send(0, 1, 3, 8, tag="a:x:y")
    cl.run()
    assert got == {"a": [1, 3], "b": [2]}


def test_of_is_idempotent():
    cl = Cluster(1)
    assert TagDispatcher.of(cl[0]) is TagDispatcher.of(cl[0])


def test_duplicate_prefix_rejected():
    cl = Cluster(1)
    disp = TagDispatcher.of(cl[0])
    disp.register("x", lambda m: None)
    with pytest.raises(CommError):
        disp.register("x", lambda m: None)


def test_unknown_tag_raises_with_known_list():
    cl = Cluster(2)
    disp = TagDispatcher.of(cl[1])
    disp.register("known", lambda m: None)
    cl.send(0, 1, "x", 8, tag="mystery")
    with pytest.raises(CommError, match="known"):
        cl.run()


def test_unregister():
    cl = Cluster(2)
    disp = TagDispatcher.of(cl[1])
    disp.register("t", lambda m: None)
    disp.unregister("t")
    disp.register("t", lambda m: None)     # re-registration allowed
    disp.unregister("absent")              # no-op
