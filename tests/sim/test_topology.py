"""Tests for interconnect topologies and hop-aware delivery."""

import pytest

from repro.errors import ReproError
from repro.sim import (Cluster, FatTree, FullyConnected, Network, Torus3D)


def test_fully_connected():
    t = FullyConnected(4)
    assert t.hops(0, 0) == 0
    assert t.hops(0, 3) == 1
    assert t.diameter() == 1
    with pytest.raises(ReproError):
        t.hops(0, 4)


def test_torus_wraparound():
    t = Torus3D((4, 4, 4))
    assert t.size() == 64
    assert t.hops(0, 0) == 0
    # Neighbor along x.
    assert t.hops(0, 1) == 1
    # Wrap-around: x=0 to x=3 is one hop on a 4-torus.
    assert t.hops(0, 3) == 1
    # Opposite corner: 2 hops per dimension.
    far = t.coords(0), t.hops(0, 2 + 2 * 4 + 2 * 16)
    assert far[1] == 6
    assert t.diameter() == 6


def test_torus_symmetry():
    t = Torus3D((3, 4, 2))
    for a in range(0, 24, 5):
        for b in range(0, 24, 7):
            assert t.hops(a, b) == t.hops(b, a)


def test_fat_tree():
    t = FatTree(32, radix=8)
    assert t.hops(0, 0) == 0
    assert t.hops(0, 7) == 2          # same leaf switch
    assert t.hops(0, 8) == 4          # across the core
    assert t.diameter() == 4
    with pytest.raises(ReproError):
        FatTree(8, radix=0)


def test_network_hop_latency():
    net = Network(latency_ns=1000, bytes_per_ns=1.0, per_hop_ns=100,
                  topology=Torus3D((2, 2, 2)))
    near = net.transfer_ns(0, src=0, dst=1)      # 1 hop
    far = net.transfer_ns(0, src=0, dst=7)       # 3 hops
    assert far - near == pytest.approx(200.0)
    # Without endpoints the hop term is skipped (backward compatible).
    assert net.transfer_ns(0) == 1000.0


def test_cluster_delivery_respects_topology():
    net = Network(latency_ns=1000, bytes_per_ns=1.0,
                  per_message_cpu_ns=0.0, per_hop_ns=10_000,
                  topology=FatTree(8, radix=4))
    cl = Cluster(8, network=net)
    times = {}
    cl[1].set_message_handler(lambda m: times.__setitem__("near", cl[1].now))
    cl[5].set_message_handler(lambda m: times.__setitem__("far", cl[5].now))
    cl.send(0, 1, "x", 10)       # same leaf: 2 hops
    cl.send(0, 5, "x", 10)       # cross-core: 4 hops
    cl.run()
    assert times["far"] - times["near"] == pytest.approx(20_000.0)
