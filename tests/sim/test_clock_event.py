"""Unit tests for SimClock and EventQueue."""

import pytest

from repro.errors import ReproError
from repro.sim import EventQueue, SimClock


def test_clock_advances():
    c = SimClock()
    assert c.now == 0.0
    c.advance(100)
    assert c.now == 100.0
    c.advance(0.5)
    assert c.now == 100.5


def test_clock_rejects_negative():
    c = SimClock()
    with pytest.raises(ReproError):
        c.advance(-1)


def test_clock_advance_to_never_goes_backward():
    c = SimClock(50)
    c.advance_to(30)
    assert c.now == 50
    c.advance_to(80)
    assert c.now == 80


def test_event_order_by_time():
    q = EventQueue()
    log = []
    q.schedule(30, log.append, "c")
    q.schedule(10, log.append, "a")
    q.schedule(20, log.append, "b")
    q.run()
    assert log == ["a", "b", "c"]
    assert q.current_time == 30


def test_simultaneous_events_fifo():
    q = EventQueue()
    log = []
    for i in range(10):
        q.schedule(5.0, log.append, i)
    q.run()
    assert log == list(range(10))


def test_schedule_in_past_rejected():
    q = EventQueue()
    q.schedule(10, lambda: None)
    q.run()
    with pytest.raises(ReproError):
        q.schedule(5, lambda: None)


def test_cancel():
    q = EventQueue()
    log = []
    ev = q.schedule(10, log.append, "x")
    q.schedule(20, log.append, "y")
    ev.cancel()
    q.run()
    assert log == ["y"]
    assert len(q) == 0


def test_run_until():
    q = EventQueue()
    log = []
    q.schedule(10, log.append, 1)
    q.schedule(20, log.append, 2)
    q.schedule(30, log.append, 3)
    n = q.run(until=20)
    assert n == 2
    assert log == [1, 2]
    q.run()
    assert log == [1, 2, 3]


def test_run_max_events():
    q = EventQueue()
    # An event that reschedules itself forever.
    def tick():
        q.schedule(q.current_time + 1, tick)
    q.schedule(0, tick)
    n = q.run(max_events=100)
    assert n == 100


def test_events_scheduled_during_run_are_seen():
    q = EventQueue()
    log = []

    def first():
        log.append("first")
        q.schedule(15, lambda: log.append("nested"))

    q.schedule(10, first)
    q.run()
    assert log == ["first", "nested"]
