"""Tests for processors, kernel model, network, and cluster DES."""

import pytest

from repro.errors import ProcessLimitExceeded, ReproError, ThreadLimitExceeded
from repro.sim import Cluster, Network, get_platform
from repro.sim.processor import KernelModel, Processor


def test_kernel_model_process_limit():
    km = KernelModel(get_platform("ibm_sp"))   # limit 100
    for _ in range(99):                        # initial program counts as 1
        km.fork()
    with pytest.raises(ProcessLimitExceeded):
        km.fork()
    km.exit_process()
    km.fork()                                  # room again


def test_kernel_model_thread_limit():
    km = KernelModel(get_platform("linux_x86")) # limit 250
    for _ in range(250):
        km.thread_create()
    with pytest.raises(ThreadLimitExceeded):
        km.thread_create()
    km.thread_exit()
    km.thread_create()


def test_kernel_model_unlimited():
    km = KernelModel(get_platform("alpha"))    # kthreads unlimited
    for _ in range(10_000):
        km.thread_create()
    assert km.kthread_count == 10_000


def test_kernel_model_underflow_guards():
    km = KernelModel(get_platform("linux_x86"))
    with pytest.raises(ProcessLimitExceeded):
        km.exit_process()
    with pytest.raises(ThreadLimitExceeded):
        km.thread_exit()


def test_processor_charge_accumulates():
    p = Processor(0, get_platform("linux_x86"))
    p.charge(100)
    p.charge(50)
    assert p.now == 150
    assert p.busy_ns == 150


def test_network_delivery_time():
    net = Network(latency_ns=1000, bytes_per_ns=1.0, per_message_cpu_ns=100)
    assert net.transfer_ns(500) == 1500
    assert net.delivery_time(0.0, 500) == 1600


def test_cluster_message_roundtrip():
    cl = Cluster(2, network=Network(latency_ns=1000, bytes_per_ns=1.0,
                                    per_message_cpu_ns=100))
    received = []
    cl[1].set_message_handler(lambda m: received.append(m.payload))
    cl.send(0, 1, "hello", size_bytes=100)
    cl.run()
    assert received == ["hello"]
    # Receiver clock advanced at least to delivery time.
    assert cl[1].now >= 1200
    assert cl[0].messages_sent == 1
    assert cl[1].messages_received == 1


def test_cluster_messages_arrive_in_time_order():
    cl = Cluster(3)
    order = []
    cl[2].set_message_handler(lambda m: order.append(m.payload))
    cl.send(0, 2, "big", size_bytes=1_000_000)   # slow: bandwidth bound
    cl.send(1, 2, "small", size_bytes=10)        # fast
    cl.run()
    assert order == ["small", "big"]


def test_cluster_chained_sends():
    """A handler that forwards the message on — relay across 4 PEs."""
    cl = Cluster(4)
    log = []

    def make_handler(pe):
        def handler(msg):
            log.append((pe, msg.payload))
            if pe < 3:
                cl.send(pe, pe + 1, msg.payload, size_bytes=64)
        return handler

    for pe in range(1, 4):
        cl[pe].set_message_handler(make_handler(pe))
    cl.send(0, 1, "token", size_bytes=64)
    cl.run()
    assert log == [(1, "token"), (2, "token"), (3, "token")]
    assert cl[3].now > cl[1].now


def test_cluster_timers():
    cl = Cluster(1)
    fired = []
    cl.after(0, 500, fired.append, "a")
    cl.at(0, 200, fired.append, "b")
    cl.run()
    assert fired == ["b", "a"]
    assert cl[0].now >= 500


def test_cluster_bad_destination():
    cl = Cluster(2)
    with pytest.raises(ReproError):
        cl.send(0, 5, "x", 10)


def test_cluster_makespan():
    cl = Cluster(2)
    cl[0].charge(1000)
    assert cl.makespan == 1000


def test_unattached_processor_send_fails():
    p = Processor(0, get_platform("linux_x86"))
    with pytest.raises(RuntimeError):
        p.send(1, "x", 10)


def test_handler_missing_raises():
    cl = Cluster(2)
    cl.send(0, 1, "x", 10)
    with pytest.raises(RuntimeError):
        cl.run()


def test_cluster_platform_by_name():
    cl = Cluster(1, platform="solaris")
    assert cl.platform.name == "solaris"
    with pytest.raises(ReproError):
        Cluster(0)


def test_message_tracing():
    cl = Cluster(2)
    cl[1].set_message_handler(lambda m: None)
    cl.send(0, 1, "before-enable", 10, tag="x")
    cl.enable_tracing()
    cl.send(0, 1, "a", 10, tag="t1")
    cl.send(0, 1, "b", 20, tag="t2")
    cl.run()
    assert len(cl.message_trace) == 2
    assert cl.message_trace[0][2:] == (1, "t1", 10)
    text = cl.format_trace()
    assert "t1" in text and "t2" in text and "->" in text
    # Enabling twice keeps the existing trace.
    cl.enable_tracing()
    assert len(cl.message_trace) == 2


def test_format_trace_empty():
    cl = Cluster(1)
    cl.enable_tracing()
    assert "no messages" in cl.format_trace()
