"""python -m repro.bench: per-experiment failure containment.

Regression for the pre-executor bug where the first raising experiment
aborted the whole multi-experiment run, leaving every later result file
silently stale with exit behavior indistinguishable from success.
"""

import pytest

import repro.bench.__main__ as bench_main


@pytest.fixture
def fake_experiments(monkeypatch, tmp_path):
    ran = []

    def ok_a():
        ran.append("a")
        print("report A")

    def bad():
        ran.append("bad")
        raise RuntimeError("synthetic experiment failure")

    def ok_b():
        ran.append("b")
        print("report B")

    monkeypatch.setattr(bench_main, "EXPERIMENTS",
                        {"a": ok_a, "bad": bad, "b": ok_b})
    return ran


def test_failure_does_not_abort_later_experiments(fake_experiments, capsys):
    code = bench_main.main(["a", "bad", "b"])
    out = capsys.readouterr().out
    assert code == 1
    # Every experiment ran, in order — "b" was NOT skipped.
    assert fake_experiments == ["a", "bad", "b"]
    assert "report A" in out and "report B" in out
    assert "FAILED bad" in out
    assert "RuntimeError: synthetic experiment failure" in out


def test_pass_fail_table_summarizes_the_run(fake_experiments, capsys):
    bench_main.main(["a", "bad"])
    out = capsys.readouterr().out
    lines = [ln for ln in out.splitlines() if ln.startswith(("a ", "bad "))]
    assert any("ok" in ln for ln in lines if ln.startswith("a "))
    assert any("FAILED" in ln for ln in lines if ln.startswith("bad "))
    assert "1 experiment(s) failed: bad" in out


def test_all_green_run_exits_zero(fake_experiments, capsys):
    assert bench_main.main(["a", "b"]) == 0
    out = capsys.readouterr().out
    assert "FAILED" not in out


def test_unknown_experiment_still_exits_2(fake_experiments, capsys):
    assert bench_main.main(["nope"]) == 2
    assert "unknown experiment(s): nope" in capsys.readouterr().out
