"""Small-scale tests of the figure builders (benches run them full-size)."""

import os

import pytest

from repro.bench.figures import (FIGURE_PLATFORMS, bigsim_series, btmz_series,
                                 context_switch_series, full_scale,
                                 minimal_swap_rows, stack_size_series)


def test_figure_platform_map():
    assert FIGURE_PLATFORMS == {4: "linux_x86", 5: "mac_g5", 6: "solaris",
                                7: "ibm_sp", 8: "alpha"}


def test_full_scale_env(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    assert not full_scale()
    monkeypatch.setenv("REPRO_FULL", "1")
    assert full_scale()
    monkeypatch.setenv("REPRO_FULL", "0")
    assert not full_scale()


def test_context_switch_series_small_grid():
    xs, series = context_switch_series("linux_x86", grid=[2, 8, 300],
                                       rounds=1)
    assert xs == [2, 8, 300]
    assert set(series) == {"process", "pthread", "cth", "ampi"}
    # pthread dies at its 250 limit before the 300-flow point.
    assert series["pthread"][-1] is None
    assert series["cth"][-1] is not None
    # Series are per-switch microseconds: sub-100 here.
    assert 0 < series["cth"][0] < 100


def test_stack_size_series_ordering():
    sizes, series = stack_size_series(sizes=[8192, 65536])
    assert series["isomalloc"][0] == series["isomalloc"][1]
    assert series["stack_copy"][1] > series["stack_copy"][0]
    assert series["stack_copy"][1] > series["memory_alias"][1]


def test_minimal_swap_rows_scale_with_clock():
    slow = minimal_swap_rows(cpu_ghz=1.1)
    fast = minimal_swap_rows(cpu_ghz=2.2)
    # Rendered to one decimal, so compare loosely.
    assert float(slow[0][4]) == pytest.approx(2 * float(fast[0][4]), rel=0.02)


def test_bigsim_series_tiny(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    procs, series, targets = bigsim_series(host_procs=(2, 4), steps=1)
    assert procs == [2, 4]
    assert targets == 2000
    times = series["time_per_step_ms"]
    assert times[0] > times[1]


def test_btmz_series_single_case():
    out = btmz_series(cases=[("S", 4, 2)], iterations=2)
    assert len(out) == 1
    label, no_lb, with_lb = out[0]
    assert label == "S.4,2PE"
    assert no_lb.strategy == "NullLB"
    assert with_lb.strategy == "GreedyLB"
    assert with_lb.makespan_ns <= no_lb.makespan_ns * 1.2
