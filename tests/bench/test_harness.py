"""Tests for the benchmark harness itself (renderers, builders, CLI)."""

import os

import pytest

from repro.bench.report import render_series, render_table, save_report
from repro.bench.figures import minimal_swap_rows, stack_size_series
from repro.bench.tables import table1_rows
from repro.bench.__main__ import EXPERIMENTS, main


def test_render_table_alignment():
    out = render_table(["a", "bbb"], [[1, 2], [333, 4]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbb" in lines[1]
    # All data rows have the same width.
    assert len({len(l) for l in lines[2:]}) <= 2


def test_render_series_missing_points():
    out = render_series("x", [1, 2], {"y": [0.5, None]})
    assert "-" in out.splitlines()[-1]
    assert "0.500" in out


def test_save_report_roundtrip(tmp_path, monkeypatch):
    import repro.bench.report as report
    monkeypatch.setattr(report, "RESULTS_DIR", str(tmp_path))
    path = save_report("x.txt", "hello")
    assert os.path.exists(path)
    assert open(path).read() == "hello\n"


def test_minimal_swap_rows_shape():
    rows = minimal_swap_rows()
    assert len(rows) == 2
    assert rows[0][1] == 13 and rows[1][1] == 17


def test_stack_size_series_small():
    sizes, series = stack_size_series(sizes=[8192, 16384])
    assert sizes == [8192, 16384]
    assert set(series) == {"stack_copy", "isomalloc", "memory_alias"}
    assert series["stack_copy"][1] > series["stack_copy"][0]


def test_table1_rows_labels():
    rows = table1_rows()
    assert [r[0] for r in rows] == ["Stack Copy", "Isomalloc",
                                    "Memory Alias"]


def test_cli_experiment_registry_complete():
    assert set(EXPERIMENTS) == {"table1", "table2"} | {
        f"fig{i}" for i in range(4, 13)}


def test_cli_unknown_experiment():
    assert main(["figure99"]) == 2


def test_cli_runs_cheap_experiments(capsys, tmp_path, monkeypatch):
    import repro.bench.report as report
    monkeypatch.setattr(report, "RESULTS_DIR", str(tmp_path))
    assert main(["table1", "fig10"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "Figure 10" in out
    assert (tmp_path / "table1_portability.txt").exists()


def test_api_docs_generator(tmp_path, monkeypatch):
    """The API-reference generator runs and covers every package."""
    import runpy
    import sys

    gen = os.path.join(os.path.dirname(__file__), "..", "..", "tools",
                       "gen_api_docs.py")
    mod = runpy.run_path(gen, run_name="not-main")
    monkeypatch.setattr(sys, "argv", ["gen_api_docs.py"])
    out_path = tmp_path / "api.md"
    # Point OUT at the temp dir by patching the module dict copy.
    mod["main"].__globals__["OUT"] = str(out_path)
    assert mod["main"]() == 0
    text = out_path.read_text()
    for pkg in mod["PACKAGES"]:
        assert f"## {pkg}" in text
    assert "CthScheduler" in text and "IsomallocArena" in text
