"""Tests for N:M hybrid threading."""

import pytest

from repro.errors import ThreadLimitExceeded
from repro.flows import (HybridThreadFlow, KernelThreadFlow, ProcessFlow,
                         UserThreadFlow)
from repro.sim import Processor, get_platform


def make_proc(platform="linux_x86"):
    return Processor(0, get_platform(platform))


def test_kernel_entities_are_real_pthreads():
    p = make_proc()
    mech = HybridThreadFlow(p, kernel_entities=4)
    assert p.kernel.kthread_count == 4
    mech.create_flow()
    mech.create_flow()
    assert p.kernel.kthread_count == 4      # N grows, M does not
    mech.destroy_all()
    mech.teardown()
    assert p.kernel.kthread_count == 0


def test_m_counts_against_pthread_limit():
    p = make_proc("linux_x86")              # pthread limit 250
    with pytest.raises(ThreadLimitExceeded):
        HybridThreadFlow(p, kernel_entities=300)


def test_cost_between_user_and_kernel():
    p = make_proc()
    n = 1000
    user = UserThreadFlow(p).switch_cost_ns(n)
    kernel = KernelThreadFlow(p).switch_cost_ns(n)
    hybrid = HybridThreadFlow(p, kernel_entities=4).switch_cost_ns(n)
    assert user < hybrid < kernel


def test_more_kernel_entities_costlier_crossings():
    """With more kernel entities, fewer switches cross them — but each
    application sees the same two-party overhead."""
    p = make_proc()
    c2 = HybridThreadFlow(p, kernel_entities=2).switch_cost_ns(1000)
    c8 = HybridThreadFlow(p, kernel_entities=8).switch_cost_ns(1000)
    assert c8 < c2                           # 1/M fewer kernel switches


def test_unbounded_n():
    """N is not kernel-limited: far more flows than the pthread limit."""
    p = make_proc()
    mech = HybridThreadFlow(p, kernel_entities=4)
    for _ in range(1_000):                   # >> the 250 pthread limit
        mech.create_flow()
    assert mech.n_flows == 1_000
    mech.destroy_all()


def test_invalid_m():
    with pytest.raises(ThreadLimitExceeded):
        HybridThreadFlow(make_proc(), kernel_entities=0)
