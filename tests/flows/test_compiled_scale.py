"""Tier-1 scale pin: 10⁵ compiled flows drain on one PE, allocation-flat.

``results/flows_scale.md`` documents the 10⁶-flow sweep; CI cannot
afford that, but it *can* afford the claim one decade down, which
already separates compiled continuations from every stack-based
mechanism in Table 2 (pthread dies at 250, cth at ~160k of address
space).  Two structural claims, mirroring ``tests/kernel/test_scale.py``:

* 100k compiled flows run to completion well inside a generous
  wall-clock ceiling (~1.2s measured, 60s allowed so a loaded CI
  container cannot flake it);
* steady-state allocation is O(1) per flow and O(0) per *event*:
  holding the flow count fixed while tripling the event count must not
  grow the drain's net traced memory — frames are allocated at spawn,
  and a dispatch re-touches them without leaving per-event residue.
"""

import gc
import time
import tracemalloc

from repro.flows import CompiledContinuationFlow
from repro.flows.compile import compile_flow
from repro.flows.programs import spin_program
from repro.flows.runtime import FlowWorld
from repro.sim import Processor, get_platform


def test_100k_compiled_flows_drain_in_tier1():
    flows, rounds = 100_000, 2
    mech = CompiledContinuationFlow(Processor(0, get_platform("linux_x86")))
    program = spin_program(flows, rounds)
    t0 = time.perf_counter()
    run = mech.run_workload(program, real_flows=True)
    wall = time.perf_counter() - t0
    assert len(run.results) == flows
    # One dispatch to seed each flow, one per yield round; the exit
    # directive finishes inside the last dispatch.
    assert run.dispatches == flows * (rounds + 1)
    assert run.kernel_events == run.dispatches
    assert run.mechanism == "compiled"
    assert mech.n_flows == 0                     # cleaned up
    assert wall < 60.0, f"100k-flow drain took {wall:.2f}s"


def _traced_drain(flows, rounds):
    """Spawn compiled flows, then measure the drain alone."""
    program = spin_program(flows, rounds)
    world = FlowWorld(flows)
    world.spawn_compiled(compile_flow(program.body))
    world.seed()
    gc.collect()
    tracemalloc.start()
    before, _peak = tracemalloc.get_traced_memory()
    snap0 = tracemalloc.take_snapshot()
    processed = world.run()
    snap1 = tracemalloc.take_snapshot()
    gc.collect()
    after, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert processed == flows * (rounds + 1)
    assert world.finished == flows
    kernel_stats = [s for s in snap1.compare_to(snap0, "filename")
                    if "event.py" in (s.traceback[0].filename or "")]
    return after - before, sum(s.count_diff for s in kernel_stats)


def test_drain_allocation_is_per_flow_not_per_event():
    flows = 50_000
    net_short, kernel_short = _traced_drain(flows, rounds=2)
    net_long, kernel_long = _traced_drain(flows, rounds=6)
    # Per-flow residue (the results dict, filled during the drain) is
    # bounded and small.
    assert net_short < flows * 1024, net_short
    # Tripling the event count (150k -> 350k dispatches) must not grow
    # the residue: events are transient, frames pre-exist.  100k extra
    # anythings would be megabytes; allow 1MB of host noise.
    assert net_long - net_short < 1024 * 1024, (net_short, net_long)
    # And the kernel itself leaves no per-event blocks behind in
    # either run (same invariant the kernel-level scale test pins).
    assert kernel_short < 100 and kernel_long < 100, (kernel_short,
                                                     kernel_long)
