"""Tests for the four flow-of-control mechanisms and their cost models."""

import pytest

from repro.errors import ProcessLimitExceeded, ThreadLimitExceeded
from repro.flows import (AmpiThreadFlow, EventObjectFlow, KernelThreadFlow,
                         MECHANISMS, ProcessFlow, UserThreadFlow)
from repro.sim import Processor, get_platform


def make_proc(platform="linux_x86"):
    return Processor(0, get_platform(platform))


def test_mechanisms_registry():
    assert set(MECHANISMS) == {"process", "pthread", "cth", "ampi"}


@pytest.mark.parametrize("cls", [ProcessFlow, KernelThreadFlow,
                                 UserThreadFlow, AmpiThreadFlow,
                                 EventObjectFlow])
def test_create_destroy_charges_time(cls):
    p = make_proc()
    mech = cls(p)
    before = p.now
    mech.create_flow()
    mech.create_flow()
    assert p.now > before
    assert mech.n_flows == 2
    mech.destroy_all()
    assert mech.n_flows == 0


def test_process_creation_builds_real_address_spaces():
    p = make_proc()
    m = p.space.mmap(4096, region="data")
    p.space.write(m.start, b"parent-state")
    mech = ProcessFlow(p)
    h = mech.create_flow()
    child = h.payload
    assert child.read(m.start, 12) == b"parent-state"
    mech.destroy_all()


def test_process_limit_enforced():
    p = make_proc("ibm_sp")              # limit 100
    mech = ProcessFlow(p)
    with pytest.raises(ProcessLimitExceeded):
        for _ in range(200):
            mech.create_flow()
    assert mech.n_flows == 99            # initial program is process #1
    mech.destroy_all()


def test_pthread_limit_enforced():
    p = make_proc("linux_x86")           # limit 250
    mech = KernelThreadFlow(p)
    with pytest.raises(ThreadLimitExceeded):
        for _ in range(300):
            mech.create_flow()
    assert mech.n_flows == 250
    mech.destroy_all()
    assert p.kernel.kthread_count == 0


def test_uthread_admin_cap_on_ibm_sp():
    p = make_proc("ibm_sp")              # max_uthreads 15000
    mech = UserThreadFlow(p)
    mech.flows = [None] * 15_000         # pretend 15k already exist
    with pytest.raises(ThreadLimitExceeded):
        mech._create(15_000)


def test_ordering_of_switch_costs_linux():
    """Figure 4's shape: event < cth < ampi << pthread < process."""
    p = make_proc("linux_x86")
    n = 100
    costs = {cls.label: cls(p).switch_cost_ns(n)
             for cls in (ProcessFlow, KernelThreadFlow, UserThreadFlow,
                         AmpiThreadFlow, EventObjectFlow)}
    assert costs["event"] < costs["cth"] < costs["ampi"]
    assert costs["ampi"] < costs["pthread"] < costs["process"]
    # Kernel mechanisms are microseconds; user threads sub-microsecond.
    assert costs["process"] > 2_000
    assert costs["cth"] < 1_000


def test_quirk_makes_kernel_flows_artificially_low():
    """Figures 7-8: IBM SP and Alpha ignore repeated sched_yield."""
    for platform in ("ibm_sp", "alpha"):
        p = make_proc(platform)
        proc_cost = ProcessFlow(p).switch_cost_ns(100)
        kth_cost = KernelThreadFlow(p).switch_cost_ns(100)
        cth_cost = UserThreadFlow(p).switch_cost_ns(100)
        assert proc_cost == kth_cost            # both are the no-op cost
        assert proc_cost < cth_cost             # artificially low


def test_switch_cost_grows_with_flows():
    p = make_proc("linux_x86")
    for cls in (ProcessFlow, KernelThreadFlow, UserThreadFlow):
        mech = cls(p)
        assert mech.switch_cost_ns(10_000) > mech.switch_cost_ns(10)


def test_uthread_growth_is_slow():
    """Cth time 'increases slowly': growth saturates, never exceeding the
    cache-penalty ceiling."""
    p = make_proc("linux_x86")
    mech = UserThreadFlow(p)
    base = mech.switch_cost_ns(2)
    huge = mech.switch_cost_ns(100_000)
    assert huge < base + p.profile.cache_penalty_ns * mech.cache_weight
    # Growth from 1k to 100k flows is much less than 2x.
    assert mech.switch_cost_ns(100_000) < 2 * mech.switch_cost_ns(1_000)


def test_yield_benchmark_result():
    p = make_proc("linux_x86")
    mech = UserThreadFlow(p)
    res = mech.run_yield_benchmark(50, rounds=4)
    assert res.mechanism == "cth"
    assert res.n_flows == 50
    assert res.ns_per_switch == pytest.approx(mech.switch_cost_ns(50))
    assert mech.n_flows == 0                     # cleaned up


def test_ampi_uses_real_isomalloc_slots():
    p = make_proc("linux_x86")
    mech = AmpiThreadFlow(p)
    mech.create_flow()
    assert mech.arena.slots_in_use() == 1
    mech.destroy_all()
    assert mech.arena.slots_in_use() == 0


def test_ampi_costlier_than_cth_on_every_platform():
    for name in ("linux_x86", "mac_g5", "solaris", "ibm_sp", "alpha"):
        p = make_proc(name)
        assert (AmpiThreadFlow(p).switch_cost_ns(64)
                > UserThreadFlow(p).switch_cost_ns(64))


def test_cache_penalty_monotone_and_bounded():
    p = make_proc()
    mech = UserThreadFlow(p)
    prev = 0.0
    for n in (1, 10, 100, 1_000, 10_000, 100_000, 1_000_000):
        pen = mech.cache_penalty_ns(n)
        assert pen >= prev
        prev = pen
    ceiling = p.profile.cache_penalty_ns * mech.cache_weight
    assert prev < ceiling
    assert mech.cache_penalty_ns(10**9) > 0.99 * ceiling
