"""The thread-vs-compiled differential oracle (multi-seed, byte-level).

The compiler's whole claim is that it changes the *mechanism*, never
the *computation*: a generator body and its compiled translation must
produce byte-identical kernel traces — same events, same order, same
sequence numbers, same dispatch sites — and identical results, across
seeds and across every program shape we ship (messaging ring,
conditional ping-pong, barrier, stencil halo exchange, pure spin).

Byte identity is deliberately stronger than result equality: it pins
the synchronous-receive optimization (an already-queued message must
not cost a kernel event in either form), post ordering, and flow
labels, so a compiler regression cannot hide behind a still-correct
answer.
"""

import pytest

from repro.flows import (CompiledContinuationFlow, UserThreadFlow,
                         WORKLOAD_MECHANISMS)
from repro.flows.programs import pingpong_program, ring_program, spin_program
from repro.flows.stencil import stencil_program
from repro.sim import Processor, get_platform

SEEDS = (7, 11, 13)


def make_proc(platform="linux_x86"):
    return Processor(0, get_platform(platform))


def run_form(mechanism_cls, program):
    return mechanism_cls(make_proc()).run_workload(
        program, trace=True, real_flows=False)


def assert_byte_identical(factory):
    """Run ``factory()`` under thread and compiled forms; compare."""
    thread = run_form(UserThreadFlow, factory())
    compiled = run_form(CompiledContinuationFlow, factory())
    assert thread.trace_bytes() == compiled.trace_bytes()
    assert thread.results == compiled.results
    assert thread.dispatches == compiled.dispatches
    assert thread.kernel_events == compiled.kernel_events
    # The comparison must not be vacuous.
    assert len(thread.trace) > factory().ranks
    assert len(thread.results) == factory().ranks
    return thread, compiled


@pytest.mark.parametrize("seed", SEEDS)
def test_ring_traces_byte_identical_across_seeds(seed):
    # recv + barrier + yield + a suspending loop: every primitive.
    assert_byte_identical(lambda: ring_program(5, 4, seed=seed))


@pytest.mark.parametrize("seed", SEEDS)
def test_pingpong_traces_byte_identical_across_seeds(seed):
    # Odd rank count: the unpaired rank exercises the conditional
    # spin branch while the pairs exercise both recv paths.
    assert_byte_identical(lambda: pingpong_program(5, 3, seed=seed))


@pytest.mark.parametrize("seed", SEEDS)
def test_stencil_traces_byte_identical_across_seeds(seed):
    assert_byte_identical(
        lambda: stencil_program(4, cells=6, steps=3, seed=seed))


def test_spin_traces_byte_identical():
    thread, compiled = assert_byte_identical(lambda: spin_program(8, 5))
    # Pure switch load: one dispatch per seed + one per yield round.
    assert thread.dispatches == 8 * (5 + 1)


def test_trace_labels_are_the_shared_dispatch_site():
    _, compiled = assert_byte_identical(lambda: ring_program(3, 2, seed=7))
    sites = {e["site"] for e in compiled.trace}
    # Both forms dispatch through FlowWorld._resume only — a compiled
    # run must not leak its own dispatch sites into the trace.
    assert sites == {"FlowWorld._resume"}
    assert {e["category"] for e in compiled.trace} == {"flow.resume"}


def test_synchronous_receive_costs_no_kernel_event():
    """A message already queued at recv time continues inline in both
    forms: the ring (send-before-recv) must cost exactly the seed
    events plus one per explicit yield and one barrier release."""
    ranks, rounds = 4, 3
    thread = run_form(UserThreadFlow, ring_program(ranks, rounds, seed=7))
    compiled = run_form(CompiledContinuationFlow,
                        ring_program(ranks, rounds, seed=7))
    # seed batch + (recv resume + yield) per round + barrier release.
    # The recv resume only posts when the message was NOT yet queued;
    # equality between forms is the invariant, the ceiling is sanity.
    assert thread.kernel_events == compiled.kernel_events
    assert compiled.kernel_events <= ranks * (2 * rounds + 2)


def test_three_forms_agree_on_stencil_numerics():
    """Thread, compiled, hybrid and event-object forms share relax():
    results must be float-exact equal, not approximately equal."""
    runs = {}
    for label, cls in sorted(WORKLOAD_MECHANISMS.items()):
        program = stencil_program(5, cells=8, steps=4, seed=11)
        runs[label] = cls(make_proc()).run_workload(
            program, real_flows=False)
    reference = runs["cth"].results
    assert len(reference) == 5
    for label, run in runs.items():
        assert run.results == reference, label


def test_three_forms_agree_on_ring_results():
    runs = {
        label: cls(make_proc()).run_workload(
            ring_program(6, 3, seed=13), real_flows=False)
        for label, cls in WORKLOAD_MECHANISMS.items()
        if label != "event"   # no hand-written event form for the ring
    }
    reference = runs["cth"].results
    assert len(reference) == 6
    for label, run in runs.items():
        assert run.results == reference, label
