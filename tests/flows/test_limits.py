"""Tests for the Table 2 limit probe."""

import pytest

from repro.flows import (KernelThreadFlow, ProcessFlow, UserThreadFlow,
                         probe_limit)
from repro.sim import Processor, get_platform


def make_proc(platform):
    return Processor(0, get_platform(platform))


def test_probe_finds_linux_pthread_limit():
    probe = probe_limit(KernelThreadFlow(make_proc("linux_x86")), cap=1_000)
    assert probe.hit_limit
    assert probe.count == 250
    assert probe.display() == "250"
    assert probe.limiting_factor == "kernel"


def test_probe_finds_ibm_sp_process_limit():
    probe = probe_limit(ProcessFlow(make_proc("ibm_sp")), cap=1_000)
    assert probe.hit_limit
    assert probe.count == 99         # the program itself is process #100
    assert probe.limiting_factor == "ulimit/kernel"


def test_probe_cap_reached_reports_plus():
    probe = probe_limit(UserThreadFlow(make_proc("linux_x86")), cap=500)
    assert not probe.hit_limit
    assert probe.count == 500
    assert probe.display() == "500+"
    assert probe.limiting_factor == "memory"


def test_probe_cleans_up():
    p = make_proc("linux_x86")
    mech = KernelThreadFlow(p)
    probe_limit(mech, cap=1_000)
    assert p.kernel.kthread_count == 0
    assert mech.n_flows == 0


def test_probe_memory_limited_uthreads():
    """A tiny-memory machine bounds user-level threads by memory, as in
    Table 2's 'memory' limiting factor."""
    profile = get_platform("linux_x86").with_overrides(
        physical_memory_bytes=2 * 1024 * 1024)
    probe = probe_limit(UserThreadFlow(Processor(0, profile)), cap=10_000)
    assert probe.hit_limit
    assert probe.limiting_factor == "memory"
    assert probe.count == 512          # 2 MB / one lazily-faulted 4 KB page


def test_probe_chunked_equals_unchunked():
    a = probe_limit(KernelThreadFlow(make_proc("linux_x86")), cap=1_000,
                    chunk=1)
    b = probe_limit(KernelThreadFlow(make_proc("linux_x86")), cap=1_000,
                    chunk=64)
    assert a.count == b.count == 250
