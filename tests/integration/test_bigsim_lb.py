"""BigSim + load balancing: the paper's two halves composed.

BigSim motivates many flows per processor; thread migration fixes load
imbalance.  A target machine with a spatially dense region (an MD
"droplet") under the realistic locality-preserving blocked placement
overloads the host processor that owns the dense slab; migrating the
simulation's own threads fixes it — without changing the prediction.
"""

import pytest

from repro.balance import GreedyLB
from repro.bigsim import BigSimEngine, TargetMachine
from repro.errors import ReproError
from repro.workloads.md import MDConfig, MDWorkload


def droplet_workload(dims=(4, 4, 8)):
    """MD cells with a dense region at low z."""
    return MDWorkload(MDConfig(dims=dims, atom_jitter=0.9,
                               density_profile="gradient"))


def test_gradient_density_is_spatial():
    wl = droplet_workload()
    dense = wl.atoms(wl.index(0, 0, 0))
    sparse = wl.atoms(wl.index(0, 0, 7))
    assert dense > 5 * sparse


def test_bigsim_lb_improves_host_time():
    wl = droplet_workload()
    tgt = TargetMachine(dims=(4, 4, 8))
    no_lb = BigSimEngine(4, tgt, wl, steps=6, placement="block").run()
    with_lb = BigSimEngine(4, tgt, wl, steps=6, placement="block",
                           strategy=GreedyLB(), lb_period=2).run()
    assert with_lb.host_ns_per_step < 0.9 * no_lb.host_ns_per_step


def test_bigsim_lb_does_not_change_prediction():
    """Rebalancing the simulation must not alter the predicted target
    time — the target machine did not change."""
    wl = droplet_workload()
    tgt = TargetMachine(dims=(4, 4, 8))
    no_lb = BigSimEngine(4, tgt, wl, steps=4, placement="block").run()
    with_lb = BigSimEngine(4, tgt, wl, steps=4, placement="block",
                           strategy=GreedyLB(), lb_period=2).run()
    assert with_lb.predicted_target_ns_per_step == pytest.approx(
        no_lb.predicted_target_ns_per_step)


def test_bigsim_lb_actually_migrates():
    wl = droplet_workload()
    eng = BigSimEngine(4, TargetMachine(dims=(4, 4, 8)), wl, steps=4,
                       placement="block", strategy=GreedyLB(), lb_period=2)
    eng.run()
    assert eng.runtime.migrator.migrations_completed > 0
    assert len(eng.runtime.reports) == 2         # steps 2 and 4


def test_block_placement_is_contiguous():
    wl = droplet_workload(dims=(2, 2, 4))
    eng = BigSimEngine(2, TargetMachine(dims=(2, 2, 4)), wl, steps=1,
                       placement="block")
    pes = eng.runtime.pe_of_ranks()
    assert pes == [0] * 8 + [1] * 8


def test_unknown_placement_rejected():
    wl = droplet_workload(dims=(2, 2, 2))
    with pytest.raises(ReproError):
        BigSimEngine(2, TargetMachine(dims=(2, 2, 2)), wl,
                     placement="scatter")
