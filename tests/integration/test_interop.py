"""Converse-style interoperability: chares, AMPI, POSE on one cluster.

The Converse reference [23] the paper builds on is explicitly about
"multi-paradigm, multilingual interoperability" — different runtime
paradigms coexisting on one machine.  Our layers share the cluster through
the per-processor tag dispatcher, so an event-driven array, an AMPI world,
and a Time-Warp simulation can run side by side; these tests pin that down.
"""

from repro.ampi import AmpiRuntime
from repro.charm import Chare, CharmRuntime
from repro.core.pup import pup_register
from repro.pose import PoseEngine, Poser
from repro.sim import Cluster


def test_charm_and_ampi_share_a_cluster():
    cluster = Cluster(2)
    charm = CharmRuntime(cluster)

    class Tally(Chare):
        def __init__(self):
            self.total = 0

        def add(self, v):
            self.total += v

    tally = charm.create_array(Tally, 2)

    # AMPI ranks do MPI work, then poke the chare array directly — the
    # multi-paradigm handoff.
    def main(mpi):
        s = yield from mpi.allreduce(mpi.rank, op="sum")
        tally[mpi.rank % 2].send("add", s)

    ampi = AmpiRuntime(cluster, 4, main)
    ampi.run()
    cluster.run()
    total = (charm.element(tally.aid, 0).total
             + charm.element(tally.aid, 1).total)
    assert total == 4 * sum(range(4))


def test_three_paradigms_one_machine():
    cluster = Cluster(2)
    charm = CharmRuntime(cluster)

    @pup_register
    class Echo(Poser):
        def __init__(self):
            self.count = 0

        def pup(self, p):
            self.count = p.int(self.count)

        def on_ping(self, data):
            self.count += 1
            return []

    class Sink(Chare):
        def __init__(self):
            self.got = []

        def take(self, v):
            self.got.append(v)

    sink = charm.create_array(Sink, 1)
    pose = PoseEngine(cluster)
    pose.register("echo", Echo(), 1)

    def main(mpi):
        yield from mpi.barrier()
        if mpi.rank == 0:
            sink[0].send("take", "from-ampi")
            pose.schedule("echo", "ping", None, at=1.0)

    AmpiRuntime(cluster, 2, main).run()
    cluster.run()
    assert charm.element(sink.aid, 0).got == ["from-ampi"]
    assert pose.poser("echo").count == 1


def test_thread_migration_does_not_disturb_charm_state():
    """Migrating AMPI threads over a cluster hosting chares leaves the
    chares' routing intact."""
    from repro.balance import GreedyLB

    cluster = Cluster(2)
    charm = CharmRuntime(cluster)

    class Counter(Chare):
        def __init__(self):
            self.n = 0

        def bump(self):
            self.n += 1

    counters = charm.create_array(Counter, 4)

    def main(mpi):
        # Ranks 0 and 2 are heavy and both start on PE 0 (round-robin
        # over 2 PEs), so the balancer must move something.
        mpi.charge(1e6 if mpi.rank in (0, 2) else 1e4)
        yield from mpi.migrate()
        counters[mpi.rank % 4].send("bump")

    ampi = AmpiRuntime(cluster, 8, main, strategy=GreedyLB())
    ampi.run()
    cluster.run()
    assert ampi.migrator.migrations_completed > 0
    assert sum(charm.element(counters.aid, i).n for i in range(4)) == 8
