"""Cross-module property-based tests (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.balance import GreedyLB, RefineLB
from repro.charm.sdag import Overlap, SdagDriver, When
from repro.core.pup import pack_value, unpack_value
from tests.core.conftest import make_cluster


# ---------------------------------------------------------------------------
# SDAG: message-arrival order must not matter
# ---------------------------------------------------------------------------

@given(perm=st.permutations(["a", "b", "c", "d"]))
@settings(max_examples=24, deadline=None)
def test_sdag_overlap_order_independent(perm):
    """An overlap's result depends only on message contents, never on
    arrival order — the construct's defining guarantee."""
    results = []

    def gen():
        vals = yield Overlap(When("a"), When("b"), When("c"), When("d"))
        results.append(vals)

    driver = SdagDriver(gen())
    driver.start()
    for name in perm:
        driver.deliver(name, name.upper())
    assert driver.finished
    assert results == [("A", "B", "C", "D")]


@given(msgs=st.lists(st.sampled_from(["x", "y"]), min_size=4, max_size=12))
@settings(max_examples=30, deadline=None)
def test_sdag_buffering_never_loses_messages(msgs):
    """Every delivered message is eventually consumed or still buffered —
    none vanish, whatever the interleaving."""
    consumed = []

    def gen():
        while True:
            v = yield When("x")
            consumed.append(v)

    driver = SdagDriver(gen())
    driver.start()
    for i, name in enumerate(msgs):
        driver.deliver(name, i)
    n_x = sum(1 for m in msgs if m == "x")
    n_y = len(msgs) - n_x
    assert len(consumed) == n_x
    assert len(driver.buffers.get("y", [])) == n_y
    # x messages consumed in FIFO order.
    assert consumed == [i for i, m in enumerate(msgs) if m == "x"]


# ---------------------------------------------------------------------------
# Load balancing invariants
# ---------------------------------------------------------------------------

load_maps = st.dictionaries(
    st.integers(min_value=0, max_value=40),
    st.floats(min_value=0.1, max_value=1000.0),
    min_size=1, max_size=24)


@given(loads=load_maps, npes=st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_greedy_lb_covers_and_bounds(loads, npes):
    out = GreedyLB().map_objects(loads, {}, npes)
    assert set(out) == set(loads)
    assert all(0 <= pe < npes for pe in out.values())
    # LPT bound: max load <= avg + max single object.
    per_pe = [0.0] * npes
    for obj, pe in out.items():
        per_pe[pe] += loads[obj]
    avg = sum(loads.values()) / npes
    assert max(per_pe) <= avg + max(loads.values()) + 1e-9


@given(loads=load_maps, npes=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=50, deadline=None)
def test_refine_lb_never_worse(loads, npes, seed):
    """RefineLB never increases the maximum processor load."""
    import random
    rng = random.Random(seed)
    current = {obj: rng.randrange(npes) for obj in loads}

    def maxload(placement):
        per = [0.0] * npes
        for obj, pe in placement.items():
            per[pe] += loads[obj]
        return max(per)

    out = RefineLB().map_objects(loads, current, npes)
    assert set(out) == set(loads)
    assert maxload(out) <= maxload(current) + 1e-9


# ---------------------------------------------------------------------------
# pack_value roundtrips
# ---------------------------------------------------------------------------

json_like = st.recursive(
    st.one_of(st.none(), st.booleans(),
              st.integers(min_value=-2**62, max_value=2**62),
              st.floats(allow_nan=False, allow_infinity=False),
              st.binary(max_size=64), st.text(max_size=32)),
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5)),
    max_leaves=20)


@given(value=json_like)
@settings(max_examples=80, deadline=None)
def test_pack_value_roundtrip(value):
    assert unpack_value(pack_value(value)) == value


# ---------------------------------------------------------------------------
# Migration: arbitrary heap contents survive, repeatedly
# ---------------------------------------------------------------------------

@given(payloads=st.lists(st.binary(min_size=1, max_size=300), min_size=1,
                         max_size=5),
       hops=st.lists(st.integers(min_value=0, max_value=2), min_size=1,
                     max_size=4))
@settings(max_examples=25, deadline=None)
def test_migration_preserves_arbitrary_heaps(payloads, hops):
    cl, scheds, mig, _ = make_cluster(3)
    seen = []

    def body(th):
        addrs = []
        for data in payloads:
            a = th.malloc(len(data))
            th.write(a, data)
            addrs.append(a)
        while True:
            yield "suspend"
            seen.append([th.read(a, len(p))
                         for a, p in zip(addrs, payloads)])

    t = scheds[0].create(body)
    scheds[0].run()
    for dst in hops:
        mig.migrate(t, dst)
        cl.run()
        sched = t.scheduler
        sched.awaken(t)
        sched.run()
    for snapshot in seen:
        assert snapshot == payloads
