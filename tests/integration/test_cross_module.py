"""Integration tests spanning several subsystems."""

import numpy as np
import pytest

from repro.ampi import AmpiRuntime
from repro.balance import GreedyLB
from repro.charm import Chare, CharmRuntime, Overlap, When
from repro.core.pup import pup_register
from repro.sim import Cluster
from repro.workloads.stencil import (StencilConfig, initial_grid,
                                     jacobi_reference, run_ampi_stencil)


@pytest.mark.parametrize("technique", ["isomalloc", "stack_copy",
                                       "memory_alias"])
def test_ampi_stencil_under_every_stack_technique(technique):
    """The full AMPI stencil is numerically exact whatever stack technique
    backs the rank threads — the techniques are interchangeable."""
    cfg = StencilConfig(rows=24, cols=12, iterations=4)
    results = {}
    from repro.workloads.stencil import ampi_stencil_main
    rt = AmpiRuntime(2, 4, ampi_stencil_main(cfg, results),
                     technique=technique,
                     slot_bytes=256 * 1024, stack_bytes=8 * 1024)
    rt.run()
    got = np.vstack([results[r] for r in range(4)])
    np.testing.assert_allclose(
        got, jacobi_reference(initial_grid(cfg), cfg.iterations), rtol=1e-12)


def test_stencil_with_migration_still_exact():
    """Numerics survive load balancing: migrate mid-solve, same answer."""
    cfg = StencilConfig(rows=32, cols=8, iterations=4)
    results = {}

    # Wrap the stencil with skewed warm-up work and a migrate barrier, so
    # GreedyLB genuinely moves rank threads before the solve runs.
    def wrapped(mpi):
        mpi.charge(1_000_000.0 if mpi.rank % 2 == 0 else 1_000.0)
        yield from mpi.migrate()           # skewed load -> real migrations
        from repro.workloads.stencil import ampi_stencil_main
        yield from ampi_stencil_main(cfg, results)(mpi)

    rt = AmpiRuntime(2, 8, wrapped, strategy=GreedyLB(),
                     slot_bytes=256 * 1024, stack_bytes=8 * 1024)
    rt.run()
    assert rt.migrator.migrations_completed > 0
    got = np.vstack([results[r] for r in range(8)])
    np.testing.assert_allclose(
        got, jacobi_reference(initial_grid(cfg), cfg.iterations), rtol=1e-12)


def test_chare_migration_during_sdag_stencil():
    """Event-driven objects keep exchanging strips correctly while being
    migrated between processors mid-iteration."""

    @pup_register
    class MigStencil(Chare):
        ITER = 4

        def __init__(self):
            self.sums = []

        def pup(self, p):
            self.sums = p.list_double(self.sums)

        def lifecycle(self):
            n = self.thisProxy.n
            left, right = (self.thisIndex - 1) % n, (self.thisIndex + 1) % n
            value = float(self.thisIndex)
            for it in range(self.ITER):
                self.thisProxy[left].send("from_right", value)
                self.thisProxy[right].send("from_left", value)
                l, r = yield Overlap(When("from_left"), When("from_right"))
                value = (l + r) / 2.0
                self.sums.append(value)

    cl = Cluster(3)
    rt = CharmRuntime(cl)
    proxy = rt.create_array(MigStencil, 6)
    proxy.broadcast("lifecycle")
    # Let some progress happen, then shuffle elements around, then drain.
    cl.run(max_events=40)
    rt.migrate_element(proxy.aid, 1, 2)
    rt.migrate_element(proxy.aid, 4, 0)
    cl.run()
    for i in range(6):
        elem = rt.element(proxy.aid, i)
        assert len(elem.sums) == MigStencil.ITER
    # Deterministic check: with the ring-average dynamics all values
    # contract toward the mean of 0..5 = 2.5.
    finals = [rt.element(proxy.aid, i).sums[-1] for i in range(6)]
    assert all(abs(v - 2.5) < 2.5 for v in finals)


def test_bigsim_on_checkpointing_ampi():
    """BigSim's engine composes with the AMPI checkpoint barrier."""
    from repro.bigsim import BigSimEngine, TargetMachine
    from repro.workloads.md import MDConfig, MDWorkload

    wl = MDWorkload(MDConfig(dims=(3, 3, 3)))
    eng = BigSimEngine(2, TargetMachine(dims=(3, 3, 3)), wl, steps=1)
    res = eng.run()
    assert res.target_processors == 27
    # The AMPI runtime underneath exposes its checkpointer.
    assert eng.runtime.checkpointer.checkpoints_taken == 0


def test_priority_scheduler_with_ampi_unaffected():
    """AMPI over a priority scheduler still completes (ranks equal prio)."""
    out = []

    def main(mpi):
        total = yield from mpi.allreduce(1, op="sum")
        out.append(total)

    # Build an AmpiRuntime, then flip its schedulers to priority policy.
    rt = AmpiRuntime(2, 6, main)
    for sched in rt.schedulers:
        sched.policy = "priority"
    rt.run()
    assert out == [6] * 6


def test_got_privatized_ranks_with_lb():
    """Swap-global + migration + LB together: each rank's 'global'
    my_rank variable stays its own across migrations."""
    out = {}

    def main(mpi):
        mpi.thread.global_write_int("my_rank", mpi.rank)
        mpi.charge(1_000_000.0 if mpi.rank < 2 else 10_000.0)
        yield from mpi.migrate()
        out[mpi.rank] = mpi.thread.global_read_int("my_rank")

    rt = AmpiRuntime(2, 6, main, strategy=GreedyLB(),
                     globals_decl=(("my_rank", 8),))
    rt.run()
    assert out == {r: r for r in range(6)}
