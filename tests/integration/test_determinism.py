"""Determinism: identical runs produce bit-identical virtual outcomes.

Everything in the library runs on virtual time with no wall-clock or RNG
dependence, so re-running any simulation must reproduce every observable —
makespans, placements, statistics — exactly.  These tests re-run each major
subsystem twice and compare.
"""

from repro.ampi import AmpiRuntime
from repro.balance import GreedyLB
from repro.bigsim import BigSimEngine, TargetMachine
from repro.chaos import (ChaosRunner, FaultConfig, SampleSortChaosWorkload,
                         StencilChaosWorkload)
from repro.core.pup import pup_register
from repro.pose import PoseEngine, Poser
from repro.sim import Cluster
from repro.workloads.btmz import BTMZConfig, run_btmz
from repro.workloads.md import MDConfig, MDWorkload


def test_ampi_run_bit_identical():
    def make():
        def main(mpi):
            mpi.charge(1e6 if mpi.rank % 3 == 0 else 5e4)
            yield from mpi.migrate()
            total = yield from mpi.allreduce(mpi.rank, op="sum")
            yield from mpi.barrier()
        rt = AmpiRuntime(3, 9, main, strategy=GreedyLB())
        rt.run()
        return (rt.makespan_ns, tuple(rt.pe_of_ranks()),
                tuple(p.messages_sent for p in rt.cluster.processors),
                rt.migrator.bytes_shipped)

    assert make() == make()


def test_btmz_run_bit_identical():
    cfg = BTMZConfig("A", 8, 4, iterations=3)
    a = run_btmz(cfg, GreedyLB())
    b = run_btmz(cfg, GreedyLB())
    assert a.makespan_ns == b.makespan_ns
    assert a.migrations == b.migrations
    assert a.imbalance_before == b.imbalance_before


def test_bigsim_run_bit_identical():
    def run():
        wl = MDWorkload(MDConfig(dims=(3, 3, 3)))
        res = BigSimEngine(2, TargetMachine(dims=(3, 3, 3)), wl,
                           steps=2).run()
        return (res.host_ns_per_step, res.predicted_target_ns_per_step)

    assert run() == run()


def test_pose_run_bit_identical():
    @pup_register
    class Det(Poser):
        def __init__(self):
            self.log = []

        def pup(self, p):
            self.log = p.list_double(self.log)

        def on_e(self, data):
            self.log.append(float(data))
            if data < 6:
                return [("det", "e", data + 1, 0.5)]
            return []

    def run():
        cl = Cluster(2)
        eng = PoseEngine(cl)
        eng.register("det", Det(), 1)
        for vt in (9.0, 3.0, 1.0):
            eng.schedule("det", "e", vt, at=vt)
        stats = eng.run()
        return (tuple(eng.poser("det").log), stats.events_processed,
                stats.rollbacks, cl.makespan)

    assert run() == run()


def test_chaos_sweep_bit_identical():
    """Fault-injected runs are as deterministic as clean ones: the same
    seed sweep re-run from scratch reproduces every schedule, outcome,
    and trace/state fingerprint exactly."""
    cfg = FaultConfig(drop_rate=0.02, delay_rate=0.1, reorder_rate=0.05,
                      migrate_abort_rate=0.1, migrate_bounce_rate=0.05,
                      ckpt_error_rate=0.03, ckpt_corrupt_rate=0.03,
                      crash_rate=0.15, evac_rate=0.1)

    def sweep(workload_cls):
        results = ChaosRunner(workload_cls(), cfg).sweep(range(6))
        return [(r.outcome, tuple(r.schedule), r.fingerprint(),
                 r.makespan_ns) for r in results]

    for workload_cls in (StencilChaosWorkload, SampleSortChaosWorkload):
        assert sweep(workload_cls) == sweep(workload_cls)


def test_parallel_sweep_bit_identical():
    """The parallel sweep executor inherits full determinism: fanning the
    same cells out over worker processes — twice — merges to exactly the
    serial reference, byte for byte."""
    from repro.exec import (Cell, LocalPool, SerialBackend, SweepExecutor,
                            SweepSpec, fault_config_params)

    rates = fault_config_params(
        FaultConfig(drop_rate=0.02, delay_rate=0.1, reorder_rate=0.05,
                    migrate_abort_rate=0.1, migrate_bounce_rate=0.05,
                    ckpt_error_rate=0.03, ckpt_corrupt_rate=0.03,
                    crash_rate=0.15, evac_rate=0.1))

    def sweep(backend):
        spec = SweepSpec("determinism", [
            Cell(experiment="chaos:stencil",
                 runner="repro.exec.runners:run_chaos_cell",
                 params={"workload": "stencil", "config": rates}, seed=s)
            for s in range(3)])
        return [(r.cell_id, r.status, r.value)
                for r in SweepExecutor(spec, backend=backend).run()]

    reference = sweep(SerialBackend())
    assert sweep(LocalPool(jobs=2)) == reference
    assert sweep(LocalPool(jobs=2)) == reference


def test_table_and_figure_builders_bit_identical():
    from repro.bench.figures import context_switch_series, stack_size_series
    from repro.bench.tables import table1_rows

    assert table1_rows() == table1_rows()
    assert (context_switch_series("linux_x86", grid=[2, 64], rounds=1)
            == context_switch_series("linux_x86", grid=[2, 64], rounds=1))
    assert (stack_size_series(sizes=[8192, 32768])
            == stack_size_series(sizes=[8192, 32768]))
