"""Fuzzed lifecycle interleavings: migrate/checkpoint/evacuate/run.

A thread's simulated state must survive *any* legal sequence of lifecycle
operations.  Hypothesis drives random interleavings against a shadow model
of the thread's heap contents.
"""

from hypothesis import given, settings, strategies as st

from repro.core import Checkpointer
from repro.core.thread import ThreadState
from repro.errors import MigrationError
from tests.core.conftest import make_cluster


ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 7),
                  st.integers(0, 2**31)),
        st.tuples(st.just("migrate"), st.integers(0, 2)),
        st.tuples(st.just("checkpoint")),
        st.tuples(st.just("roundtrip")),          # run one slice
    ),
    min_size=1, max_size=15)


@given(script=ops)
@settings(max_examples=30, deadline=None)
def test_heap_survives_any_lifecycle_interleaving(script):
    cl, scheds, mig, _ = make_cluster(3, emulate_swap=True)
    ck = Checkpointer(mig)
    cells = {}
    shadow = {}

    def body(th):
        for i in range(8):
            cells[i] = th.malloc(8)
            th.write_word(cells[i], 0)
            shadow[i] = 0
        while True:
            yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()          # allocate and suspend

    def current_sched():
        return t.scheduler

    for op in script:
        if op[0] == "write":
            _, idx, value = op
            # Writes happen "inside" the thread: resume it for one slice.
            t.resume_value = None
            current_sched().awaken(t)
            # Poke memory directly through the thread handle (the thread
            # is READY; its slot is resident on its current processor).
            t.write_word(cells[idx], value)
            shadow[idx] = value
            current_sched().run(max_switches=1)   # back to suspend
        elif op[0] == "migrate":
            dst = op[1]
            if t.state in (ThreadState.READY, ThreadState.SUSPENDED):
                mig.migrate(t, dst)
                cl.run()
        elif op[0] == "checkpoint":
            if t.state in (ThreadState.READY, ThreadState.SUSPENDED):
                ck.checkpoint(t)
        else:  # roundtrip: one suspend/awaken cycle
            if t.state is ThreadState.SUSPENDED:
                current_sched().awaken(t)
                current_sched().run(max_switches=1)
        # Invariant after every operation: heap matches the shadow model.
        for i, addr in cells.items():
            assert t.read_word(addr) == shadow[i], (op, i)


@given(hops=st.lists(st.integers(0, 2), min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_checkpoint_restore_valid_only_at_the_barrier(hops):
    """After any migration chain, a fresh checkpoint restores; a stale one
    (thread ran since) is refused."""
    cl, scheds, mig, _ = make_cluster(3)
    ck = Checkpointer(mig)

    def body(th):
        a = th.malloc(8)
        th.write_word(a, 0xCAFE)
        while True:
            yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()
    for dst in hops:
        mig.migrate(t, dst)
        cl.run()
    key = ck.checkpoint(t)
    # Run one more slice: the checkpoint becomes stale.
    t.scheduler.awaken(t)
    t.scheduler.run(max_switches=1)
    try:
        ck.restore(key, dst_pe=0)
        raise AssertionError("stale restore should have been refused")
    except MigrationError:
        pass
