"""Integration test: adapting to external load on workstation clusters.

Paper reference [10] (Brunner & Kalé): on a cluster of workstations, a
node busy with someone else's job should shed migratable work.  Our
measurement-based balancer gets this for free — work on a loaded processor
takes proportionally longer, so the measured loads drive migration away.
"""

import pytest

from repro.ampi import AmpiRuntime
from repro.balance import GreedyLB, NullLB
from repro.errors import ReproError
from repro.sim import Cluster, Processor, get_platform


def test_background_load_slows_work():
    p = Processor(0, get_platform("linux_x86"))
    p.charge(1000.0)
    assert p.now == 1000.0
    p.background_load = 0.5
    p.charge(1000.0)                 # takes twice as long
    assert p.now == 3000.0


def test_bad_background_load_rejected():
    p = Processor(0, get_platform("linux_x86"))
    p.background_load = 1.5
    with pytest.raises(ReproError):
        p.charge(1.0)


def make_world(strategy, load=0.75):
    """Equal-work ranks; processor 0 is heavily loaded by external jobs."""
    cluster = Cluster(4)
    cluster[0].background_load = load

    def main(mpi):
        for _ in range(4):
            mpi.charge(500_000.0)
            yield from mpi.migrate()

    rt = AmpiRuntime(cluster, 16, main, strategy=strategy)
    rt.run()
    return rt


def test_lb_migrates_away_from_loaded_workstation():
    rt = make_world(GreedyLB())
    # Ranks observed on PE0 looked ~4x heavier, so GreedyLB placed fewer
    # of them there.
    placement = rt.pe_of_ranks()
    on_loaded = sum(1 for pe in placement if pe == 0)
    assert on_loaded < 16 / 4                 # fewer than the fair share
    assert rt.migrator.migrations_completed > 0


def test_lb_improves_makespan_under_external_load():
    slow = make_world(NullLB())
    fast = make_world(GreedyLB())
    assert fast.makespan_ns < slow.makespan_ns
    # With no external load there is nothing to gain.
    even_null = AmpiRuntime(4, 16, lambda mpi: iter(()), strategy=NullLB())
    even_null.run()


def test_refinelb_sheds_loaded_workstation_with_few_moves():
    from repro.balance import RefineLB

    rt = make_world(RefineLB(tolerance=1.1))
    placement = rt.pe_of_ranks()
    on_loaded = sum(1 for pe in placement if pe == 0)
    assert on_loaded < 16 / 4
    # Refine moves less than Greedy would (it keeps the placement).
    greedy = make_world(GreedyLB())
    assert (rt.migrator.migrations_completed
            <= greedy.migrator.migrations_completed)


def test_refinelb_speed_aware_unit():
    from repro.balance import RefineLB

    loads = {i: 10.0 for i in range(8)}
    current = {i: i % 2 for i in range(8)}     # 4 objects per PE
    strat = RefineLB(tolerance=1.05)
    strat.set_pe_speeds([0.25, 1.0])           # PE0 is quarter speed
    out = strat.map_objects(loads, current, 2)
    per_pe = [sum(loads[o] for o, p in out.items() if p == pe)
              for pe in range(2)]
    # Finish-time balance: PE0 should end with ~1/5 of the work.
    assert per_pe[0] < per_pe[1]
    assert per_pe[0] <= 20.0
