"""The end-to-end restart guarantee (ISSUE 9 acceptance criterion).

Submit a sweep to a real ``python -m repro.serve`` process, SIGKILL the
service mid-run, restart it on the same cache + journal, and assert:

* the journal replay completes the sweep without a client resubmitting;
* every cell finished before the kill is served from the sharded cache
  (dedupe-hit counters say so);
* the final results are byte-identical to an uninterrupted run.

SIGKILL (not SIGTERM) on purpose: no atexit handler, no graceful drain
— the only things the restart can lean on are the fsync'd journal and
the incrementally-written cache, which is exactly the claim under test.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.errors import ReproError
from repro.serve import ServeClient, wait_until_up

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
SLOW = "tests.exec.workers:slow_echo"

#: Per-cell sleep: long enough that a 12-cell sweep is still running
#: when the kill lands, short enough to keep the test quick.
SLEEP_S = 0.15
CELLS = [{"experiment": "t:restart", "runner": SLOW,
          "params": {"sleep_s": SLEEP_S}, "seed": s} for s in range(12)]


def start_service(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + os.pathsep + ROOT
    sock = str(tmp_path / "serve.sock")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve",
         "--socket", sock,
         "--cache", str(tmp_path / "cache"),
         "--journal", str(tmp_path / "journal.jsonl")],
        env=env, cwd=ROOT,
        stderr=subprocess.DEVNULL)
    assert wait_until_up(sock, 20), "service never came up"
    return proc, sock


def await_sweep_done(sock, sweep_id, timeout_s=60):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        with ServeClient(sock) as c:
            out = c.result(sweep_id)
        if out.get("state") == "done":
            return out
        time.sleep(0.05)
    raise AssertionError(f"sweep {sweep_id} never completed")


def test_kill_restart_replay_resumes_from_cache(tmp_path):
    # --- reference: an uninterrupted run on a pristine service ---------
    ref_dir = tmp_path / "reference"
    ref_dir.mkdir()
    proc, sock = start_service(ref_dir)
    try:
        with ServeClient(sock) as c:
            reference = c.submit("restart-demo", CELLS, wait=True)
            assert reference["executed"] == len(CELLS)
            c.shutdown()
        proc.wait(20)
    finally:
        if proc.poll() is None:
            proc.kill()

    # --- the run that gets killed --------------------------------------
    work = tmp_path / "work"
    work.mkdir()
    proc, sock = start_service(work)
    seen_done = []

    def on_event(event):
        if event["event"] == "exec.cell.done" and not event.get("cached"):
            seen_done.append(event["cell_id"])
            if len(seen_done) == 3:
                proc.send_signal(signal.SIGKILL)   # mid-run, no mercy

    try:
        with ServeClient(sock, timeout_s=60) as c:
            with pytest.raises((ReproError, OSError)):
                # The stream dies with the service.
                c.submit("restart-demo", CELLS, wait=True, watch=True,
                         on_event=on_event)
    finally:
        proc.wait(20)
    assert len(seen_done) >= 3, "kill landed before any cell finished"
    # The journal has the submission but no completion...
    journal_lines = [json.loads(line)
                     for line in open(work / "journal.jsonl")]
    assert [r["type"] for r in journal_lines] == ["submit"]
    sweep_id = journal_lines[0]["sweep_id"]
    # ...and the cache holds exactly the cells that finished pre-kill.
    def cache_entries():
        return sum(1 for _dir, _dirs, names in os.walk(work / "cache")
                   for n in names if n.endswith(".json"))
    finished_before_kill = cache_entries()
    assert finished_before_kill >= 3
    assert finished_before_kill < len(CELLS), \
        "sweep finished before the kill; nothing was interrupted"

    # --- restart: the journal replay completes the sweep ---------------
    proc, sock = start_service(work)
    try:
        replayed = await_sweep_done(sock, sweep_id)
        with ServeClient(sock) as c:
            stats = c.stats()
            c.shutdown()
        proc.wait(20)
    finally:
        if proc.poll() is None:
            proc.kill()

    counters = stats["metrics"]["counters"]
    assert counters["serve.journal.replayed"] == 1
    # Every cell that finished before the kill came back as a dedupe
    # hit; only the interrupted remainder re-ran.
    assert replayed["cached"] == finished_before_kill
    assert counters["serve.cells.deduped"] == finished_before_kill
    assert replayed["executed"] == len(CELLS) - finished_before_kill
    assert replayed["ok"] == len(CELLS)

    # --- the headline: byte-identical to the uninterrupted run ---------
    assert (json.dumps(replayed["results"], sort_keys=True)
            == json.dumps(reference["results"], sort_keys=True))

    # The journal now records completion, so a second restart replays
    # nothing.
    journal_lines = [json.loads(line)
                     for line in open(work / "journal.jsonl")]
    assert {r["type"] for r in journal_lines} == {"submit", "done"}
