"""SubmissionJournal: durability, replay worklists, write-rename rotation."""

import json
import os

import pytest

from repro.errors import ReproError
from repro.serve import SubmissionJournal

CELLS = [{"experiment": "t", "runner": "tests.exec.workers:echo",
          "params": {}, "seed": 0}]


def test_submit_then_done_leaves_nothing_pending(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with SubmissionJournal(path) as j:
        j.submit("sweep-000001", "demo", CELLS)
        assert [r["sweep_id"] for r in j.pending()] == ["sweep-000001"]
        j.done("sweep-000001", ok=1, error=0)
        assert j.pending() == []
        assert j.stats()["records"] == 2


def test_pending_survives_reopen(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with SubmissionJournal(path) as j:
        j.submit("sweep-000001", "done-one", CELLS)
        j.done("sweep-000001", ok=1, error=0)
        j.submit("sweep-000002", "interrupted", CELLS)
    with SubmissionJournal(path) as j:        # the restart
        (rec,) = j.pending()
        assert rec["sweep_id"] == "sweep-000002"
        assert rec["name"] == "interrupted"
        assert rec["cells"] == CELLS          # enough to rebuild the sweep


def test_torn_trailing_line_is_dropped_not_fatal(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with SubmissionJournal(path) as j:
        j.submit("sweep-000001", "demo", CELLS)
    with open(path, "a") as fh:
        fh.write('{"type": "done", "sweep_id": "sweep-0')   # kill mid-append
    with SubmissionJournal(path) as j:
        assert [r["sweep_id"] for r in j.pending()] == ["sweep-000001"]
        assert j.stats()["dropped"] == 1


def test_rotation_compacts_to_pending_only(tmp_path):
    path = str(tmp_path / "j.jsonl")
    j = SubmissionJournal(path, rotate_after=10**9)   # no auto-rotate
    for i in range(5):
        j.submit(f"sweep-{i:06d}", "dead", CELLS)
        j.done(f"sweep-{i:06d}", ok=1, error=0)
    j.submit("sweep-000099", "live", CELLS)
    dropped = j.rotate()
    assert dropped == 10                              # 5 dead pairs
    with open(path) as fh:
        lines = [json.loads(line) for line in fh]
    assert [r["sweep_id"] for r in lines] == ["sweep-000099"]
    # The journal stays usable for appends after rotation.
    j.done("sweep-000099", ok=1, error=0)
    assert j.pending() == []
    assert j.stats()["rotations"] == 1
    j.close()


def test_auto_rotation_fires_on_completed_threshold(tmp_path):
    j = SubmissionJournal(str(tmp_path / "j.jsonl"), rotate_after=2)
    for i in range(4):
        j.submit(f"sweep-{i:06d}", "x", CELLS)
        j.done(f"sweep-{i:06d}", ok=1, error=0)
    assert j.rotations >= 1
    assert j.stats()["records"] < 8       # dead pairs were compacted away
    j.close()


def test_next_sweep_number_never_repeats_across_restarts(tmp_path):
    path = str(tmp_path / "j.jsonl")
    with SubmissionJournal(path) as j:
        assert j.next_sweep_number() == 1
        j.submit("sweep-000007", "x", CELLS)
        j.done("sweep-000007", ok=1, error=0)
    with SubmissionJournal(path) as j:
        assert j.next_sweep_number() == 8


def test_records_require_type_and_sweep_id(tmp_path):
    j = SubmissionJournal(str(tmp_path / "j.jsonl"))
    with pytest.raises(ReproError):
        j.append({"type": "submit"})
    j.close()


def test_rotation_is_write_rename_not_truncate(tmp_path, monkeypatch):
    """A crash mid-rotation must leave a complete journal behind: the
    compacted file is fully written and fsync'd *before* the replace."""
    path = str(tmp_path / "j.jsonl")
    j = SubmissionJournal(path, rotate_after=10**9)
    j.submit("sweep-000001", "live", CELLS)
    replaced = {}
    real_replace = os.replace

    def spying_replace(src, dst):
        # At replace time the temp file must already hold the full
        # compacted journal.
        with open(src) as fh:
            replaced["content"] = fh.read()
        return real_replace(src, dst)

    monkeypatch.setattr(os, "replace", spying_replace)
    j.rotate()
    assert json.loads(replaced["content"])["sweep_id"] == "sweep-000001"
    j.close()
