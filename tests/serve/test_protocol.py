"""Wire protocol: framing, validation, and the semantic result form."""

import json

import pytest

from repro.exec import Cell, CellResult
from repro.serve import (ProtocolError, cell_to_wire, cells_from_wire,
                         decode, encode, result_to_wire, spec_from_wire)

WIRE = {"experiment": "t", "runner": "tests.exec.workers:echo",
        "params": {"k": 1}, "seed": 3}


def test_encode_decode_roundtrip():
    msg = {"op": "submit", "name": "demo", "cells": [WIRE]}
    line = encode(msg)
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    assert decode(line) == msg


def test_encode_is_byte_stable():
    assert encode({"b": 1, "a": 2}) == encode({"a": 2, "b": 1})


def test_encode_rejects_live_objects():
    with pytest.raises(ProtocolError):
        encode({"payload": object()})


def test_decode_rejects_garbage_and_non_objects():
    with pytest.raises(ProtocolError):
        decode(b"{not json\n")
    with pytest.raises(ProtocolError):
        decode(b"[1, 2]\n")
    with pytest.raises(ProtocolError):
        decode(b"\xff\xfe\n")


def test_cell_roundtrips_through_wire_form():
    (cell,) = cells_from_wire([WIRE])
    assert cell == Cell(experiment="t", runner="tests.exec.workers:echo",
                        params={"k": 1}, seed=3)
    assert cell_to_wire(cell) == WIRE


@pytest.mark.parametrize("bad, hint", [
    ({**WIRE, "experiment": ""}, "experiment"),
    ({**WIRE, "runner": "no_colon"}, "runner"),
    ({**WIRE, "params": [1]}, "params"),
    ({**WIRE, "seed": "three"}, "seed"),
    ({**WIRE, "bogus": 1}, "unknown fields"),
])
def test_invalid_wire_cells_name_the_field(bad, hint):
    with pytest.raises(ProtocolError) as exc:
        cells_from_wire([WIRE, bad])
    assert "cells[1]" in str(exc.value) and hint in str(exc.value)


def test_spec_from_wire_refuses_empty_and_duplicate_sweeps():
    with pytest.raises(ProtocolError):
        spec_from_wire("empty", [])
    with pytest.raises(ProtocolError):
        spec_from_wire("dup", [WIRE, WIRE])
    with pytest.raises(ProtocolError):
        spec_from_wire("", [WIRE])


def test_result_wire_form_is_semantic_only():
    """Host-side diagnostics (duration, cache provenance, attempts) must
    never reach the results document — that is what keeps an interrupted
    + replayed sweep byte-identical to an uninterrupted one."""
    result = CellResult(cell_id="t/abc/0", status="ok", value={"x": 1},
                        attempts=2, duration_s=12.5)
    result.cached = True
    wire = result_to_wire(result)
    assert wire == {"cell_id": "t/abc/0", "status": "ok",
                    "value": {"x": 1}, "error": ""}
    assert json.dumps(wire, sort_keys=True)   # plain data
