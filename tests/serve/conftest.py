"""Shared serve-test harness: a live in-process service on a temp socket.

The service's asyncio loop runs on a daemon thread; tests talk to it
through the blocking :class:`ServeClient` exactly the way real clients
do.  Teardown sends the protocol ``shutdown`` op, so every test also
exercises the graceful-stop path.
"""

import asyncio
import contextlib
import threading

import pytest

from repro.serve import ServeClient, SweepService, wait_until_up

ECHO = "tests.exec.workers:echo"
BOOM = "tests.exec.workers:boom"
SLOW = "tests.exec.workers:slow_echo"


def wire_cells(n=3, runner=ECHO, experiment="t:serve", **params):
    return [{"experiment": experiment, "runner": runner,
             "params": dict(params), "seed": s} for s in range(n)]


class LiveService:
    """A SweepService running on its own loop thread."""

    def __init__(self, tmp_path, **kwargs):
        # Unix socket paths are length-limited (~107 bytes); pytest tmp
        # paths stay well under that in this suite.
        self.socket_path = str(tmp_path / "serve.sock")
        self.cache_root = str(tmp_path / "cache")
        self.journal_path = str(tmp_path / "journal.jsonl")
        self.kwargs = kwargs
        self.service = None
        self._thread = None
        self._started = threading.Event()
        self._failure = None

    def start(self):
        def run():
            async def main():
                self.service = SweepService(
                    self.socket_path, cache_root=self.cache_root,
                    journal_path=self.journal_path, **self.kwargs)
                await self.service.start()
                self._started.set()
                await self.service.serve_forever()
            try:
                asyncio.run(main())
            except Exception as e:  # pragma: no cover - harness failure
                self._failure = e
                self._started.set()
        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        assert self._started.wait(15), "service thread never started"
        if self._failure is not None:
            raise self._failure
        assert wait_until_up(self.socket_path, 15)
        return self

    def client(self, **kw):
        return ServeClient(self.socket_path, **kw)

    def stop(self):
        if self._thread is None or not self._thread.is_alive():
            return
        with contextlib.suppress(Exception):
            with self.client(timeout_s=15) as c:
                c.shutdown()
        self._thread.join(30)
        assert not self._thread.is_alive(), "service failed to stop"


@pytest.fixture
def live_service(tmp_path):
    svc = LiveService(tmp_path).start()
    yield svc
    svc.stop()
