"""SweepService over a live socket: dedupe, streaming, containment, ops."""

import json

from tests.serve.conftest import BOOM, SLOW, wire_cells


def counters(client):
    return client.stats()["metrics"]["counters"]


def test_ping_reports_protocol_version(live_service):
    with live_service.client() as c:
        pong = c.ping()
    assert pong == {"ok": True, "pong": True, "v": 1}


def test_submit_returns_merged_results_in_cell_id_order(live_service):
    cells = wire_cells(4)
    with live_service.client() as c:
        results = c.submit_and_wait("demo", cells)
    assert [r["status"] for r in results] == ["ok"] * 4
    assert [r["cell_id"] for r in results] == sorted(r["cell_id"]
                                                     for r in results)
    assert [r["value"]["seed"] for r in results] == [0, 1, 2, 3]


def test_identical_submission_is_one_computation(live_service):
    """The central dedupe claim: resubmitting a sweep costs zero cells."""
    cells = wire_cells(5)
    with live_service.client() as c:
        first = c.submit("first", cells, wait=True)
        second = c.submit("second", cells, wait=True)
        stats = counters(c)
    assert first["results"] == second["results"]
    assert first["cached"] == 0 and first["executed"] == 5
    assert second["cached"] == 5 and second["executed"] == 0
    assert stats["serve.cells.executed"] == 5
    assert stats["serve.cells.deduped"] == 5
    assert stats["serve.submissions"] == 2
    # Byte-identical result documents, as the determinism story demands.
    assert (json.dumps(first["results"], sort_keys=True)
            == json.dumps(second["results"], sort_keys=True))


def test_concurrent_identical_submissions_share_the_computation(tmp_path,
                                                                live_service):
    """A submission overlapping an in-flight sweep waits for it instead
    of racing it: the second comes back fully deduped."""
    cells = wire_cells(3, runner=SLOW, sleep_s=0.2)
    with live_service.client() as a, live_service.client() as b:
        ack = a.submit("racer-a", cells, wait=False)      # returns at once
        final_b = b.submit("racer-b", cells, wait=True)
        assert final_b["cached"] == 3 and final_b["executed"] == 0
        # The first sweep really ran (poll until its task finishes).
        done = a.result(ack["sweep_id"])
        assert done["state"] == "done" and done["executed"] == 3
        assert counters(a)["serve.cells.executed"] == 3


def test_watch_streams_the_hook_bus_lifecycle(live_service):
    cells = wire_cells(3)
    events = []
    with live_service.client() as c:
        final = c.submit("watched", cells, wait=True, watch=True,
                         on_event=events.append)
    kinds = [e["event"] for e in events]
    assert kinds[0] == "exec.sweep.begin"
    assert kinds.count("exec.cell.start") == 3
    assert kinds.count("exec.cell.done") == 3
    assert kinds[-1] == "sweep.end"
    assert all(e["sweep_id"] == final["sweep_id"] for e in events)
    done_events = [e for e in events if e["event"] == "exec.cell.done"]
    assert all(e["cached"] is False for e in done_events)


def test_failing_cells_are_contained_and_never_cached(live_service):
    cells = wire_cells(2, runner=BOOM)
    with live_service.client() as c:
        first = c.submit("boom", cells, wait=True)
        second = c.submit("boom-again", cells, wait=True)
        stats = counters(c)
    assert first["event"] == "sweep.end"          # the sweep completes
    assert first["error"] == 2 and first["ok"] == 0
    assert all("ValueError" in r["error"] for r in first["results"])
    # Failures re-run: nothing was cached.
    assert second["cached"] == 0 and second["executed"] == 2
    assert stats["serve.cells.failed"] == 4
    assert stats["serve.cells.deduped"] == 0


def test_protocol_errors_answer_without_killing_the_connection(live_service):
    with live_service.client() as c:
        bad = c.request({"op": "warp"})
        assert bad["ok"] is False and "unknown op" in bad["error"]
        bad = c.request({"op": "submit", "name": "x", "cells": []})
        assert bad["ok"] is False and "no cells" in bad["error"]
        bad = c.request({"op": "submit", "name": "x",
                         "cells": [{"experiment": "t"}]})
        assert bad["ok"] is False and "runner" in bad["error"]
        # The connection survives every rejected request.
        assert c.ping()["pong"] is True
        assert counters(c)["serve.protocol.errors"] == 3
        assert counters(c)["serve.submissions"] == 0


def test_status_and_result_ops(live_service):
    cells = wire_cells(2)
    with live_service.client() as c:
        final = c.submit("tracked", cells, wait=True)
        sid = final["sweep_id"]
        status = c.status()
        assert status["sweeps"][sid] == {"name": "tracked",
                                         "state": "done", "cells": 2}
        result = c.result(sid)
        assert result["state"] == "done"
        assert result["results"] == final["results"]
        missing = c.result("sweep-999999")
        assert missing["ok"] is False


def test_stats_exposes_cache_and_journal(live_service):
    with live_service.client() as c:
        c.submit_and_wait("s", wire_cells(3))
        stats = c.stats()
    assert stats["cache"]["entries"] == 3
    assert stats["cache"]["shards"] >= 1
    assert stats["journal"]["pending"] == 0
    assert stats["journal"]["records"] == 2


def test_journal_rotation_threshold_is_wired_through(tmp_path):
    from tests.serve.conftest import LiveService

    svc = LiveService(tmp_path, rotate_after=1).start()
    try:
        with svc.client() as c:
            c.submit_and_wait("one", wire_cells(1))
            c.submit_and_wait("two", wire_cells(1, knob=2))
            stats = c.stats()["journal"]
        assert stats["rotations"] >= 1
        assert stats["records"] <= 2
    finally:
        svc.stop()


def test_malformed_line_gets_a_typed_error(live_service):
    import socket as socket_mod

    sock = socket_mod.socket(socket_mod.AF_UNIX, socket_mod.SOCK_STREAM)
    sock.settimeout(10)
    sock.connect(live_service.socket_path)
    try:
        sock.sendall(b"{this is not json}\n")
        reply = json.loads(sock.makefile("rb").readline())
        assert reply["ok"] is False and "undecodable" in reply["error"]
    finally:
        sock.close()
