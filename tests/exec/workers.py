"""Worker entry points for the executor tests.

These live in a real importable module (not closures) because cells
address their runners by dotted path — the same discipline EXC001
enforces on the shipped runners.  The crashy ones communicate through
marker files so a retried cell can behave differently on a fresh worker.
"""

from __future__ import annotations

import os


def echo(params, seed):
    """Deterministic payload from plain inputs."""
    return {"params": dict(params), "seed": seed, "double": (seed or 0) * 2}


def boom(params, seed):
    """A deterministic Python failure: contained, never retried."""
    raise ValueError(f"deterministic failure for seed {seed}")


def crash_once(params, seed):
    """Hard-kill the worker on the first attempt, succeed on the second."""
    marker = params["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempt 1 died here\n")
        os._exit(17)
    return {"survived": True, "seed": seed}


def always_crash(params, seed):
    """Hard-kill the worker on every attempt."""
    os._exit(17)


def slow_echo(params, seed):
    """Like echo, but slow enough that parallelism is observable."""
    import time
    time.sleep(params.get("sleep_s", 0.05))
    return {"seed": seed}
