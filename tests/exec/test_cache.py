"""ResultCache: hit, skip, force, and the never-cache-failures rule."""

import json
import os

from repro.exec import (Cell, ResultCache, SerialBackend, SweepExecutor,
                        SweepSpec)

ECHO = "tests.exec.workers:echo"
BOOM = "tests.exec.workers:boom"


def spec(runner=ECHO, n=3, **params):
    return SweepSpec("cache-test", [
        Cell(experiment="t:cache", runner=runner, params=params, seed=s)
        for s in range(n)])


def run(spec_, cache, force=False):
    return SweepExecutor(spec_, backend=SerialBackend(), cache=cache,
                         force=force).run()


def test_second_run_is_served_from_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    first = run(spec(), cache)
    assert [r.cached for r in first] == [False] * 3
    second = run(spec(), cache)
    assert [r.cached for r in second] == [True] * 3
    assert [r.value for r in second] == [r.value for r in first]
    assert cache.stats()["entries"] == 3


def test_changed_params_miss_the_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    run(spec(knob=1), cache)
    again = run(spec(knob=2), cache)
    assert [r.cached for r in again] == [False] * 3
    assert cache.stats()["entries"] == 6


def test_force_recomputes_and_refreshes(tmp_path):
    cache = ResultCache(str(tmp_path))
    run(spec(), cache)
    forced = run(spec(), cache, force=True)
    assert [r.cached for r in forced] == [False] * 3
    assert cache.stats()["entries"] == 3


def test_failures_are_never_cached(tmp_path):
    cache = ResultCache(str(tmp_path))
    first = run(spec(runner=BOOM), cache)
    assert all(r.status == "error" for r in first)
    assert cache.stats()["entries"] == 0
    second = run(spec(runner=BOOM), cache)
    assert [r.cached for r in second] == [False] * 3


def entry_paths(root):
    """Every cache entry file, wherever its shard put it."""
    return sorted(os.path.join(dirpath, name)
                  for dirpath, _dirs, names in os.walk(root)
                  for name in names if name.endswith(".json"))


def test_corrupt_entry_counts_as_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    run(spec(n=1), cache)
    (entry,) = entry_paths(tmp_path)
    with open(entry, "w") as fh:
        fh.write("{not json")
    again = run(spec(n=1), cache)
    assert [r.cached for r in again] == [False]
    # ... and the re-run heals the entry.
    with open(entry) as fh:
        assert json.load(fh)["status"] == "ok"


def test_layout_is_two_level_sharded(tmp_path):
    """Entry ``abcdef…`` must land at ``ab/abcdef….json``."""
    cache = ResultCache(str(tmp_path))
    run(spec(), cache)
    paths = entry_paths(tmp_path)
    assert len(paths) == 3
    for path in paths:
        rel = os.path.relpath(path, tmp_path)
        shard, name = rel.split(os.sep)
        assert shard == name[:2] and len(shard) == 2
    assert cache.stats()["shards"] == len({os.path.dirname(p)
                                           for p in paths})


def test_flat_seed_cache_migrates_into_shards(tmp_path):
    """A pre-sharding cache (entries directly under root) keeps its hits."""
    cache = ResultCache(str(tmp_path))
    first = run(spec(), cache)
    # Flatten: simulate a seed-era cache by moving entries back to root.
    for path in entry_paths(tmp_path):
        os.replace(path, tmp_path / os.path.basename(path))
    for shard in [d for d in os.listdir(tmp_path)
                  if (tmp_path / d).is_dir()]:
        os.rmdir(tmp_path / shard)
    migrated = ResultCache(str(tmp_path))  # opening migrates
    assert not [n for n in os.listdir(tmp_path) if n.endswith(".json")]
    again = run(spec(), migrated)
    assert [r.cached for r in again] == [True] * 3
    assert [r.value for r in again] == [r.value for r in first]


def test_put_cleans_up_tmp_on_unserializable_payload(tmp_path):
    """Regression: a non-OSError from json.dump (e.g. TypeError on an
    unserializable payload) used to leak an orphan ``*.tmp`` forever."""
    from repro.exec import Cell, CellResult

    cache = ResultCache(str(tmp_path))
    cell = Cell(experiment="t:tmp", runner=ECHO, seed=0)
    bad = CellResult(cell_id=cell.cell_id, status="ok",
                     value={"poison": object()})   # not JSON-able
    try:
        cache.put(cell, bad)
    except TypeError:
        pass
    else:  # pragma: no cover - the put must fail loudly
        raise AssertionError("unserializable payload was silently cached")
    leftovers = [name for _dir, _dirs, names in os.walk(tmp_path)
                 for name in names if name.endswith(".tmp")]
    assert leftovers == []
    assert cache.stats()["entries"] == 0


def test_entry_renamed_onto_another_key_is_a_miss(tmp_path):
    """Regression: ``get`` used to trust the filename plus the 12-hex
    ``cell_id`` — an entry landing on another key's path whose truncated
    id happened to match (a copy by an id-collided sync, simulated here
    by patching the stored id) was served as that key's hit.  The full
    stored ``cache_key`` is now re-verified and a mismatch is evicted."""
    from repro.exec import Cell

    cache = ResultCache(str(tmp_path))
    run(spec(n=1, knob="a"), cache)
    (src,) = entry_paths(tmp_path)
    victim = Cell(experiment="t:cache", runner=ECHO,
                  params={"knob": "b"}, seed=0)
    with open(src) as fh:
        payload = json.load(fh)
    payload["cell_id"] = victim.cell_id       # the collided/forged id
    dst = os.path.join(str(tmp_path), victim.cache_key()[:2],
                       victim.cache_key() + ".json")
    os.makedirs(os.path.dirname(dst), exist_ok=True)
    with open(dst, "w") as fh:
        json.dump(payload, fh)
    assert cache.get(victim) is None          # poisoned entry: a miss...
    assert not os.path.exists(dst)            # ...and it was evicted.
    # The honest entry is untouched and still hits under its own key.
    again = run(spec(n=1, knob="a"), cache)
    assert [r.cached for r in again] == [True]
