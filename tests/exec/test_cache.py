"""ResultCache: hit, skip, force, and the never-cache-failures rule."""

import json
import os

from repro.exec import (Cell, ResultCache, SerialBackend, SweepExecutor,
                        SweepSpec)

ECHO = "tests.exec.workers:echo"
BOOM = "tests.exec.workers:boom"


def spec(runner=ECHO, n=3, **params):
    return SweepSpec("cache-test", [
        Cell(experiment="t:cache", runner=runner, params=params, seed=s)
        for s in range(n)])


def run(spec_, cache, force=False):
    return SweepExecutor(spec_, backend=SerialBackend(), cache=cache,
                         force=force).run()


def test_second_run_is_served_from_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    first = run(spec(), cache)
    assert [r.cached for r in first] == [False] * 3
    second = run(spec(), cache)
    assert [r.cached for r in second] == [True] * 3
    assert [r.value for r in second] == [r.value for r in first]
    assert cache.stats()["entries"] == 3


def test_changed_params_miss_the_cache(tmp_path):
    cache = ResultCache(str(tmp_path))
    run(spec(knob=1), cache)
    again = run(spec(knob=2), cache)
    assert [r.cached for r in again] == [False] * 3
    assert cache.stats()["entries"] == 6


def test_force_recomputes_and_refreshes(tmp_path):
    cache = ResultCache(str(tmp_path))
    run(spec(), cache)
    forced = run(spec(), cache, force=True)
    assert [r.cached for r in forced] == [False] * 3
    assert cache.stats()["entries"] == 3


def test_failures_are_never_cached(tmp_path):
    cache = ResultCache(str(tmp_path))
    first = run(spec(runner=BOOM), cache)
    assert all(r.status == "error" for r in first)
    assert cache.stats()["entries"] == 0
    second = run(spec(runner=BOOM), cache)
    assert [r.cached for r in second] == [False] * 3


def test_corrupt_entry_counts_as_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path))
    run(spec(n=1), cache)
    (entry,) = [n for n in os.listdir(tmp_path) if n.endswith(".json")]
    with open(tmp_path / entry, "w") as fh:
        fh.write("{not json")
    again = run(spec(n=1), cache)
    assert [r.cached for r in again] == [False]
    # ... and the re-run heals the entry.
    with open(tmp_path / entry) as fh:
        assert json.load(fh)["status"] == "ok"
