"""Cell identity and sweep-spec validation."""

import pytest

from repro.errors import ReproError
from repro.exec import Cell, CellResult, SweepSpec, resolve_runner

RUNNER = "tests.exec.workers:echo"


def cell(seed=0, experiment="t:echo", **params):
    return Cell(experiment=experiment, runner=RUNNER, params=params,
                seed=seed)


def test_cell_id_is_stable_and_param_sensitive():
    a = cell(seed=3, knob=1)
    assert a.cell_id == cell(seed=3, knob=1).cell_id
    assert a.cell_id != cell(seed=4, knob=1).cell_id          # seed differs
    assert a.config_hash != cell(seed=3, knob=2).config_hash  # params differ
    # Param *order* must not matter: hashing is canonical.
    x = Cell(experiment="t", runner=RUNNER, params={"a": 1, "b": 2}, seed=0)
    y = Cell(experiment="t", runner=RUNNER, params={"b": 2, "a": 1}, seed=0)
    assert x.cell_id == y.cell_id


def test_cell_id_names_experiment_confighash_seed():
    c = cell(seed=7)
    exp, config_hash, seed = c.cell_id.split("/")
    assert (exp, config_hash, seed) == ("t:echo", c.config_hash, "7")
    assert Cell(experiment="t", runner=RUNNER).cell_id.endswith("/-")


def test_params_must_be_plain_data():
    with pytest.raises(ReproError, match="JSON-able"):
        Cell(experiment="t", runner=RUNNER,
             params={"obj": object()}).cell_id


def test_spec_rejects_empty_and_duplicate_cells():
    with pytest.raises(ReproError, match="no cells"):
        SweepSpec("empty", [])
    with pytest.raises(ReproError, match="duplicate cell id"):
        SweepSpec("dup", [cell(seed=1), cell(seed=1)])


def test_merged_order_sorts_seeds_numerically():
    spec = SweepSpec("order", [cell(seed=s) for s in (10, 2, 9, 1)])
    assert [c.seed for c in spec.merged_order()] == [1, 2, 9, 10]


def test_resolve_runner_validates_paths():
    assert resolve_runner(RUNNER)({}, 2)["double"] == 4
    with pytest.raises(ReproError, match="package.module:function"):
        resolve_runner("tests.exec.workers.echo")
    with pytest.raises(ReproError, match="does not name a callable"):
        resolve_runner("tests.exec.workers:nope")


def test_cell_result_json_roundtrip():
    r = CellResult(cell_id="t/abc/1", status="ok", value={"x": 1},
                   attempts=2, duration_s=0.5)
    back = CellResult.from_json(r.to_json())
    assert (back.cell_id, back.status, back.value, back.attempts) == \
        ("t/abc/1", "ok", {"x": 1}, 2)
