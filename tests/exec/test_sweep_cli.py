"""tools/chaos_sweep.py CLI: empty-sweep refusal and executor parity.

The empty-sweep cases are the regression tests for the pre-executor bug
where ``-n 0`` ran nothing, wrote an empty results file, and exited 0 as
if the sweep had passed.
"""

import importlib.util
import json
import os

import pytest

TOOLS = os.path.join(os.path.dirname(__file__), "..", "..", "tools")


@pytest.fixture(scope="module")
def sweep_cli():
    spec = importlib.util.spec_from_file_location(
        "chaos_sweep_cli", os.path.join(TOOLS, "chaos_sweep.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_empty_sweep_is_refused_with_exit_2(sweep_cli, tmp_path, capsys):
    out = str(tmp_path / "r.json")
    assert sweep_cli.main(["-n", "0", "-o", out]) == 2
    assert "refusing an empty sweep" in capsys.readouterr().err
    assert not os.path.exists(out)      # no empty results file is written


def test_negative_seed_count_is_refused(sweep_cli, tmp_path):
    assert sweep_cli.main(["-n", "-5",
                           "-o", str(tmp_path / "r.json")]) == 2


def test_bad_jobs_value_is_refused(sweep_cli, tmp_path):
    assert sweep_cli.main(["-j", "0",
                           "-o", str(tmp_path / "r.json")]) == 2


def test_small_sweep_reports_cell_count(sweep_cli, tmp_path, capsys):
    out = str(tmp_path / "r.json")
    code = sweep_cli.main(["-w", "stencil", "-n", "3", "-o", out])
    stdout = capsys.readouterr().out
    assert code == 0
    assert "3 cells" in stdout and "1 workload(s) x 3 seed(s)" in stdout
    with open(out) as fh:
        payload = json.load(fh)
    assert len(payload["results"]) == 3
    assert [row["seed"] for row in payload["results"]] == [0, 1, 2]


def test_parallel_cli_output_is_byte_identical(sweep_cli, tmp_path):
    a, b = str(tmp_path / "a.json"), str(tmp_path / "b.json")
    args = ["-w", "stencil", "-n", "4"]
    assert sweep_cli.main(args + ["-o", a]) == 0
    assert sweep_cli.main(args + ["-j", "2", "-o", b]) == 0
    with open(a, "rb") as fa, open(b, "rb") as fb:
        assert fa.read() == fb.read()


def test_cache_skips_computed_cells(sweep_cli, tmp_path, capsys):
    out = str(tmp_path / "r.json")
    cache = str(tmp_path / "cache")
    args = ["-w", "stencil", "-n", "3", "--cache", cache, "-o", out]
    assert sweep_cli.main(args) == 0
    with open(out, "rb") as fh:
        first = fh.read()
    capsys.readouterr()
    assert sweep_cli.main(args) == 0          # second run: all cache hits
    with open(out, "rb") as fh:
        assert fh.read() == first
    assert len(os.listdir(cache)) == 3
