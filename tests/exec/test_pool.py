"""LocalPool crash containment and serial/parallel equivalence."""

from repro.exec import (Cell, LocalPool, SerialBackend, SweepExecutor,
                        SweepSpec)
from repro.kernel import HookBus


def run(cells, backend, hooks=None):
    return SweepExecutor(SweepSpec("pool-test", cells),
                         backend=backend, hooks=hooks).run()


def test_parallel_matches_serial_on_plain_cells():
    cells = [Cell(experiment="t:echo", runner="tests.exec.workers:echo",
                  params={"k": "v"}, seed=s) for s in range(8)]
    serial = run(cells, SerialBackend())
    parallel = run(cells, LocalPool(jobs=3))
    assert [(r.cell_id, r.status, r.value) for r in serial] == \
        [(r.cell_id, r.status, r.value) for r in parallel]


def test_worker_crash_is_retried_once_on_a_fresh_worker(tmp_path):
    marker = str(tmp_path / "died-once")
    cells = [Cell(experiment="t:crash", runner="tests.exec.workers:crash_once",
                  params={"marker": marker}, seed=0),
             Cell(experiment="t:echo", runner="tests.exec.workers:echo",
                  seed=1)]
    hooks = HookBus()
    crashes = []
    hooks.subscribe("exec.cell.crash",
                    lambda payload, **ctx: crashes.append(payload) or payload)
    crash, echo = run(cells, LocalPool(jobs=2), hooks=hooks)
    assert (crash.status, crash.attempts) == ("ok", 2)
    assert crash.value == {"survived": True, "seed": 0}
    assert (echo.status, echo.attempts) == ("ok", 1)
    assert [c["will_retry"] for c in crashes] == [True]
    assert crashes[0]["exitcode"] == 17


def test_second_crash_marks_the_cell_error():
    cells = [Cell(experiment="t:crash",
                  runner="tests.exec.workers:always_crash", seed=0),
             Cell(experiment="t:echo", runner="tests.exec.workers:echo",
                  seed=1)]
    dead, echo = run(cells, LocalPool(jobs=2))
    assert (dead.status, dead.attempts) == ("error", 2)
    assert "died twice" in dead.error and "exit code 17" in dead.error
    # The crash never took the rest of the sweep down with it.
    assert echo.status == "ok"


def test_python_exceptions_are_contained_not_retried():
    cells = [Cell(experiment="t:boom", runner="tests.exec.workers:boom",
                  seed=3)]
    for backend in (SerialBackend(), LocalPool(jobs=2)):
        (res,) = run(cells, backend)
        assert (res.status, res.attempts) == ("error", 1)
        assert "ValueError: deterministic failure for seed 3" in res.error


def test_progress_events_fire_in_hookbus_convention():
    cells = [Cell(experiment="t:echo", runner="tests.exec.workers:echo",
                  seed=s) for s in range(3)]
    hooks = HookBus()
    seen = []

    def record(channel):
        def fn(payload, **ctx):
            seen.append((channel, payload.get("cell_id")))
            return payload
        return hooks.subscribe(channel, fn)

    for channel in ("exec.sweep.begin", "exec.cell.start",
                    "exec.cell.done", "exec.sweep.end"):
        record(channel)
    run(cells, SerialBackend(), hooks=hooks)
    kinds = [k for k, _ in seen]
    assert kinds[0] == "exec.sweep.begin" and kinds[-1] == "exec.sweep.end"
    assert kinds.count("exec.cell.start") == 3
    assert kinds.count("exec.cell.done") == 3
