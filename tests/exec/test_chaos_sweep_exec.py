"""The executor against the real chaos workload: byte-identical fan-out.

This is the tier-1 smoke test the ISSUE demands: a 2-worker mini-sweep
over the stencil chaos workload whose merged output must be *byte
identical* to the serial reference — completion order, worker count,
and process boundaries must leave no trace in the results.
"""

import json

import pytest

from repro.chaos import FaultConfig
from repro.exec import (Cell, LocalPool, SerialBackend, SweepExecutor,
                        SweepSpec, fault_config_params)

CONFIG = FaultConfig(drop_rate=0.02, delay_rate=0.1, reorder_rate=0.05,
                     migrate_abort_rate=0.1, migrate_bounce_rate=0.05,
                     ckpt_error_rate=0.03, ckpt_corrupt_rate=0.03,
                     crash_rate=0.15, evac_rate=0.1)
SEEDS = range(4)


def stencil_spec():
    rates = fault_config_params(CONFIG)
    return SweepSpec("stencil-mini", [
        Cell(experiment="chaos:stencil",
             runner="repro.exec.runners:run_chaos_cell",
             params={"workload": "stencil", "config": rates}, seed=s)
        for s in SEEDS])


def payload_bytes(results):
    """The part of a sweep that lands in output files, as bytes."""
    assert all(r.ok for r in results), [r.error for r in results]
    return json.dumps([r.value for r in results], indent=2).encode()


def test_two_worker_mini_sweep_is_byte_identical_to_serial():
    serial = SweepExecutor(stencil_spec(), backend=SerialBackend()).run()
    pooled = SweepExecutor(stencil_spec(), backend=LocalPool(jobs=2)).run()
    assert payload_bytes(serial) == payload_bytes(pooled)
    # Fingerprints prove the chaos runs themselves (not just the rows)
    # were identical, fault schedule and all.
    assert [r.value["fingerprint"] for r in serial] == \
        [r.value["fingerprint"] for r in pooled]


def test_merge_orders_results_by_cell_id_not_completion():
    spec = stencil_spec()
    results = SweepExecutor(spec, backend=LocalPool(jobs=2)).run()
    assert [r.cell_id for r in results] == \
        [c.cell_id for c in spec.merged_order()]
    assert [r.value["seed"] for r in results] == list(SEEDS)


def test_jobs_must_be_positive():
    from repro.errors import ReproError
    from repro.exec import make_backend
    with pytest.raises(ReproError, match="--jobs"):
        make_backend(0)
    assert make_backend(1).jobs == 1
    assert make_backend(3).jobs == 3
