"""Concurrent ResultCache access: the write-rename race, for real.

Two kinds of multi-process pressure on one cache:

* writers hammering ``put`` on the *same* key from several processes at
  once (the service's dedupe window: identical submissions racing);
* readers spinning ``get`` throughout, asserting every observed hit is
  the complete, valid payload — never a torn or partial entry.

The payload is deliberately bulky so a non-atomic writer would be
caught: a plain ``open(path, "w")`` writer yields moments where the
file exists but holds half the JSON, and the readers here would see it.
"""

import multiprocessing
import os

from repro.exec import Cell, CellResult, ResultCache

ECHO = "tests.exec.workers:echo"

#: Bulky enough that a torn write is an observable window, small enough
#: to keep the test quick.
PAYLOAD = {"rows": [[i, i * i, f"row-{i}"] for i in range(400)]}


def the_cell():
    return Cell(experiment="t:race", runner=ECHO,
                params={"case": "concurrent"}, seed=7)


def writer_proc(root, rounds):
    cache = ResultCache(root)
    cell = the_cell()
    for _ in range(rounds):
        result = CellResult(cell_id=cell.cell_id, status="ok",
                            value=PAYLOAD)
        cache.put(cell, result)


def reader_proc(root, rounds, verdict_q):
    cache = ResultCache(root)
    cell = the_cell()
    hits = 0
    try:
        for _ in range(rounds):
            result = cache.get(cell)
            if result is None:
                continue                       # miss: entry not there yet
            hits += 1
            # A hit must be the complete payload — torn JSON would have
            # failed to parse (and shown up as a miss), but a *partial
            # valid* write or a stale temp file must never surface.
            assert result.status == "ok"
            assert result.value == PAYLOAD
            assert result.cached is True
        verdict_q.put(("ok", hits))
    except Exception as e:  # noqa: BLE001 - verdict crosses processes
        verdict_q.put(("fail", f"{type(e).__name__}: {e}"))


def test_parallel_put_get_same_key_never_tears(tmp_path):
    root = str(tmp_path)
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    verdict_q = ctx.Queue()
    writers = [ctx.Process(target=writer_proc, args=(root, 200))
               for _ in range(2)]
    readers = [ctx.Process(target=reader_proc, args=(root, 400, verdict_q))
               for _ in range(2)]
    for p in writers + readers:
        p.start()
    verdicts = [verdict_q.get(timeout=120) for _ in readers]
    for p in writers + readers:
        p.join(60)
        assert p.exitcode == 0
    for kind, detail in verdicts:
        assert kind == "ok", detail
    # Someone actually observed hits, or the race never happened.
    assert sum(hits for _k, hits in verdicts) > 0
    # Exactly one entry on disk; no leaked temp files from the races.
    cache = ResultCache(root)
    assert cache.stats() == {"entries": 1, "shards": 1}


def test_reader_mid_sweep_only_ever_sees_complete_entries(tmp_path):
    """A reader polling while a real sweep fills the cache (the serve
    restart window) sees each entry either absent or complete."""
    from repro.exec import SerialBackend, SweepExecutor, SweepSpec

    root = str(tmp_path)
    cells = [Cell(experiment="t:midsweep", runner=ECHO,
                  params={"k": 1}, seed=s) for s in range(6)]
    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    verdict_q = ctx.Queue()
    poller = ctx.Process(target=_poll_sweep_cells,
                         args=(root, [c.cache_key() for c in cells],
                               verdict_q))
    poller.start()
    cache = ResultCache(root)
    results = SweepExecutor(SweepSpec("mid", cells), SerialBackend(),
                            cache=cache).run()
    assert all(r.ok for r in results)
    kind, detail = verdict_q.get(timeout=120)
    poller.join(60)
    assert kind == "ok", detail
    assert cache.stats()["entries"] == 6


def _poll_sweep_cells(root, keys, verdict_q):
    """Spin-read raw entry files until all appear; every observed file
    must parse as complete JSON with a matching stored key."""
    import json

    seen = set()
    try:
        while len(seen) < len(keys):
            for key in keys:
                path = os.path.join(root, key[:2], key + ".json")
                try:
                    with open(path, encoding="utf-8") as fh:
                        data = json.load(fh)     # torn file -> ValueError
                except (OSError, ValueError) as e:
                    if isinstance(e, ValueError):
                        raise AssertionError(
                            f"torn entry observed at {path}: {e}")
                    continue                     # not written yet
                assert data["cache_key"] == key
                assert data["status"] == "ok"
                seen.add(key)
        verdict_q.put(("ok", len(seen)))
    except Exception as e:  # noqa: BLE001 - verdict crosses processes
        verdict_q.put(("fail", f"{type(e).__name__}: {e}"))
