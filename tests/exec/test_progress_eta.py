"""ProgressReporter ETA math under a fake clock.

Regression suite for the sub-millisecond-first-cell audit: the
``elapsed/done`` extrapolation used to return 0.0 when the first
completion landed within timer resolution (claiming the rest of the
sweep was free), went negative if the clock stepped backwards, and —
with ``_t0`` initialised to ``0.0`` instead of "unset" — produced a
gigantic ETA if a ``cell.done`` ever arrived without its
``sweep.begin``.  All three now render as "no ETA" (``None``).
"""

import io

from repro.exec import ProgressReporter
from repro.kernel import HookBus


class FakeClock:
    """A scripted monotonic clock: returns ``times`` in order."""

    def __init__(self, *times):
        self.times = list(times)

    def __call__(self):
        return self.times.pop(0) if len(self.times) > 1 else self.times[0]


def reporter(clock, total=4):
    bus = HookBus()
    rep = ProgressReporter(bus, stream=io.StringIO(), clock=clock)
    bus.filter("exec.sweep.begin", {"name": "eta", "cells": total,
                                    "cached": 0})
    return bus, rep


def done(bus, n=1):
    for i in range(n):
        bus.filter("exec.cell.start", {"cell_id": f"c/{i}"})
        bus.filter("exec.cell.done", {"cell_id": f"c/{i}", "status": "ok",
                                      "duration_s": 0.0, "attempts": 1,
                                      "cached": False})


def test_normal_extrapolation():
    bus, rep = reporter(FakeClock(100.0, 110.0))
    done(bus)
    assert rep._eta_s() == 30.0          # 10s for 1 of 4 => 30s left


def test_first_cell_within_timer_resolution_gives_no_eta():
    # begin and the ETA read see the same clock tick: elapsed == 0.
    bus, rep = reporter(FakeClock(100.0, 100.0))
    done(bus)
    assert rep._eta_s() is None


def test_backwards_clock_never_yields_negative_eta():
    bus, rep = reporter(FakeClock(100.0, 99.0))
    done(bus)
    eta = rep._eta_s()
    assert eta is None or eta >= 0.0
    assert eta is None                   # clamped, not "repaired"


def test_done_without_begin_gives_no_eta():
    bus = HookBus()
    rep = ProgressReporter(bus, stream=io.StringIO(),
                           clock=FakeClock(1e9))
    # A stray cell.done with no sweep.begin: _t0 must read as "unset",
    # not epoch (which used to extrapolate a billion-second ETA).
    rep.total = 4
    bus.filter("exec.cell.done", {"cell_id": "c/0", "status": "ok",
                                  "duration_s": 0.0, "attempts": 1,
                                  "cached": False})
    assert rep.done == 1
    assert rep._eta_s() is None


def test_no_eta_once_sweep_is_complete():
    bus, rep = reporter(FakeClock(0.0, 10.0), total=2)
    done(bus, n=2)
    assert rep._eta_s() is None


def test_eta_renders_into_the_progress_line():
    bus, rep = reporter(FakeClock(0.0, 10.0, 10.0))
    done(bus)
    assert "ETA 30.0s" in rep._line()
