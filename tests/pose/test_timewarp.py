"""Tests for the POSE-style Time-Warp engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pup import pup_register
from repro.errors import ReproError
from repro.pose import PoseEngine, Poser
from repro.sim import Cluster


@pup_register
class Recorder(Poser):
    """Appends (vt-tag, data) for every event; optionally forwards."""

    def __init__(self, forward_to=""):
        self.log = []
        self.forward_to = forward_to

    def pup(self, p):
        self.log = p.list_double(self.log)
        self.forward_to = p.str(self.forward_to)

    def on_note(self, data):
        self.log.append(float(data))
        if self.forward_to:
            return [(self.forward_to, "note", data, 1.0)]
        return []


def make_engine(n_pe=2, posers=("a", "b"), forward=None):
    cl = Cluster(n_pe)
    eng = PoseEngine(cl)
    for i, pid in enumerate(posers):
        eng.register(pid, Recorder(forward_to=(forward or {}).get(pid, "")),
                     i % n_pe)
    return cl, eng


# -- basic execution -----------------------------------------------------------

def test_in_order_no_rollbacks():
    cl, eng = make_engine()
    for vt in (1.0, 2.0, 3.0):
        eng.schedule("a", "note", vt, at=vt)
    stats = eng.run()
    assert eng.poser("a").log == [1.0, 2.0, 3.0]
    assert stats.rollbacks == 0
    assert stats.events_processed == 3


def test_straggler_triggers_rollback_and_correct_order():
    """An event behind the poser's clock forces rollback + re-execution;
    the final log is the sequential in-timestamp order anyway."""
    cl, eng = make_engine()
    eng.schedule("a", "note", 10.0, at=10.0)   # arrives first
    eng.schedule("a", "note", 5.0, at=5.0)     # straggler
    stats = eng.run()
    assert eng.poser("a").log == [5.0, 10.0]
    assert stats.rollbacks >= 1
    assert stats.events_rolled_back >= 1


def test_rollback_cascades_through_antimessages():
    """Rolling back a poser cancels the outputs it sent; a downstream
    poser that already processed them rolls back too."""
    cl, eng = make_engine(posers=("hub", "down"), forward={"hub": "down"})
    eng.schedule("hub", "note", 10.0, at=10.0)
    # Let the wrong future propagate all the way before the straggler.
    cl.run()
    assert eng.poser("down").log == [10.0]
    eng.schedule("hub", "note", 5.0, at=5.0)
    stats = eng.run()
    assert eng.poser("hub").log == [5.0, 10.0]
    assert eng.poser("down").log == [5.0, 10.0]
    assert stats.antimessages >= 1
    assert stats.rollbacks >= 2                # hub and down


def test_snapshot_restores_state_exactly():
    """Rollback restores the poser object byte-for-byte via PUP."""
    cl, eng = make_engine()
    eng.schedule("a", "note", 100.0, at=100.0)
    cl.run()
    wrong_future = eng.poser("a")
    assert wrong_future.log == [100.0]
    eng.schedule("a", "note", 1.0, at=1.0)
    eng.run()
    # The restored object is a rebuilt instance, not the mutated one.
    assert eng.poser("a") is not wrong_future
    assert eng.poser("a").log == [1.0, 100.0]


def test_gvt_and_stats():
    cl, eng = make_engine()
    eng.schedule("a", "note", 1.0, at=1.0)
    stats = eng.run()
    assert stats.gvt == float("inf")            # all work done
    assert stats.events_processed == 1


def test_zero_delay_rejected():
    @pup_register
    class Bad(Poser):
        def __init__(self):
            pass

        def pup(self, p):
            pass

        def on_go(self, data):
            return [("x", "go", None, 0.0)]

    cl = Cluster(1)
    eng = PoseEngine(cl)
    eng.register("x", Bad(), 0)
    eng.schedule("x", "go")
    with pytest.raises(ReproError, match="positive"):
        eng.run()


def test_unknown_poser_and_handler():
    cl, eng = make_engine()
    with pytest.raises(ReproError):
        eng.schedule("ghost", "note", 0)
    eng.schedule("a", "explode", 0)
    with pytest.raises(ReproError, match="on_explode"):
        eng.run()


def test_duplicate_registration_rejected():
    cl, eng = make_engine()
    with pytest.raises(ReproError):
        eng.register("a", Recorder(), 0)
    with pytest.raises(ReproError):
        eng.register("c", Recorder(), 9)


# -- the Time-Warp contract, property-tested -----------------------------------

@given(vts=st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                    max_size=12, unique=True),
       n_pe=st.integers(min_value=1, max_value=3))
@settings(max_examples=30, deadline=None)
def test_optimistic_equals_sequential(vts, n_pe):
    """Whatever the injection order (descending = maximum straggling), the
    final log equals the sequential in-timestamp-order execution."""
    cl, eng = make_engine(n_pe=n_pe, posers=("a",))
    for vt in sorted(vts, reverse=True):       # worst-case arrival order
        eng.schedule("a", "note", float(vt), at=float(vt))
    eng.run()
    assert eng.poser("a").log == sorted(float(v) for v in vts)


@given(vts=st.lists(st.integers(min_value=1, max_value=30), min_size=2,
                    max_size=8, unique=True))
@settings(max_examples=20, deadline=None)
def test_forwarding_chain_equals_sequential(vts):
    """With a downstream poser fed by forwards, both logs come out in
    timestamp order despite rollback cascades."""
    cl, eng = make_engine(n_pe=2, posers=("hub", "down"),
                          forward={"hub": "down"})
    for vt in sorted(vts, reverse=True):
        eng.schedule("hub", "note", float(vt), at=float(vt))
    eng.run()
    expected = sorted(float(v) for v in vts)
    assert eng.poser("hub").log == expected
    assert eng.poser("down").log == expected
