"""Tests for optimism throttling (the POSE 'grainsize' control)."""

from repro.core.pup import pup_register
from repro.pose import PoseEngine, Poser
from repro.sim import Cluster


@pup_register
class Chain(Poser):
    """Forwards a token along a chain of posers with known vt steps."""

    def __init__(self, nxt=""):
        self.seen = []
        self.nxt = nxt

    def pup(self, p):
        self.seen = p.list_double(self.seen)
        self.nxt = p.str(self.nxt)

    def on_tok(self, data):
        self.seen.append(float(data))
        if self.nxt:
            return [(self.nxt, "tok", data + 1.0, 1.0)]
        return []


def run_storm(throttle):
    """Many independent streams hitting one poser out of order."""
    cl = Cluster(2)
    eng = PoseEngine(cl, throttle_window=throttle)
    eng.register("sink", Chain(), 1)
    # Inject in reverse timestamp order: maximal straggling pressure.
    for vt in range(30, 0, -1):
        eng.schedule("sink", "tok", float(vt), at=float(vt))
    stats = eng.run()
    assert eng.poser("sink").seen == [float(v) for v in range(1, 31)]
    return eng, stats


def test_throttling_reduces_rollbacks():
    _, wild = run_storm(None)
    eng, tamed = run_storm(2.0)
    assert tamed.rollbacks < wild.rollbacks
    assert eng.deferrals > 0
    # Same committed result either way (checked inside run_storm).
    assert tamed.events_processed <= wild.events_processed


def test_zero_window_is_most_conservative():
    eng, stats = run_storm(0.0)
    assert eng.poser("sink").seen == [float(v) for v in range(1, 31)]


def test_throttled_chain_still_correct():
    cl = Cluster(3)
    eng = PoseEngine(cl, throttle_window=1.5)
    eng.register("a", Chain(nxt="b"), 0)
    eng.register("b", Chain(nxt="c"), 1)
    eng.register("c", Chain(), 2)
    for vt in (5.0, 1.0, 3.0):
        eng.schedule("a", "tok", vt, at=vt)
    eng.run()
    assert eng.poser("a").seen == [1.0, 3.0, 5.0]
    assert eng.poser("b").seen == [2.0, 4.0, 6.0]
    assert eng.poser("c").seen == [3.0, 5.0, 7.0]
