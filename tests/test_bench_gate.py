"""The perf-regression gate's tier-1 smoke.

Runs ``tools/bench_all.py --check``: tiny cell sizes through the real
pipeline (bench workers, sweep executor, baseline load, comparison
arithmetic) with no timing assertions and no baseline rewrite — wall
clock on a CI container proves nothing, so the full >20% gate stays an
operator command (see EXPERIMENTS.md).
"""

import json
import os
import subprocess
import sys

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
TOOL = os.path.join(ROOT, "tools", "bench_all.py")
BASELINE = os.path.join(ROOT, "BENCH_repro.json")


def test_bench_all_check_mode_passes():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    before = os.path.getmtime(BASELINE)
    proc = subprocess.run([sys.executable, TOOL, "--check"],
                          capture_output=True, text=True, env=env, cwd=ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "--check ok" in proc.stdout
    # Smoke mode never touches the checked-in baseline.
    assert os.path.getmtime(BASELINE) == before


def test_checked_in_baseline_is_complete():
    with open(BASELINE) as fh:
        doc = json.load(fh)
    assert doc["threshold"] == 1.20
    benches = doc["benches"]
    assert set(benches) == {"kernel_dispatch", "kernel_cancel",
                            "migration", "exec_overhead", "lint_flow",
                            "compiled_switch", "serve_dedupe",
                            "query_filter"}
    assert benches["kernel_dispatch"]["ns_per_event"] > 0
    assert benches["kernel_cancel"]["ns_per_event"] > 0
    assert benches["migration"]["ns_per_migration"] > 0
    assert benches["migration"]["migrations"] > 0
    assert benches["exec_overhead"]["ns_per_cell"] > 0
    assert benches["serve_dedupe"]["ns_per_cell"] > 0
    assert benches["serve_dedupe"]["cells"] == 256
    # A dedupe hit must stay cheaper than computing even a no-op cell
    # end to end, or the cache is pure overhead.
    assert (benches["serve_dedupe"]["ns_per_cell"]
            < benches["exec_overhead"]["ns_per_cell"] * 5)
    assert benches["lint_flow"]["ns_per_file"] > 0
    assert benches["lint_flow"]["files"] > 60
    assert benches["compiled_switch"]["ns_per_dispatch"] > 0
    assert benches["compiled_switch"]["dispatches"] > 0
    assert benches["query_filter"]["ns_per_entry"] > 0
    assert benches["query_filter"]["entries"] == 100_000
    # The synthetic workload is deterministic, so the match count is a
    # work-sanity pin, not a timing.
    assert benches["query_filter"]["matched"] == 13094


def test_fast_path_kernel_baselines_recorded():
    """The regenerated baseline must carry fast-path-era numbers.

    The PR-5 baseline measured the reference kernel at ~2588 ns/event
    dispatch and ~2034 ns/event cancel-drain; the fast-path rebuild
    gated a ≥5× improvement on both cells.  Asserting loose absolute
    ceilings (not the full 5×) keeps this a drift guard rather than a
    host-speed assertion: the >20% regression gate in bench_all.py can
    only grow a rewritten baseline slowly, and blowing past these
    ceilings would mean the fast path was lost, not that CI was busy.
    """
    with open(BASELINE) as fh:
        benches = json.load(fh)["benches"]
    dispatch = benches["kernel_dispatch"]
    cancel = benches["kernel_cancel"]
    assert dispatch["events"] == 20_000
    assert cancel["events"] == 20_000
    assert dispatch["ns_per_event"] < 1000, \
        "kernel_dispatch baseline regressed to pre-fast-path territory"
    assert cancel["ns_per_event"] < 800, \
        "kernel_cancel baseline regressed to pre-fast-path territory"
