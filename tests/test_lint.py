"""The migralint self-gate: the shipped tree must be migration-safe.

Runs the full analyzer over ``src/``, ``examples/``, and
``src/repro/workloads/`` and fails on any unsuppressed finding — making
the paper's migratability disciplines (PUP completeness, swap-global
privatization, no host state across yields, SDAG yield discipline,
isomalloc address hygiene) a permanent tier-1 gate for every PR.
"""

import os

from repro.analysis import analyze_paths
from repro.analysis.core import collect_files

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
GATE_PATHS = [
    os.path.join(ROOT, "src"),
    os.path.join(ROOT, "examples"),
    os.path.join(ROOT, "src", "repro", "workloads"),
]


def test_gate_covers_the_whole_tree():
    """Guard against path rot silently shrinking the gate."""
    files = collect_files(GATE_PATHS)
    assert len(files) > 60, files
    names = {os.path.basename(f) for f in files}
    assert {"pup.py", "swapglobal.py", "sdag.py", "stencil.py",
            "quickstart.py", "faults.py", "injector.py", "invariants.py",
            "harness.py", "runner.py",
            # the event kernel must stay inside the gate too
            "event.py", "refkernel.py",
            "pqueue.py", "hooks.py", "policy.py", "trace.py",
            "quiescence.py",
            # ... and the parallel sweep executor (EXC001's home turf)
            "spec.py", "pool.py", "cache.py", "executor.py", "progress.py",
            "runners.py",
            # ... and the observability layer (OBS001's home turf)
            "metrics.py", "collect.py", "report.py", "profile.py",
            "benches.py",
            # ... and the flows workload/compiler layer (FLW002's
            # contract surface: every body here must stay COMPILABLE)
            "compile.py", "compiled.py", "programs.py", "runtime.py",
            "hybrid.py", "scale.py",
            # ... and the sweep service (host-side, but its protocol /
            # journal / service modules still obey the worker-purity and
            # structure rules)
            "service.py", "journal.py", "protocol.py", "client.py",
            # ... and the trace-query engine (one trace-reading surface:
            # the obs report is rebased on these engines)
            "lexer.py", "expr.py", "parser.py", "engines.py",
            "replay.py"} <= names


def test_shipped_tree_is_lint_clean():
    findings = analyze_paths(GATE_PATHS)
    active = [f for f in findings if not f.suppressed]
    assert not active, "migralint gate failed:\n" + "\n".join(
        f.render() for f in active)


def test_no_heapq_outside_kernel():
    """The acceptance grep, as a test: ``git grep heapq -- src/repro``
    must only hit ``src/repro/kernel/`` (MinHeap is the one sanctioned
    heap; KRN001 enforces the AST-level version of this)."""
    src_repro = os.path.join(ROOT, "src", "repro")
    offenders = []
    for path in collect_files([src_repro]):
        rel = os.path.relpath(path, src_repro).replace(os.sep, "/")
        # Mirror the grep filter: the kernel package plus the lint rule
        # that polices it (krn001_kernel_bypass) are the only mentions.
        if "kernel" in rel:
            continue
        with open(path, encoding="utf-8") as fh:
            if "heapq" in fh.read():
                offenders.append(rel)
    assert not offenders, offenders


def test_suppressions_stay_rare():
    """Suppressions are an escape hatch, not a lifestyle: keep them few
    and force a conscious bump here when one is added.

    Current budget: 3 historical (MIG002/OBS001) + 1 FLW002 on the
    runtime body wrapper + 13 DET001 on host-side diagnostics (sweep
    wall-clock timings, worker shutdown grace, bench/profiler timers;
    two former ProgressReporter sites retired when its clock became
    injectable) — each carries a justification comment at the site.
    """
    findings = analyze_paths(GATE_PATHS)
    suppressed = [f for f in findings if f.suppressed]
    assert len(suppressed) <= 19, "\n".join(f.render() for f in suppressed)


def test_flow_rules_are_in_the_gate():
    """The interprocedural rules must stay registered — a silently
    dropped import would shrink the gate without failing it."""
    from repro.analysis import all_rules
    ids = {r.id for r in all_rules()}
    assert {"FLW001", "FLW002", "FLW003", "DET001"} <= ids
