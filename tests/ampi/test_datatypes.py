"""Tests for AMPI operators and the runtime summary."""

import numpy as np
import pytest

from repro.ampi import AmpiRuntime, OPS
from repro.ampi.datatypes import apply_op
from repro.balance import GreedyLB
from repro.errors import AmpiError


def test_apply_op_scalars():
    assert apply_op("sum", [1, 2, 3]) == 6
    assert apply_op("prod", [2, 3]) == 6
    assert apply_op("min", [5, 2, 9]) == 2
    assert apply_op("max", [5, 2, 9]) == 9
    assert apply_op("land", [1, 1]) is True
    assert apply_op("lor", [0, 0]) is False


def test_apply_op_numpy_elementwise():
    a, b = np.array([1.0, 5.0]), np.array([3.0, 2.0])
    np.testing.assert_array_equal(apply_op("min", [a, b]), [1.0, 2.0])
    np.testing.assert_array_equal(apply_op("max", [a, b]), [3.0, 5.0])
    np.testing.assert_array_equal(apply_op("sum", [a, b]), [4.0, 7.0])


def test_apply_op_errors():
    with pytest.raises(AmpiError):
        apply_op("median", [1])
    with pytest.raises(AmpiError):
        apply_op("sum", [])


def test_ops_table():
    assert {"sum", "prod", "min", "max", "land", "lor"} == set(OPS)


def test_runtime_summary_mentions_key_facts():
    def main(mpi):
        mpi.charge(1e6 if mpi.rank % 2 == 0 else 1e4)
        yield from mpi.migrate()
        yield from mpi.allreduce(1)

    rt = AmpiRuntime(2, 6, main, strategy=GreedyLB())
    rt.run()
    text = rt.summary()
    assert "6 ranks on 2 processors" in text
    assert "finished ranks   : 6/6" in text
    assert "migrations" in text
    assert "GreedyLB" in text
    assert "\\n" not in text              # real newlines, not escapes


def test_binomial_collectives_message_counts():
    """Binomial bcast: the root sends log2(P), not P-1, messages."""
    def main(mpi):
        yield from mpi.bcast("x" * 1000, root=0)

    rt = AmpiRuntime(8, 8, main)
    rt.run()
    # Rank r sends to r+2^k: rank 0 sends exactly ceil(log2(8)) = 3.
    assert rt.cluster[0].messages_sent == 3
    total = sum(p.messages_sent for p in rt.cluster.processors)
    assert total == 7                     # P-1 transfers over the whole tree


def test_rank_profile_rows():
    from repro.ampi import AmpiRuntime
    from repro.balance import GreedyLB

    def main(mpi):
        mpi.charge(1e6 if mpi.rank in (0, 2) else 1e4)
        yield from mpi.migrate()

    rt = AmpiRuntime(2, 4, main, strategy=GreedyLB())
    rt.run()
    rows = rt.rank_profile()
    assert len(rows) == 4
    assert [r[0] for r in rows] == [0, 1, 2, 3]
    # Heavy ranks show ~1 ms of work; someone migrated.
    assert rows[0][2] > 0.9
    assert sum(r[4] for r in rows) == rt.migrator.migrations_completed
    assert all(rows[i][1] == rt.rank_pe(i) for i in range(4))
