"""Tests for AMPI coordinated checkpointing and failure recovery."""

import pytest

from repro.ampi import AmpiRuntime
from repro.core.thread import ThreadState
from repro.errors import AmpiError


def test_checkpoint_barrier_writes_all_ranks():
    def main(mpi):
        th = mpi.thread
        cell = th.malloc(8)
        th.write_word(cell, 1000 + mpi.rank)
        yield from mpi.checkpoint()
        yield from mpi.barrier()

    rt = AmpiRuntime(2, 4, main)
    rt.run()
    assert set(rt.last_checkpoint) == {0, 1, 2, 3}
    assert rt.checkpointer.checkpoints_taken == 4
    assert rt.checkpointer.bytes_written > 0


def test_checkpoint_charges_disk_time():
    def main(mpi):
        mpi.thread.malloc(16 * 1024)
        yield from mpi.checkpoint()

    rt = AmpiRuntime(1, 2, main)
    before = rt.cluster[0].now
    rt.run()
    # Two 16K+ images through a ~100 MB/s disk with 8 ms seeks.
    assert rt.cluster[0].now - before > 16_000_000


def test_failure_at_checkpoint_recovers_state():
    """Fail one processor inside the checkpoint window; recover its ranks
    from the fresh images and finish the computation correctly."""
    out = {}

    def main(mpi):
        th = mpi.thread
        cell = th.malloc(8)
        th.write_word(cell, 7000 + mpi.rank)
        yield from mpi.checkpoint()
        out[mpi.rank] = (th.read_word(cell), mpi.my_pe)

    rt = AmpiRuntime(2, 4, main)
    failed = {}

    def inject_failure():
        # Processor 0 "fails": its ranks (0 and 2) lose all local state.
        sched = rt.schedulers[0]
        for rank in (0, 2):
            thread = rt.rank_thread[rank]
            sched.remove(thread)
            sched.stack_manager.evacuate(thread.stack)
            failed[rank] = True
        # Recover both onto processor 1 from the just-written images.
        rt.recover_rank(0, dst_pe=1)
        rt.recover_rank(2, dst_pe=1)
        rt.on_checkpoint = None          # only fail once

    rt.on_checkpoint = inject_failure
    rt.run()
    assert failed == {0: True, 2: True}
    # All four ranks completed; recovered ranks kept their heap state and
    # now run on the surviving processor.
    assert out[0] == (7000, 1)
    assert out[2] == (7002, 1)
    assert out[1][0] == 7001
    assert out[3][0] == 7003


def test_recover_without_checkpoint_rejected():
    def main(mpi):
        yield from mpi.barrier()

    rt = AmpiRuntime(2, 2, main)
    rt.run()
    with pytest.raises(AmpiError, match="no checkpoint"):
        rt.recover_rank(0, 1)


def test_repeated_checkpoints_keep_latest():
    def main(mpi):
        for _ in range(3):
            mpi.charge(1000.0)
            yield from mpi.checkpoint()

    rt = AmpiRuntime(1, 2, main)
    rt.run()
    assert rt.checkpointer.checkpoints_taken == 6
    # last_checkpoint points at the newest epoch for each rank.
    assert all(key.startswith("ampi-r") for key in rt.last_checkpoint.values())


def test_checkpoint_then_migrate_compose():
    """Checkpoint and LB-migrate barriers in the same program."""
    def main(mpi):
        mpi.charge(10_000.0 * (mpi.rank + 1))
        yield from mpi.checkpoint()
        yield from mpi.migrate()
        yield from mpi.barrier()

    rt = AmpiRuntime(2, 4, main)
    rt.run()
    assert rt.done
    assert len(rt.last_checkpoint) == 4
    assert len(rt.reports) == 1
