"""Tests for MPI_Migrate and load balancing through the AMPI runtime."""

import pytest

from repro.ampi import AmpiRuntime
from repro.balance import GreedyLB, NullLB, RandomLB, RefineLB, RotateLB
from repro.balance.instrument import LBDatabase
from repro.balance.manager import LBManager


def test_migrate_collective_rebalances_uneven_load():
    """Ranks with wildly uneven work end up spread by GreedyLB."""
    placements = {}

    def main(mpi):
        # Ranks 0 and 2 are heavy and both start on PE 0 (round-robin over
        # 2 PEs), so PE 0 is overloaded until the migrate point.
        work = 1_000_000.0 if mpi.rank in (0, 2) else 10_000.0
        mpi.charge(work)
        yield from mpi.migrate()
        placements[mpi.rank] = mpi.my_pe
        yield from mpi.barrier()

    rt = AmpiRuntime(2, 8, main, strategy=GreedyLB(),
                     slot_bytes=128 * 1024, stack_bytes=8 * 1024)
    rt.run()
    assert len(rt.reports) == 1
    report = rt.reports[0]
    assert report.imbalance_before > 1.5
    assert report.migrations > 0
    # GreedyLB must split the two heavy ranks across processors.
    assert placements[0] != placements[2]
    assert report.imbalance_after < report.imbalance_before


def test_nulllb_never_migrates():
    def main(mpi):
        mpi.charge(1000.0 * (mpi.rank + 1))
        yield from mpi.migrate()

    rt = AmpiRuntime(2, 6, main, strategy=NullLB())
    rt.run()
    assert rt.reports[0].migrations == 0
    assert rt.pe_of_ranks() == [r % 2 for r in range(6)]


def test_rank_messaging_works_after_migration():
    """Point-to-point continues transparently across a migration."""
    out = {}

    def main(mpi):
        mpi.charge(1_000_000.0 if mpi.rank == 0 else 1_000.0)
        yield from mpi.migrate()
        # Exchange messages after everyone potentially moved.
        peer = (mpi.rank + 1) % mpi.size
        mpi.send(peer, ("hello", mpi.rank))
        src = (mpi.rank - 1) % mpi.size
        out[mpi.rank] = yield from mpi.recv(source=src)

    rt = AmpiRuntime(3, 6, main, strategy=GreedyLB())
    rt.run()
    for r in range(6):
        assert out[r] == ("hello", (r - 1) % 6)


def test_multiple_migrate_rounds():
    rounds = []

    def main(mpi):
        for it in range(3):
            mpi.charge(10_000.0 * (1 + (mpi.rank + it) % 4))
            yield from mpi.migrate()
        rounds.append(mpi.rank)

    rt = AmpiRuntime(2, 8, main, strategy=RefineLB())
    rt.run()
    assert len(rt.reports) == 3
    assert sorted(rounds) == list(range(8))


def test_migration_moves_thread_state():
    """A rank's migratable heap data survives LB-driven migration."""
    out = {}

    def main(mpi):
        th = mpi.thread
        cell = th.malloc(8)
        th.write_word(cell, 4242 + mpi.rank)
        mpi.charge(1_000_000.0 if mpi.rank % 4 == 0 else 500.0)
        yield from mpi.migrate()
        out[mpi.rank] = th.read_word(cell)

    rt = AmpiRuntime(2, 8, main, strategy=GreedyLB())
    rt.run()
    assert out == {r: 4242 + r for r in range(8)}
    assert rt.migrator.migrations_completed > 0


def test_lb_makespan_improves_with_greedy():
    """The Figure 12 effect in miniature: same program, LB vs no LB."""
    def make_main():
        def main(mpi):
            for _ in range(4):
                # All heavy work piles onto even ranks -> PE 0 under
                # round-robin placement on 2 PEs.
                heavy = mpi.rank % 2 == 0
                mpi.charge(2_000_000.0 if heavy else 50_000.0)
                yield from mpi.migrate()
        return main

    rt_no = AmpiRuntime(2, 8, make_main(), strategy=NullLB())
    rt_no.run()
    rt_lb = AmpiRuntime(2, 8, make_main(), strategy=GreedyLB())
    rt_lb.run()
    assert rt_lb.makespan_ns < rt_no.makespan_ns


# -- strategy unit tests ------------------------------------------------------

def test_greedy_lb_balances_perfectly_divisible():
    loads = {i: 10.0 for i in range(8)}
    out = GreedyLB().map_objects(loads, {i: 0 for i in range(8)}, 4)
    per_pe = [sum(loads[o] for o, p in out.items() if p == pe)
              for pe in range(4)]
    assert per_pe == [20.0] * 4


def test_greedy_lb_lpt_quality():
    loads = {"a": 7.0, "b": 5.0, "c": 4.0, "d": 4.0, "e": 2.0}
    out = GreedyLB().map_objects(loads, {}, 2)
    per_pe = [sum(loads[o] for o, p in out.items() if p == pe)
              for pe in range(2)]
    assert max(per_pe) == 11.0            # LPT optimum for this instance


def test_refine_lb_moves_few_objects():
    loads = {i: 1.0 for i in range(16)}
    loads[0] = 8.0
    current = {i: i % 4 for i in range(16)}
    out = RefineLB(tolerance=1.3).map_objects(loads, current, 4)
    moves = sum(1 for o in loads if out[o] != current[o])
    greedy_moves = sum(
        1 for o in loads
        if GreedyLB().map_objects(loads, current, 4)[o] != current[o])
    assert moves <= greedy_moves
    # Refine improved the max load.
    def maxload(placement):
        per = [0.0] * 4
        for o, p in placement.items():
            per[p] += loads[o]
        return max(per)
    assert maxload(out) < maxload(current)


def test_rotate_lb():
    out = RotateLB().map_objects({0: 1.0, 1: 1.0}, {0: 0, 1: 3}, 4)
    assert out == {0: 1, 1: 0}


def test_random_lb_deterministic():
    loads = {i: 1.0 for i in range(10)}
    a = RandomLB(seed=7).map_objects(loads, {}, 4)
    b = RandomLB(seed=7).map_objects(loads, {}, 4)
    assert a == b
    assert all(0 <= p < 4 for p in a.values())


def test_random_lb_successive_rebalances_differ():
    """Regression: RandomLB used to re-seed ``random.Random(seed)`` on
    every call, so every rebalance after the first produced the identical
    placement and migrated nothing — a "random" balancer that went inert
    after one use."""
    loads = {i: 1.0 for i in range(16)}
    lb = RandomLB(seed=7)
    first = lb.map_objects(loads, {}, 4)
    second = lb.map_objects(loads, first, 4)
    assert first != second
    # Run-level reproducibility survives: a fresh instance replays the
    # same placement *sequence*, draw for draw.
    replay = RandomLB(seed=7)
    assert replay.map_objects(loads, {}, 4) == first
    assert replay.map_objects(loads, first, 4) == second


def test_lb_manager_rejects_incomplete_strategy():
    class Broken(GreedyLB):
        def map_objects(self, loads, current, npes):
            out = super().map_objects(loads, current, npes)
            out.popitem()
            return out

    db = LBDatabase(2)
    db.register("x", 0)
    db.register("y", 1)
    db.record("x", 5.0)
    db.record("y", 5.0)
    mgr = LBManager(db, Broken(), lambda o, p: None)
    with pytest.raises(ValueError):
        mgr.rebalance()


def test_lb_database_accounting():
    db = LBDatabase(2)
    db.register("a", 0)
    db.register("b", 0)
    db.register("c", 1)
    db.record("a", 10.0)
    db.record("b", 30.0)
    db.record("c", 20.0)
    assert db.pe_loads() == [40.0, 20.0]
    assert db.imbalance() == pytest.approx(40.0 / 30.0)
    db.moved("b", 1)
    assert db.pe_loads() == [10.0, 50.0]
    db.reset_loads()
    assert db.pe_loads() == [0.0, 0.0]
    assert db.epoch == 1
