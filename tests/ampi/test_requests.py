"""Tests for non-blocking AMPI operations (isend/irecv/wait*)."""

import pytest

from repro.ampi import AmpiRuntime
from repro.errors import AmpiError


def run_world(main, num_procs=2, num_ranks=2, **kw):
    rt = AmpiRuntime(num_procs, num_ranks, main, **kw)
    rt.run()
    return rt


def test_isend_completes_immediately():
    out = {}

    def main(mpi):
        if mpi.rank == 0:
            req = mpi.isend(1, "hello")
            out["done"] = mpi.test(req)
            yield from mpi.wait(req)     # trivially complete
        else:
            out["got"] = yield from mpi.recv(source=0)

    run_world(main)
    assert out == {"done": True, "got": "hello"}


def test_irecv_wait_roundtrip():
    out = {}

    def main(mpi):
        if mpi.rank == 1:
            req = mpi.irecv(source=0, tag="x")
            out["early"] = mpi.test(req)
            data = yield from mpi.wait(req)
            out["data"] = data
            out["late"] = mpi.test(req)
        else:
            yield from mpi.yield_()       # let the irecv post first
            mpi.send(1, 42, tag="x")

    run_world(main, num_procs=1)
    assert out == {"early": False, "data": 42, "late": True}


def test_posted_receive_matches_before_unexpected_queue():
    """MPI matching rule: a posted irecv wins over a later blocking recv."""
    out = {}

    def main(mpi):
        if mpi.rank == 1:
            req = mpi.irecv(source=0, tag="m")
            yield from mpi.yield_()
            # The message should have completed the posted request, NOT
            # be sitting in the unexpected queue.
            out["probe"] = mpi.iprobe(source=0, tag="m")
            out["req_done"] = mpi.test(req)
            out["data"] = req.data
        else:
            mpi.send(1, "payload", tag="m")
            yield from mpi.yield_()

    run_world(main, num_procs=1)
    assert out == {"probe": False, "req_done": True, "data": "payload"}


def test_irecv_matches_existing_unexpected_message():
    out = {}

    def main(mpi):
        if mpi.rank == 1:
            yield from mpi.yield_()        # message arrives first
            yield from mpi.yield_()
            req = mpi.irecv(source=0)
            out["immediate"] = mpi.test(req)
            out["data"] = yield from mpi.wait(req)
        else:
            mpi.send(1, 7)
            yield from mpi.yield_()

    run_world(main, num_procs=1)
    assert out == {"immediate": True, "data": 7}


def test_waitall():
    out = {}

    def main(mpi):
        if mpi.rank == 0:
            reqs = [mpi.irecv(source=1, tag=i) for i in range(4)]
            out["all"] = yield from mpi.waitall(reqs)
        else:
            for i in reversed(range(4)):   # send out of order
                mpi.send(0, i * 10, tag=i)
            yield from mpi.yield_()

    run_world(main)
    assert out["all"] == [0, 10, 20, 30]   # in posting order


def test_waitany():
    out = {}

    def main2(mpi):
        if mpi.rank == 0:
            reqs = [mpi.irecv(source=1, tag="never"),
                    mpi.irecv(source=1, tag="soon")]
            idx, data = yield from mpi.waitany(reqs)
            out["first"] = (idx, data)
            mpi.send(1, "go", tag="done")
            out["rest"] = yield from mpi.wait(reqs[0])
        else:
            mpi.send(0, "fast", tag="soon")
            yield from mpi.recv(source=0, tag="done")
            mpi.send(0, "slow", tag="never")

    run_world(main2)
    assert out["first"] == (1, "fast")
    assert out["rest"] == "slow"


def test_waitany_empty_rejected():
    boom = {}

    def main(mpi):
        try:
            yield from mpi.waitany([])
        except AmpiError as e:
            boom["msg"] = str(e)

    run_world(main, num_ranks=1, num_procs=1)
    assert "no requests" in boom["msg"]


def test_request_data_before_completion_rejected():
    boom = {}

    def main(mpi):
        if mpi.rank == 0:
            req = mpi.irecv(source=1)
            try:
                req.data
            except AmpiError as e:
                boom["msg"] = str(e)
            yield from mpi.wait(req)
        else:
            yield from mpi.yield_()
            mpi.send(0, 1)

    run_world(main, num_procs=1)
    assert "not complete" in boom["msg"]


def test_overlapping_computation_and_communication():
    """The non-blocking idiom: post, compute, then wait."""
    out = {}

    def main(mpi):
        peer = 1 - mpi.rank
        req = mpi.irecv(source=peer, tag="halo")
        mpi.send(peer, f"halo-from-{mpi.rank}", tag="halo")
        mpi.charge(100_000)                   # compute while in flight
        out[mpi.rank] = yield from mpi.wait(req)

    run_world(main)
    assert out == {0: "halo-from-1", 1: "halo-from-0"}


def test_deadlock_diagnostics_mention_requests():
    def main(mpi):
        req = mpi.irecv(source=mpi.rank, tag="never")  # self, never sent
        yield from mpi.wait(req)

    with pytest.raises(AmpiError, match="waiting on requests"):
        run_world(main, num_ranks=1, num_procs=1)
