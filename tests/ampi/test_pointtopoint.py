"""Tests for AMPI point-to-point messaging."""

import numpy as np
import pytest

from repro.ampi import ANY_SOURCE, AmpiRuntime, wire_size
from repro.errors import AmpiError


def run_world(main, num_procs=2, num_ranks=4, **kw):
    rt = AmpiRuntime(num_procs, num_ranks, main, **kw)
    rt.run()
    return rt


def test_send_recv_pair():
    out = {}

    def main(mpi):
        if mpi.rank == 0:
            mpi.send(1, {"a": 7, "b": 3.14}, tag=11)
        elif mpi.rank == 1:
            out["data"] = yield from mpi.recv(source=0, tag=11)

    run_world(main, num_ranks=2)
    assert out["data"] == {"a": 7, "b": 3.14}


def test_recv_blocks_until_send():
    order = []

    def main(mpi):
        if mpi.rank == 0:
            order.append("r0-before-recv")
            data = yield from mpi.recv(source=1)
            order.append(("r0-got", data))
        else:
            yield from mpi.yield_()          # let rank 0 block first
            order.append("r1-sending")
            mpi.send(0, 99)

    run_world(main, num_procs=1, num_ranks=2)
    assert order == ["r0-before-recv", "r1-sending", ("r0-got", 99)]


def test_any_source_and_tags():
    got = []

    def main(mpi):
        if mpi.rank == 0:
            for _ in range(3):
                msg = yield from mpi.recv_msg(source=ANY_SOURCE, tag="work")
                got.append((msg.src, msg.data))
        else:
            mpi.send(0, mpi.rank * 10, tag="work")

    run_world(main, num_ranks=4)
    assert sorted(got) == [(1, 10), (2, 20), (3, 30)]


def test_tag_selectivity():
    out = {}

    def main(mpi):
        if mpi.rank == 0:
            mpi.send(1, "wrong", tag="b")
            mpi.send(1, "right", tag="a")
        else:
            out["first"] = yield from mpi.recv(source=0, tag="a")
            out["second"] = yield from mpi.recv(source=0, tag="b")

    run_world(main, num_ranks=2)
    assert out == {"first": "right", "second": "wrong"}


def test_fifo_per_pair_same_tag():
    out = []

    def main(mpi):
        if mpi.rank == 0:
            for i in range(5):
                mpi.send(1, i, tag="seq")
        else:
            for _ in range(5):
                out.append((yield from mpi.recv(source=0, tag="seq")))

    run_world(main, num_ranks=2)
    assert out == [0, 1, 2, 3, 4]


def test_numpy_payloads():
    out = {}

    def main(mpi):
        if mpi.rank == 0:
            mpi.send(1, np.arange(100, dtype=np.float64))
        else:
            out["arr"] = yield from mpi.recv(source=0)

    run_world(main, num_ranks=2)
    np.testing.assert_array_equal(out["arr"], np.arange(100.0))


def test_wire_size_drives_network_bytes():
    def main(mpi):
        if mpi.rank == 0:
            mpi.send(1, np.zeros(1000, dtype=np.float64))   # 8000 B + header
        elif mpi.rank == 1:
            yield from mpi.recv(source=0)

    rt = run_world(main, num_procs=2, num_ranks=2)
    assert rt.cluster[0].bytes_sent >= 8000


def test_same_pe_messages_skip_network():
    def main(mpi):
        if mpi.rank == 0:
            mpi.send(2, "local")          # ranks 0 and 2 share PE 0
        elif mpi.rank == 2:
            yield from mpi.recv(source=0)

    rt = run_world(main, num_procs=2, num_ranks=4)
    assert rt.cluster[0].messages_sent == 0


def test_sendrecv():
    out = {}

    def main(mpi):
        peer = 1 - mpi.rank
        got = yield from mpi.sendrecv(peer, f"from{mpi.rank}", source=peer)
        out[mpi.rank] = got

    run_world(main, num_ranks=2)
    assert out == {0: "from1", 1: "from0"}


def test_iprobe():
    out = {}

    def main(mpi):
        if mpi.rank == 0:
            out["before"] = mpi.iprobe(source=1)
            yield from mpi.recv(source=1)     # wait for it to exist
            out["after_consumed"] = mpi.iprobe(source=1)
        else:
            mpi.send(0, "x")

    run_world(main, num_procs=1, num_ranks=2)
    assert out == {"before": False, "after_consumed": False}


def test_send_bad_rank():
    def main(mpi):
        if mpi.rank == 0:
            mpi.send(99, "x")
        yield from mpi.yield_()

    with pytest.raises(AmpiError):
        run_world(main, num_ranks=2)


def test_deadlock_detected_with_diagnostics():
    def main(mpi):
        yield from mpi.recv(source=0, tag="never")

    with pytest.raises(AmpiError) as e:
        run_world(main, num_ranks=2)
    assert "deadlock" in str(e.value)
    assert "tag=never" in str(e.value)


def test_wire_size_estimates():
    assert wire_size(np.zeros(10, dtype=np.int64)) == 80 + 64
    assert wire_size(b"abc") == 35
    assert wire_size("abc") == 35
    assert wire_size(5) == 32
    assert wire_size([1, 2]) == 16 + 64
    assert wire_size({"k": 1}) > 32
    assert wire_size(None) == 16


def test_many_ranks_on_few_processors():
    """Processor virtualization: 32 ranks on 2 processors all complete."""
    counters = []

    def main(mpi):
        total = yield from mpi.allreduce(1, op="sum")
        counters.append(total)

    run_world(main, num_procs=2, num_ranks=32, slot_bytes=128 * 1024,
              stack_bytes=8 * 1024)
    assert counters == [32] * 32


def test_runtime_rejects_bad_configs():
    from repro.ampi import AmpiRuntime

    def main(mpi):
        yield "yield"

    with pytest.raises(AmpiError):
        AmpiRuntime(2, 0, main)
    with pytest.raises(AmpiError):
        AmpiRuntime(2, 2, main, technique="greenlets")
    with pytest.raises(AmpiError):
        AmpiRuntime(2, 2, main, placement=lambda r: 5)
