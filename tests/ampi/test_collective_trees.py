"""Property tests for the binomial-tree collectives.

The tree algorithms must agree with the obvious reference for every world
size (especially non-powers-of-two) and every root.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ampi import AmpiRuntime


@given(size=st.integers(min_value=1, max_value=13),
       root=st.integers(min_value=0, max_value=12))
@settings(max_examples=25, deadline=None)
def test_bcast_any_size_any_root(size, root):
    root %= size
    out = {}

    def main(mpi):
        data = {"origin": root} if mpi.rank == root else None
        out[mpi.rank] = (yield from mpi.bcast(data, root=root))

    AmpiRuntime(2, size, main, slot_bytes=64 * 1024,
                stack_bytes=8 * 1024).run()
    assert out == {r: {"origin": root} for r in range(size)}


@given(size=st.integers(min_value=1, max_value=13),
       root=st.integers(min_value=0, max_value=12))
@settings(max_examples=25, deadline=None)
def test_reduce_any_size_any_root(size, root):
    root %= size
    out = {}

    def main(mpi):
        out[mpi.rank] = (yield from mpi.reduce(mpi.rank + 1, op="sum",
                                               root=root))

    AmpiRuntime(2, size, main, slot_bytes=64 * 1024,
                stack_bytes=8 * 1024).run()
    assert out[root] == size * (size + 1) // 2
    assert all(out[r] is None for r in range(size) if r != root)


@given(size=st.integers(min_value=1, max_value=11))
@settings(max_examples=15, deadline=None)
def test_allreduce_and_barrier_any_size(size):
    out = {}

    def main(mpi):
        yield from mpi.barrier()
        out[mpi.rank] = (yield from mpi.allreduce(2 ** mpi.rank, op="sum"))
        yield from mpi.barrier()

    AmpiRuntime(3, size, main, slot_bytes=64 * 1024,
                stack_bytes=8 * 1024).run()
    assert all(v == 2 ** size - 1 for v in out.values())


def test_reduce_fold_order_deterministic():
    """Two identical runs reduce float values to bit-identical results."""
    def make_main(out):
        def main(mpi):
            out[mpi.rank] = (yield from mpi.reduce(0.1 * (mpi.rank + 1),
                                                   op="sum", root=0))
        return main

    a, b = {}, {}
    AmpiRuntime(2, 7, make_main(a)).run()
    AmpiRuntime(2, 7, make_main(b)).run()
    assert a[0] == b[0]
