"""Tests for communicators and MPI_Comm_split."""

import pytest

from repro.ampi import AmpiRuntime
from repro.errors import AmpiError


def run_world(main, num_procs=2, num_ranks=8, **kw):
    rt = AmpiRuntime(num_procs, num_ranks, main, **kw)
    rt.run()
    return rt


def test_world_communicator_identity():
    out = {}

    def main(mpi):
        w = mpi.world
        out[mpi.rank] = (w.rank, w.size, w.members)
        yield from mpi.barrier()

    run_world(main, num_ranks=4)
    for r in range(4):
        assert out[r] == (r, 4, [0, 1, 2, 3])


def test_split_even_odd():
    out = {}

    def main(mpi):
        sub = yield from mpi.comm_split(color=mpi.rank % 2)
        out[mpi.rank] = (sub.rank, sub.size, tuple(sub.members))

    run_world(main, num_ranks=8)
    for r in range(8):
        local, size, members = out[r]
        assert size == 4
        assert members == tuple(range(r % 2, 8, 2))
        assert members[local] == r


def test_split_key_reorders():
    out = {}

    def main(mpi):
        # Reverse ordering within the single color group.
        sub = yield from mpi.comm_split(color=0, key=-mpi.rank)
        out[mpi.rank] = (sub.rank, tuple(sub.members))

    run_world(main, num_ranks=4)
    # Members sorted by key: rank 3 first.
    assert all(m == (3, 2, 1, 0) for _, m in out.values())
    assert out[3][0] == 0
    assert out[0][0] == 3


def test_split_undefined_color():
    out = {}

    def main(mpi):
        color = 0 if mpi.rank < 2 else None
        sub = yield from mpi.comm_split(color)
        out[mpi.rank] = None if sub is None else tuple(sub.members)

    run_world(main, num_ranks=4)
    assert out[0] == out[1] == (0, 1)
    assert out[2] is None and out[3] is None


def test_subcomm_collectives_are_scoped():
    """Reductions on different sub-communicators do not cross-talk."""
    out = {}

    def main(mpi):
        sub = yield from mpi.comm_split(color=mpi.rank % 2)
        total = yield from sub.allreduce(mpi.rank, op="sum")
        out[mpi.rank] = total

    run_world(main, num_ranks=8)
    evens = sum(r for r in range(8) if r % 2 == 0)
    odds = sum(r for r in range(8) if r % 2 == 1)
    for r in range(8):
        assert out[r] == (evens if r % 2 == 0 else odds)


def test_subcomm_barrier_and_bcast():
    out = {}

    def main(mpi):
        sub = yield from mpi.comm_split(color=mpi.rank // 4)
        data = f"group{mpi.rank // 4}" if sub.rank == 0 else None
        data = yield from sub.bcast(data, root=0)
        yield from sub.barrier()
        out[mpi.rank] = data

    run_world(main, num_ranks=8)
    for r in range(8):
        assert out[r] == f"group{r // 4}"


def test_subcomm_gather_allgather():
    out = {}

    def main(mpi):
        sub = yield from mpi.comm_split(color=mpi.rank % 2)
        g = yield from sub.gather(mpi.rank * 2, root=0)
        ag = yield from sub.allgather(mpi.rank)
        out[mpi.rank] = (g, ag)

    run_world(main, num_ranks=6)
    for r in range(6):
        g, ag = out[r]
        group = list(range(r % 2, 6, 2))
        assert ag == group
        if r == group[0]:
            assert g == [x * 2 for x in group]
        else:
            assert g is None


def test_subcomm_point_to_point_local_ranks():
    out = {}

    def main(mpi):
        sub = yield from mpi.comm_split(color=mpi.rank % 2)
        if sub.rank == 0:
            sub.send(1, ("from-leader", mpi.rank))
        elif sub.rank == 1:
            out[mpi.rank] = yield from sub.recv(source=0)

    run_world(main, num_ranks=8)
    assert out[2] == ("from-leader", 0)
    assert out[3] == ("from-leader", 1)


def test_nested_split():
    """Splitting a sub-communicator again works (half of a half)."""
    out = {}

    def main(mpi):
        half = yield from mpi.comm_split(color=mpi.rank // 4)
        quarter = yield from half.split(color=half.rank // 2)
        total = yield from quarter.allreduce(1, op="sum")
        out[mpi.rank] = (total, tuple(quarter.members))

    run_world(main, num_ranks=8)
    for r in range(8):
        total, members = out[r]
        assert total == 2
        assert r in members and len(members) == 2


def test_bad_local_rank():
    boom = {}

    def main(mpi):
        try:
            mpi.world.world_rank(99)
        except AmpiError as e:
            boom["msg"] = str(e)
        yield from mpi.barrier()

    run_world(main, num_ranks=2)
    assert "bad local rank" in boom["msg"]


def test_non_member_construction_rejected():
    from repro.ampi.communicator import Communicator

    def main(mpi):
        if mpi.rank == 0:
            with pytest.raises(AmpiError):
                Communicator(mpi, members=[1], comm_id=9)
        yield from mpi.barrier()

    run_world(main, num_ranks=2)


def test_subcomm_scatter_and_alltoall():
    out = {}

    def main(mpi):
        sub = yield from mpi.comm_split(color=mpi.rank % 2)
        vals = [f"{mpi.rank}->{i}" for i in range(sub.size)] \
            if sub.rank == 0 else None
        piece = yield from sub.scatter(vals, root=0)
        a2a = yield from sub.alltoall([(mpi.rank, i)
                                       for i in range(sub.size)])
        out[mpi.rank] = (piece, a2a)

    run_world(main, num_ranks=8)
    for r in range(8):
        piece, a2a = out[r]
        group = list(range(r % 2, 8, 2))
        local = group.index(r)
        assert piece == f"{group[0]}->{local}"
        assert a2a == [(src, local) for src in group]
