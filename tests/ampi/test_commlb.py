"""Tests for communication-aware load balancing (GreedyCommLB)."""

from repro.ampi import AmpiRuntime
from repro.balance import GreedyCommLB, GreedyLB
from repro.balance.instrument import LBDatabase


# -- strategy unit tests ---------------------------------------------------

def test_commlb_colocates_chatty_pairs():
    """Equal loads, heavy traffic inside pairs: each pair shares a PE."""
    loads = {i: 10.0 for i in range(4)}
    strat = GreedyCommLB(byte_cost=1.0)
    strat.set_comm_graph({(0, 1): 10_000, (2, 3): 10_000})
    out = strat.map_objects(loads, {}, 2)
    assert out[0] == out[1]
    assert out[2] == out[3]
    assert out[0] != out[2]              # still balanced across PEs


def test_commlb_without_traffic_behaves_like_greedy():
    loads = {i: float(10 - i) for i in range(8)}
    comm_out = GreedyCommLB(byte_cost=1.0).map_objects(loads, {}, 4)
    greedy_out = GreedyLB().map_objects(loads, {}, 4)

    def pe_loads(p):
        out = [0.0] * 4
        for o, pe in p.items():
            out[pe] += loads[o]
        return sorted(out)

    assert pe_loads(comm_out) == pe_loads(greedy_out)


def test_commlb_tradeoff_knob():
    """High byte_cost sacrifices balance for locality; zero does not."""
    loads = {0: 10.0, 1: 10.0, 2: 1.0, 3: 1.0}
    comm = {(0, 1): 1_000_000}          # objects 0 and 1 are inseparable

    hi = GreedyCommLB(byte_cost=100.0)
    hi.set_comm_graph(comm)
    out_hi = hi.map_objects(loads, {}, 2)
    assert out_hi[0] == out_hi[1]       # locality wins

    lo = GreedyCommLB(byte_cost=0.0)
    lo.set_comm_graph(comm)
    out_lo = lo.map_objects(loads, {}, 2)
    assert out_lo[0] != out_lo[1]       # pure LPT splits the heavies


# -- database comm recording ------------------------------------------------

def test_db_records_comm_bidirectionally():
    db = LBDatabase(2)
    db.register("a", 0)
    db.register("b", 1)
    db.record_comm("a", "b", 100)
    db.record_comm("b", "a", 50)
    assert db.comm_graph() == {("a", "b"): 100, ("b", "a"): 50}
    assert db.comm_between("a", "b") == 150
    db.reset_loads()
    assert db.comm_graph() == {}


def test_db_ignores_untracked_and_self_comm():
    db = LBDatabase(2)
    db.register("a", 0)
    db.record_comm("a", "ghost", 100)
    db.record_comm("a", "a", 100)
    assert db.comm_graph() == {}


# -- end to end through AMPI ---------------------------------------------------

def test_ampi_records_comm_and_commlb_uses_it():
    """Chatty rank pairs end up co-located after MPI_Migrate."""
    placements = {}

    def main(mpi):
        # Pairs (0,1), (2,3), ... exchange large messages; everyone works
        # equally, so only communication distinguishes placements.
        peer = mpi.rank + 1 if mpi.rank % 2 == 0 else mpi.rank - 1
        for it in range(2):
            mpi.send(peer, None, tag=("chat", it), size_bytes=500_000)
            yield from mpi.recv(source=peer, tag=("chat", it))
            mpi.charge(10_000.0)
        yield from mpi.migrate()
        placements[mpi.rank] = mpi.my_pe

    rt = AmpiRuntime(2, 8, main, strategy=GreedyCommLB(byte_cost=10.0))
    rt.run()
    for even in range(0, 8, 2):
        assert placements[even] == placements[even + 1], placements
    # Both processors still host someone.
    assert len(set(placements.values())) == 2
