"""Tests for AMPI collectives."""

import numpy as np
import pytest

from repro.ampi import AmpiRuntime
from repro.errors import AmpiError


def run_world(main, num_procs=2, num_ranks=4, **kw):
    rt = AmpiRuntime(num_procs, num_ranks, main, **kw)
    rt.run()
    return rt


def test_barrier_orders_phases():
    log = []

    def main(mpi):
        log.append(("pre", mpi.rank))
        yield from mpi.barrier()
        log.append(("post", mpi.rank))

    run_world(main, num_ranks=4)
    pres = [i for i, e in enumerate(log) if e[0] == "pre"]
    posts = [i for i, e in enumerate(log) if e[0] == "post"]
    assert max(pres) < min(posts)


def test_bcast():
    out = {}

    def main(mpi):
        data = {"config": 42} if mpi.rank == 0 else None
        data = yield from mpi.bcast(data, root=0)
        out[mpi.rank] = data

    run_world(main, num_ranks=5, num_procs=3)
    assert all(v == {"config": 42} for v in out.values())
    assert len(out) == 5


def test_bcast_nonzero_root():
    out = {}

    def main(mpi):
        data = "seed" if mpi.rank == 2 else None
        out[mpi.rank] = yield from mpi.bcast(data, root=2)

    run_world(main, num_ranks=4)
    assert all(v == "seed" for v in out.values())


def test_reduce_sum():
    out = {}

    def main(mpi):
        r = yield from mpi.reduce(mpi.rank + 1, op="sum", root=0)
        out[mpi.rank] = r

    run_world(main, num_ranks=6)
    assert out[0] == 21
    assert all(out[r] is None for r in range(1, 6))


@pytest.mark.parametrize("op,values,expected", [
    ("max", [3, 1, 9, 2], 9),
    ("min", [3, 1, 9, 2], 1),
    ("prod", [1, 2, 3, 4], 24),
    ("land", [1, 1, 1, 1], True),
    ("lor", [0, 0, 1, 0], True),
])
def test_reduce_ops(op, values, expected):
    out = {}

    def main(mpi):
        out[mpi.rank] = yield from mpi.reduce(values[mpi.rank], op=op, root=0)

    run_world(main, num_ranks=4)
    assert out[0] == expected


def test_allreduce():
    out = {}

    def main(mpi):
        out[mpi.rank] = (yield from mpi.allreduce(mpi.rank, op="max"))

    run_world(main, num_ranks=5)
    assert out == {r: 4 for r in range(5)}


def test_allreduce_numpy():
    out = {}

    def main(mpi):
        v = np.full(4, float(mpi.rank))
        out[mpi.rank] = (yield from mpi.allreduce(v, op="sum"))

    run_world(main, num_ranks=3)
    for r in range(3):
        np.testing.assert_array_equal(out[r], np.full(4, 3.0))


def test_gather_and_allgather():
    out = {}

    def main(mpi):
        g = yield from mpi.gather(mpi.rank ** 2, root=1)
        ag = yield from mpi.allgather(mpi.rank * 10)
        out[mpi.rank] = (g, ag)

    run_world(main, num_ranks=4)
    assert out[1][0] == [0, 1, 4, 9]
    assert out[0][0] is None
    assert all(out[r][1] == [0, 10, 20, 30] for r in range(4))


def test_scatter():
    out = {}

    def main(mpi):
        values = [f"piece{r}" for r in range(mpi.size)] if mpi.rank == 0 else None
        out[mpi.rank] = (yield from mpi.scatter(values, root=0))

    run_world(main, num_ranks=4)
    assert out == {r: f"piece{r}" for r in range(4)}


def test_scatter_wrong_length():
    def main(mpi):
        values = [1, 2] if mpi.rank == 0 else None
        yield from mpi.scatter(values, root=0)

    with pytest.raises(AmpiError):
        run_world(main, num_ranks=4)


def test_alltoall():
    out = {}

    def main(mpi):
        values = [(mpi.rank, dst) for dst in range(mpi.size)]
        out[mpi.rank] = (yield from mpi.alltoall(values))

    run_world(main, num_ranks=4)
    for r in range(4):
        assert out[r] == [(src, r) for src in range(4)]


def test_repeated_collectives_do_not_crosstalk():
    out = {}

    def main(mpi):
        acc = []
        for i in range(5):
            acc.append((yield from mpi.allreduce(i * (mpi.rank + 1), op="sum")))
            yield from mpi.barrier()
        out[mpi.rank] = acc

    run_world(main, num_ranks=3)
    expected = [i * 6 for i in range(5)]    # sum over ranks of i*(r+1)
    assert all(v == expected for v in out.values())


def test_collectives_charge_network_time():
    def main(mpi):
        yield from mpi.allreduce(np.zeros(1000), op="sum")

    rt = run_world(main, num_procs=4, num_ranks=4)
    assert rt.makespan_ns > 0
    assert sum(p.messages_sent for p in rt.cluster.processors) > 0
