"""MetricsRegistry semantics: instruments, claims, determinism."""

import json

import pytest

from repro.errors import ReproError
from repro.obs import (BYTE_BUCKETS, Histogram, MetricsRegistry,
                       RATIO_BUCKETS, TIME_NS_BUCKETS)


def test_counter_get_or_create_is_idempotent():
    r = MetricsRegistry()
    c = r.counter("net.messages")
    c.inc()
    c.inc(41)
    assert r.counter("net.messages") is c
    assert c.value == 42


def test_gauge_set_overwrites():
    r = MetricsRegistry()
    g = r.gauge("run.makespan_ns")
    g.set(10.0)
    g.set(7.5)
    assert r.gauge("run.makespan_ns").value == 7.5


def test_histogram_buckets_values_at_edges_inclusively():
    h = Histogram("sizes", (64, 256, 1024))
    for v in (1, 64, 65, 256, 1024, 5000):
        h.observe(v)
    snap = h.snapshot()
    # bisect_left: a value equal to an edge lands in that edge's bucket.
    assert snap["buckets"] == {"le_64": 2, "le_256": 2, "le_1024": 1,
                               "inf": 1}
    assert snap["count"] == 6
    assert snap["total"] == 1 + 64 + 65 + 256 + 1024 + 5000
    assert h.mean == snap["total"] / 6


def test_histogram_rejects_unsorted_or_empty_edges():
    with pytest.raises(ReproError):
        Histogram("bad", (256, 64))
    with pytest.raises(ReproError):
        Histogram("empty", ())


def test_default_bucket_layouts_are_fixed_and_ascending():
    for edges in (BYTE_BUCKETS, TIME_NS_BUCKETS, RATIO_BUCKETS):
        assert list(edges) == sorted(edges)
        assert len(set(edges)) == len(edges)


def test_cross_kind_name_claim_is_an_error():
    r = MetricsRegistry()
    r.counter("x")
    with pytest.raises(ReproError):
        r.gauge("x")
    with pytest.raises(ReproError):
        r.histogram("x")
    r.gauge("y")
    with pytest.raises(ReproError):
        r.counter("y")


def test_histogram_edge_mismatch_is_an_error():
    r = MetricsRegistry()
    h = r.histogram("lat", TIME_NS_BUCKETS)
    # Same edges: same instrument back.
    assert r.histogram("lat", TIME_NS_BUCKETS) is h
    with pytest.raises(ReproError):
        r.histogram("lat", BYTE_BUCKETS)


def test_get_finds_any_kind():
    r = MetricsRegistry()
    c = r.counter("a")
    g = r.gauge("b")
    h = r.histogram("c")
    assert r.get("a") is c and r.get("b") is g and r.get("c") is h
    assert r.get("missing") is None


def _populate(r):
    r.counter("z.last").inc(3)
    r.counter("a.first").inc(1)
    r.gauge("m.mid").set(2.5)
    h = r.histogram("h.sizes", (10, 100))
    h.observe(5)
    h.observe(500)


def test_snapshot_is_deterministic_and_sorted():
    """Two registries populated identically snapshot byte-identically —
    the property the golden metrics fingerprints stand on."""
    r1, r2 = MetricsRegistry(), MetricsRegistry()
    _populate(r1)
    _populate(r2)
    s1, s2 = r1.snapshot(), r2.snapshot()
    assert s1 == s2
    assert (json.dumps(s1, sort_keys=True)
            == json.dumps(s2, sort_keys=True))
    assert list(s1["counters"]) == ["a.first", "z.last"]
    assert s1["histograms"]["h.sizes"]["buckets"] == {
        "le_10": 1, "le_100": 0, "inf": 1}


def test_render_mentions_every_instrument():
    r = MetricsRegistry()
    _populate(r)
    text = r.render()
    for name in ("a.first", "z.last", "m.mid", "h.sizes"):
        assert name in text
