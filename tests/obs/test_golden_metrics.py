"""Golden metrics fingerprints: the registry snapshot is deterministic.

Each chaos workload x seed runs under the exact golden-seed fault
schedule with a :class:`RunObserver` attached through
``drive_ampi_chaos``'s ``observe`` hook.  Two things are pinned:

* the SHA-256 of the sorted-keys JSON metrics snapshot — identical
  runs must produce byte-identical metrics (fixed histogram buckets,
  no host clocks or RNG anywhere in the registry);
* the run's *chaos* fingerprint still equals the pre-observability
  golden from ``tests/chaos/test_golden_seeds.py`` — attaching the
  observer must not perturb the run by one bit (observer purity).

To re-capture after a *deliberate* metrics-schema change::

    PYTHONPATH=src:. python -c \\
        "from tests.obs.test_golden_metrics import regenerate; regenerate()"
"""

import hashlib
import json

import pytest

from repro.chaos import (BTMZChaosWorkload, FaultSchedule,
                         SampleSortChaosWorkload, StencilChaosWorkload,
                         drive_ampi_chaos)
from repro.obs import RunObserver

from tests.chaos.test_golden_seeds import CONFIG, GOLDEN

WORKLOADS = (StencilChaosWorkload, SampleSortChaosWorkload,
             BTMZChaosWorkload)
SEEDS = (0, 1)

#: workload-name -> seed -> SHA-256 of the sorted-keys JSON snapshot.
METRICS_GOLDEN = {
    "stencil": {
        0: "cd7f5ca345fbd8cf41aa7104815bd7e7da0c603bf2d39f78349e1e57b4e14197",
        1: "5c89a9fc8dc5abf7ec2c551549619fee2b82d1814a0a7b6f39ef2dd32efd511e",
    },
    "samplesort": {
        0: "7cdc5885b6c6ef599682849c773bcfe1d25dafb61d96a1cfd363ff6940dc26bd",
        1: "0fc1c43bd7056eaca814ada0c63b3672c60a088e2ef029ca9da9ddf34f35c847",
    },
    "btmz": {
        0: "c56b3227ea3751534a1e1ee3a1b5cd9deec2b2d621abb9553cc730434af913ae",
        1: "dd0eabb6fd64be84da719a94932b4ff36bb2246bb3b29bc1f2ab5d6dbea69719",
    },
}


def observed_chaos_run(wl_cls, seed):
    """One golden-config chaos run with full observability attached."""
    wl = wl_cls()
    holder = {}

    def observe(rt, ctx):
        obs = RunObserver.for_ampi(rt)
        obs.attach()
        ctx.metrics = obs.registry
        holder["obs"], holder["ctx"] = obs, ctx

    result = drive_ampi_chaos(wl, FaultSchedule.seeded(seed, CONFIG),
                              seed=seed, observe=observe)
    obs, ctx = holder["obs"], holder["ctx"]
    obs.finalize()
    ctx.injector.export_metrics(obs.registry)
    return result, obs


def metrics_fingerprint(obs) -> str:
    blob = json.dumps(obs.registry.snapshot(), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def regenerate() -> dict:
    """Re-capture METRICS_GOLDEN; prints and returns it."""
    table = {}
    for wl_cls in WORKLOADS:
        for seed in SEEDS:
            _, obs = observed_chaos_run(wl_cls, seed)
            fp = metrics_fingerprint(obs)
            table.setdefault(wl_cls.name, {})[seed] = fp
            print(f'        {seed}: "{fp}",  # {wl_cls.name}')
    return table


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("wl_cls", WORKLOADS,
                         ids=[w.name for w in WORKLOADS])
def test_metrics_fingerprint_and_observer_purity(wl_cls, seed):
    result, obs = observed_chaos_run(wl_cls, seed)
    # Purity: the observed run IS the golden run, bit for bit.
    assert result.fingerprint() == GOLDEN[wl_cls.name][seed]
    # Determinism: the metrics snapshot hashes to its golden.
    assert metrics_fingerprint(obs) == METRICS_GOLDEN[wl_cls.name][seed]


def test_snapshot_has_the_expected_shape():
    _, obs = observed_chaos_run(StencilChaosWorkload, 0)
    snap = obs.registry.snapshot()
    counters = snap["counters"]
    # The chaos layer exported its fault ledger into the same registry.
    assert "chaos.faults_injected" in counters
    assert "chaos.invariant_checks" in counters
    assert counters["chaos.invariant_checks"] >= 0
    assert "kernel.dispatched" in counters
    assert "run.makespan_ns" in snap["gauges"]
    assert "net.msg_bytes" in snap["histograms"]
    assert "lb.imbalance" in snap["histograms"]
