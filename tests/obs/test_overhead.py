"""The zero-cost-when-off pin for the observability layer.

The structural tests are the real gate: after attach + detach every
kernel is provably back on the cold path (``hooks.hot`` False, no
channel subscribers), so an unobserved run executes the exact
pre-observability instruction stream.  The timing test is a loose
sanity bound only — host timing on a shared 1-CPU CI container is
noise — the honest ~1% envelope is measured by ``tools/bench_kernel.py``
and enforced over time by ``tools/bench_all.py``.
"""

import time

from repro.kernel import EventKernel
from repro.kernel.hooks import NOTIFY_HOOKS
from repro.obs import MetricsRegistry, RunObserver

from tests.obs.conftest import run_observed


def test_attach_detach_leaves_no_residue(observed_run):
    rt, obs = observed_run
    obs.detach()
    for bus in [rt.cluster.queue.hooks] + \
            [s.kernel.hooks for s in rt.schedulers]:
        assert bus.hot is False
        assert all(getattr(bus, name) == [] for name in NOTIFY_HOOKS)
        for ch in ("net.send", "migration.done", "checkpoint.write"):
            assert not bus.has(ch)


def test_observed_run_equals_unobserved_run():
    """Observation is pure: virtual time and placement are unchanged."""
    rt_plain, _ = _plain_run()
    rt_obs, obs = run_observed()
    assert rt_obs.makespan_ns == rt_plain.makespan_ns
    assert rt_obs.pe_of_ranks() == rt_plain.pe_of_ranks()
    assert rt_obs.migrator.migrations_completed == \
        rt_plain.migrator.migrations_completed


def _plain_run():
    from repro.ampi import AmpiRuntime
    from tests.obs.conftest import ring_migrate_main
    rt = AmpiRuntime(4, 8, ring_migrate_main())
    rt.run()
    return rt, None


def test_cold_path_timing_is_sane():
    """Interleaved best-of comparison, never-observed vs attach+detach.

    Both sides run hooks-off; the generous 2x bound only catches a
    detach that forgot to clear a subscription (which would cost far
    more than noise).  The 1% envelope lives in the bench gate, not
    here.
    """
    N = 3000

    def run_cold():
        kernel = EventKernel(name="cold")
        nop = lambda: None  # noqa: E731
        for i in range(N):
            kernel.schedule(float(i), nop)
        kernel.run()

    def run_detached():
        kernel = EventKernel(name="was-observed")

        class _FakeQueue:
            def __init__(self, k):
                self.kernel = k
                self.hooks = k.hooks

        class _FakeCluster:
            def __init__(self, k):
                self.processors = []
                self.queue = _FakeQueue(k)

        obs = RunObserver(_FakeCluster(kernel),
                          registry=MetricsRegistry())
        obs.attach()
        obs.detach()
        nop = lambda: None  # noqa: E731
        for i in range(N):
            kernel.schedule(float(i), nop)
        kernel.run()

    best_cold = best_detached = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        run_cold()
        best_cold = min(best_cold, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_detached()
        best_detached = min(best_detached, time.perf_counter() - t0)
    assert best_detached < best_cold * 2.0
