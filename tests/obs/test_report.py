"""The Projections-style report against ground truth — the PR's
acceptance test: migration counts in the report must agree *exactly*
with the ThreadMigrator's counters, through the module API and through
the ``python -m repro.obs report`` CLI alike."""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.obs import build_report, load_trace, render_report

from tests.obs.conftest import run_observed

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    rt, obs = run_observed()
    path = str(tmp_path_factory.mktemp("trace") / "run.trace")
    obs.dump(path)
    return rt, obs, path


def test_report_migrations_match_migrator_counters(traced_run):
    rt, obs, path = traced_run
    report = build_report(load_trace(path), registry=obs.registry)
    mig = report["migrations"]
    assert mig["completed"] == rt.migrator.migrations_completed
    assert mig["returned"] == rt.migrator.migrations_returned
    assert mig["completed"] > 0
    # Route rows decompose the totals exactly.
    assert sum(r["moves"] for r in mig["routes"]) == mig["completed"]
    assert sum(r["returns"] for r in mig["routes"]) == mig["returned"]
    assert sum(r["bytes"] for r in mig["routes"]) == mig["bytes"]
    # The embedded registry agrees with the trace-derived table.
    m = report["metrics"]["counters"]
    assert m["migration.completed"] == mig["completed"]
    assert m["migration.returned"] == mig["returned"]


def test_report_utilization_and_messages(traced_run):
    rt, obs, path = traced_run
    report = build_report(load_trace(path), windows=4)
    util = report["utilization"]
    assert util["makespan_ns"] == pytest.approx(rt.makespan_ns)
    assert set(util["per_pe"]) == {str(p.id) for p in rt.cluster.processors}
    for row in util["per_pe"].values():
        assert 0.0 < row["util"] <= 1.0
    timeline = report["imbalance_timeline"]
    assert len(timeline) == 4
    assert all(w["imbalance"] >= 1.0 for w in timeline if w["busy_ns"])
    sent = sum(p.messages_sent for p in rt.cluster.processors)
    assert report["messages"]["sizes"]["count"] == sent
    assert report["messages"]["latency_ns"]["count"] > 0
    assert report["categories"].get("cth.resume", 0) > 0


def test_render_report_is_textual_and_complete(traced_run):
    _, obs, path = traced_run
    text = render_report(build_report(load_trace(path),
                                      registry=obs.registry))
    for needle in ("per-PE utilization", "migrations:", "messages:",
                   "dispatches by category", "metrics registry"):
        assert needle in text


def test_load_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.trace"
    bad.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ReproError, match="bad.trace:2"):
        load_trace(str(bad))


def _cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *args],
        capture_output=True, text=True, env=env, cwd=ROOT)


def test_cli_json_matches_module_api(traced_run):
    rt, obs, path = traced_run
    proc = _cli("report", path, "--json")
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["migrations"]["completed"] == \
        rt.migrator.migrations_completed
    assert report["migrations"]["returned"] == \
        rt.migrator.migrations_returned
    # --json output is deterministic: same trace, same bytes.
    again = _cli("report", path, "--json")
    assert again.stdout == proc.stdout


def test_cli_text_mode_and_error_path(traced_run):
    _, _, path = traced_run
    proc = _cli("report", path)
    assert proc.returncode == 0, proc.stderr
    assert "per-PE utilization" in proc.stdout
    missing = _cli("report", os.path.join(ROOT, "no-such.trace"))
    assert missing.returncode == 2
    assert missing.stderr.strip()
