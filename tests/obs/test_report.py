"""The Projections-style report against ground truth — the PR's
acceptance test: migration counts in the report must agree *exactly*
with the ThreadMigrator's counters, through the module API and through
the ``python -m repro.obs report`` CLI alike."""

import json
import os
import subprocess
import sys

import pytest

from repro.errors import ReproError
from repro.obs import build_report, load_trace, render_report

from tests.obs.conftest import run_observed

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    rt, obs = run_observed()
    path = str(tmp_path_factory.mktemp("trace") / "run.trace")
    obs.dump(path)
    return rt, obs, path


def test_report_migrations_match_migrator_counters(traced_run):
    rt, obs, path = traced_run
    report = build_report(load_trace(path), registry=obs.registry)
    mig = report["migrations"]
    assert mig["completed"] == rt.migrator.migrations_completed
    assert mig["returned"] == rt.migrator.migrations_returned
    assert mig["completed"] > 0
    # Route rows decompose the totals exactly.
    assert sum(r["moves"] for r in mig["routes"]) == mig["completed"]
    assert sum(r["returns"] for r in mig["routes"]) == mig["returned"]
    assert sum(r["bytes"] for r in mig["routes"]) == mig["bytes"]
    # The embedded registry agrees with the trace-derived table.
    m = report["metrics"]["counters"]
    assert m["migration.completed"] == mig["completed"]
    assert m["migration.returned"] == mig["returned"]


def test_report_utilization_and_messages(traced_run):
    rt, obs, path = traced_run
    report = build_report(load_trace(path), windows=4)
    util = report["utilization"]
    assert util["makespan_ns"] == pytest.approx(rt.makespan_ns)
    assert set(util["per_pe"]) == {str(p.id) for p in rt.cluster.processors}
    for row in util["per_pe"].values():
        assert 0.0 < row["util"] <= 1.0
    timeline = report["imbalance_timeline"]
    assert len(timeline) == 4
    assert all(w["imbalance"] >= 1.0 for w in timeline if w["busy_ns"])
    sent = sum(p.messages_sent for p in rt.cluster.processors)
    assert report["messages"]["sizes"]["count"] == sent
    assert report["messages"]["latency_ns"]["count"] > 0
    assert report["categories"].get("cth.resume", 0) > 0


def test_render_report_is_textual_and_complete(traced_run):
    _, obs, path = traced_run
    text = render_report(build_report(load_trace(path),
                                      registry=obs.registry))
    for needle in ("per-PE utilization", "migrations:", "messages:",
                   "dispatches by category", "metrics registry"):
        assert needle in text


def test_load_trace_rejects_garbage(tmp_path):
    bad = tmp_path / "bad.trace"
    bad.write_text('{"ok": 1}\nnot json\n')
    with pytest.raises(ReproError, match="bad.trace:2"):
        load_trace(str(bad))


def test_load_trace_tolerates_torn_final_line(tmp_path):
    """A SIGKILL mid-append leaves an unterminated tail; loading used to
    blow up on it (regression: failed before the torn-tail fix)."""
    torn = tmp_path / "torn.trace"
    torn.write_text('{"ev": "end", "t": 1.0}\n{"ev": "beg')
    assert load_trace(str(torn)) == [{"ev": "end", "t": 1.0}]


def test_load_trace_torn_tolerance_needs_unterminated_tail(tmp_path):
    # A malformed line that *is* newline-terminated cannot be a torn
    # append — that's corruption, and it must stay a hard error.
    bad = tmp_path / "bad.trace"
    bad.write_text('{"ok": 1}\n{"ev": "beg\n')
    with pytest.raises(ReproError, match="bad.trace:2"):
        load_trace(str(bad))


def test_load_trace_rejects_mid_file_corruption_despite_torn_tail(tmp_path):
    bad = tmp_path / "bad.trace"
    bad.write_text('{"ok": 1}\ngarbage\n{"ev": "beg')
    with pytest.raises(ReproError, match="bad.trace:2"):
        load_trace(str(bad))


def test_load_trace_rejects_non_object_lines(tmp_path):
    """A bare array parses as JSON but crashes every consumer; reject it
    at the loader with the position (regression: build_report used to
    die on AttributeError deep inside instead)."""
    bad = tmp_path / "bad.trace"
    bad.write_text('{"ok": 1}\n[1, 2]\n')
    with pytest.raises(ReproError, match="bad.trace:2.*not a JSON object"):
        load_trace(str(bad))


def test_imbalance_timeline_clamps_out_of_range_timestamps():
    """A negative timestamp must charge window 0, not the *last* window
    via Python negative indexing (regression: failed before the lower
    clamp), and the windows must conserve total busy time exactly."""
    entries = [
        {"ev": "end", "t": 100.0, "busy": {"0": 10.0},
         "clock": {"0": 100.0}},
        {"ev": "end", "t": -5.0, "busy": {"0": 7.0}},
        # Past the makespan (only end/clock times extend it): upper clamp.
        {"ev": "schedule", "t": 250.0, "busy": {"0": 3.0}},
    ]
    timeline = build_report(entries, windows=4)["imbalance_timeline"]
    assert timeline[0]["busy_ns"] == 7.0
    assert timeline[-1]["busy_ns"] == 10.0 + 3.0
    assert sum(w["busy_ns"] for w in timeline) == 20.0


def test_imbalance_windows_conserve_busy_on_real_trace(traced_run):
    _, _, path = traced_run
    entries = load_trace(path)
    total = sum(ns for e in entries
                for ns in e.get("busy", {}).values())
    for windows in (1, 3, 8):
        timeline = build_report(entries,
                                windows=windows)["imbalance_timeline"]
        assert sum(w["busy_ns"] for w in timeline) == pytest.approx(total)


def test_empty_trace_report_is_finite_and_renderable():
    """Zero entries / zero makespan must not produce NaN, a div-by-zero,
    or a render crash (regression sweep for the empty-trace audit)."""
    report = build_report([])
    assert report["events"] == 0
    assert report["utilization"]["makespan_ns"] == 0.0
    assert report["utilization"]["per_pe"] == {}
    assert report["imbalance_timeline"] == []
    assert report["migrations"]["completed"] == 0
    assert report["categories"] == {}
    flat = json.dumps(report)
    assert "NaN" not in flat and "Infinity" not in flat
    assert render_report(report)  # must not raise


def _cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.obs", *args],
        capture_output=True, text=True, env=env, cwd=ROOT)


def test_cli_json_matches_module_api(traced_run):
    rt, obs, path = traced_run
    proc = _cli("report", path, "--json")
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["migrations"]["completed"] == \
        rt.migrator.migrations_completed
    assert report["migrations"]["returned"] == \
        rt.migrator.migrations_returned
    # --json output is deterministic: same trace, same bytes.
    again = _cli("report", path, "--json")
    assert again.stdout == proc.stdout


def test_cli_text_mode_and_error_path(traced_run):
    _, _, path = traced_run
    proc = _cli("report", path)
    assert proc.returncode == 0, proc.stderr
    assert "per-PE utilization" in proc.stdout
    missing = _cli("report", os.path.join(ROOT, "no-such.trace"))
    assert missing.returncode == 2
    assert missing.stderr.strip()


def test_cli_empty_trace_is_a_diagnosed_error(tmp_path):
    """An empty trace used to fall through to a meaningless all-zero
    report; it is now a usage error: exit 2, one-line diagnostic."""
    empty = tmp_path / "empty.trace"
    empty.write_text("")
    proc = _cli("report", str(empty))
    assert proc.returncode == 2
    assert proc.stdout == ""
    assert len(proc.stderr.strip().splitlines()) == 1
    assert "empty trace" in proc.stderr
