"""Lazy trace-record construction: counters-only tracing allocates
no per-event records.

Before the fast-path PR, :class:`KernelTracer` built one entry dict per
lifecycle point unconditionally — even when the caller only wanted the
aggregate counters.  ``KernelTracer(record=False)`` now skips record
construction entirely; this suite pins both the behavior (identical
counters, empty ``entries``) and the structure (zero allocation blocks
attributed to ``trace.py`` during the run).
"""

import gc
import tracemalloc

from repro.kernel import EventKernel, KernelTracer


def _nop():
    pass


def _drive(kernel):
    evs = [kernel.schedule(float(i % 7), _nop, category="demo",
                           flow=f"f{i % 2}") for i in range(50)]
    for ev in evs[::5]:
        ev.cancel()
    kernel.schedule(8.0, kernel.skip_current)
    return kernel.run()


def test_counters_only_mode_matches_recording_counters():
    recording = KernelTracer().attach(EventKernel(name="rec"))
    counting = KernelTracer(record=False).attach(EventKernel(name="cnt"))
    assert _drive(recording._kernel) == _drive(counting._kernel)
    assert counting.counters == recording.counters
    assert counting.counters["dispatched"] == 40
    assert counting.counters["skipped"] == 1
    assert counting.counters["cancelled"] == 10
    assert recording.entries, "record=True still builds the event log"
    assert counting.entries == []
    assert counting.timeline() == {}


def test_counters_only_mode_allocates_no_trace_records():
    k = EventKernel(name="lazy")
    tracer = KernelTracer(record=False).attach(k)
    k.post_batch([float(i % 11) for i in range(2_000)], _nop)
    gc.collect()
    tracemalloc.start()
    snap0 = tracemalloc.take_snapshot()
    k.run()
    snap1 = tracemalloc.take_snapshot()
    tracemalloc.stop()
    trace_blocks = [s for s in snap1.compare_to(snap0, "filename")
                    if "trace.py" in (s.traceback[0].filename or "")]
    # O(1), not O(events): the only surviving tracer allocations are
    # the handful of counter cells (non-small ints), never the 2000
    # per-event record dicts a recording tracer would have built.
    total = sum(s.count_diff for s in trace_blocks)
    assert total <= 8, f"{total} trace.py blocks allocated during run"
    assert sum(s.size_diff for s in trace_blocks) < 1024
    assert tracer.counters["dispatched"] == 2_000
    assert tracer.entries == []


def test_recording_default_is_unchanged():
    tracer = KernelTracer()
    assert tracer.record is True
    k = EventKernel(name="default")
    tracer.attach(k)
    k.schedule(1.0, _nop, category="demo")
    k.run()
    kinds = [e["ev"] for e in tracer.entries]
    assert kinds == ["schedule", "begin", "end", "idle", "quiescence"]
