"""Shared workload for the observability tests.

One small AMPI run that exercises every observed channel: skewed compute
(so the greedy balancer actually migrates), a ring exchange every
iteration (messages with latency), and periodic checkpoints (the
``checkpoint.write`` channel).
"""

import pytest

from repro.ampi import AmpiRuntime
from repro.obs import RunObserver


def ring_migrate_main(iterations=3, payload=2048):
    """Rank main: skewed charge + ring exchange + migrate + checkpoint."""
    def main(mpi):
        right = (mpi.rank + 1) % mpi.size
        left = (mpi.rank - 1) % mpi.size
        for it in range(iterations):
            mpi.charge(40_000.0 * (1 + mpi.rank % 3))
            mpi.send(right, mpi.rank * 100 + it, tag="ring",
                     size_bytes=payload)
            yield from mpi.recv(left, tag="ring")
            yield from mpi.migrate()
            if it == iterations - 1:
                yield from mpi.checkpoint()
    return main


def run_observed(pes=4, ranks=8, **kw):
    """Build, observe, and run the shared workload.

    Returns ``(rt, obs)`` with the observer still attached (finalize /
    detach are the test's business).
    """
    rt = AmpiRuntime(pes, ranks, ring_migrate_main(**kw))
    obs = RunObserver.for_ampi(rt)
    obs.attach()
    rt.run()
    return rt, obs


@pytest.fixture
def observed_run():
    return run_observed()
