"""RunObserver: attachment hygiene, busy attribution, channel capture."""

import pytest

from repro.ampi import AmpiRuntime
from repro.errors import ReproError
from repro.kernel.hooks import NOTIFY_HOOKS
from repro.obs import MetricsRegistry, RunObserver

from tests.obs.conftest import ring_migrate_main


def _bus_is_cold(bus):
    return (not bus.hot
            and all(not getattr(bus, name) for name in NOTIFY_HOOKS)
            and not any(bus.has(ch) for ch in ("net.send",
                                               "migration.done",
                                               "checkpoint.write")))


def test_detach_restores_every_kernel_to_the_cold_path():
    rt = AmpiRuntime(2, 4, ring_migrate_main(iterations=1))
    buses = ([rt.cluster.queue.hooks]
             + [s.kernel.hooks for s in rt.schedulers])
    assert all(_bus_is_cold(b) for b in buses)
    obs = RunObserver.for_ampi(rt)
    obs.attach()
    assert all(b.hot for b in buses)
    obs.detach()
    assert all(_bus_is_cold(b) for b in buses)
    # Double-detach must fail loudly, not silently half-unsubscribe.
    with pytest.raises(ReproError):
        obs.detach()


def test_registry_counters_match_runtime_ground_truth(observed_run):
    rt, obs = observed_run
    r = obs.registry
    mig = rt.migrator
    assert r.counter("migration.completed").value == \
        mig.migrations_completed
    assert r.counter("migration.returned").value == mig.migrations_returned
    sent = sum(p.messages_sent for p in rt.cluster.processors)
    assert r.counter("net.messages").value == sent > 0
    assert r.counter("checkpoint.writes").value > 0
    assert r.counter("kernel.switches").value > 0
    assert r.counter("kernel.dispatched").value == \
        sum(1 for e in obs.entries
            if e.get("ev") == "end" and not e.get("skipped"))


def test_busy_attribution_sums_to_processor_busy_time(observed_run):
    rt, obs = observed_run
    obs.finalize()  # flushes tail charges after the last dispatch
    attributed = {}
    for e in obs.entries:
        for pe, ns in e.get("busy", {}).items():
            attributed[pe] = attributed.get(pe, 0.0) + ns
    for i, p in enumerate(rt.cluster.processors):
        expected = p.busy_ns - obs.busy_at_attach[i]
        assert attributed.get(str(p.id), 0.0) == pytest.approx(expected)


def test_channel_entries_are_recorded(observed_run):
    rt, obs = observed_run
    kinds = {e["ev"] for e in obs.entries if "ev" in e}
    assert {"schedule", "begin", "end", "send", "migration",
            "checkpoint"} <= kinds
    sends = [e for e in obs.entries if e.get("ev") == "send"]
    # Ring payloads are there among the runtime's own traffic
    # (thread images, barriers).
    assert any(e["bytes"] == 2048 for e in sends)
    assert all(e["bytes"] >= 0 for e in sends)
    migs = [e for e in obs.entries if e.get("ev") == "migration"]
    assert all({"src", "dst", "bytes"} <= set(e) for e in migs)


def test_finalize_publishes_per_pe_gauges(observed_run):
    rt, obs = observed_run
    r = obs.finalize()
    assert r.gauge("run.makespan_ns").value == pytest.approx(rt.makespan_ns)
    for p in rt.cluster.processors:
        assert r.gauge(f"pe{p.id}.busy_ns").value == pytest.approx(p.busy_ns)
        util = r.gauge(f"pe{p.id}.util").value
        assert 0.0 <= util <= 1.0


def test_observer_accepts_a_shared_registry():
    registry = MetricsRegistry()
    registry.counter("kernel.dispatched").inc(5)
    rt = AmpiRuntime(2, 4, ring_migrate_main(iterations=1))
    obs = RunObserver.for_ampi(rt, registry=registry)
    assert obs.registry is registry
    obs.attach()
    rt.run()
    # The pre-existing count is additive, not reset — shared registries
    # aggregate across runs by design.
    assert registry.counter("kernel.dispatched").value > 5
