"""Tests for the stencil workload (Figure 1 program, real numerics)."""

import numpy as np
import pytest

from repro.workloads.stencil import (StencilConfig, initial_grid,
                                     jacobi_reference, run_ampi_stencil)


def test_reference_converges_toward_boundary_average():
    cfg = StencilConfig(rows=16, cols=16, iterations=200)
    out = jacobi_reference(initial_grid(cfg), cfg.iterations)
    # Interior values settle between the two boundary temperatures.
    interior = out[1:-1, 1:-1]
    assert interior.max() <= 100.0
    assert interior.min() >= -25.0
    assert abs(interior.mean()) < 40.0


@pytest.mark.parametrize("num_ranks", [1, 2, 4, 8])
def test_ampi_stencil_matches_sequential_reference(num_ranks):
    """The parallel decomposition is numerically exact vs the reference."""
    cfg = StencilConfig(rows=32, cols=16, iterations=6)
    _, parallel = run_ampi_stencil(cfg, num_procs=2, num_ranks=num_ranks)
    expected = jacobi_reference(initial_grid(cfg), cfg.iterations)
    np.testing.assert_allclose(parallel, expected, rtol=1e-12)


def test_ampi_stencil_more_ranks_than_processors():
    cfg = StencilConfig(rows=32, cols=8, iterations=3)
    rt, parallel = run_ampi_stencil(cfg, num_procs=2, num_ranks=8)
    expected = jacobi_reference(initial_grid(cfg), cfg.iterations)
    np.testing.assert_allclose(parallel, expected, rtol=1e-12)
    assert rt.makespan_ns > 0


def test_stencil_charges_compute_time():
    cfg = StencilConfig(rows=32, cols=16, iterations=4, ns_per_point=10.0)
    rt, _ = run_ampi_stencil(cfg, num_procs=2, num_ranks=4)
    # Total charged work at least iterations * points * ns_per_point.
    total_work = sum(p.busy_ns for p in rt.cluster.processors)
    assert total_work >= 4 * 32 * 16 * 10.0
