"""Tests for BigSim trace logging and trace-driven re-prediction."""

import pytest

from repro.bigsim import BigSimEngine, TargetMachine
from repro.bigsim.trace import TraceEvent, TraceLog, replay
from repro.errors import ReproError
from repro.workloads.md import MDConfig, MDWorkload


def emulate(dims=(4, 4, 4), steps=3, **cfg_kw):
    wl = MDWorkload(MDConfig(dims=dims, **cfg_kw))
    tgt = TargetMachine(dims=dims)
    eng = BigSimEngine(4, tgt, wl, steps=steps, record_trace=True)
    res = eng.run()
    return eng, tgt, res


def test_trace_is_complete():
    eng, tgt, res = emulate()
    eng.trace.validate()
    assert len(eng.trace.events) == 64 * 3
    blocks = eng.trace.for_proc(0)
    assert [b.step for b in blocks] == [0, 1, 2]
    assert all(len(b.sends) == 6 for b in blocks)


def test_replay_reproduces_emulation_exactly():
    """Same machine parameters -> bit-identical prediction (the two-phase
    consistency BigSim depends on)."""
    eng, tgt, res = emulate()
    assert replay(eng.trace, tgt) == pytest.approx(
        res.predicted_target_ns_per_step, rel=1e-12)


def test_replay_what_if_network():
    """One emulation, many candidate machines: a faster interconnect
    lowers the prediction, a slower one raises it."""
    eng, tgt, res = emulate()
    base = res.predicted_target_ns_per_step
    fast = replay(eng.trace, TargetMachine(
        dims=(4, 4, 4), network_latency_ns=300, network_bytes_per_ns=2.0))
    slow = replay(eng.trace, TargetMachine(
        dims=(4, 4, 4), network_latency_ns=30_000,
        network_bytes_per_ns=0.02))
    assert fast < base < slow


def test_replay_what_if_cpu():
    eng, tgt, res = emulate()
    base = res.predicted_target_ns_per_step
    faster = replay(eng.trace, tgt, cpu_scale=2.0)
    assert faster < base
    # Compute does not halve wall time: the network share remains.
    assert faster > base / 2


def test_replay_monotone_in_latency():
    eng, _, _ = emulate(dims=(3, 3, 3))
    preds = [replay(eng.trace, TargetMachine(dims=(3, 3, 3),
                                             network_latency_ns=lat))
             for lat in (100.0, 1_000.0, 10_000.0, 100_000.0)]
    assert preds == sorted(preds)
    assert preds[-1] > preds[0]


def test_incomplete_trace_rejected():
    log = TraceLog(num_procs=2, steps=2)
    log.add(TraceEvent(0, 0, 10.0, (), (), 0))
    with pytest.raises(ReproError, match="incomplete"):
        replay(log, TargetMachine(dims=(2, 1, 1)))


def test_trace_off_by_default():
    wl = MDWorkload(MDConfig(dims=(2, 2, 2)))
    eng = BigSimEngine(2, TargetMachine(dims=(2, 2, 2)), wl, steps=1)
    eng.run()
    assert eng.trace is None


def test_uneven_workload_prediction_dominated_by_dense_cells():
    eng, tgt, res = emulate(atom_jitter=0.9, density_profile="gradient")
    heaviest = max(eng.workload.compute_ns(c) for c in range(64))
    assert res.predicted_target_ns_per_step >= heaviest
    assert replay(eng.trace, tgt) == pytest.approx(
        res.predicted_target_ns_per_step, rel=1e-12)
