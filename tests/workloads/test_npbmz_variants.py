"""Tests for the SP-MZ / LU-MZ balanced controls (vs BT-MZ)."""

import pytest

from repro.balance import GreedyLB, NullLB
from repro.errors import ReproError
from repro.workloads.btmz import BTMZ_CLASSES, BTMZConfig, make_zones, \
    run_btmz


def test_sp_zones_are_uniform():
    zones = make_zones("B", "sp")
    pts = {z.points for z in zones}
    # Uniform up to the one rounding remainder row/column.
    assert len(zones) == 64
    assert max(pts) / min(pts) < 1.3


def test_lu_is_fixed_4x4():
    for cls in ("A", "B", "C"):
        zones = make_zones(cls, "lu")
        assert len(zones) == 16
    pts = [z.points for z in make_zones("B", "lu")]
    assert max(pts) / min(pts) < 1.3


def test_bt_is_the_imbalanced_one():
    """'Among these tests, BT-MZ creates the most dramatic load
    imbalance' — quantified."""
    ratios = {}
    for bench in ("bt", "sp", "lu"):
        pts = [z.points for z in make_zones("B", bench)]
        ratios[bench] = max(pts) / min(pts)
    assert ratios["bt"] > 10 * ratios["sp"]
    assert ratios["bt"] > 10 * ratios["lu"]


def test_zone_grid_conserved_in_all_variants():
    spec = BTMZ_CLASSES["A"]
    total = spec.gx * spec.gy * spec.gz
    for bench in ("bt", "sp", "lu"):
        assert sum(z.points for z in make_zones("A", bench)) == total


def test_unknown_benchmark_rejected():
    with pytest.raises(ReproError):
        make_zones("A", "ft")


def test_config_labels():
    assert BTMZConfig("B", 16, 8).label == "B.16,8PE"
    assert BTMZConfig("B", 16, 8, benchmark="sp").label == "SP-B.16,8PE"


def test_sp_mz_barely_benefits_from_lb():
    """The negative control: with uniform zones there is little imbalance
    for thread migration to fix — unlike BT-MZ under the same setup."""
    sp = BTMZConfig("B", 16, 8, iterations=5, benchmark="sp")
    sp_no = run_btmz(sp, NullLB()).makespan_ns
    sp_lb = run_btmz(sp, GreedyLB()).makespan_ns
    sp_gain = sp_no / sp_lb

    bt = BTMZConfig("B", 16, 8, iterations=5, benchmark="bt")
    bt_no = run_btmz(bt, NullLB()).makespan_ns
    bt_lb = run_btmz(bt, GreedyLB()).makespan_ns
    bt_gain = bt_no / bt_lb

    assert sp_gain < 1.1           # nothing much to win
    assert bt_gain > 1.3           # the dramatic case
    assert bt_gain > sp_gain


def test_sp_mz_static_balance_is_good():
    res = run_btmz(BTMZConfig("B", 16, 8, iterations=3, benchmark="sp"),
                   NullLB())
    assert res.imbalance_before < 1.15
