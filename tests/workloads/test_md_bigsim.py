"""Tests for the MD workload and the BigSim engine."""

import pytest

from repro.bigsim import BigSimEngine, TargetMachine
from repro.errors import ReproError
from repro.workloads.md import MDConfig, MDWorkload


def small_workload(dims=(4, 4, 4)):
    return MDWorkload(MDConfig(dims=dims))


def test_torus_neighbors():
    wl = small_workload()
    n = wl.neighbors(0)
    assert len(n) == 6
    assert all(0 <= x < 64 for x in n)
    # Coordinates round-trip.
    for c in range(64):
        assert wl.index(*wl.coords(c)) == c


def test_degenerate_torus_dedupes_neighbors():
    wl = MDWorkload(MDConfig(dims=(2, 2, 1)))
    # On a 2x2x1 torus, +x and -x wrap to the same cell.
    assert len(wl.neighbors(0)) < 6


def test_atoms_deterministic_and_jittered():
    wl = small_workload()
    a1 = [wl.atoms(c) for c in range(64)]
    a2 = [wl.atoms(c) for c in range(64)]
    assert a1 == a2                         # deterministic
    assert len(set(a1)) > 10                # varied
    mean = sum(a1) / len(a1)
    assert 0.6 * 500 < mean < 1.4 * 500


def test_workload_laws_positive():
    wl = small_workload()
    for c in range(64):
        assert wl.compute_ns(c) > 0
        assert wl.ghost_bytes(c) > 0
    assert wl.total_compute_ns() == sum(wl.compute_ns(c) for c in range(64))


def test_engine_validates_shapes():
    with pytest.raises(ReproError):
        BigSimEngine(2, TargetMachine(dims=(2, 2, 2)),
                     small_workload(dims=(4, 4, 4)))
    with pytest.raises(ReproError):
        BigSimEngine(2, TargetMachine(dims=(4, 4, 4)),
                     small_workload(), steps=0)


def test_bigsim_runs_and_reports():
    eng = BigSimEngine(4, TargetMachine(dims=(4, 4, 4)), small_workload(),
                       steps=2)
    res = eng.run()
    assert res.target_processors == 64
    assert res.threads_per_host_proc == 16.0
    assert res.host_ns_per_step > 0
    assert res.predicted_target_ns_per_step > 0
    # Prediction must cover at least the heaviest cell's compute.
    wl = eng.workload
    heaviest = max(wl.compute_ns(c) for c in range(64))
    assert res.predicted_target_ns_per_step >= heaviest


def test_bigsim_scales_with_host_processors():
    """Figure 11's shape: more simulating processors -> less time/step."""
    times = {}
    for p in (2, 4, 8):
        eng = BigSimEngine(p, TargetMachine(dims=(4, 4, 8)),
                           small_workload(dims=(4, 4, 8)), steps=2)
        times[p] = eng.run().host_ns_per_step
    assert times[2] > times[4] > times[8]
    # Near-linear: doubling processors cuts time by at least 1.5x.
    assert times[2] / times[4] > 1.5
    assert times[4] / times[8] > 1.5


def test_bigsim_prediction_independent_of_host_count():
    """Target-time prediction must not depend on how many host processors
    run the simulation — that is the whole point of BigSim."""
    preds = []
    for p in (2, 8):
        eng = BigSimEngine(p, TargetMachine(dims=(4, 4, 4)),
                           small_workload(), steps=2)
        preds.append(eng.run().predicted_target_ns_per_step)
    assert preds[0] == pytest.approx(preds[1])


def test_many_threads_one_host_processor():
    """The Section 4.4 feat in miniature: hundreds of target processors as
    user-level threads on a single simulating processor."""
    eng = BigSimEngine(1, TargetMachine(dims=(8, 8, 8)),
                       small_workload(dims=(8, 8, 8)), steps=1)
    res = eng.run()
    assert res.threads_per_host_proc == 512
    assert res.host_ns_per_step > 0
