"""Tests for the BT-MZ-like multi-zone workload."""

import pytest

from repro.balance import GreedyLB, NullLB
from repro.errors import ReproError
from repro.workloads.btmz import (BTMZ_CLASSES, BTMZConfig, make_zones,
                                  run_btmz, zone_rank_assignment)


def test_class_definitions():
    assert BTMZ_CLASSES["A"].num_zones == 16
    assert BTMZ_CLASSES["B"].num_zones == 64
    assert BTMZ_CLASSES["C"].num_zones == 256


@pytest.mark.parametrize("cls", ["S", "W", "A", "B"])
def test_zone_count_and_grid_conservation(cls):
    zones = make_zones(cls)
    spec = BTMZ_CLASSES[cls]
    assert len(zones) == spec.num_zones
    # x widths of one row tile the aggregate x dimension exactly.
    row = zones[:spec.x_zones]
    assert sum(z.nx for z in row) == spec.gx
    # Total points equal the aggregate grid.
    assert sum(z.points for z in zones) == spec.gx * spec.gy * spec.gz


@pytest.mark.parametrize("cls", ["A", "B", "C"])
def test_zone_size_ratio_about_20(cls):
    """BT-MZ's documented imbalance: max/min zone points ≈ 20."""
    zones = make_zones(cls)
    pts = [z.points for z in zones]
    ratio = max(pts) / min(pts)
    assert 14 < ratio < 28


def test_unknown_class_rejected():
    with pytest.raises(ReproError):
        make_zones("Z")


def test_assignment_covers_all_zones():
    zones = make_zones("B")
    for nprocs in (8, 16, 64):
        blocks = zone_rank_assignment(zones, nprocs)
        assert len(blocks) == nprocs
        flat = [z.index for b in blocks for z in b]
        assert flat == list(range(64))


def test_assignment_too_many_ranks_rejected():
    with pytest.raises(ReproError):
        zone_rank_assignment(make_zones("A"), 17)


def test_config_label():
    assert BTMZConfig("B", 16, 8).label == "B.16,8PE"


def test_lb_beats_no_lb():
    """The Figure 12 headline: thread migration reduces execution time."""
    cfg = BTMZConfig("A", 16, 8, iterations=4)
    no_lb = run_btmz(cfg, NullLB())
    with_lb = run_btmz(cfg, GreedyLB())
    assert with_lb.makespan_ns < no_lb.makespan_ns
    assert with_lb.migrations > 0
    assert no_lb.migrations == 0
    assert with_lb.imbalance_after < with_lb.imbalance_before


def test_same_class_same_pe_converges_with_lb():
    """Paper: 'for all three class B tests on 8 processors, the execution
    times after load balancing are about the same, while there is a
    dramatic variation ... before load balancing'."""
    results_lb = []
    results_no = []
    for nprocs in (16, 32, 64):
        cfg = BTMZConfig("B", nprocs, 8, iterations=6)
        results_no.append(run_btmz(cfg, NullLB()).makespan_ns)
        results_lb.append(run_btmz(cfg, GreedyLB()).makespan_ns)
    spread_no = max(results_no) / min(results_no)
    spread_lb = max(results_lb) / min(results_lb)
    assert spread_no > 1.5              # dramatic variation without LB
    assert spread_lb < 1.3              # about the same with LB
    assert spread_lb < spread_no


def test_virtualization_helps():
    """More ranks than PEs gives LB finer grains to move (Section 4.5:
    AMPI 'requires the number of AMPI migratable threads to be much larger
    than the actual number of processors')."""
    coarse = run_btmz(BTMZConfig("B", 8, 8, iterations=3), GreedyLB())
    fine = run_btmz(BTMZConfig("B", 32, 8, iterations=3), GreedyLB())
    assert fine.imbalance_after <= coarse.imbalance_after + 1e-9
