"""Unit tests for the flow CFG builder (repro.analysis.flow.cfg)."""

import ast
import textwrap

from repro.analysis.flow.cfg import (
    build_cfg,
    captured_mutations,
    classify_yield,
)


def func_node(src, name="f"):
    tree = ast.parse(textwrap.dedent(src))
    return next(n for n in ast.walk(tree)
                if isinstance(n, ast.FunctionDef) and n.name == name)


def cfg_of(src, name="f"):
    return build_cfg(func_node(src, name))


# -- yield classification ----------------------------------------------------

def test_classify_yield_directives():
    mod = ast.parse(
        'def f(th):\n'
        '    yield "yield"\n'
        '    yield "suspend"\n'
        '    yield ("io", 500)\n'
        '    yield 42\n'
        '    yield\n'
        '    yield from g()\n')
    yields = [n for n in ast.walk(mod)
              if isinstance(n, (ast.Yield, ast.YieldFrom))]
    kinds = [classify_yield(y) for y in yields]
    assert kinds == [("directive", "yield"), ("directive", "suspend"),
                     ("directive", "io"), ("bare", None), ("bare", None),
                     ("delegate", None)]


# -- block structure ---------------------------------------------------------

def test_suspend_splits_blocks():
    cfg = cfg_of('''
        def f(th):
            a = 1
            yield "suspend"
            b = 2
    ''')
    assert cfg.is_generator
    (sp,) = cfg.suspends
    assert sp.kind == "directive" and sp.directive == "suspend"
    assert sp.protected == ()
    # The statement after the suspend lives in a different block.
    before = cfg.block(sp.block)
    afters = [cfg.block(s) for s in before.succs]
    assert any(cfg.block(b.id).lines for b in afters)
    assert sp.line in before.lines


def test_straight_line_has_no_back_edges():
    cfg = cfg_of('''
        def f(th):
            a = 1
            if a:
                yield "yield"
            return a
    ''')
    assert cfg.back_edges == []


def test_while_loop_records_back_edge():
    cfg = cfg_of('''
        def f(th):
            n = 3
            while n:
                n -= 1
                yield "yield"
    ''')
    assert len(cfg.back_edges) == 1
    src, dst = cfg.back_edges[0]
    assert dst in cfg.block(src).succs
    assert cfg.block(dst).label == "while-header"


def test_for_loop_and_continue_back_edges():
    cfg = cfg_of('''
        def f(th):
            for i in range(4):
                if i == 2:
                    continue
                yield "yield"
    ''')
    headers = {dst for _src, dst in cfg.back_edges}
    assert len(cfg.back_edges) == 2  # loop-end + continue
    assert len(headers) == 1
    assert cfg.block(next(iter(headers))).label == "for-header"


def test_break_edges_to_loop_exit_not_header():
    cfg = cfg_of('''
        def f(th):
            while True:
                yield "suspend"
                break
    ''')
    # Only the structural body-end back edge; break is not a back edge.
    assert len(cfg.back_edges) == 1


def test_suspend_in_loop_counted_once():
    """Regression: compound-statement headers must not rescan bodies."""
    cfg = cfg_of('''
        def f(mpi):
            for i in range(3):
                if i:
                    yield from mpi.recv(i)
    ''')
    assert len(cfg.suspends) == 1
    assert cfg.suspends[0].kind == "delegate"
    assert cfg.suspends[0].target == "mpi.recv"


# -- protected regions -------------------------------------------------------

def test_try_finally_marks_suspend_protected():
    cfg = cfg_of('''
        def f(th):
            try:
                yield "suspend"
            finally:
                pass
    ''')
    (sp,) = cfg.suspends
    assert sp.protected == ("try/finally",)


def test_plain_try_except_body_is_unprotected():
    cfg = cfg_of('''
        def f(th):
            try:
                yield "suspend"
            except ValueError:
                pass
    ''')
    (sp,) = cfg.suspends
    assert sp.protected == ()


def test_except_handler_suspend_is_protected():
    cfg = cfg_of('''
        def f(th):
            try:
                pass
            except ValueError:
                yield "suspend"
    ''')
    (sp,) = cfg.suspends
    assert sp.protected == ("except",)


def test_with_marks_suspend_protected_and_nesting_order():
    cfg = cfg_of('''
        def f(th):
            with lock():
                try:
                    yield "suspend"
                finally:
                    pass
            yield "yield"
    ''')
    protected = [sp for sp in cfg.suspends if sp.protected]
    clean = [sp for sp in cfg.suspends if not sp.protected]
    assert len(protected) == 1 and len(clean) == 1
    # Outermost-first tuple: with encloses the try/finally.
    assert protected[0].protected == ("with", "try/finally")


def test_finally_body_suspend_is_protected():
    cfg = cfg_of('''
        def f(th):
            try:
                pass
            finally:
                yield "suspend"
    ''')
    (sp,) = cfg.suspends
    assert sp.protected == ("try/finally",)


# -- nested scopes -----------------------------------------------------------

def test_nested_def_and_lambda_yields_are_not_counted():
    cfg = cfg_of('''
        def f(th):
            def inner(th2):
                yield "suspend"
            g = lambda x: x + 1
            total = sum(x for x in range(3))
            yield "yield"
    ''')
    assert len(cfg.suspends) == 1
    assert cfg.suspends[0].directive == "yield"


def test_nested_yield_from_chain_targets():
    cfg = cfg_of('''
        def f(mpi):
            yield from step_one(mpi)
            yield from mpi.barrier()
            yield from helpers.finish(mpi)
    ''')
    assert [sp.target for sp in cfg.delegations()] == [
        "step_one", "mpi.barrier", "helpers.finish"]


def test_lambda_cfg_is_trivial():
    tree = ast.parse("g = lambda x: x + 1")
    lam = next(n for n in ast.walk(tree) if isinstance(n, ast.Lambda))
    cfg = build_cfg(lam)
    assert not cfg.is_generator and cfg.suspends == []
    assert cfg.exit in cfg.block(cfg.entry).succs


# -- closure captures --------------------------------------------------------

def test_captured_mutation_across_suspend_detected():
    muts = captured_mutations(func_node('''
        def f(th):
            count = 0
            def peek():
                return count
            yield "suspend"
            count = count + 1
    '''))
    (m,) = muts
    assert m.name == "count"
    assert m.store_line > m.suspend_line


def test_capture_without_rebinding_is_clean():
    assert captured_mutations(func_node('''
        def f(th):
            count = 0
            def peek():
                return count
            yield "suspend"
            return peek
    ''')) == []


def test_rebinding_without_capture_is_clean():
    assert captured_mutations(func_node('''
        def f(th):
            count = 0
            yield "suspend"
            count = count + 1
    ''')) == []


def test_parameter_capture_rebound_after_suspend_detected():
    muts = captured_mutations(func_node('''
        def f(th, size):
            report = lambda: size
            yield "suspend"
            size = size * 2
            return report
    '''))
    assert [m.name for m in muts] == ["size"]
