"""CLI smoke tests: exit codes and stable JSON output.

The contract: 0 = analyzed cleanly, 1 = unsuppressed findings,
2 = usage error.  JSON output must be byte-stable for a fixed tree so
CI diffs are meaningful.
"""

import json
import os
import subprocess
import sys

import pytest

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
FIXTURES = os.path.join("tests", "analysis", "fixtures")
CLEAN_TARGET = os.path.join("src", "repro", "analysis")


def run_cli(*args, module=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro.analysis", *args] if module else \
        [sys.executable, *args]
    return subprocess.run(cmd, capture_output=True, text=True,
                          cwd=ROOT, env=env)


def test_exit_0_on_clean_tree():
    proc = run_cli(CLEAN_TARGET)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "migralint: clean" in proc.stdout


def test_exit_1_on_findings():
    proc = run_cli(FIXTURES)
    assert proc.returncode == 1
    assert "MIG00" in proc.stdout


def test_exit_2_on_no_paths():
    proc = run_cli()
    assert proc.returncode == 2
    assert "no paths" in proc.stderr


def test_exit_2_on_missing_path():
    proc = run_cli("no/such/dir")
    assert proc.returncode == 2
    assert "no such path" in proc.stderr


def test_exit_2_on_unknown_rule():
    proc = run_cli("--select", "MIG999", FIXTURES)
    assert proc.returncode == 2
    assert "unknown rule id" in proc.stderr


def test_exit_2_on_bad_flag():
    proc = run_cli("--format", "xml", FIXTURES)
    assert proc.returncode == 2


def test_list_rules():
    proc = run_cli("--list-rules")
    assert proc.returncode == 0
    for rid in ("MIG001", "MIG002", "MIG003", "MIG004", "MIG005",
                "KRN001", "EXC001", "OBS001",
                "FLW001", "FLW002", "FLW003", "DET001"):
        assert rid in proc.stdout


def test_select_restricts_rules():
    proc = run_cli("--select", "MIG004", "--format", "json", FIXTURES)
    doc = json.loads(proc.stdout)
    assert doc["findings"]
    assert {f["rule"] for f in doc["findings"]} == {"MIG004"}


def test_json_output_is_stable_and_well_formed():
    first = run_cli("--format", "json", FIXTURES)
    second = run_cli("--format", "json", FIXTURES)
    assert first.returncode == 1
    assert first.stdout == second.stdout
    doc = json.loads(first.stdout)
    assert doc["version"] == 1
    assert set(doc["summary"]) == {"total", "active", "suppressed"}
    assert doc["summary"]["active"] > 0 and doc["summary"]["suppressed"] > 0
    for f in doc["findings"]:
        assert set(f) == {"rule", "severity", "path", "line", "message",
                          "suppressed"}
    # Deterministically sorted by (path, line, rule).
    keys = [(f["path"], f["line"], f["rule"]) for f in doc["findings"]]
    assert keys == sorted(keys)


def test_human_output_pins_rule_file_line():
    proc = run_cli("--select", "MIG001",
                   os.path.join(FIXTURES, "mig001_pup.py"))
    assert proc.returncode == 1
    # Compiler-style location prefix on every finding line.
    body = proc.stdout.strip().splitlines()
    assert all(":" in line and "MIG001" in line for line in body[:-1])
    assert "mig001_pup.py:16" in proc.stdout   # the marked `dropped` line


def test_tools_wrapper_runs_without_install():
    proc = run_cli(os.path.join("tools", "migralint.py"), "--list-rules",
                   module=False)
    assert proc.returncode == 0
    assert "MIG005" in proc.stdout


@pytest.mark.parametrize("flag", ["-h", "--help"])
def test_help_exits_zero(flag):
    proc = run_cli(flag)
    assert proc.returncode == 0
    assert "migralint" in proc.stdout
