"""The compilability report: coverage, determinism, the checked-in baseline.

``results/flow_report.json`` is a contract: the future thread→event
compiler must handle every body it lists as COMPILABLE.  These tests
pin (a) that every thread body under the scan roots is classified,
(b) that two runs are byte-identical, and (c) that the checked-in
bytes match a fresh run — so the file cannot silently drift from the
tree it describes.
"""

import json
import os
import subprocess
import sys
import textwrap

from repro.analysis.flow import (
    COMPILABLE,
    NEEDS_REWRITE,
    OPAQUE,
    build_flow_report,
    classify_bodies,
    render_flow_human,
    render_flow_json,
)

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))
BASELINE = os.path.join(ROOT, "results", "flow_report.json")


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "repro.analysis", "flowreport", *args]
    return subprocess.run(cmd, capture_output=True, text=True,
                          cwd=ROOT, env=env)


# -- the real tree -----------------------------------------------------------

def test_every_body_in_scan_roots_is_classified():
    doc = build_flow_report(ROOT)
    assert doc["summary"]["bodies"] == len(doc["bodies"]) > 0
    for b in doc["bodies"]:
        assert b["classification"] in (COMPILABLE, NEEDS_REWRITE, OPAQUE)
        # Every NEEDS-REWRITE body must say exactly why, with a rule+line.
        if b["classification"] == NEEDS_REWRITE:
            assert b["blockers"]
            for blocker in b["blockers"]:
                assert blocker["rule"].startswith("FLW")
                assert blocker["line"] > 0
        if b["classification"] == OPAQUE:
            assert b["opaque"]


def test_at_least_one_body_is_compilable():
    doc = build_flow_report(ROOT)
    assert doc["summary"][COMPILABLE] >= 1


def test_known_bodies_are_present():
    doc = build_flow_report(ROOT)
    have = {(b["path"], b["qualname"]) for b in doc["bodies"]}
    for expected in [
        ("examples/quickstart.py", "main.worker"),
        ("examples/migration_tour.py", "body"),
        ("src/repro/workloads/stencil.py", "ampi_stencil_main.main"),
        ("src/repro/workloads/btmz.py", "make_btmz_main.main"),
        ("src/repro/chaos/workloads.py", "SampleSortChaosWorkload.build.main"),
    ]:
        assert expected in have, expected


def test_suspending_interface_is_reported():
    doc = build_flow_report(ROOT)
    ctx = doc["suspending_interface"]["AmpiContext"]
    assert "recv" in ctx and "barrier" in ctx
    assert "send" not in ctx


def test_report_is_deterministic():
    first = render_flow_json(build_flow_report(ROOT))
    second = render_flow_json(build_flow_report(ROOT))
    assert first == second


def test_checked_in_baseline_matches_tree():
    """results/flow_report.json must be regenerated when bodies change.

    On drift the failure names the bodies that appeared, vanished, or
    reclassified — the compiler consumes the *live* analysis, so a stale
    contract document is the only thing this test protects.
    """
    with open(BASELINE, "r", encoding="utf-8") as fh:
        checked_in = fh.read()
    fresh = render_flow_json(build_flow_report(ROOT))
    if fresh == checked_in:
        return
    old = {(b["path"], b["qualname"]): b
           for b in json.loads(checked_in)["bodies"]}
    new = {(b["path"], b["qualname"]): b
           for b in json.loads(fresh)["bodies"]}
    drift = []
    for key in sorted(new.keys() - old.keys()):
        drift.append(f"new body {key[0]}:{key[1]} "
                     f"[{new[key]['classification']}]")
    for key in sorted(old.keys() - new.keys()):
        drift.append(f"removed body {key[0]}:{key[1]}")
    for key in sorted(old.keys() & new.keys()):
        if old[key] != new[key]:
            drift.append(f"changed body {key[0]}:{key[1]} "
                         f"({old[key]['classification']} -> "
                         f"{new[key]['classification']})")
    raise AssertionError(
        "results/flow_report.json is stale — regenerate with "
        "`python -m repro.analysis flowreport --out "
        "results/flow_report.json`:\n  "
        + "\n  ".join(drift or ["(metadata-only drift)"]))


def test_human_rendering_covers_every_body():
    doc = build_flow_report(ROOT)
    text = render_flow_human(doc)
    for b in doc["bodies"]:
        assert f"{b['path']}:{b['line']}" in text
    assert f"{doc['summary']['bodies']} bodies:" in text


# -- synthetic trees ---------------------------------------------------------

def write_tree(tmp_path, files):
    for rel, src in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(src))
    return str(tmp_path)


def test_needs_rewrite_body_carries_blockers(tmp_path):
    root = write_tree(tmp_path, {"examples/bad.py": '''
        def body(th):
            with open("log") as f:
                yield "suspend"
            yield 42
    '''})
    (report,) = classify_bodies(root, interface={})
    assert report.classification == NEEDS_REWRITE
    kinds = {b.kind for b in report.blockers}
    assert kinds == {"suspend-in-with", "bare-yield"}
    assert all(b.rule == "FLW002" for b in report.blockers)
    assert sorted(b.line for b in report.blockers) == [4, 5]


def test_opaque_body_names_the_unresolved_callee(tmp_path):
    root = write_tree(tmp_path, {"examples/mystery.py": '''
        def body(th):
            yield from unknowable(th)
    '''})
    (report,) = classify_bodies(root, interface={})
    assert report.classification == OPAQUE
    assert any("unknowable" in reason for reason in report.opaque)


def test_compilable_synthetic_body(tmp_path):
    root = write_tree(tmp_path, {"examples/good.py": '''
        def helper(th):
            yield "suspend"

        def body(th):
            yield "yield"
            yield from helper(th)
    '''})
    reports = classify_bodies(root, interface={})
    by_name = {r.qualname: r for r in reports}
    assert by_name["body"].classification == COMPILABLE
    assert by_name["body"].delegations == 1


# -- CLI ---------------------------------------------------------------------

def test_cli_human_smoke():
    proc = run_cli()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "bodies:" in proc.stdout
    assert "examples/quickstart.py" in proc.stdout


def test_cli_json_matches_baseline():
    proc = run_cli("--json")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    with open(BASELINE, "r", encoding="utf-8") as fh:
        assert proc.stdout == fh.read()


def test_cli_out_writes_file(tmp_path):
    out = tmp_path / "report.json"
    proc = run_cli("--out", str(out))
    assert proc.returncode == 0, proc.stdout + proc.stderr
    doc = json.loads(out.read_text())
    assert doc["report"] == "flowreport" and doc["version"] == 1


def test_cli_check_passes_on_clean_tree():
    proc = run_cli("--check")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "bodies COMPILABLE" in proc.stderr


def test_cli_check_fails_naming_the_offender(tmp_path):
    root = write_tree(tmp_path, {"examples/bad.py": '''
        def body(th):
            with open("log") as f:
                yield "suspend"
    '''})
    proc = run_cli("--check", "--root", root)
    assert proc.returncode == 2, proc.stdout + proc.stderr
    assert "not COMPILABLE" in proc.stderr
    assert "examples/bad.py" in proc.stderr
    assert "body" in proc.stderr
    assert "FLW002" in proc.stderr or "suspend-in-with" in proc.stderr
