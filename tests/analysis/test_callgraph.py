"""Unit tests for interprocedural suspend inference (repro.analysis.flow.callgraph)."""

import ast
import textwrap

from repro.analysis.flow.callgraph import CallGraph, runtime_interface


def graph_of(*modules, interface=None):
    """Build a CallGraph from (path, source) pairs with a stub interface."""
    g = CallGraph(interface={} if interface is None else interface)
    for path, src in modules:
        g.add_module(path, ast.parse(textwrap.dedent(src)))
    g.finalize()
    return g


def fn(graph, path, qualname):
    return graph.funcs[f"{path}::{qualname}"]


# -- fixed-point propagation -------------------------------------------------

def test_directive_yield_is_known_suspending():
    g = graph_of(("m.py", '''
        def body(th):
            yield "suspend"
    '''))
    f = fn(g, "m.py", "body")
    assert f.suspends and f.known and not f.assumed
    assert f.protocol


def test_suspension_propagates_through_delegation_chain():
    g = graph_of(("m.py", '''
        def leaf(th):
            yield "suspend"

        def mid(th):
            yield from leaf(th)

        def top(th):
            yield from mid(th)
    '''))
    for name in ("leaf", "mid", "top"):
        f = fn(g, "m.py", name)
        assert f.suspends and f.known and not f.assumed, name
        assert f.protocol, name


def test_unknown_callee_assumed_suspending():
    g = graph_of(("m.py", '''
        def body(th):
            yield from mystery(th)
    '''))
    f = fn(g, "m.py", "body")
    assert f.suspends and not f.known and f.assumed
    # Protocol stays narrow: an unknown callee is not *proven* protocol.
    assert not f.protocol


def test_plain_call_does_not_propagate_suspension():
    g = graph_of(("m.py", '''
        def leaf(th):
            yield "suspend"

        def body(th):
            leaf  # a reference, not a delegation
            x = 1
            return x
    '''))
    f = fn(g, "m.py", "body")
    assert not f.suspends and not f.protocol


def test_bare_yield_is_known_but_not_protocol():
    g = graph_of(("m.py", '''
        def gen(items):
            for item in items:
                yield item

        def consumer(items):
            yield from gen(items)
    '''))
    assert fn(g, "m.py", "gen").known
    assert not fn(g, "m.py", "gen").protocol
    # Delegating to a bare generator does not make the caller protocol.
    assert not fn(g, "m.py", "consumer").protocol
    assert fn(g, "m.py", "consumer").suspends  # sound bit still propagates


# -- resolution --------------------------------------------------------------

def test_injected_interface_resolution():
    iface = {"AmpiContext": {"fake_wait": True, "fake_poke": False}}
    g = graph_of(("m.py", '''
        def waits(mpi):
            yield from mpi.fake_wait()

        def pokes(mpi):
            yield from mpi.fake_poke()
    '''), interface=iface)
    w = fn(g, "m.py", "waits")
    p = fn(g, "m.py", "pokes")
    assert w.suspends and w.known and w.protocol
    assert not p.suspends and not p.protocol
    assert w.resolved[0][1].kind == "interface"


def test_self_method_resolution():
    g = graph_of(("m.py", '''
        class Worker:
            def _step(self, th):
                yield "suspend"

            def run(self, th):
                yield from self._step(th)
    '''))
    f = fn(g, "m.py", "Worker.run")
    assert f.suspends and f.known and f.protocol
    assert f.resolved[0][1].kind == "func"


def test_cross_module_from_import_resolution():
    g = graph_of(
        ("pkg/helpers.py", '''
            def pause(th):
                yield "suspend"
        '''),
        ("pkg/main.py", '''
            from pkg.helpers import pause

            def body(th):
                yield from pause(th)
        '''),
    )
    f = fn(g, "pkg/main.py", "body")
    assert f.suspends and f.known and not f.assumed


def test_nested_def_resolves_before_module_scope():
    g = graph_of(("m.py", '''
        def helper(th):
            yield "suspend"

        def body(th):
            def helper(th2):
                yield "yield"
            yield from helper(th)
    '''))
    f = fn(g, "m.py", "body")
    ((_y, res),) = f.resolved
    assert res.kind == "func" and res.key == "m.py::body.helper"


# -- cycles ------------------------------------------------------------------

def test_mutual_suspending_recursion_detected():
    g = graph_of(("m.py", '''
        def ping(th):
            yield "suspend"
            yield from pong(th)

        def pong(th):
            yield from ping(th)
    '''))
    (cycle,) = g.suspending_cycles()
    assert {g.funcs[k].name for k in cycle} == {"ping", "pong"}


def test_self_recursion_detected():
    g = graph_of(("m.py", '''
        def drain(th):
            yield "suspend"
            yield from drain(th)
    '''))
    (cycle,) = g.suspending_cycles()
    assert [g.funcs[k].name for k in cycle] == ["drain"]


def test_non_suspending_cycle_not_reported():
    g = graph_of(("m.py", '''
        def even(items):
            yield from odd(items)

        def odd(items):
            yield from even(items)
    '''))
    assert g.suspending_cycles() == []


def test_acyclic_chain_not_reported():
    g = graph_of(("m.py", '''
        def leaf(th):
            yield "suspend"

        def top(th):
            yield from leaf(th)
    '''))
    assert g.suspending_cycles() == []


# -- the real runtime interface ----------------------------------------------

def test_runtime_interface_collectives_suspend():
    iface = runtime_interface()
    ctx = iface["AmpiContext"]
    for method in ("recv", "barrier", "allreduce", "wait", "migrate"):
        assert ctx[method], method


def test_runtime_interface_posts_do_not_suspend():
    iface = runtime_interface()
    ctx = iface["AmpiContext"]
    for method in ("send", "isend", "irecv", "iprobe", "charge"):
        assert not ctx[method], method


def test_known_receiver_binds_real_interface():
    g = graph_of(("m.py", '''
        def body(mpi):
            yield from mpi.recv(0)
            mpi.send(1, "x")
    '''), interface=runtime_interface())
    f = fn(g, "m.py", "body")
    assert f.suspends and f.known and f.protocol
