"""FLW001 fixture: suspending calls whose directive stream is discarded.

A plain call to a suspending generator builds the generator object and
throws it away — nothing suspends, nothing errors.  ``yield f()`` is
the same bug in yield clothing (and also a non-directive yield, so
FLW002 fires alongside).
"""


def blocking_helper(th):
    """Directive yield makes this helper part of the scheduler protocol."""
    yield "suspend"


def chain(th):
    yield from blocking_helper(th)


def body(th):
    blocking_helper(th)  # expect: FLW001
    yield blocking_helper(th)  # expect: FLW001, FLW002
    yield from blocking_helper(th)
    yield "yield"


def rank_main(mpi):
    mpi.barrier()  # expect: FLW001
    yield mpi.recv(0)  # expect: FLW001, FLW002
    yield from mpi.recv(0)
    mpi.send(1, "payload")
    handle = blocking_helper
    yield from chain(mpi)
    spawn(lambda th: blocking_helper(th))
    return handle


def spawn(factory):
    return factory


def suppressed_body(th):
    # Driving the helper by hand through a local scheduler stub.
    # migralint: disable=FLW001
    blocking_helper(th)
    yield "yield"
