"""FLW002 fixture: constructs the thread→event split cannot cut.

One function per blocker class: suspend in try/finally, suspend in
with, suspend under except, bare non-directive yield, closure capture
rebound across a suspend, and recursion through a suspending cycle —
plus clean twins showing the splittable versions.
"""


def worker(th):
    yield "suspend"


def finally_body(th):
    try:
        yield "suspend"  # expect: FLW002
    finally:
        release()


def with_body(th):
    with acquire() as resource:
        yield "yield"  # expect: FLW002
        use(resource)
    yield "suspend"


def except_body(th):
    try:
        attempt()
    except ValueError:
        yield "suspend"  # expect: FLW002
    yield "yield"


def plain_try_body(th):
    try:
        yield "suspend"
    except ValueError:
        pass
    yield "yield"


def bare_body(th):
    yield 42  # expect: FLW002
    yield "yield"


def io_body(th):
    yield ("io", 1000)
    yield "yield"


def closure_body(th):
    count = 0

    def peek():
        return count

    yield "suspend"
    count = count + 1  # expect: FLW002
    return peek


def threaded_closure_body(th):
    total = 0
    yield "suspend"
    total = total + 1
    return total


def recursive_body(th):  # expect: FLW002
    yield "suspend"
    yield from recursive_body(th)


def delegating_body(th):
    with acquire():
        yield from worker(th)  # expect: FLW002


def text_lines():
    yield "header"
    yield "detail"


def suppressed_body(th):
    try:
        # Cleanup is idempotent; rewrite scheduled with the compiler PR.
        # migralint: disable=FLW002
        yield "suspend"
    finally:
        release()


def release():
    return None


def acquire():
    return None


def attempt():
    return None


def use(resource):
    return resource
