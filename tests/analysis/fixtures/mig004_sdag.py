"""MIG004 fixture: SDAG discipline violations.

This module is only ever parsed, never imported.
"""

import time

from repro.charm import Atomic, Chare, Overlap, When


class BadYields(Chare):
    """Yields a raw string: the FSM accepts only directives."""

    def lifecycle(self):
        yield "strip_from_left"  # expect: MIG004


class BadBlocking(Chare):
    """Blocks the whole processor inside an atomic section."""

    def lifecycle(self):
        time.sleep(0.1)  # expect: MIG004
        yield When("go")


class GoodLifecycle(Chare):
    """Directive-only yields, non-blocking atomics: no findings."""

    def lifecycle(self):
        left, right = yield Overlap(When("left"), When("right"))
        total = yield Atomic(lambda: left + right)
        self.charge(float(total))


class SuppressedTimer(Chare):
    """Intentional bad-style example kept for the documentation."""

    def lifecycle(self):
        # Docs counter-example: what NOT to yield from an SDAG method.
        yield ("io", 1000.0)  # migralint: disable=MIG004
