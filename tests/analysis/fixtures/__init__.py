# Fixture modules are analyzed (AST only), never imported or executed.
