"""OBS001 fixture: module-global runtime state with clean counterparts.

OBS001 is path-scoped to the runtime packages (``repro/sim``,
``repro/core``, ``repro/kernel``, ``repro/obs``), so this fixture lives
under a ``repro/sim/`` subdirectory to land inside the scope — the rule
must stay silent about test helpers and analysis code elsewhere.
"""

_MESSAGE_COUNTER = 0                              # expect: OBS001


def next_message_id():
    # The original replay bug: a process-lifetime counter keeps counting
    # across runs, so the second identical run sees different ids.
    global _MESSAGE_COUNTER
    _MESSAGE_COUNTER += 1
    return _MESSAGE_COUNTER


HANDLERS = {}                                     # expect: OBS001


def register_handler(tag, fn):
    HANDLERS[tag] = fn


IN_FLIGHT = []                                    # expect: OBS001


def track(msg):
    IN_FLIGHT.append(msg)


# Clean: immutable module constants are identical in every run.
DEFAULT_LATENCY_NS = 6_500.0
TAGS = ("ampi", "thmig")

# Clean: a module-scope dict no function body ever mutates.
LAYOUT = {"stack_pages": 8}


def read_only():
    return LAYOUT["stack_pages"], DEFAULT_LATENCY_NS


class PerRunState:
    """Clean: state on a per-run object resets with each construction."""

    def __init__(self):
        self.counter = 0
        self.registry = {}

    def bump(self):
        self.counter += 1
        self.registry["last"] = self.counter


# One consciously-suppressed case, as every fixture carries — the
# write-once-at-import registry pattern, justified where it is bound:
# migralint: disable=OBS001
PLATFORM_TABLE = {}


def _register(profile):
    PLATFORM_TABLE[profile] = profile
    return profile
