"""DET001 fixture: wall-clock and unseeded RNG in runtime code.

Lives under a ``repro/sim/`` directory because DET001 is path-scoped to
the replay-deterministic runtime packages.  Every nondeterminism source
is flagged; the seeded/instance-RNG twins stay clean.
"""

import random
import time
from random import Random
from time import perf_counter


def sample_latency(seed):
    rng = random.Random(seed)
    wait = rng.random()
    t0 = time.time()  # expect: DET001
    t1 = perf_counter()  # expect: DET001
    jitter = random.random()  # expect: DET001
    fallback = Random()  # expect: DET001
    good = Random(seed + 1)
    return t0 + t1 + jitter + wait + fallback.random() + good.random()


def shuffle_ranks(ranks, seed):
    random.shuffle(ranks)  # expect: DET001
    rng = random.Random(seed)
    rng.shuffle(ranks)
    return ranks


def wait_for_worker(proc):
    time.sleep(0.1)  # expect: DET001
    return proc


def profiled(seed):
    # Host-side profiling is the sanctioned exception (cf. PhaseProfiler).
    # migralint: disable=DET001
    t0 = time.perf_counter()
    return t0 + seed
