"""FLW003 fixture: private suspending helpers nothing references.

Dead suspend surface is a *warning*: the helper still parses, still
looks like protocol code, but no flow of control can reach it.  Public
helpers are assumed to have cross-module callers and stay clean.
"""


def _dead_helper(th):  # expect: FLW003
    yield "suspend"


def _live_helper(th):
    yield "suspend"


def body(th):
    yield from _live_helper(th)


def factory():
    def orphan(th):  # expect: FLW003
        yield "suspend"

    def used(th):
        yield "yield"

    return used


def public_helper(th):
    yield "suspend"


__all__ = ["body", "public_helper", "_exported_helper"]


def _exported_helper(th):
    yield "suspend"


# Kept as the reference decoding path while the binary one stabilises.
# migralint: disable=FLW003
def _suppressed_helper(th):
    yield "suspend"
