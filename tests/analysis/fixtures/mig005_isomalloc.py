"""MIG005 fixture: isomalloc addresses escaping into host containers.

The escaping lines also trip MIG002 (the containers are unprivatized
module globals) — both ids are expected there.  This module is only
ever parsed, never imported.
"""

shared_addrs = []
ADDR_BOOK = {}


def bad_append(th):
    """An isomalloc address captured by a module-level list."""
    block = th.malloc(64)
    shared_addrs.append(block)  # expect: MIG002, MIG005
    yield "suspend"
    th.free(block)


def bad_direct_store(th):
    """An allocator result stored straight into a module-level dict."""
    ADDR_BOOK[th.name] = th.malloc(16)  # expect: MIG002, MIG005
    yield "suspend"


def good_local(th):
    """Addresses kept in the thread's own migratable state: fine."""
    block = th.malloc(64)
    th.write_word(block, 1)
    yield "suspend"
    th.free(block)


def suppressed_probe(th):
    """Intentional: a diagnostics table cleared before any migration."""
    probe = th.malloc(8)
    # Probe addresses are only compared for leak detection, never deref'd.
    shared_addrs.append(probe)  # migralint: disable=MIG002,MIG005
    yield "yield"
