"""MIG003 fixture: host-process state held in migratable contexts.

This module is only ever parsed, never imported.
"""

import threading

from repro.charm import Chare


class BadLockChare(Chare):
    """A kernel lock stored on a migratable object."""

    def setup(self):
        self.guard = threading.Lock()  # expect: MIG003


class BadFileChare(Chare):
    """An open file handle stored on a migratable object."""

    def setup(self):
        self.log = open("/tmp/chare.log", "a")  # expect: MIG003


def bad_body(th):
    """A file handle held in a local across a suspension point."""
    f = open("state.bin", "rb")  # expect: MIG003
    yield "suspend"
    f.close()


def bad_with_body(th):
    """A with-block spanning a yield: the handle outlives residency."""
    with open("trace.log", "w") as out:  # expect: MIG003
        yield "yield"  # expect: FLW002
        out.write("resumed")


def good_body(th):
    """Scoped host I/O fully between suspension points is fine."""
    with open("input.bin", "rb") as f:
        data = f.read()
    th.charge(float(len(data)))
    yield "suspend"


def suppressed_body(th):
    """Intentional: a debugging tap used only in non-migrating runs."""
    # Diagnostic-only handle; this body is pinned to its home processor.
    tap = open("/dev/null", "w")  # migralint: disable=MIG003
    yield "yield"
    tap.close()
