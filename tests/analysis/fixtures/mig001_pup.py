"""MIG001 fixture: pup-completeness violations, a clean class, a suppression.

Lines carrying expect-markers are where the analyzer must report;
everything else must stay silent.  This module is only ever parsed.
"""

from repro.core.pup import pup_register


@pup_register
class BadDropsField:
    """``dropped`` is assigned in __init__ but never packed."""

    def __init__(self):
        self.kept = 1
        self.dropped = 2.0  # expect: MIG001

    def pup(self, p):
        self.kept = p.int(self.kept)


@pup_register
class BadPhantomField:
    """pup() traverses a field __init__ never creates."""

    def __init__(self):
        self.real = 1

    def pup(self, p):  # expect: MIG001
        self.real = p.int(self.real)
        self.phantom = p.int(self.phantom)


@pup_register
class BadOrderMismatch:
    """Pack and unpack branches visit the fields in different orders."""

    def __init__(self):
        self.a = 1
        self.b = 2

    def pup(self, p):
        if p.is_packing:  # expect: MIG001
            self.a = p.int(self.a)
            self.b = p.int(self.b)
        else:
            self.b = p.int(self.b)
            self.a = p.int(self.a)


@pup_register
class GoodRoundTrip:
    """Complete, symmetric traversal: no findings."""

    def __init__(self):
        self.x = 1
        self.tags = []

    def pup(self, p):
        self.x = p.int(self.x)
        self.tags = p.list_int(self.tags)


@pup_register
class SuppressedCache:
    """A derived cache deliberately left out of pup(), with justification."""

    def __init__(self):
        self.x = 1
        # Rebuilt lazily on first use after migration; packing it would
        # ship redundant bytes.
        self.cache = None  # migralint: disable=MIG001

    def pup(self, p):
        self.x = p.int(self.x)
