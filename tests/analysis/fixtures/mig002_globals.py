"""MIG002 fixture: unprivatized module globals in migratable bodies.

This module is only ever parsed, never imported.
"""

from repro.charm import Chare, When

live_counters = {}
FROZEN_CONFIG = (64, 128)


def bad_body(th):
    """A thread body mutating a shared module global: the swap-global race."""
    live_counters["hits"] = live_counters.get("hits", 0) + 1  # expect: MIG002
    yield "yield"


class BadChare(Chare):
    """An SDAG method reading the same shared mutable."""

    def lifecycle(self):
        msg = yield When("go")
        live_counters[self.thisIndex] = msg  # expect: MIG002


def good_body(th):
    """Locals and immutable module constants are fine."""
    tally = {}
    tally["hits"] = FROZEN_CONFIG[0]
    yield "yield"
    th.charge(float(tally["hits"]))


def good_privatized_body(th):
    """The blessed route: globals via the thread's swapped-in GOT."""
    th.global_write_int("counter", th.global_read_int("counter") + 1)
    yield "yield"


def suppressed_body(th):
    """Intentional: the test harness reads this after the run completes."""
    # Harness-side result collection; the thread never migrates after this.
    live_counters["done"] = True  # migralint: disable=MIG002
    yield "suspend"
