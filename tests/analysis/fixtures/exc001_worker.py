"""EXC001 fixture: worker-purity breaks with clean counterparts.

A module that imports multiprocessing is a worker module: cells it
ships must stay plain data, targets must be module-level, and runtimes
must be constructed per cell inside the entry point.
"""

import multiprocessing

import pickle                                     # expect: EXC001
from pickle import dumps                          # expect: EXC001
import json                                       # clean: plain-data only

from repro.chaos import ChaosRunner


def run_cell(params, seed):
    # Clean: the entry point rebuilds its runtime through a public
    # constructor, from plain params.
    runner = ChaosRunner(params["workload"])
    return {"seed": seed, "blob": json.dumps(params)}


WARM_RUNNER = ChaosRunner("stencil")              # expect: EXC001


def launch(pool):
    def closure_target(cell):
        return cell

    a = multiprocessing.Process(target=closure_target)    # expect: EXC001
    b = multiprocessing.Process(target=lambda: 0)         # expect: EXC001
    c = multiprocessing.Process(target=run_cell)          # clean target
    d = pool.submit(run_cell, {})                         # clean target
    return a, b, c, d


# One consciously-suppressed case, as every fixture carries:
# migralint: disable=EXC001
SUPPRESSED_RUNNER = ChaosRunner("stencil")
