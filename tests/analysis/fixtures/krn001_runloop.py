"""KRN001 fixture: heapq use and hand-rolled run loops outside the kernel.

Every line the analyzer must flag carries an expect marker; the clean
cases at the bottom must stay silent.
"""

import heapq  # expect: KRN001
from heapq import heappush  # expect: KRN001
from collections import deque


def schedule_both_ways(pending, item):
    heapq.heappush(pending, item)  # expect: KRN001
    heappush(pending, item)  # expect: KRN001
    return heapq.heappop(pending)  # expect: KRN001


def drain(ready):
    while ready:
        thread = ready.popleft()  # expect: KRN001
        thread.run()


class Scheduler:
    def __init__(self):
        self.run_queue = []
        self.events = deque()

    def loop(self):
        while self.run_queue:
            ev = self.run_queue.pop(0)  # expect: KRN001
            ev.fire()

    def loop_nested(self):
        while True:
            while self.events:
                self.events.popleft()()  # expect: KRN001


def suppressed_heapify(items):
    # The one sanctioned escape hatch, for the suppression test.
    heapq.heapify(items)  # migralint: disable=KRN001


# -- clean cases ------------------------------------------------------------

def sdag_style_buffer_drain(buf, count):
    """A bounded message-buffer drain is not a run loop."""
    got = []
    while buf and len(got) < count:
        got.append(buf.popleft())
    return got


def stack_pop_is_fine(stack):
    while stack:
        stack.pop()


def popleft_outside_a_loop(queue_like):
    """Single dequeue, no loop: not a dispatch loop."""
    if queue_like:
        return queue_like.popleft()
    return None
