"""The shipped rules against their fixture modules.

Each fixture marks every line the analyzer must flag with
``# expect: RULE[, RULE]``; the test asserts the *exact* set of
(line, rule) pairs — so a rule that under-reports (misses a break) or
over-reports (flags the clean cases) both fail.  Each fixture also
carries one suppressed case, which must surface as ``suppressed=True``
without counting as an active finding.
"""

import os
import re

import pytest

from repro.analysis import all_rules, analyze_file, analyze_source

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

_EXPECT_RE = re.compile(r"#\s*expect:\s*([A-Z0-9,\s]+)")


def expected_findings(path):
    out = []
    with open(path) as fh:
        for lineno, text in enumerate(fh, start=1):
            m = _EXPECT_RE.search(text)
            if m:
                for rid in m.group(1).split(","):
                    out.append((lineno, rid.strip()))
    return sorted(out)


FIXTURE_CASES = [
    ("exc001_worker.py", "EXC001"),
    ("flw001_lost_delegation.py", "FLW001"),
    ("flw002_unsplittable.py", "FLW002"),
    ("flw003_dead_surface.py", "FLW003"),
    ("krn001_runloop.py", "KRN001"),
    ("mig001_pup.py", "MIG001"),
    ("mig002_globals.py", "MIG002"),
    ("mig003_state.py", "MIG003"),
    ("mig004_sdag.py", "MIG004"),
    ("mig005_isomalloc.py", "MIG005"),
    # These live in a repro/sim/ subdirectory because OBS001 and DET001
    # are path-scoped to the runtime packages.
    (os.path.join("repro", "sim", "det001_clock.py"), "DET001"),
    (os.path.join("repro", "sim", "obs001_state.py"), "OBS001"),
]


@pytest.mark.parametrize("fixture,rule_id", FIXTURE_CASES)
def test_fixture_findings_exact(fixture, rule_id):
    path = os.path.join(FIXTURES, fixture)
    expected = expected_findings(path)
    assert expected, f"{fixture} must mark its expected findings"
    findings = analyze_file(path)
    active = sorted((f.line, f.rule) for f in findings if not f.suppressed)
    assert active == expected
    # Every finding is pinned to the fixture file, with the right rule id.
    assert all(f.path == path for f in findings)
    assert any(f.rule == rule_id for f in findings if not f.suppressed)


@pytest.mark.parametrize("fixture,rule_id", FIXTURE_CASES)
def test_fixture_suppressed_case(fixture, rule_id):
    """Each fixture's suppressed example is reported but not active."""
    findings = analyze_file(os.path.join(FIXTURES, fixture))
    suppressed = [f for f in findings if f.suppressed]
    assert suppressed, f"{fixture} must exercise the suppression syntax"
    assert any(f.rule == rule_id for f in suppressed)


def test_every_shipped_rule_has_a_fixture():
    covered = {rule_id for _, rule_id in FIXTURE_CASES}
    assert {r.id for r in all_rules()} == covered


# -- framework behavior ------------------------------------------------------

def test_suppression_on_standalone_comment_line_covers_next_line():
    src = (
        "registry = {}\n"
        "def body(th):\n"
        "    # migralint: disable=MIG002\n"
        "    registry['x'] = 1\n"
        "    yield 'yield'\n"
    )
    findings = analyze_source(src)
    assert [f.rule for f in findings] == ["MIG002"]
    assert findings[0].suppressed


def test_disable_all_wildcard():
    src = (
        "registry = {}\n"
        "def body(th):\n"
        "    registry['x'] = 1  # migralint: disable=all\n"
        "    yield 'yield'\n"
    )
    (finding,) = analyze_source(src)
    assert finding.suppressed


def test_unrelated_rule_suppression_does_not_mask():
    src = (
        "registry = {}\n"
        "def body(th):\n"
        "    registry['x'] = 1  # migralint: disable=MIG001\n"
        "    yield 'yield'\n"
    )
    (finding,) = analyze_source(src)
    assert finding.rule == "MIG002" and not finding.suppressed


def test_syntax_error_becomes_parse_finding():
    findings = analyze_source("def broken(:\n", path="bad.py")
    assert [f.rule for f in findings] == ["MIG000"]
    assert findings[0].path == "bad.py"


def test_clean_module_is_clean():
    assert analyze_source("x = 1\n\n\ndef f():\n    return x\n") == []


def test_rule_metadata_is_complete():
    for rule in all_rules():
        assert re.fullmatch(r"(MIG|KRN|EXC|OBS|FLW|DET)\d{3}", rule.id)
        assert rule.name and rule.summary
        assert rule.severity.value in ("error", "warning")
