"""The README's Python snippets must actually run."""

import os
import re

README = os.path.join(os.path.dirname(__file__), "..", "README.md")


def python_blocks():
    text = open(README).read()
    return re.findall(r"```python\n(.*?)```", text, re.DOTALL)


def test_readme_has_python_snippets():
    assert len(python_blocks()) >= 2


def test_readme_snippets_execute():
    for i, block in enumerate(python_blocks()):
        namespace = {}
        try:
            exec(compile(block, f"README-block-{i}", "exec"), namespace)
        except Exception as e:  # pragma: no cover - diagnostic clarity
            raise AssertionError(
                f"README python block #{i} failed: {e}\n---\n{block}") from e
