"""Tests for the k-slot memory-aliasing extension."""

import pytest

from repro.core import (CthScheduler, MultiSlotAliasStacks, ThreadMigrator)
from repro.core.smp import SmpRunner
from repro.errors import MigrationError, ThreadError
from repro.sim import Cluster, Processor, get_platform

STACK = 8 * 1024


def make_mgr(slots=2, platform="linux_x86"):
    proc = Processor(0, get_platform(platform))
    return proc, MultiSlotAliasStacks(proc.space, proc.profile,
                                      stack_bytes=STACK, slots=slots)


def test_threads_pinned_round_robin():
    proc, mgr = make_mgr(slots=3)
    recs = [mgr.create_stack() for _ in range(6)]
    assert [r.address_class for r in recs] == [0, 1, 2, 0, 1, 2]
    # Distinct slots have distinct addresses; same slot shares one.
    assert recs[0].base != recs[1].base != recs[2].base
    assert recs[0].base == recs[3].base


def test_k_threads_active_simultaneously():
    proc, mgr = make_mgr(slots=2)
    a, b, c = (mgr.create_stack() for _ in range(3))
    mgr.switch_in(a)
    mgr.switch_in(b)                # different slot: fine
    with pytest.raises(ThreadError):
        mgr.switch_in(c)            # same slot as a: refused
    mgr.switch_out(a)
    mgr.switch_in(c)
    mgr.switch_out(b)
    mgr.switch_out(c)


def test_contents_isolated_across_slots():
    proc, mgr = make_mgr(slots=2)
    a, b = mgr.create_stack(), mgr.create_stack()
    mgr.switch_in(a)
    mgr.switch_in(b)
    mgr.stack_write(a, 0, b"slot0")
    mgr.stack_write(b, 0, b"slot1")
    mgr.switch_out(a)
    mgr.switch_out(b)
    assert mgr.stack_read(a, 0, 5) == b"slot0"
    assert mgr.stack_read(b, 0, 5) == b"slot1"


def test_single_slot_equals_paper_technique():
    proc, mgr = make_mgr(slots=1)
    a, b = mgr.create_stack(), mgr.create_stack()
    mgr.switch_in(a)
    with pytest.raises(ThreadError):
        mgr.switch_in(b)


def test_va_cost_is_k_stacks():
    proc, mgr = make_mgr(slots=4)
    alias_maps = [m for m in proc.space.mappings()
                  if m.tag == "alias-stack"]
    assert len(alias_maps) == 4
    assert len({m.start for m in alias_maps}) == 4


def test_slot_overflow_rejected():
    proc = Processor(0, get_platform("linux_x86"))
    with pytest.raises(ThreadError):
        MultiSlotAliasStacks(proc.space, proc.profile,
                             stack_bytes=4 * 1024 * 1024, slots=100)
    with pytest.raises(ThreadError):
        MultiSlotAliasStacks(proc.space, proc.profile, slots=0)


def test_smp_speedup_interpolates():
    """k slots give ~min(k, cores)x throughput — between the paper's
    aliasing (1x) and isomalloc (cores x)."""
    work = [400_000.0] * 16

    def speedup(slots):
        proc, mgr = make_mgr(slots=slots)
        return SmpRunner(proc.profile, mgr, cores=4).run_batch(work).speedup

    s1, s2, s4 = speedup(1), speedup(2), speedup(4)
    assert s1 < 1.05
    assert 1.8 < s2 < 2.2
    assert s4 > 3.5


def test_migration_preserves_slot_pinning():
    cluster = Cluster(2)
    scheds = []
    for pe in range(2):
        mgr = MultiSlotAliasStacks(cluster[pe].space, cluster.platform,
                                   stack_bytes=STACK, slots=2)
        scheds.append(CthScheduler(cluster[pe], mgr))
    mig = ThreadMigrator(cluster, scheds)
    out = []

    def body(th):
        cell = th.alloca(8)
        th.write_word(cell, 0xABCD)
        yield "suspend"
        out.append((th.read_word(cell), th.stack.address_class,
                    th.stack.base))

    # Create two threads so the second lands in slot 1.
    scheds[0].create(lambda th: iter(()))
    t = scheds[0].create(body)
    base_before = t.stack.base
    cls_before = t.stack.address_class
    scheds[0].run()
    mig.migrate(t, 1)
    cluster.run()
    scheds[1].awaken(t)
    scheds[1].run()
    value, cls_after, base_after = out[0]
    assert value == 0xABCD
    assert cls_after == cls_before          # same slot index on arrival
    assert base_after == base_before        # same address => pointers valid


def test_unpack_needs_enough_slots():
    proc0, mgr3 = make_mgr(slots=3)
    recs = [mgr3.create_stack() for _ in range(3)]
    image = mgr3.pack(recs[2])              # pinned to slot 2
    proc1, mgr1 = make_mgr(slots=1)
    with pytest.raises(MigrationError, match="alias slots"):
        mgr1.unpack(image)
