"""Scale tests: the paper's headline claim at the functional layer.

Table 2 and Section 4.4: tens of thousands of user-level threads per
processor are practical.  These tests create real UThreads (simulated
stacks, slots, scheduling) in bulk — not just the flows cost model.
"""

import pytest

from repro.core import CthScheduler, IsomallocArena, IsomallocStacks
from repro.sim import Cluster


def test_twenty_thousand_real_threads_on_one_processor():
    cl = Cluster(1, platform="alpha")          # 64-bit: huge iso region
    arena = IsomallocArena(cl.platform.layout(), 1, slot_bytes=16 * 1024)
    sched = CthScheduler(
        cl[0],
        IsomallocStacks(cl[0].space, cl.platform, arena, 0,
                        stack_bytes=8 * 1024))
    done = []

    def body(th, i):
        yield "yield"
        done.append(i)

    n = 20_000
    for i in range(n):
        sched.create(lambda th, i=i: body(th, i))
    assert arena.slots_in_use() == n
    sched.run()
    assert len(done) == n
    assert sched.threads_finished == n
    # All slots released at exit.
    assert arena.slots_in_use() == 0
    # Two scheduling passes over 20k threads.
    assert sched.context_switches == 2 * n


def test_thousands_of_threads_with_live_heap_state():
    """Each of 5,000 threads owns distinct migratable heap data."""
    cl = Cluster(1, platform="alpha")
    arena = IsomallocArena(cl.platform.layout(), 1, slot_bytes=16 * 1024)
    sched = CthScheduler(
        cl[0],
        IsomallocStacks(cl[0].space, cl.platform, arena, 0,
                        stack_bytes=4 * 1024))
    bad = []

    def body(th, i):
        cell = th.malloc(8)
        th.write_word(cell, i)
        yield "yield"
        if th.read_word(cell) != i:
            bad.append(i)

    n = 5_000
    for i in range(n):
        sched.create(lambda th, i=i: body(th, i))
    sched.run()
    assert not bad
    # Physical memory stayed proportional to touched pages, not slots.
    assert cl[0].space.resident_bytes < n * 16 * 1024


def test_32bit_virtual_address_wall():
    """The paper's 32-bit isomalloc limit: the region runs out of slots
    long before memory does (Section 3.4.2's 4,096-threads arithmetic)."""
    from repro.errors import OutOfVirtualAddressSpace

    cl = Cluster(1, platform="linux_x86")       # 32-bit, ~2.47 GiB iso
    arena = IsomallocArena(cl.platform.layout(), 1,
                           slot_bytes=1024 * 1024)   # the paper's 1 MB
    capacity = arena.slots_per_pe
    assert 2_000 < capacity < 4_096             # the paper's ballpark
    for _ in range(capacity):
        arena.allocate_slot(0)
    with pytest.raises(OutOfVirtualAddressSpace):
        arena.allocate_slot(0)
