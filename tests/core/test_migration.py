"""Tests for thread migration across simulated processors."""

import pytest

from repro.core.thread import ThreadState
from repro.errors import MigrationError
from tests.core.conftest import make_cluster


TECHNIQUES = ["isomalloc", "stack_copy", "memory_alias"]


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_basic_migration_all_techniques(technique):
    cl, scheds, mig, _ = make_cluster(2, technique=technique,
                                      emulate_swap=True)
    log = []

    def body(th):
        log.append(("start", th.scheduler.processor.id))
        yield "suspend"
        log.append(("resumed", th.scheduler.processor.id))

    t = scheds[0].create(body)
    scheds[0].run()
    mig.migrate(t, 1)
    assert t.state is ThreadState.MIGRATING
    cl.run()
    assert t.state is ThreadState.SUSPENDED
    scheds[1].awaken(t)
    scheds[1].run()
    assert log == [("start", 0), ("resumed", 1)]
    assert t.migrations == 1


def test_heap_pointers_survive_migration():
    """The isomalloc guarantee: a linked structure built on PE0 is walkable
    on PE1 with no pointer rewriting."""
    cl, scheds, mig, _ = make_cluster(2, emulate_swap=True)
    out = []

    def body(th):
        # Build a 5-node linked list in migratable heap.
        head = 0
        for v in range(5, 0, -1):
            node = th.malloc(16)
            th.write_word(node, v)          # value
            th.write_word(node + 8, head)   # next pointer
            head = node
        stack_cell = th.alloca(8)
        th.write_word(stack_cell, head)     # stack -> heap pointer
        yield "suspend"
        # Traverse after migration.
        cursor = th.read_word(stack_cell)
        while cursor:
            out.append(th.read_word(cursor))
            cursor = th.read_word(cursor + 8)

    t = scheds[0].create(body)
    scheds[0].run()
    mig.migrate(t, 1)
    cl.run()
    scheds[1].awaken(t)
    scheds[1].run()
    assert out == [1, 2, 3, 4, 5]


def test_migration_ships_simulated_bytes():
    cl, scheds, mig, _ = make_cluster(2)

    def body(th):
        a = th.malloc(4096)
        th.write(a, b"z" * 4096)
        yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()
    sent_before = cl[0].bytes_sent
    mig.migrate(t, 1)
    cl.run()
    shipped = cl[0].bytes_sent - sent_before
    # At least the stack plus the heap page must have crossed the wire.
    assert shipped >= 4096 + t.stack.size
    assert mig.bytes_shipped == shipped


def test_migrate_ready_thread():
    cl, scheds, mig, _ = make_cluster(2)
    log = []

    def body(th):
        yield "yield"
        log.append(th.scheduler.processor.id)

    t = scheds[0].create(body)
    # Never run: migrate while READY.
    mig.migrate(t, 1)
    cl.run()
    scheds[1].run()
    assert log == [1]


def test_migrate_running_thread_rejected():
    cl, scheds, mig, _ = make_cluster(2)
    boom = []

    def body(th):
        try:
            mig.migrate(th, 1)
        except MigrationError as e:
            boom.append(str(e))
        yield "yield"

    scheds[0].create(body)
    scheds[0].run()
    assert boom and "running" in boom[0]


def test_migrate_to_same_pe_is_noop():
    cl, scheds, mig, _ = make_cluster(2)
    t = scheds[0].create(lambda th: iter(()))
    mig.migrate(t, 0)
    assert mig.migrations_started == 0
    assert t.state is ThreadState.READY


def test_migrate_bad_destination():
    cl, scheds, mig, _ = make_cluster(2)
    t = scheds[0].create(lambda th: iter(()))
    with pytest.raises(MigrationError):
        mig.migrate(t, 7)


def test_multi_hop_migration():
    """A thread can migrate repeatedly (PE0 -> PE1 -> PE0) with state intact."""
    cl, scheds, mig, _ = make_cluster(2, emulate_swap=True)
    trail = []

    def body(th):
        cell = th.malloc(8)
        th.write_word(cell, 1)
        yield "suspend"
        trail.append((th.scheduler.processor.id, th.read_word(cell)))
        th.write_word(cell, 2)
        yield "suspend"
        trail.append((th.scheduler.processor.id, th.read_word(cell)))

    t = scheds[0].create(body)
    scheds[0].run()
    mig.migrate(t, 1)
    cl.run()
    scheds[1].awaken(t)
    scheds[1].run()
    mig.migrate(t, 0)
    cl.run()
    scheds[0].awaken(t)
    scheds[0].run()
    assert trail == [(1, 1), (0, 2)]
    assert t.migrations == 2


def test_private_globals_survive_migration():
    cl, scheds, mig, _ = make_cluster(2, globals_decl=[("counter", 8)])
    out = []

    def body(th):
        th.global_write_int("counter", 321)
        yield "suspend"
        out.append(th.global_read_int("counter"))

    t = scheds[0].create(body, privatize_globals=True)
    scheds[0].run()
    mig.migrate(t, 1)
    cl.run()
    scheds[1].awaken(t)
    scheds[1].run()
    assert out == [321]


def test_migration_charges_both_processors():
    cl, scheds, mig, _ = make_cluster(2)

    def body(th):
        th.malloc(8 * 1024)
        yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()
    t0, t1 = cl[0].now, cl[1].now
    mig.migrate(t, 1)
    cl.run()
    assert cl[0].now > t0      # pack + send overhead
    assert cl[1].now > t1      # receive + unpack


def test_on_arrival_hook():
    cl, scheds, mig, _ = make_cluster(2)
    arrivals = []
    mig.on_arrival = lambda th: arrivals.append(th.name)
    t = scheds[0].create(lambda th: iter(()), name="hooked")
    mig.migrate(t, 1)
    cl.run()
    assert arrivals == ["hooked"]


def test_mixed_technique_clusters_rejected():
    from repro.core import (CthScheduler, IsomallocArena, IsomallocStacks,
                            MemoryAliasStacks, ThreadMigrator)
    from repro.sim import Cluster

    cl = Cluster(2)
    arena = IsomallocArena(cl.platform.layout(), 2)
    s0 = CthScheduler(cl[0], IsomallocStacks(cl[0].space, cl.platform,
                                             arena, 0, stack_bytes=8192))
    s1 = CthScheduler(cl[1], MemoryAliasStacks(cl[1].space, cl.platform,
                                               stack_bytes=8192))
    with pytest.raises(MigrationError):
        ThreadMigrator(cl, [s0, s1])


def test_source_releases_memory_after_migration():
    cl, scheds, mig, _ = make_cluster(2)

    def body(th):
        th.malloc(16 * 1024)
        yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()
    resident_with_thread = cl[0].space.resident_bytes
    mig.migrate(t, 1)
    cl.run()
    assert cl[0].space.resident_bytes < resident_with_thread
    # Destination now holds the thread's pages.
    assert cl[1].space.resident_bytes >= 16 * 1024
