"""Tests for GOT-based global-variable privatization."""

import pytest

from repro.core.swapglobal import GlobalOffsetTable, GlobalRegistry
from repro.errors import ThreadError
from repro.sim import get_platform
from repro.vm import AddressSpace, PhysicalMemory
from repro.vm.layout import MB


def make_registry(decls=(("counter", 8), ("name", 16))):
    space = AddressSpace(get_platform("linux_x86").layout(),
                         PhysicalMemory(64 * MB))
    reg = GlobalRegistry(space)
    for name, size in decls:
        reg.declare(name, size)
    reg.build()
    return reg, space


def test_declare_and_access():
    reg, _ = make_registry()
    reg.write_int("counter", 41)
    assert reg.read_int("counter") == 41
    reg.write("name", b"hello")
    assert reg.read("name")[:5] == b"hello"


def test_declare_after_build_rejected():
    reg, _ = make_registry()
    with pytest.raises(ThreadError):
        reg.declare("late", 8)


def test_duplicate_and_bad_declarations():
    space = AddressSpace(get_platform("linux_x86").layout(),
                         PhysicalMemory(8 * MB))
    reg = GlobalRegistry(space)
    reg.declare("x", 8)
    with pytest.raises(ThreadError):
        reg.declare("x", 8)
    with pytest.raises(ThreadError):
        reg.declare("bad", 0)


def test_unknown_global():
    reg, _ = make_registry()
    with pytest.raises(ThreadError):
        reg.read_int("nonexistent")


def test_value_overflow_rejected():
    reg, _ = make_registry()
    with pytest.raises(ThreadError):
        reg.write("counter", b"123456789")   # 9 bytes into an 8-byte global


def test_access_goes_through_got():
    """Changing a GOT entry redirects access — the indirection is real."""
    reg, space = make_registry()
    reg.write_int("counter", 1)
    # Point the GOT's counter slot somewhere else.
    alt = space.mmap(4096, region="heap")
    space.write_word(alt.start, 99)
    image = reg.current_image()
    image[reg.var("counter").index] = alt.start
    reg.install_image(image)
    assert reg.read_int("counter") == 99


def test_privatization_isolates_threads():
    """The paper's race: without private GOTs, threads share one counter."""
    reg, space = make_registry()
    heap = space.mmap(64 * 1024, region="heap")
    cursor = [heap.start]

    def alloc(n):
        addr = cursor[0]
        cursor[0] += (n + 15) // 16 * 16
        return addr

    reg.write_int("counter", 100)           # shared initial value
    got_a = GlobalOffsetTable.privatize(reg, alloc)
    got_b = GlobalOffsetTable.privatize(reg, alloc)

    # Shared (no swap): both "threads" see the master value and race.
    reg.write_int("counter", 5)
    assert reg.read_int("counter") == 5     # B would see A's write

    # Privatized: each image sees only its own storage.
    got_a.swap_in()
    reg.write_int("counter", 111)
    got_b.swap_in()
    assert reg.read_int("counter") == 100   # B inherited the value at privatize
    reg.write_int("counter", 222)
    got_a.swap_in()
    assert reg.read_int("counter") == 111
    got_b.swap_in()
    assert reg.read_int("counter") == 222


def test_privatize_copies_current_values():
    reg, space = make_registry()
    reg.write_int("counter", 77)
    heap = space.mmap(4096, region="heap")
    cursor = [heap.start]

    def alloc(n):
        addr = cursor[0]
        cursor[0] += (n + 15) // 16 * 16
        return addr

    got = GlobalOffsetTable.privatize(reg, alloc)
    got.swap_in()
    assert reg.read_int("counter") == 77


def test_swap_count_and_got_bytes():
    reg, space = make_registry()
    assert reg.got_bytes == 2 * 4           # two globals, 32-bit words
    heap = space.mmap(4096, region="heap")
    cursor = [heap.start]

    def alloc(n):
        a = cursor[0]
        cursor[0] += 32
        return a

    got = GlobalOffsetTable.privatize(reg, alloc)
    before = reg.swap_count
    got.swap_in()
    assert reg.swap_count == before + 1


def test_install_wrong_length_rejected():
    reg, _ = make_registry()
    with pytest.raises(ThreadError):
        reg.install_image([1, 2, 3])


def test_empty_registry_builds():
    space = AddressSpace(get_platform("linux_x86").layout(),
                         PhysicalMemory(8 * MB))
    reg = GlobalRegistry(space)
    reg.build()
    assert reg.got_bytes == 0
    with pytest.raises(ThreadError):
        reg.build()                          # double build rejected
