"""Tests for register files and the Figure 10 minimal swap routines."""

import pytest

from repro.core.context import (CALLEE_SAVED, MinimalSwap, RegisterFile,
                                SWAP32, SWAP64)
from repro.errors import ThreadError
from repro.vm import AddressSpace, AddressSpaceLayout, PhysicalMemory
from repro.vm.layout import MB


def test_register_file_names():
    r32 = RegisterFile("x86_32")
    assert set(r32.regs) == {"ebp", "ebx", "esi", "edi", "sp"}
    r64 = RegisterFile("x86_64")
    assert "r15" in r64.regs and "rdi" in r64.regs


def test_register_file_masks_to_word():
    r = RegisterFile("x86_32")
    r["ebx"] = 0x1_2345_6789
    assert r["ebx"] == 0x2345_6789


def test_register_file_rejects_unknown():
    r = RegisterFile("x86_32")
    with pytest.raises(KeyError):
        r["r15"]
    with pytest.raises(ThreadError):
        r["r15"] = 1
    with pytest.raises(ThreadError):
        RegisterFile("sparc")


def test_swap_instruction_counts_match_figure10():
    """Figure 10(a) is 13 instructions; (b) is 17."""
    assert SWAP32.instruction_count == 13
    assert SWAP64.instruction_count == 17
    # 64-bit saves more registers (7 callee-saved vs 4).
    assert len(CALLEE_SAVED["x86_64"]) > len(CALLEE_SAVED["x86_32"])


def test_swap_cost_matches_paper_order():
    """16 ns (32-bit) and 18 ns (64-bit) on a 2.2 GHz Athlon64."""
    t32 = SWAP32.cost_ns(2.2)
    t64 = SWAP64.cost_ns(2.2)
    assert 10 < t32 < 22
    assert 14 < t64 < 26
    assert t64 > t32                      # more registers -> slower


def test_swap_executes_roundtrip():
    """Two contexts swap back and forth; register values follow the stacks."""
    pm = PhysicalMemory(4 * MB)
    sp_layout = AddressSpaceLayout.small32()
    space = AddressSpace(sp_layout, pm)
    stacks = space.mmap(2 * 4096, region="stack")
    ctx = space.mmap(4096, region="data")
    ctx_a, ctx_b = ctx.start, ctx.start + 8

    regs = RegisterFile("x86_32")
    # Context B starts seeded with recognizable register values.
    MinimalSwap.seed_context(space, "x86_32", ctx_b,
                             stacks.start + 8192,
                             [("ebx", 0xB), ("esi", 0x51)])
    regs["sp"] = stacks.start + 4096
    regs["ebx"] = 0xA
    SWAP32.execute(space, regs, ctx_a, ctx_b)
    # Now running "context B": its seeded registers are live.
    assert regs["ebx"] == 0xB
    assert regs["esi"] == 0x51
    # Change a register, swap back to A, and A's value reappears.
    regs["ebx"] = 0xBB
    SWAP32.execute(space, regs, ctx_b, ctx_a)
    assert regs["ebx"] == 0xA
    # And B's modified value is preserved for the next swap in.
    SWAP32.execute(space, regs, ctx_a, ctx_b)
    assert regs["ebx"] == 0xBB


def test_swap_arch_mismatch_rejected():
    pm = PhysicalMemory(1 * MB)
    space = AddressSpace(AddressSpaceLayout.small32(), pm)
    regs = RegisterFile("x86_64")
    with pytest.raises(ThreadError):
        SWAP32.execute(space, regs, 0, 0)
    with pytest.raises(ThreadError):
        MinimalSwap("vax")


def test_all_swap_instructions_are_memory_ops():
    """Every instruction in Figure 10 touches memory (push/pop/mov-mem/ret)."""
    assert SWAP32.memory_ops == SWAP32.instruction_count
    assert SWAP64.memory_ops == SWAP64.instruction_count


def test_swap64_roundtrip():
    pm = PhysicalMemory(4 * MB)
    space = AddressSpace(AddressSpaceLayout.large64(), pm)
    stacks = space.mmap(2 * 4096, region="stack")
    ctx = space.mmap(4096, region="data")
    regs = RegisterFile("x86_64")
    MinimalSwap.seed_context(space, "x86_64", ctx.start + 16,
                             stacks.start + 8192, [("r12", 123)])
    regs["sp"] = stacks.start + 4096
    SWAP64.execute(space, regs, ctx.start, ctx.start + 16)
    assert regs["r12"] == 123
