"""Tests for the isomalloc arena, slots, and heap allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.isomalloc import IsomallocArena, IsomallocSlot
from repro.errors import OutOfVirtualAddressSpace, ThreadError
from repro.sim import Cluster, get_platform
from repro.vm import AddressSpace, PhysicalMemory
from repro.vm.layout import MB


def make_env(num_pes=2, slot_bytes=256 * 1024, word=32):
    profile = get_platform("linux_x86" if word == 32 else "alpha")
    layout = profile.layout()
    arena = IsomallocArena(layout, num_pes, slot_bytes=slot_bytes)
    spaces = [AddressSpace(layout, PhysicalMemory(64 * MB), name=f"pe{i}")
              for i in range(num_pes)]
    return arena, spaces


# -- arena ------------------------------------------------------------------

def test_pe_ranges_disjoint():
    arena, _ = make_env(4)
    ranges = [arena.pe_range(pe) for pe in range(4)]
    for i, (s1, n1) in enumerate(ranges):
        for s2, n2 in ranges[i + 1:]:
            assert s1 + n1 <= s2 or s2 + n2 <= s1


def test_slots_globally_unique():
    arena, _ = make_env(3, slot_bytes=1 * MB)
    seen = set()
    for pe in range(3):
        for _ in range(10):
            base = arena.allocate_slot(pe)
            assert base not in seen
            # No overlap with any other slot.
            for other in seen:
                assert abs(base - other) >= arena.slot_bytes
            seen.add(base)


def test_slot_release_and_reuse():
    arena, _ = make_env(1)
    a = arena.allocate_slot(0)
    arena.release_slot(a)
    b = arena.allocate_slot(0)
    assert b == a                       # freed slot is reused
    with pytest.raises(ThreadError):
        arena.release_slot(0xDEAD000)


def test_arena_exhaustion_32bit():
    """The paper's 32-bit problem: per-PE range / slot size bounds threads."""
    arena, _ = make_env(2, slot_bytes=64 * MB)
    for _ in range(arena.slots_per_pe):
        arena.allocate_slot(0)
    with pytest.raises(OutOfVirtualAddressSpace):
        arena.allocate_slot(0)
    # The other PE's range is untouched.
    arena.allocate_slot(1)


def test_capacity_math():
    """n threads x s bytes x p processors <= iso region (Section 3.4.2)."""
    arena, _ = make_env(4, slot_bytes=1 * MB)
    iso_size = arena.layout.regions["iso"].size
    assert arena.capacity_total() * arena.slot_bytes <= iso_size
    assert arena.capacity_check(arena.slots_per_pe)
    assert not arena.capacity_check(arena.slots_per_pe + 1)


def test_64bit_arena_is_huge():
    profile = get_platform("alpha")
    arena = IsomallocArena(profile.layout(), 1000, slot_bytes=1 * MB)
    # 1000 PEs x 10 threads x 1MB (the paper's 10 GB example) fits easily.
    assert arena.capacity_check(10)
    assert arena.capacity_total() >= 10_000


def test_bad_pe_rejected():
    arena, _ = make_env(2)
    with pytest.raises(ThreadError):
        arena.allocate_slot(2)
    with pytest.raises(ThreadError):
        arena.pe_range(-1)


# -- slot + heap --------------------------------------------------------------

def test_slot_layout():
    arena, spaces = make_env(1)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=16 * 1024)
    assert slot.stack_top == slot.base + arena.slot_bytes
    assert slot.stack_base == slot.stack_top - 16 * 1024
    assert slot.contains(slot.base)
    assert slot.contains(slot.stack_top - 1)
    assert not slot.contains(slot.stack_top)
    # Stack is immediately usable.
    spaces[0].write(slot.stack_base, b"stackdata")
    assert spaces[0].read(slot.stack_base, 9) == b"stackdata"


def test_stack_too_big_for_slot():
    arena, spaces = make_env(1, slot_bytes=64 * 1024)
    with pytest.raises(ThreadError):
        IsomallocSlot(arena, spaces[0], 0, stack_bytes=64 * 1024)


def test_malloc_free_roundtrip():
    arena, spaces = make_env(1)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    a = slot.malloc(100)
    spaces[0].write(a, b"x" * 100)
    assert spaces[0].read(a, 100) == b"x" * 100
    assert slot.heap.live_blocks == 1
    slot.free(a)
    assert slot.heap.live_blocks == 0


def test_malloc_headers_in_simulated_memory():
    arena, spaces = make_env(1)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    a = slot.malloc(64)
    assert slot.heap.block_size(a) >= 64
    # Corrupt the header through raw memory: free must detect it.
    spaces[0].write_word(a - 16, 0xBAD)
    with pytest.raises(ThreadError):
        slot.free(a)


def test_double_free_detected():
    arena, spaces = make_env(1)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    a = slot.malloc(64)
    slot.free(a)
    with pytest.raises(ThreadError):
        slot.free(a)


def test_free_foreign_pointer_rejected():
    arena, spaces = make_env(1)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    with pytest.raises(ThreadError):
        slot.free(slot.base + 123456)


def test_free_block_reused():
    arena, spaces = make_env(1)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    a = slot.malloc(256)
    slot.free(a)
    b = slot.malloc(200)           # fits in the freed block
    assert b == a


def test_heap_grows_physical_on_demand():
    arena, spaces = make_env(1, slot_bytes=512 * 1024)
    before = spaces[0].physical.frames_in_use
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    after_stack = spaces[0].physical.frames_in_use
    assert after_stack == before + 2          # stack pages only
    slot.malloc(3 * 4096)
    assert spaces[0].physical.frames_in_use > after_stack
    # Virtual slot is 512K but physical stays proportional to usage.
    assert spaces[0].resident_bytes < 100 * 1024


def test_heap_exhaustion():
    arena, spaces = make_env(1, slot_bytes=64 * 1024)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    with pytest.raises(OutOfVirtualAddressSpace):
        slot.malloc(60 * 1024)


def test_slot_pack_adopt_roundtrip():
    """The core isomalloc property: same addresses on the new processor."""
    arena, spaces = make_env(2)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    a = slot.malloc(64)
    b = slot.malloc(64)
    spaces[0].write_word(a, b)          # heap -> heap pointer
    spaces[0].write_word(b, 777)
    spaces[0].write(slot.stack_base + 100, a.to_bytes(4, "little"))  # stack -> heap
    image = slot.pack()
    slot.evacuate()
    new = IsomallocSlot.adopt(arena, spaces[1], 1, image)
    assert new.base == slot.base
    # Chase the pointer chain on the destination.
    a2 = int.from_bytes(spaces[1].read(new.stack_base + 100, 4), "little")
    assert a2 == a
    b2 = spaces[1].read_word(a2)
    assert b2 == b
    assert spaces[1].read_word(b2) == 777
    # Allocator metadata carried over: freeing and reusing works.
    new.free(a2)
    c = new.malloc(48)
    assert c == a2


def test_evacuate_releases_local_resources():
    arena, spaces = make_env(2)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    slot.malloc(4096)
    image = slot.pack()
    slot.evacuate()
    assert spaces[0].resident_bytes == 0
    # The slot's VA can be re-claimed locally only via adopt (arena still
    # owns the slot), so a fresh local slot gets a different base.
    other = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    assert other.base != slot.base
    # And adoption back onto the source works (round trip).
    back = IsomallocSlot.adopt(arena, spaces[0], 0, image)
    assert back.base == slot.base


def test_destroy_releases_slot():
    arena, spaces = make_env(1)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    base = slot.base
    slot.destroy()
    assert arena.slots_in_use() == 0
    again = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    assert again.base == base


# -- property tests ------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=2000), min_size=1,
                max_size=30))
@settings(max_examples=50, deadline=None)
def test_malloc_blocks_never_overlap(sizes):
    arena, spaces = make_env(1, slot_bytes=512 * 1024)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    live = []
    for i, n in enumerate(sizes):
        if live and i % 3 == 2:
            addr, _ = live.pop(i % len(live))
            slot.free(addr)
        a = slot.malloc(n)
        for other, on in live:
            assert a + n <= other or other + on <= a
        live.append((a, n))


@given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1,
                max_size=20))
@settings(max_examples=40, deadline=None)
def test_heap_accounting_invariant(sizes):
    arena, spaces = make_env(1, slot_bytes=512 * 1024)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    addrs = [slot.malloc(n) for n in sizes]
    assert slot.heap.live_blocks == len(sizes)
    assert slot.heap.allocated_bytes >= sum(sizes)
    for a in addrs:
        slot.free(a)
    assert slot.heap.live_blocks == 0
    assert slot.heap.allocated_bytes == 0


@given(data=st.binary(min_size=1, max_size=500),
       stack_data=st.binary(min_size=1, max_size=500))
@settings(max_examples=40, deadline=None)
def test_pack_adopt_preserves_all_contents(data, stack_data):
    arena, spaces = make_env(2)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    a = slot.malloc(len(data))
    spaces[0].write(a, data)
    spaces[0].write(slot.stack_base, stack_data)
    image = slot.pack()
    slot.evacuate()
    new = IsomallocSlot.adopt(arena, spaces[1], 1, image)
    assert spaces[1].read(a, len(data)) == data
    assert spaces[1].read(new.stack_base, len(stack_data)) == stack_data


def test_guard_gap_below_stack_faults():
    """The unmapped page between heap and stack catches stack overruns."""
    from repro.errors import SegmentationFault

    arena, spaces = make_env(1)
    slot = IsomallocSlot(arena, spaces[0], 0, stack_bytes=8 * 1024)
    with pytest.raises(SegmentationFault):
        spaces[0].write(slot.stack_base - 8, b"overrun!")
    # The stack itself and the heap both work fine.
    spaces[0].write(slot.stack_base, b"ok")
    a = slot.malloc(64)
    spaces[0].write(a, b"ok")
