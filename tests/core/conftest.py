"""Shared fixtures for core-package tests."""

import pytest

from repro.core import (CthScheduler, IsomallocArena, IsomallocStacks,
                        MemoryAliasStacks, StackCopyStacks, ThreadMigrator)
from repro.sim import Cluster


STACK_BYTES = 16 * 1024


def make_cluster(n=2, platform="linux_x86", technique="isomalloc",
                 emulate_swap=False, stack_bytes=STACK_BYTES,
                 slot_bytes=256 * 1024, globals_decl=()):
    """Build a cluster with one scheduler per PE using one technique."""
    from repro.core.swapglobal import GlobalRegistry

    cl = Cluster(n, platform=platform)
    arena = IsomallocArena(cl.platform.layout(), n, slot_bytes=slot_bytes)
    scheds = []
    for pe in range(n):
        if technique == "isomalloc":
            mgr = IsomallocStacks(cl[pe].space, cl.platform, arena, pe,
                                  stack_bytes=stack_bytes)
        elif technique == "stack_copy":
            mgr = StackCopyStacks(cl[pe].space, cl.platform,
                                  stack_bytes=stack_bytes)
        elif technique == "memory_alias":
            mgr = MemoryAliasStacks(cl[pe].space, cl.platform,
                                    stack_bytes=stack_bytes)
        else:
            raise ValueError(technique)
        registry = None
        if globals_decl:
            registry = GlobalRegistry(cl[pe].space)
            for name, size in globals_decl:
                registry.declare(name, size)
            registry.build()
        scheds.append(CthScheduler(cl[pe], mgr, globals_registry=registry,
                                   emulate_swap=emulate_swap))
    migrator = ThreadMigrator(cl, scheds)
    return cl, scheds, migrator, arena


@pytest.fixture()
def iso_cluster():
    """Two-PE isomalloc cluster with swap emulation on."""
    return make_cluster(2, technique="isomalloc", emulate_swap=True)
