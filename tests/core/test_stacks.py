"""Tests for the three migratable stack techniques."""

import pytest

from repro.core.isomalloc import IsomallocArena
from repro.core.stacks import (IsomallocStacks, MemoryAliasStacks,
                               StackCopyStacks)
from repro.errors import MigrationError, ThreadError
from repro.sim import get_platform
from repro.vm import AddressSpace, PhysicalMemory
from repro.vm.layout import MB

STACK = 16 * 1024


def make_space(platform="linux_x86"):
    profile = get_platform(platform)
    return profile, AddressSpace(profile.layout(), PhysicalMemory(128 * MB))


def make_manager(technique, platform="linux_x86", pe=0, arena=None, space=None):
    profile, sp = make_space(platform) if space is None else (get_platform(platform), space)
    if technique == "stack_copy":
        return StackCopyStacks(sp, profile, stack_bytes=STACK), sp
    if technique == "memory_alias":
        return MemoryAliasStacks(sp, profile, stack_bytes=STACK), sp
    arena = arena or IsomallocArena(profile.layout(), 2, slot_bytes=256 * 1024)
    return IsomallocStacks(sp, profile, arena, pe, stack_bytes=STACK), sp


ALL = ["stack_copy", "isomalloc", "memory_alias"]


@pytest.mark.parametrize("technique", ALL)
def test_create_destroy(technique):
    mgr, sp = make_manager(technique)
    rec = mgr.create_stack()
    assert rec.size == STACK
    assert rec.top == rec.base + STACK
    mgr.destroy_stack(rec)


@pytest.mark.parametrize("technique", ALL)
def test_stack_contents_isolated_between_threads(technique):
    """Each thread's stack data is its own, even with one shared address.

    Writes go into the *live* region (below the stack pointer would be
    garbage on a real machine too, so stack copying rightly ignores it).
    """
    mgr, sp = make_manager(technique)
    a, b = mgr.create_stack(), mgr.create_stack()
    a.consume(64)
    b.consume(64)
    off = a.size - 64
    mgr.switch_in(a)
    mgr.stack_write(a, off, b"AAAA")
    mgr.switch_out(a)
    mgr.switch_in(b)
    mgr.stack_write(b, off, b"BBBB")
    mgr.switch_out(b)
    assert mgr.stack_read(a, off, 4) == b"AAAA"
    assert mgr.stack_read(b, off, 4) == b"BBBB"


@pytest.mark.parametrize("technique", ALL)
def test_inactive_stack_readable_writable(technique):
    mgr, sp = make_manager(technique)
    rec = mgr.create_stack()
    rec.consume(256)
    off = rec.size - 200
    mgr.stack_write(rec, off, b"inactive")
    assert mgr.stack_read(rec, off, 8) == b"inactive"
    mgr.switch_in(rec)
    assert mgr.stack_read(rec, off, 8) == b"inactive"
    mgr.switch_out(rec)
    assert mgr.stack_read(rec, off, 8) == b"inactive"


def test_single_address_techniques_share_base():
    for technique in ("stack_copy", "memory_alias"):
        mgr, _ = make_manager(technique)
        a, b = mgr.create_stack(), mgr.create_stack()
        assert a.base == b.base
        assert not mgr.concurrent_active


def test_isomalloc_stacks_have_unique_bases():
    mgr, _ = make_manager("isomalloc")
    a, b = mgr.create_stack(), mgr.create_stack()
    assert a.base != b.base
    assert mgr.concurrent_active


@pytest.mark.parametrize("technique", ["stack_copy", "memory_alias"])
def test_only_one_active(technique):
    mgr, _ = make_manager(technique)
    a, b = mgr.create_stack(), mgr.create_stack()
    mgr.switch_in(a)
    with pytest.raises(ThreadError):
        mgr.switch_in(b)
    with pytest.raises(ThreadError):
        mgr.switch_out(b)
    mgr.switch_out(a)
    mgr.switch_in(b)


def test_stack_copy_cost_scales_with_used_bytes():
    """Figure 9's stack-copy behaviour: cost is linear in live stack data."""
    mgr, _ = make_manager("stack_copy")
    small, big = mgr.create_stack(), mgr.create_stack()
    small.consume(1024)
    big.consume(8 * 1024)
    c_small = mgr.switch_in(small) + mgr.switch_out(small)
    c_big = mgr.switch_in(big) + mgr.switch_out(big)
    assert c_big == pytest.approx(8 * c_small)


def test_isomalloc_cost_flat_in_stack_size():
    """Figure 9's isomalloc behaviour: switches are free of memory work."""
    mgr, _ = make_manager("isomalloc")
    rec = mgr.create_stack()
    rec.consume(8 * 1024)
    assert mgr.switch_in(rec) == 0.0
    assert mgr.switch_out(rec) == 0.0


def test_memory_alias_cost_between_the_two():
    """Figure 9's aliasing behaviour: mmap-class cost, flat in used bytes."""
    profile = get_platform("linux_x86")
    mgr, _ = make_manager("memory_alias")
    a = mgr.create_stack()
    a.consume(8 * 1024)
    cost = mgr.switch_in(a)
    # An mmap-class cost: microseconds, not tens of microseconds.
    assert 1_000 < cost < 10_000
    mgr.switch_out(a)
    b = mgr.create_stack()
    b.consume(1024)
    assert mgr.switch_in(b) == pytest.approx(cost)   # independent of usage


def test_memory_alias_no_copying():
    """Aliasing must not copy stack bytes at a switch."""
    mgr, sp = make_manager("memory_alias")
    a, b = mgr.create_stack(), mgr.create_stack()
    mgr.switch_in(a)
    mgr.stack_write(a, 0, b"A" * 4096)
    mgr.switch_out(a)
    copied_before = sp.bytes_copied
    mgr.switch_in(b)
    mgr.switch_out(b)
    mgr.switch_in(a)
    assert sp.bytes_copied == copied_before         # zero bytes moved
    assert mgr.stack_read(a, 0, 4) == b"AAAA"


def test_stack_copy_requires_fixed_base():
    profile = get_platform("linux_x86").with_overrides(fixed_stack_base=False)
    sp = AddressSpace(profile.layout(), PhysicalMemory(32 * MB))
    with pytest.raises(ThreadError):
        StackCopyStacks(sp, profile, stack_bytes=STACK)


def test_memory_alias_requires_mmap():
    profile = get_platform("bluegene_l").with_overrides(
        microkernel_remap_extension=False)
    sp = AddressSpace(profile.layout(), PhysicalMemory(32 * MB))
    with pytest.raises(ThreadError):
        MemoryAliasStacks(sp, profile, stack_bytes=STACK)


def test_memory_alias_works_with_microkernel_extension():
    """BG/L 'Maybe': the proposed CNK remap extension enables aliasing."""
    profile = get_platform("bluegene_l")
    sp = AddressSpace(profile.layout(), PhysicalMemory(32 * MB))
    mgr = MemoryAliasStacks(sp, profile, stack_bytes=STACK)
    rec = mgr.create_stack()
    mgr.switch_in(rec)
    mgr.stack_write(rec, 0, b"bgl")
    mgr.switch_out(rec)
    assert mgr.stack_read(rec, 0, 3) == b"bgl"


def test_isomalloc_requires_mmap():
    profile = get_platform("bluegene_l")
    sp = AddressSpace(profile.layout(), PhysicalMemory(32 * MB))
    arena = IsomallocArena(profile.layout(), 1)
    with pytest.raises(ThreadError):
        IsomallocStacks(sp, profile, arena, 0, stack_bytes=STACK)


@pytest.mark.parametrize("technique", ALL)
def test_pack_unpack_roundtrip_across_processors(technique):
    """Stack images rebuild with identical thread-visible addresses."""
    profile = get_platform("linux_x86")
    sp0 = AddressSpace(profile.layout(), PhysicalMemory(64 * MB), name="pe0")
    sp1 = AddressSpace(profile.layout(), PhysicalMemory(64 * MB), name="pe1")
    arena = IsomallocArena(profile.layout(), 2, slot_bytes=256 * 1024)
    mgr0, _ = make_manager(technique, arena=arena, space=sp0)
    if technique == "isomalloc":
        mgr1 = IsomallocStacks(sp1, profile, arena, 1, stack_bytes=STACK)
    elif technique == "stack_copy":
        mgr1 = StackCopyStacks(sp1, profile, stack_bytes=STACK)
    else:
        mgr1 = MemoryAliasStacks(sp1, profile, stack_bytes=STACK)

    rec = mgr0.create_stack()
    rec.consume(256)
    # Store a pointer into the stack itself — the classic migration hazard.
    self_ptr = rec.top - 128
    mgr0.stack_write(rec, rec.size - 256, self_ptr.to_bytes(4, "little"))
    mgr0.stack_write(rec, self_ptr - rec.base, b"target!!")
    image = mgr0.pack(rec)
    mgr0.evacuate(rec)
    rec2 = mgr1.unpack(image)
    assert rec2.base == rec.base              # same thread-visible address
    assert rec2.used_bytes == 256
    ptr = int.from_bytes(mgr1.stack_read(rec2, rec2.size - 256, 4), "little")
    assert ptr == self_ptr                    # pointer survived byte-for-byte
    assert mgr1.stack_read(rec2, ptr - rec2.base, 8) == b"target!!"


def test_pack_wrong_technique_rejected():
    mgr_a, _ = make_manager("stack_copy")
    mgr_b, _ = make_manager("memory_alias")
    rec = mgr_a.create_stack()
    image = mgr_a.pack(rec)
    with pytest.raises(MigrationError):
        mgr_b.unpack(image)


@pytest.mark.parametrize("technique", ["stack_copy", "memory_alias"])
def test_cannot_migrate_active_thread(technique):
    mgr, _ = make_manager(technique)
    rec = mgr.create_stack()
    mgr.switch_in(rec)
    with pytest.raises(MigrationError):
        mgr.pack(rec)


def test_stack_overflow_detected():
    mgr, _ = make_manager("isomalloc")
    rec = mgr.create_stack()
    with pytest.raises(ThreadError):
        rec.consume(STACK + 1)


def test_memory_alias_on_windows_equivalent():
    """Table 1's Windows 'Maybe': MapViewOfFileEx is an mmap equivalent,
    so the aliasing mechanism works once implemented."""
    profile = get_platform("windows")
    sp = AddressSpace(profile.layout(), PhysicalMemory(32 * MB))
    mgr = MemoryAliasStacks(sp, profile, stack_bytes=STACK)
    a, b = mgr.create_stack(), mgr.create_stack()
    mgr.switch_in(a)
    mgr.stack_write(a, 0, b"win-a")
    mgr.switch_out(a)
    mgr.switch_in(b)
    mgr.stack_write(b, 0, b"win-b")
    mgr.switch_out(b)
    assert mgr.stack_read(a, 0, 5) == b"win-a"
    assert mgr.stack_read(b, 0, 5) == b"win-b"
