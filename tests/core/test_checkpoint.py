"""Tests for checkpoint/restart and processor evacuation."""

import pytest

from repro.core import Checkpointer, DiskModel
from repro.core.thread import ThreadState
from repro.errors import MigrationError
from tests.core.conftest import make_cluster


def make_world(**kw):
    cl, scheds, mig, arena = make_cluster(2, emulate_swap=True, **kw)
    return cl, scheds, mig, Checkpointer(mig)


def test_checkpoint_produces_real_bytes():
    cl, scheds, mig, ck = make_world()

    def body(th):
        a = th.malloc(256)
        th.write(a, b"persist-me" * 10)
        yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()
    key = ck.checkpoint(t)
    rec = ck.stored(key)
    assert isinstance(rec.blob, bytes)
    assert rec.nbytes > 256                    # at least the heap contents
    assert b"persist-me" in rec.blob           # the data really serialized
    assert ck.bytes_written == rec.nbytes


def test_checkpoint_restore_roundtrip():
    """Checkpoint to 'disk', destroy local state, restore elsewhere."""
    cl, scheds, mig, ck = make_world()
    out = []

    def body(th):
        cell = th.malloc(8)
        th.write_word(cell, 31337)
        stack_cell = th.alloca(8)
        th.write_word(stack_cell, cell)
        yield "suspend"
        out.append(th.read_word(th.read_word(stack_cell)))

    t = scheds[0].create(body)
    scheds[0].run()
    key = ck.checkpoint(t)
    # Fail-stop: processor 0 loses the thread's local resources.
    scheds[0].remove(t)
    scheds[0].stack_manager.evacuate(t.stack)
    # Restore on processor 1 and resume.
    restored = ck.restore(key, dst_pe=1)
    assert restored is t
    assert t.state is ThreadState.SUSPENDED
    scheds[1].awaken(t)
    scheds[1].run()
    assert out == [31337]


def test_checkpoint_charges_disk_time():
    cl, scheds, mig, ck = make_world()

    def body(th):
        th.malloc(32 * 1024)
        yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()
    before = cl[0].now
    ck.checkpoint(t)
    # At least the seek plus the transfer at modeled disk bandwidth.
    assert cl[0].now - before >= DiskModel().write_ns(32 * 1024)


def test_restore_after_progress_rejected():
    """The documented emulation limit: a thread that ran after the
    checkpoint cannot be rolled back (its generator advanced)."""
    cl, scheds, mig, ck = make_world()

    def body(th):
        yield "yield"
        yield "yield"
        yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run(max_switches=1)
    key = ck.checkpoint(t)
    scheds[0].run(max_switches=1)           # thread advances past the ckpt
    with pytest.raises(MigrationError, match="after the checkpoint"):
        ck.restore(key, dst_pe=1)


def test_checkpoint_running_thread_rejected():
    cl, scheds, mig, ck = make_world()
    boom = []

    def body(th):
        try:
            ck.checkpoint(th)
        except MigrationError as e:
            boom.append(str(e))
        yield "yield"

    scheds[0].create(body)
    scheds[0].run()
    assert boom and "running" in boom[0]


def test_unknown_checkpoint_key():
    cl, scheds, mig, ck = make_world()
    with pytest.raises(MigrationError):
        ck.restore("nope", 0)
    with pytest.raises(MigrationError):
        ck.stored("nope")


def test_evacuation_moves_all_threads():
    """Proactive fault tolerance: vacate a node expected to fail."""
    cl, scheds, mig, arena = make_cluster(3)
    ck = Checkpointer(mig)
    done = []

    def body(th, i):
        yield "suspend"
        done.append((i, th.scheduler.processor.id))

    threads = [scheds[0].create(lambda th, i=i: body(th, i))
               for i in range(6)]
    scheds[0].run()
    moved = ck.evacuate(0)
    assert moved == 6
    cl.run()
    # Processor 0 is empty; survivors host everything.
    assert not scheds[0].threads
    assert cl[0].space.resident_bytes == 0
    for t in threads:
        t.scheduler.awaken(t)
    for s in scheds[1:]:
        s.run()
    assert sorted(i for i, _ in done) == list(range(6))
    assert all(pe in (1, 2) for _, pe in done)


def test_evacuation_bad_targets():
    cl, scheds, mig, arena = make_cluster(2)
    ck = Checkpointer(mig)
    with pytest.raises(MigrationError):
        ck.evacuate(0, targets=[0])
    with pytest.raises(MigrationError):
        ck.evacuate(0, targets=[])


def test_private_globals_survive_checkpoint_restore():
    cl, scheds, mig, ck = make_world(globals_decl=[("counter", 8)])
    out = []

    def body(th):
        th.global_write_int("counter", 777)
        yield "suspend"
        out.append(th.global_read_int("counter"))

    t = scheds[0].create(body, privatize_globals=True)
    scheds[0].run()
    key = ck.checkpoint(t)
    scheds[0].remove(t)
    scheds[0].stack_manager.evacuate(t.stack)
    ck.restore(key, dst_pe=1)
    scheds[1].awaken(t)
    scheds[1].run()
    assert out == [777]
