"""Tests for the PUP pack/unpack framework."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pup import (PackingPupper, SizingPupper, UnpackingPupper,
                            pup_pack, pup_register, pup_size, pup_unpack)
from repro.errors import PupError


@pup_register
class Point:
    def __init__(self, x=0.0, y=0.0):
        self.x, self.y = x, y

    def pup(self, p):
        self.x = p.double(self.x)
        self.y = p.double(self.y)


@pup_register
class Blob:
    def __init__(self, name="", data=b"", flags=None, weights=None):
        self.name = name
        self.data = data
        self.flags = flags if flags is not None else []
        self.weights = weights if weights is not None else []

    def pup(self, p):
        self.name = p.str(self.name)
        self.data = p.bytes(self.data)
        self.flags = p.list_int(self.flags)
        self.weights = p.list_double(self.weights)


@pup_register
class Nested:
    def __init__(self, origin=None, points=None, grid=None):
        self.origin = origin or Point()
        self.points = points or []
        self.grid = grid if grid is not None else np.zeros((2, 2))

    def pup(self, p):
        self.origin = p.obj(self.origin)
        self.points = p.list_obj(self.points)
        self.grid = p.array(self.grid)


def test_roundtrip_simple():
    q = pup_unpack(pup_pack(Point(1.5, -2.25)))
    assert isinstance(q, Point)
    assert (q.x, q.y) == (1.5, -2.25)


def test_roundtrip_strings_bytes_lists():
    b = Blob("héllo", b"\x00\xff", [1, -2, 3], [0.5, 1.5])
    q = pup_unpack(pup_pack(b))
    assert q.name == "héllo"
    assert q.data == b"\x00\xff"
    assert q.flags == [1, -2, 3]
    assert q.weights == [0.5, 1.5]


def test_roundtrip_nested_and_arrays():
    n = Nested(Point(9, 8), [Point(1, 2), Point(3, 4)],
               np.arange(6, dtype=np.float32).reshape(2, 3))
    q = pup_unpack(pup_pack(n))
    assert (q.origin.x, q.origin.y) == (9, 8)
    assert [(p.x, p.y) for p in q.points] == [(1, 2), (3, 4)]
    assert q.grid.dtype == np.float32
    np.testing.assert_array_equal(q.grid, n.grid)


def test_sizing_matches_packing():
    """The sizing phase must predict the packed size exactly."""
    for obj in (Point(1, 2), Blob("x", b"abc", [1], [2.0]),
                Nested(Point(), [Point()], np.ones((3, 3)))):
        assert pup_size(obj) == len(pup_pack(obj))


def test_unregistered_class_rejected():
    class Rogue:
        def pup(self, p):
            pass

    with pytest.raises(PupError):
        pup_pack(Rogue())


def test_unknown_wire_name_rejected():
    blob = pup_pack(Point(0, 0))
    # Corrupt the class name inside the buffer.
    bad = blob.replace(b"Point", b"Joint")
    with pytest.raises(PupError):
        pup_unpack(bad)


def test_truncated_buffer_rejected():
    blob = pup_pack(Blob("name", b"data", [1, 2, 3], []))
    with pytest.raises(PupError):
        pup_unpack(blob[:-4])


def test_trailing_garbage_rejected():
    blob = pup_pack(Point(1, 2))
    with pytest.raises(PupError):
        pup_unpack(blob + b"\x00" * 8)


def test_duplicate_registration_rejected():
    class A:
        def pup(self, p):
            pass

    pup_register(A, name="dup-test")
    pup_register(A, name="dup-test")     # same class again is fine

    class B:
        def pup(self, p):
            pass

    with pytest.raises(PupError):
        pup_register(B, name="dup-test")


def test_phase_flags():
    s, p = SizingPupper(), PackingPupper()
    u = UnpackingPupper(b"")
    assert s.is_sizing and not s.is_packing
    assert p.is_packing and not p.is_unpacking
    assert u.is_unpacking and not u.is_sizing


def test_bool_field():
    @pup_register
    class Flag:
        def __init__(self, on=False):
            self.on = on

        def pup(self, p):
            self.on = p.bool(self.on)

    assert pup_unpack(pup_pack(Flag(True))).on is True
    assert pup_unpack(pup_pack(Flag(False))).on is False


# -- error-path diagnostics --------------------------------------------------

def test_truncated_buffer_error_names_class_and_field():
    """A short blob must name the class and field, not raise struct.error."""
    blob = pup_pack(Point(1.5, 2.5))
    with pytest.raises(PupError, match=r"Point.*field #3.*unpacking"):
        pup_unpack(blob[:-4])


def test_truncated_blob_length_error_names_class():
    """Truncation inside a variable-length blob is equally diagnosable."""
    blob = pup_pack(Blob("name", b"0123456789", [], []))
    # Cut into the middle of the data payload: the length prefix promises
    # 10 bytes, fewer remain, and the error must still name the class.
    with pytest.raises(PupError, match=r"blob ran past end of buffer.*Blob"):
        pup_unpack(blob[:-20])


def test_overlong_buffer_error_names_class_and_byte_count():
    blob = pup_pack(Point(1, 2))
    with pytest.raises(PupError, match=r"Point: 5 trailing bytes"):
        pup_unpack(blob + b"\x00" * 5)


def test_pack_type_mismatch_raises_pup_error_not_struct_error():
    with pytest.raises(PupError, match=r"cannot pack.*Point.*packing"):
        pup_pack(Point("not-a-float", 2.0))


def test_nested_error_context_names_inner_class():
    """Errors inside a nested obj() field report the inner class path."""
    n = Nested(Point(0, 0), [Point(1, "bad")], np.zeros((1, 1)))
    with pytest.raises(PupError, match=r"Nested\.Point"):
        pup_pack(n)


# -- property tests ----------------------------------------------------------

@given(x=st.floats(allow_nan=False, allow_infinity=False),
       y=st.floats(allow_nan=False, allow_infinity=False))
@settings(max_examples=60, deadline=None)
def test_point_roundtrip_property(x, y):
    q = pup_unpack(pup_pack(Point(x, y)))
    assert q.x == x and q.y == y


@given(name=st.text(max_size=40), data=st.binary(max_size=200),
       flags=st.lists(st.integers(min_value=-2**62, max_value=2**62),
                      max_size=20))
@settings(max_examples=60, deadline=None)
def test_blob_roundtrip_property(name, data, flags):
    q = pup_unpack(pup_pack(Blob(name, data, flags, [])))
    assert q.name == name and q.data == data and q.flags == flags


@given(st.integers(min_value=0, max_value=3).flatmap(
    lambda nd: st.lists(st.integers(min_value=1, max_value=5),
                        min_size=nd, max_size=nd)))
@settings(max_examples=40, deadline=None)
def test_array_shape_roundtrip_property(shape):
    arr = np.arange(int(np.prod(shape)) if shape else 1,
                    dtype=np.int64).reshape(shape or ())
    n = Nested(grid=arr)
    q = pup_unpack(pup_pack(n))
    np.testing.assert_array_equal(q.grid, arr)
    assert q.grid.shape == arr.shape


@given(st.binary(min_size=0, max_size=100))
@settings(max_examples=60, deadline=None)
def test_sizing_equals_packing_property(data):
    b = Blob("n", data, list(range(len(data) % 7)), [1.0] * (len(data) % 5))
    assert pup_size(b) == len(pup_pack(b))
