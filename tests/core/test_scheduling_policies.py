"""Tests for priority scheduling and blocking-call handling."""

import pytest

from repro.core import CthScheduler, IsomallocArena, IsomallocStacks
from repro.errors import SchedulerError
from repro.sim import Cluster
from tests.core.conftest import make_cluster


def make_sched(policy="fifo", io_mode="intercept", n=1):
    cl = Cluster(n)
    arena = IsomallocArena(cl.platform.layout(), n, slot_bytes=128 * 1024)
    mgr = IsomallocStacks(cl[0].space, cl.platform, arena, 0,
                          stack_bytes=8 * 1024)
    return cl, CthScheduler(cl[0], mgr, policy=policy, io_mode=io_mode)


# -- priority scheduling ------------------------------------------------------

def test_priority_policy_orders_by_priority():
    """Section 2.3: 'the application's priority structure can be directly
    used by the thread scheduler'."""
    cl, sched = make_sched(policy="priority")
    order = []

    def body(th, tag):
        order.append(tag)
        yield "yield"
        order.append(tag)

    sched.create(lambda th: body(th, "low"), priority=10)
    sched.create(lambda th: body(th, "high"), priority=1)
    sched.create(lambda th: body(th, "mid"), priority=5)
    sched.run()
    # Strict priorities: a yielding high-priority thread re-enters the
    # queue ahead of lower priorities and runs to completion first.
    assert order == ["high", "high", "mid", "mid", "low", "low"]


def test_priority_stable_among_equals():
    cl, sched = make_sched(policy="priority")
    order = []

    def body(th, tag):
        order.append(tag)
        yield "yield"

    for tag in "abc":
        sched.create(lambda th, tag=tag: body(th, tag), priority=3)
    sched.run()
    assert order == ["a", "b", "c"]


def test_fifo_ignores_priorities():
    cl, sched = make_sched(policy="fifo")
    order = []

    def body(th, tag):
        order.append(tag)
        yield "yield"

    sched.create(lambda th: body(th, "first"), priority=100)
    sched.create(lambda th: body(th, "second"), priority=1)
    sched.run()
    assert order == ["first", "second"]


def test_priority_awaken_respects_priority():
    cl, sched = make_sched(policy="priority")
    order = []

    def sleeper(th, tag):
        yield "suspend"
        order.append(tag)

    low = sched.create(lambda th: sleeper(th, "low"), priority=9)
    high = sched.create(lambda th: sleeper(th, "high"), priority=1)
    sched.run()
    sched.awaken(low)
    sched.awaken(high)
    sched.run()
    assert order == ["high", "low"]


def test_unknown_policy_rejected():
    cl = Cluster(1)
    arena = IsomallocArena(cl.platform.layout(), 1)
    mgr = IsomallocStacks(cl[0].space, cl.platform, arena, 0,
                          stack_bytes=8 * 1024)
    with pytest.raises(SchedulerError):
        CthScheduler(cl[0], mgr, policy="lottery")
    with pytest.raises(SchedulerError):
        CthScheduler(cl[0], mgr, io_mode="dma")


# -- blocking-call handling -----------------------------------------------------

IO_NS = 1_000_000.0       # a 1 ms blocking call


def run_io_world(io_mode):
    """Two threads: one blocks on IO, the other has pure compute."""
    cl, sched = make_sched(io_mode=io_mode)
    log = []

    def io_thread(th):
        yield ("io", IO_NS)
        log.append(("io-done", th.scheduler.processor.now))

    def compute_thread(th):
        th.charge(50_000)
        log.append(("compute-done", th.scheduler.processor.now))
        yield "yield"

    sched.create(io_thread)
    sched.create(compute_thread)
    sched.run()
    cl.run()          # deliver the IO completion timer
    sched.run()
    return cl, log


def test_naive_io_blocks_the_whole_processor():
    """Section 2.3's disadvantage: the kernel suspends the whole process,
    'even though another user-level thread might be ready to run'."""
    cl, log = run_io_world("naive")
    compute_t = dict(log)["compute-done"]
    assert compute_t >= IO_NS               # compute waited out the IO


def test_intercepting_runtime_overlaps_io():
    """The smarter runtime layer: replace the blocking call, run another
    user-level thread while it proceeds."""
    cl, log = run_io_world("intercept")
    compute_t = dict(log)["compute-done"]
    io_t = dict(log)["io-done"]
    assert compute_t < IO_NS                # compute ran during the IO
    assert io_t >= IO_NS                    # IO still took its full time


def test_io_makespan_advantage():
    naive_cl, _ = run_io_world("naive")
    smart_cl, _ = run_io_world("intercept")
    assert smart_cl.makespan <= naive_cl.makespan


def test_io_without_cluster_falls_back_to_naive():
    from repro.core import IsomallocStacks as IS
    from repro.sim import Processor, get_platform

    proc = Processor(0, get_platform("linux_x86"))   # no cluster attached
    arena = IsomallocArena(proc.layout, 1)
    sched = CthScheduler(proc, IS(proc.space, proc.profile, arena, 0,
                                  stack_bytes=8 * 1024))
    done = []

    def body(th):
        yield ("io", 5000.0)
        done.append(proc.now)

    sched.create(body)
    sched.run()
    assert done and done[0] >= 5000.0


def test_scheduler_activations_overlap_with_upcall_cost():
    """Scheduler activations [3]: same overlap as interception, but each
    block/unblock pays a kernel upcall."""
    cl, log = run_io_world("activations")
    compute_t = dict(log)["compute-done"]
    assert compute_t < IO_NS                 # overlap achieved

    # Activations cost two syscalls per blocking call vs interception.
    cl_int, _ = run_io_world("intercept")
    assert cl.makespan >= cl_int.makespan


def test_activations_count_upcalls():
    cl, sched = make_sched(io_mode="activations")

    def body(th):
        yield ("io", 1000.0)
        yield ("io", 1000.0)

    sched.create(body)
    while sched.threads_finished < 1:
        progressed = sched.run() > 0
        progressed |= cl.run() > 0
        assert progressed
    assert sched.upcalls == 4               # 2 blocks x (block + unblock)
