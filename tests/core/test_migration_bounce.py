"""Regression: a bounced migration must not count as a completed one.

When the destination refuses an in-flight image (the
``migration.delivery`` channel answers ``"bounce"``), the image ships
back and the thread is rebuilt at *home* — it moved nowhere.  The
rebuild path once fell through to the normal-arrival accounting and
incremented ``migrations_completed`` and ``thread.migrations`` anyway,
feeding phantom successful moves into LB statistics.  These tests pin
the fixed accounting (``migrations_returned``) and fail on the old code.
"""

from repro.core.thread import ThreadState
from tests.core.conftest import make_cluster


def bounce_once_cluster():
    """A 2-PE cluster whose first migration delivery is refused."""
    cl, scheds, mig, _ = make_cluster(2, emulate_swap=True)
    state = {"bounced": 0}

    def refuse_first(image, msg):
        if state["bounced"]:
            return None
        state["bounced"] += 1
        return "bounce"

    cl.queue.hooks.subscribe("migration.delivery", refuse_first)
    return cl, scheds, mig


def test_bounce_home_rebuild_is_returned_not_completed():
    cl, scheds, mig = bounce_once_cluster()
    log = []

    def body(th):
        log.append(th.scheduler.processor.id)
        yield "suspend"
        log.append(th.scheduler.processor.id)

    t = scheds[0].create(body)
    scheds[0].run()
    mig.migrate(t, 1)
    cl.run()                                   # out-bounce-and-back
    assert t.scheduler is scheds[0]            # rebuilt at home
    assert mig.migrations_bounced == 1
    assert mig.migrations_returned == 1
    # The heart of the regression: nothing completed, the thread never
    # migrated, yet both were once incremented on the bounce-home path.
    assert mig.migrations_completed == 0
    assert t.migrations == 0
    scheds[0].awaken(t)
    scheds[0].run()
    assert log == [0, 0]


def test_successful_migration_accounting_is_unchanged():
    cl, scheds, mig, _ = make_cluster(2, emulate_swap=True)

    def body(th):
        yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()
    mig.migrate(t, 1)
    cl.run()
    assert (mig.migrations_completed, mig.migrations_returned) == (1, 0)
    assert t.migrations == 1


def test_bounce_then_real_migration_counts_each_once():
    """After a bounce, a later (un-refused) migration of the same thread
    completes and is counted exactly once."""
    cl, scheds, mig = bounce_once_cluster()

    def body(th):
        yield "suspend"

    t = scheds[0].create(body)
    scheds[0].run()
    mig.migrate(t, 1)
    cl.run()                                   # bounced home
    assert t.state is ThreadState.SUSPENDED
    mig.migrate(t, 1)                          # second try: no refusal
    cl.run()
    assert mig.migrations_bounced == 1
    assert mig.migrations_returned == 1
    assert mig.migrations_completed == 1
    assert t.migrations == 1
    assert mig.migrations_started == 2
