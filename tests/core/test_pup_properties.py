"""Property-based PUP tests: random graphs, roundtrips, hostile bytes.

Hand-rolled property testing (no external dependencies): seeded
:class:`random.Random` generators produce random value trees and random
registered-object graphs, and three properties must hold for every one:

1. **Roundtrip stability** — pack -> unpack -> pack is byte-identical
   (which also proves pack -> unpack loses nothing);
2. **Truncation safety** — every strict prefix of a packed stream raises
   :class:`~repro.errors.PupError`; never ``struct.error``, never a
   silently short value;
3. **Corruption safety** — a sealed blob with *any single byte* flipped
   raises :class:`~repro.errors.PupError` on unseal: corrupted
   checkpoints are loud, not wrong.
"""

import random

import numpy as np
import pytest

from repro.core.pup import (pack_value, pup_pack, pup_pack_checked,
                            pup_register, pup_seal, pup_unpack,
                            pup_unpack_checked, pup_unseal, unpack_value)
from repro.errors import PupError


SEEDS = range(12)

_ALPHABET = "abcXYZ 0123456789_é世\U0001f600"


def random_value(rng, depth=0):
    """One random node of a pack_value-able tree."""
    kinds = ["none", "bool", "int", "float", "bytes", "str", "array"]
    if depth < 3:
        kinds += ["list", "tuple", "dict"] * 2
    kind = rng.choice(kinds)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        return rng.randint(-2 ** 62, 2 ** 62)
    if kind == "float":
        return rng.uniform(-1e18, 1e18)
    if kind == "bytes":
        return bytes(rng.getrandbits(8) for _ in range(rng.randint(0, 40)))
    if kind == "str":
        return "".join(rng.choice(_ALPHABET)
                       for _ in range(rng.randint(0, 24)))
    if kind == "array":
        shape = tuple(rng.randint(1, 4) for _ in range(rng.randint(1, 3)))
        dtype = rng.choice([np.int64, np.float64, np.uint8])
        flat = [rng.randint(0, 200) for _ in range(int(np.prod(shape)))]
        return np.array(flat, dtype=dtype).reshape(shape)
    n = rng.randint(0, 5)
    if kind == "list":
        return [random_value(rng, depth + 1) for _ in range(n)]
    if kind == "tuple":
        return tuple(random_value(rng, depth + 1) for _ in range(n))
    return {rng.choice([rng.randint(0, 10 ** 9),
                        "".join(rng.choice(_ALPHABET) for _ in range(6)),
                        (rng.randint(0, 99), rng.randint(0, 99))]):
            random_value(rng, depth + 1) for _ in range(n)}


@pup_register
class PropPoint:
    """A leaf object for random graphs."""

    def __init__(self, x=0.0, y=0.0):
        self.x = x
        self.y = y

    def pup(self, p):
        self.x = p.double(self.x)
        self.y = p.double(self.y)


@pup_register
class PropNode:
    """A tree node mixing primitives, blobs, arrays, and nested objects."""

    def __init__(self):
        self.label = ""
        self.weight = 0
        self.payload = b""
        self.samples = np.zeros(0)
        self.origin = PropPoint()
        self.children = []

    def pup(self, p):
        self.label = p.str(self.label)
        self.weight = p.int(self.weight)
        self.payload = p.bytes(self.payload)
        self.samples = p.array(None if p.is_unpacking else self.samples)
        self.origin = p.obj(None if p.is_unpacking else self.origin)
        self.children = p.list_obj(None if p.is_unpacking
                                   else self.children)


def random_graph(rng, depth=0):
    node = PropNode()
    node.label = "".join(rng.choice(_ALPHABET)
                         for _ in range(rng.randint(0, 12)))
    node.weight = rng.randint(-10 ** 12, 10 ** 12)
    node.payload = bytes(rng.getrandbits(8)
                         for _ in range(rng.randint(0, 32)))
    node.samples = np.array([rng.uniform(-5, 5)
                             for _ in range(rng.randint(0, 8))])
    node.origin = PropPoint(rng.uniform(-1, 1), rng.uniform(-1, 1))
    if depth < 3:
        node.children = [random_graph(rng, depth + 1)
                         for _ in range(rng.randint(0, 3))]
    return node


def cuts(blob, rng, limit=60):
    """Every strict-prefix length for small blobs, a random sample for big."""
    if len(blob) <= limit:
        return range(len(blob))
    return sorted(rng.sample(range(len(blob)), limit))


# -- property 1: roundtrip byte-stability -----------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_value_roundtrip_is_byte_stable(seed):
    rng = random.Random(seed)
    for _ in range(10):
        blob = pack_value(random_value(rng))
        assert pack_value(unpack_value(blob)) == blob


@pytest.mark.parametrize("seed", SEEDS)
def test_object_graph_roundtrip_is_byte_stable(seed):
    rng = random.Random(seed)
    blob = pup_pack(random_graph(rng))
    clone = pup_unpack(blob)
    assert isinstance(clone, PropNode)
    assert pup_pack(clone) == blob
    # ... and through the checked (sealed) path as well.
    assert pup_pack_checked(pup_unpack_checked(pup_pack_checked(clone))) \
        == pup_pack_checked(clone)


# -- property 2: truncation is loud -----------------------------------------

@pytest.mark.parametrize("seed", SEEDS)
def test_truncated_value_stream_always_raises_puperror(seed):
    rng = random.Random(seed)
    blob = pack_value(random_value(rng))
    for cut in cuts(blob, rng):
        with pytest.raises(PupError):
            unpack_value(blob[:cut])


@pytest.mark.parametrize("seed", SEEDS)
def test_truncated_object_stream_always_raises_puperror(seed):
    rng = random.Random(seed)
    blob = pup_pack(random_graph(rng))
    for cut in cuts(blob, rng):
        with pytest.raises(PupError):
            pup_unpack(blob[:cut])


def test_overlong_stream_is_also_loud():
    blob = pack_value({"k": [1, 2, 3]})
    with pytest.raises(PupError):
        unpack_value(blob + b"\x00")


# -- property 3: single-byte corruption of a sealed blob is loud ------------

@pytest.mark.parametrize("seed", SEEDS)
def test_any_flipped_byte_fails_the_seal(seed):
    rng = random.Random(seed)
    sealed = pup_seal(pack_value(random_value(rng)))
    for i in cuts(sealed, rng):
        hostile = sealed[:i] + bytes([sealed[i] ^ 0xFF]) + sealed[i + 1:]
        with pytest.raises(PupError):
            pup_unseal(hostile)


@pytest.mark.parametrize("seed", SEEDS)
def test_checked_unpack_rejects_corrupted_graphs(seed):
    rng = random.Random(seed)
    sealed = pup_pack_checked(random_graph(rng))
    for i in cuts(sealed, rng, limit=20):
        hostile = sealed[:i] + bytes([sealed[i] ^ 0x01]) + sealed[i + 1:]
        with pytest.raises(PupError):
            pup_unpack_checked(hostile)
    for cut in cuts(sealed, rng, limit=20):
        with pytest.raises(PupError):
            pup_unpack_checked(sealed[:cut])
