"""Tests for the Converse-style user-level thread scheduler."""

import pytest

from repro.core.thread import ThreadState
from repro.errors import SchedulerError, ThreadError
from tests.core.conftest import make_cluster


def test_create_and_run_one_thread():
    cl, scheds, _, _ = make_cluster(1)
    log = []

    def body(th):
        log.append("a")
        yield "yield"
        log.append("b")

    t = scheds[0].create(body)
    assert t.state is ThreadState.READY
    scheds[0].run()
    assert log == ["a", "b"]
    assert t.state is ThreadState.FINISHED
    assert scheds[0].threads_finished == 1


def test_round_robin_interleaving():
    """FIFO ready queue: the paper's 'circular linked list of runnable
    threads' gives strict round-robin interleaving."""
    cl, scheds, _, _ = make_cluster(1)
    log = []

    def body(th, tag):
        for i in range(3):
            log.append((tag, i))
            yield "yield"

    for tag in "xyz":
        scheds[0].create(lambda th, tag=tag: body(th, tag))
    scheds[0].run()
    assert log == [("x", 0), ("y", 0), ("z", 0),
                   ("x", 1), ("y", 1), ("z", 1),
                   ("x", 2), ("y", 2), ("z", 2)]


def test_suspend_awaken():
    cl, scheds, _, _ = make_cluster(1)
    log = []

    def sleeper(th):
        log.append("sleep")
        yield "suspend"
        log.append("woke")

    t = scheds[0].create(sleeper)
    scheds[0].run()
    assert log == ["sleep"]
    assert t.state is ThreadState.SUSPENDED
    scheds[0].awaken(t)
    scheds[0].run()
    assert log == ["sleep", "woke"]


def test_awaken_non_suspended_rejected():
    cl, scheds, _, _ = make_cluster(1)
    t = scheds[0].create(lambda th: iter(()))
    with pytest.raises(ThreadError):
        scheds[0].awaken(t)              # READY, not SUSPENDED


def test_unknown_directive_raises():
    cl, scheds, _, _ = make_cluster(1)

    def bad(th):
        yield ("warp", 9)

    scheds[0].create(bad)
    with pytest.raises(SchedulerError):
        scheds[0].run()


def test_directive_handler_hook():
    cl, scheds, _, _ = make_cluster(1)
    seen = []

    def handler(thread, directive):
        seen.append(directive)
        scheds[0].ready.append(thread)   # requeue ourselves
        thread.state = ThreadState.READY
        return True

    scheds[0].directive_handler = handler

    def body(th):
        yield ("custom", 42)
        yield "yield"

    scheds[0].create(body)
    scheds[0].run()
    assert seen == [("custom", 42)]


def test_context_switch_charges_time():
    cl, scheds, _, _ = make_cluster(1)
    before = cl[0].now

    def body(th):
        for _ in range(10):
            yield "yield"

    scheds[0].create(body)
    scheds[0].run()
    assert cl[0].now > before
    assert scheds[0].context_switches == 11


def test_run_with_switch_budget():
    cl, scheds, _, _ = make_cluster(1)

    def spinner(th):
        while True:
            yield "yield"

    scheds[0].create(spinner)
    n = scheds[0].run(max_switches=5)
    assert n == 5
    assert len(scheds[0].ready) == 1       # still runnable


def test_step_one():
    cl, scheds, _, _ = make_cluster(1)
    log = []

    def body(th):
        log.append(1)
        yield "yield"
        log.append(2)

    scheds[0].create(body)
    assert scheds[0].step_one()
    assert log == [1]
    assert scheds[0].step_one()
    assert not scheds[0].step_one()


def test_thread_charge_accumulates_work():
    cl, scheds, _, _ = make_cluster(1)

    def worker(th):
        th.charge(5_000)
        yield "yield"
        th.charge(7_000)

    t = scheds[0].create(worker)
    scheds[0].run()
    assert t.work_ns == 12_000


def test_malloc_requires_slot():
    cl, scheds, _, _ = make_cluster(1, technique="memory_alias")

    def body(th):
        with pytest.raises(ThreadError):
            th.malloc(64)
        yield "yield"

    scheds[0].create(body)
    scheds[0].run()


def test_many_threads_isomalloc():
    """User-level threads scale to large counts (Section 4.1 claim)."""
    cl, scheds, _, _ = make_cluster(1, slot_bytes=64 * 1024,
                                    stack_bytes=8 * 1024)
    done = []

    def body(th, i):
        yield "yield"
        done.append(i)

    for i in range(500):
        scheds[0].create(lambda th, i=i: body(th, i))
    scheds[0].run()
    assert len(done) == 500


def test_registers_preserved_across_switches():
    """With swap emulation, register values survive suspension because they
    are pushed to (and popped from) the thread's own simulated stack."""
    cl, scheds, _, _ = make_cluster(1, emulate_swap=True)
    values = []

    def body(th, v):
        th.scheduler.machine_regs["ebx"] = v
        yield "yield"
        values.append((v, th.scheduler.machine_regs["ebx"]))

    scheds[0].create(lambda th: body(th, 0xAAAA))
    scheds[0].create(lambda th: body(th, 0xBBBB))
    scheds[0].run()
    assert values == [(0xAAAA, 0xAAAA), (0xBBBB, 0xBBBB)]


def test_got_swapped_per_thread():
    """Each privatized thread sees its own globals across switches."""
    cl, scheds, _, _ = make_cluster(
        1, globals_decl=[("counter", 8)])
    results = {}

    def body(th, tag, v):
        th.global_write_int("counter", v)
        yield "yield"
        yield "yield"
        results[tag] = th.global_read_int("counter")

    scheds[0].create(lambda th: body(th, "a", 10), privatize_globals=True)
    scheds[0].create(lambda th: body(th, "b", 20), privatize_globals=True)
    scheds[0].run()
    assert results == {"a": 10, "b": 20}


def test_unprivatized_threads_race_on_globals():
    """Without privatization the paper's global-variable hazard appears."""
    cl, scheds, _, _ = make_cluster(1, globals_decl=[("counter", 8)])
    results = {}
    reg = scheds[0].globals_registry

    def body(th, tag, v):
        reg.write_int("counter", v)
        yield "yield"
        results[tag] = reg.read_int("counter")

    scheds[0].create(lambda th: body(th, "a", 10))
    scheds[0].create(lambda th: body(th, "b", 20))
    scheds[0].run()
    # Thread a reads thread b's write: the race is real.
    assert results["a"] == 20


def test_exception_in_body_propagates():
    cl, scheds, _, _ = make_cluster(1)

    def bad(th):
        yield "yield"
        raise ValueError("boom")

    scheds[0].create(bad)
    with pytest.raises(ValueError):
        scheds[0].run()
