"""Tests for SMP execution of the three stack techniques."""

import pytest

from repro.core.isomalloc import IsomallocArena
from repro.core.smp import SmpRunner
from repro.core.stacks import (IsomallocStacks, MemoryAliasStacks,
                               StackCopyStacks)
from repro.errors import SchedulerError
from repro.sim import Processor, get_platform

WORK = [500_000.0] * 8        # eight half-millisecond items


def make_runner(technique, cores=2):
    proc = Processor(0, get_platform("linux_x86"))
    profile = proc.profile
    if technique == "isomalloc":
        arena = IsomallocArena(proc.layout, 1, slot_bytes=128 * 1024)
        mgr = IsomallocStacks(proc.space, profile, arena, 0,
                              stack_bytes=8 * 1024)
    elif technique == "stack_copy":
        mgr = StackCopyStacks(proc.space, profile, stack_bytes=8 * 1024)
    else:
        mgr = MemoryAliasStacks(proc.space, profile, stack_bytes=8 * 1024)
    return SmpRunner(profile, mgr, cores=cores)


def test_isomalloc_scales_with_cores():
    """The paper: isomalloc 'allows the straightforward exploitation of
    SMP machines'."""
    r2 = make_runner("isomalloc", cores=2).run_batch(WORK)
    r4 = make_runner("isomalloc", cores=4).run_batch(WORK)
    assert r2.speedup > 1.8
    assert r4.speedup > 3.5
    assert r4.makespan_ns < r2.makespan_ns


@pytest.mark.parametrize("technique", ["stack_copy", "memory_alias"])
def test_single_address_techniques_serialize(technique):
    """'A machine with two physical processors can not run two
    stack-copying threads from the same address space simultaneously'."""
    r = make_runner(technique, cores=4).run_batch(WORK)
    assert r.speedup < 1.05               # no parallelism, just overhead
    assert r.makespan_ns >= r.total_work_ns


def test_isomalloc_beats_single_address_on_smp():
    iso = make_runner("isomalloc", cores=2).run_batch(WORK)
    copy = make_runner("stack_copy", cores=2).run_batch(WORK)
    alias = make_runner("memory_alias", cores=2).run_batch(WORK)
    assert iso.makespan_ns < copy.makespan_ns / 1.8
    assert iso.makespan_ns < alias.makespan_ns / 1.8


def test_one_core_equalizes():
    """On a uniprocessor the SMP constraint is moot: all techniques take
    ~the work plus their per-switch cost."""
    iso = make_runner("isomalloc", cores=1).run_batch(WORK)
    alias = make_runner("memory_alias", cores=1).run_batch(WORK)
    assert iso.makespan_ns >= iso.total_work_ns
    # Aliasing pays a remap per item; isomalloc only register swaps.
    assert alias.makespan_ns > iso.makespan_ns
    assert alias.makespan_ns < iso.makespan_ns * 1.1


def test_uneven_work_list_scheduling():
    runner = make_runner("isomalloc", cores=2)
    res = runner.run_batch([1_000_000.0, 250_000.0, 250_000.0, 250_000.0,
                            250_000.0])
    # Optimal split: 1 ms on one core, 4 x 0.25 ms on the other.
    assert res.makespan_ns < 1.2 * 1_000_000.0


def test_bad_core_count():
    with pytest.raises(SchedulerError):
        make_runner("isomalloc", cores=0)


def test_result_fields():
    res = make_runner("isomalloc", cores=2).run_batch([1000.0, 2000.0])
    assert res.items == 2
    assert res.technique == "isomalloc"
    assert res.total_work_ns == 3000.0
