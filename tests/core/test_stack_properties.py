"""Property tests: stack isolation and scheduler liveness invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.isomalloc import IsomallocArena
from repro.core.stacks import (IsomallocStacks, MemoryAliasStacks,
                               StackCopyStacks)
from repro.core.thread import ThreadState
from repro.sim import Cluster, Processor, get_platform
from tests.core.conftest import make_cluster

STACK = 8 * 1024


def build_manager(technique):
    proc = Processor(0, get_platform("linux_x86"))
    if technique == "isomalloc":
        arena = IsomallocArena(proc.layout, 1, slot_bytes=64 * 1024)
        return IsomallocStacks(proc.space, proc.profile, arena, 0,
                               stack_bytes=STACK)
    if technique == "stack_copy":
        return StackCopyStacks(proc.space, proc.profile, stack_bytes=STACK)
    return MemoryAliasStacks(proc.space, proc.profile, stack_bytes=STACK)


@given(technique=st.sampled_from(["isomalloc", "stack_copy", "memory_alias"]),
       script=st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                                 st.integers(min_value=0, max_value=60),
                                 st.binary(min_size=1, max_size=24)),
                       min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_stack_contents_isolated_under_random_switching(technique, script):
    """Whatever the interleaving of activations and writes, each thread's
    live-region stack data stays exactly what *it* wrote."""
    mgr = build_manager(technique)
    recs = [mgr.create_stack() for _ in range(4)]
    for r in recs:
        r.consume(256)
    shadow = [bytearray(256) for _ in range(4)]
    active = None
    for tid, off, data in script:
        rec = recs[tid]
        off = off % (256 - len(data))
        if not mgr.concurrent_active:
            if active is not None and active is not rec:
                mgr.switch_out(active)
                active = None
            if active is None:
                mgr.switch_in(rec)
                active = rec
        mgr.stack_write(rec, rec.size - 256 + off, data)
        shadow[tid][off:off + len(data)] = data
    if active is not None:
        mgr.switch_out(active)
    for tid, rec in enumerate(recs):
        got = mgr.stack_read(rec, rec.size - 256, 256)
        assert got == bytes(shadow[tid]), f"thread {tid} corrupted"


@given(ops=st.lists(st.sampled_from(["spawn", "awaken_all", "run_some"]),
                    min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_scheduler_never_loses_threads(ops):
    """Under random create/awaken/run interleavings every thread ends in a
    well-defined state and none disappears."""
    cl, scheds, _, _ = make_cluster(1, slot_bytes=64 * 1024,
                                    stack_bytes=4 * 1024)
    sched = scheds[0]
    threads = []

    def body(th):
        yield "yield"
        yield "suspend"

    for op in ops:
        if op == "spawn":
            threads.append(sched.create(body))
        elif op == "awaken_all":
            for t in threads:
                if t.state is ThreadState.SUSPENDED:
                    sched.awaken(t)
        else:
            sched.run(max_switches=3)
    # Drain completely.
    for _ in range(len(threads) + 1):
        sched.run()
        for t in threads:
            if t.state is ThreadState.SUSPENDED:
                sched.awaken(t)
    sched.run()
    assert all(t.state is ThreadState.FINISHED for t in threads)
    assert sched.threads_finished == len(threads)
    assert not sched.ready
    assert not sched.threads
