"""Direct tests of the UThread public API."""

import pytest

from repro.core.thread import ThreadState
from repro.errors import ThreadError
from tests.core.conftest import make_cluster


def make_thread(body=None, technique="isomalloc", **kw):
    cl, scheds, mig, _ = make_cluster(1, technique=technique, **kw)
    t = scheds[0].create(body or (lambda th: iter(())), name="t")
    return cl, scheds[0], t


def test_names_and_repr():
    cl, sched, t = make_thread()
    assert t.name == "t"
    assert "t" in repr(t)
    anon = sched.create(lambda th: iter(()))
    assert anon.name.startswith("t0.")


def test_read_write_word_via_heap():
    done = []

    def body(th):
        a = th.malloc(32)
        th.write(a, b"0123456789abcdef")
        assert th.read(a + 4, 4) == b"4567"
        th.write_word(a + 16, 0xFEEDFACE)
        assert th.read_word(a + 16) == 0xFEEDFACE
        th.free(a)
        done.append(True)
        yield "yield"

    cl, sched, t = make_thread(body)
    sched.run()
    assert done == [True]


def test_alloca_returns_descending_addresses():
    out = []

    def body(th):
        a = th.alloca(64)
        b = th.alloca(64)
        out.extend([a, b, th.stack.used_bytes])
        yield "yield"

    cl, sched, t = make_thread(body)
    sched.run()
    a, b, used = out
    assert b == a - 64                 # stack grows downward
    assert used == 128
    assert t.stack.base <= b < a < t.stack.top


def test_stack_reads_route_through_manager():
    """Reads of the thread's own stack work even when another thread owns
    the single stack address (non-isomalloc techniques)."""
    addrs = {}

    def body(th, tag):
        cell = th.alloca(8)
        th.write_word(cell, 1000 + tag)
        addrs[tag] = cell
        yield "suspend"
        addrs[(tag, "read")] = th.read_word(cell)

    cl, scheds, mig, _ = make_cluster(1, technique="memory_alias")
    sched = scheds[0]
    t1 = sched.create(lambda th: body(th, 1))
    t2 = sched.create(lambda th: body(th, 2))
    sched.run()
    # Both threads use the same VA for their cell; reads disambiguate.
    assert addrs[1] == addrs[2]
    for t in (t1, t2):
        sched.awaken(t)
    sched.run()
    assert addrs[(1, "read")] == 1001
    assert addrs[(2, "read")] == 1002


def test_free_requires_slot():
    def body(th):
        with pytest.raises(ThreadError):
            th.free(0x1234)
        yield "yield"

    cl, scheds, mig, _ = make_cluster(1, technique="stack_copy")
    scheds[0].create(body)
    scheds[0].run()


def test_step_after_finish_reports_exit():
    cl, sched, t = make_thread()
    sched.run()
    assert t.state is ThreadState.FINISHED
    assert t.step() == "exit"          # idempotent on a finished body


def test_resume_value_plumbed_into_generator():
    got = []

    def body(th):
        value = yield "suspend"
        got.append(value)

    cl, sched, t = make_thread(body)
    sched.run()
    t.resume_value = "handed-in"
    sched.awaken(t)
    sched.run()
    assert got == ["handed-in"]


def test_work_accounting():
    def body(th):
        th.charge(123.0)
        yield "yield"
        th.charge(877.0)

    cl, sched, t = make_thread(body)
    sched.run()
    assert t.work_ns == 1000.0
    assert t.switches == 2
