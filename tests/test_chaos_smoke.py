"""Tier-1 chaos smoke sweep: many seeds, every workload, no findings.

Each standard workload runs under 20 seeded fault schedules mixing message
faults (drop/delay/reorder), migration aborts and bounces, checkpoint disk
errors and corruption, and processor crashes/evacuations at checkpoint
barriers.  Every run must end in ``pass`` (right answer despite the
faults) or ``detected`` (the runtime reported the injected problem
cleanly) — a ``violation`` or ``error`` is a real bug and fails the gate.
"""

import pytest

from repro.chaos import (STANDARD_WORKLOADS, ChaosRunner, FaultConfig)

SEEDS = range(20)

SMOKE_CONFIG = FaultConfig(
    drop_rate=0.01, delay_rate=0.08, reorder_rate=0.05,
    migrate_abort_rate=0.1, migrate_bounce_rate=0.05,
    ckpt_error_rate=0.02, ckpt_corrupt_rate=0.02,
    crash_rate=0.15, evac_rate=0.1)


def sweep(workload_cls):
    return ChaosRunner(workload_cls(), SMOKE_CONFIG).sweep(SEEDS)


@pytest.mark.parametrize("workload_cls", STANDARD_WORKLOADS,
                         ids=lambda cls: cls.name)
def test_smoke_sweep_survives_all_seeds(workload_cls):
    results = sweep(workload_cls)
    findings = [r for r in results if r.failed]
    assert not findings, "chaos findings:\n" + "\n".join(
        f"  {r}\n    schedule: {r.schedule}\n    {r.detail}"
        for r in findings)
    # The sweep must actually exercise the fault paths and still have
    # fault-free-equivalent successes to compare against.
    assert any(r.outcome == "pass" for r in results)
    assert sum(len(r.schedule) for r in results) > 0


def test_sweep_covers_every_fault_kind():
    """Across the full smoke sweep, each fault family actually fires —
    a sweep that never crashes a processor tests nothing about crashes."""
    totals = {}
    for workload_cls in STANDARD_WORKLOADS:
        for r in sweep(workload_cls):
            for k, v in r.counters.items():
                totals[k] = totals.get(k, 0) + v
    for counter in ("dropped", "delayed", "reordered", "migrations_vetoed",
                    "migrations_bounced", "ckpt_io_errors", "ckpt_corrupted",
                    "crashes", "evacuations"):
        assert totals[counter] > 0, f"{counter} never fired in the sweep"


def test_faulted_seed_replays_byte_identically():
    """The reproducibility contract, end to end on one real faulted run."""
    runner = ChaosRunner(STANDARD_WORKLOADS[0](), SMOKE_CONFIG)
    seeded = next(r for r in runner.sweep(SEEDS) if r.schedule)
    replayed = runner.replay(seeded.schedule)
    assert replayed.fingerprint() == seeded.fingerprint()
