"""Tests for the fault injector's hooks into cluster/migrator/checkpointer."""

import pytest

from repro.chaos import FaultEvent, FaultInjector, FaultSchedule
from repro.core import Checkpointer
from repro.core.thread import ThreadState
from repro.errors import CheckpointError, MigrationAborted
from repro.sim import Cluster
from tests.core.conftest import make_cluster


def message_cluster(n=2):
    """A raw cluster whose processors log every delivered payload."""
    cl = Cluster(n)
    log = []
    for proc in cl.processors:
        proc.set_message_handler(lambda msg, log=log: log.append(msg.payload))
    return cl, log


def scripted_injector(cl, *events, tags=("t",)):
    injector = FaultInjector(FaultSchedule.scripted(list(events)),
                             faultable_tags=tags)
    injector.attach(cl)
    return injector


# -- message faults ---------------------------------------------------------

def test_drop_loses_exactly_the_scripted_message():
    cl, log = message_cluster()
    injector = scripted_injector(cl, FaultEvent("send", 0, "drop"))
    cl.send(0, 1, "first", 100, tag="t")
    cl.send(0, 1, "second", 100, tag="t")
    cl.run()
    assert log == ["second"]
    assert injector.counters["sends_seen"] == 2
    assert injector.counters["dropped"] == 1
    assert injector.arrivals_scheduled == 1


def test_delay_defers_delivery_past_later_traffic():
    cl, log = message_cluster()
    scripted_injector(cl, FaultEvent("send", 0, "delay", 1_000_000.0))
    cl.send(0, 1, "slowed", 100, tag="t")
    cl.send(0, 1, "normal", 100, tag="t")
    cl.run()
    assert log == ["normal", "slowed"]


def test_dup_delivers_the_message_twice():
    cl, log = message_cluster()
    injector = scripted_injector(cl, FaultEvent("send", 0, "dup", 5_000.0))
    cl.send(0, 1, "once?", 100, tag="t")
    cl.run()
    assert log == ["once?", "once?"]
    assert injector.counters["duplicated"] == 1
    assert injector.arrivals_scheduled == 2


def test_reorder_jumps_ahead_of_earlier_traffic():
    cl, log = message_cluster()
    injector = scripted_injector(cl, FaultEvent("send", 1, "reorder"))
    cl.send(0, 1, "big-and-slow", 1_000_000, tag="t")   # long wire time
    cl.send(0, 1, "queue-jumper", 100, tag="t")          # reordered early
    cl.run()
    assert log == ["queue-jumper", "big-and-slow"]
    assert injector.counters["reordered"] == 1


def test_unfaultable_tags_pass_untouched():
    cl, log = message_cluster()
    injector = scripted_injector(cl, FaultEvent("send", 0, "drop"))
    cl.send(0, 1, "control-plane", 100, tag="other")
    cl.run()
    assert log == ["control-plane"]
    # Not a faultable send: no decision point was consumed for it.
    assert injector.counters["sends_seen"] == 0
    assert injector.schedule._seq["send"] == 0


# -- migration faults -------------------------------------------------------

def body(th):
    yield "suspend"


def test_abort_vetoes_migration_before_any_state_moves():
    cl, scheds, mig, _ = make_cluster(2)
    injector = scripted_injector(cl, FaultEvent("migrate", 0, "abort"))
    t = scheds[0].create(body)
    scheds[0].run()
    with pytest.raises(MigrationAborted):
        mig.migrate(t, 1)
    assert t.scheduler is scheds[0]
    assert t.state is ThreadState.SUSPENDED
    assert injector.counters["migrations_vetoed"] == 1
    assert mig.migrations_aborted == 1
    # The veto happened before any state moved: a retry succeeds.
    mig.migrate(t, 1)
    cl.run()
    assert t.scheduler is scheds[1]


def test_bounce_ships_the_image_home_intact():
    cl, scheds, mig, _ = make_cluster(2)
    injector = scripted_injector(cl, FaultEvent("mig_delivery", 0, "bounce"))
    t = scheds[0].create(body)
    scheds[0].run()
    mig.migrate(t, 1)
    cl.run()
    # The destination refused mid-flight; the thread is back home, usable.
    assert t.scheduler is scheds[0]
    assert t.state is ThreadState.SUSPENDED
    assert injector.counters["migrations_bounced"] == 1
    assert mig.migrations_bounced == 1
    scheds[0].awaken(t)
    scheds[0].run()
    assert t.state is ThreadState.FINISHED


def test_thread_images_are_never_dropped():
    """Message faults only touch faultable tags; a drop scripted at the
    first send must not eat a migration image."""
    cl, scheds, mig, _ = make_cluster(2)
    scripted_injector(cl, FaultEvent("send", 0, "drop"), tags=("ampi",))
    t = scheds[0].create(body)
    scheds[0].run()
    mig.migrate(t, 1)
    cl.run()
    assert t.scheduler is scheds[1]
    assert t.state is ThreadState.SUSPENDED


# -- checkpoint faults ------------------------------------------------------

def checkpointed_thread():
    cl, scheds, mig, _ = make_cluster(2)
    ck = Checkpointer(mig)
    t = scheds[0].create(body)
    scheds[0].run()
    return cl, ck, t


def test_io_error_raises_at_write_time():
    cl, ck, t = checkpointed_thread()
    injector = scripted_injector(cl, FaultEvent("ckpt", 0, "io_error"))
    with pytest.raises(CheckpointError):
        ck.checkpoint(t, key="k")
    assert injector.counters["ckpt_io_errors"] == 1
    # Transient: the next attempt goes through and restores cleanly.
    ck.checkpoint(t, key="k")
    assert ck.restore("k", 1) is t


def test_corrupt_write_fails_loudly_at_restore():
    cl, ck, t = checkpointed_thread()
    injector = scripted_injector(cl, FaultEvent("ckpt", 0, "corrupt", 0.5))
    ck.checkpoint(t, key="k")          # the write itself "succeeds"
    assert injector.counters["ckpt_corrupted"] == 1
    assert "k" in injector.corrupted_keys
    with pytest.raises(CheckpointError):
        ck.restore("k", 1)             # the seal catches the flipped byte


def test_summary_lists_nonzero_counters():
    cl, log = message_cluster()
    injector = scripted_injector(cl, FaultEvent("send", 0, "drop"))
    assert injector.summary() == "no faults"
    cl.send(0, 1, "x", 10, tag="t")
    cl.run()
    assert "dropped=1" in injector.summary()
