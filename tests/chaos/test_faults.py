"""Tests for fault schedules: seeded draws, scripted replay, determinism."""

import pytest

from repro.chaos import SITES, FaultConfig, FaultEvent, FaultSchedule
from repro.errors import ChaosError


FULL_RATES = FaultConfig(
    drop_rate=0.1, delay_rate=0.2, dup_rate=0.1, reorder_rate=0.1,
    migrate_abort_rate=0.3, migrate_bounce_rate=0.3,
    ckpt_error_rate=0.2, ckpt_corrupt_rate=0.2,
    crash_rate=0.3, evac_rate=0.3)


def drive(schedule, n=200):
    """Consult every site n times; return the applied events."""
    for _ in range(n):
        for site in SITES:
            schedule.decide(site)
    return schedule.injected


def test_seeded_schedule_is_deterministic():
    a = drive(FaultSchedule.seeded(42, FULL_RATES))
    b = drive(FaultSchedule.seeded(42, FULL_RATES))
    assert a == b
    assert len(a) > 0


def test_different_seeds_differ():
    a = drive(FaultSchedule.seeded(1, FULL_RATES))
    b = drive(FaultSchedule.seeded(2, FULL_RATES))
    assert a != b


def test_seq_advances_on_every_consultation():
    """Fault or not, each decide() consumes one (site, seq) address."""
    sched = FaultSchedule.seeded(0, FaultConfig())  # zero rates: no faults
    for _ in range(5):
        assert sched.decide("send") is None
    assert sched._seq["send"] == 5
    assert sched._seq["ckpt"] == 0


def test_scripted_matches_by_site_and_seq():
    ev = FaultEvent("send", 2, "drop")
    sched = FaultSchedule.scripted([ev])
    assert sched.decide("send") is None        # seq 0
    assert sched.decide("ckpt") is None        # wrong site
    assert sched.decide("send") is None        # seq 1
    assert sched.decide("send") is ev          # seq 2: hit
    assert sched.decide("send") is None        # seq 3
    assert sched.injected == [ev]


def test_seeded_script_replays_identically():
    """The recorded events of a seeded run, replayed scripted, fire at the
    same decision points — the reproducibility contract."""
    seeded = FaultSchedule.seeded(7, FULL_RATES)
    drive(seeded, n=50)
    replay = FaultSchedule.scripted(seeded.script())
    assert drive(replay, n=50) == seeded.injected


def test_event_repr_is_evalable():
    events = [FaultEvent("send", 3, "delay", 12_500.0),
              FaultEvent("barrier", 0, "crash", 0.25),
              FaultEvent("migrate", 1, "abort")]
    for ev in events:
        assert eval(repr(ev)) == ev  # noqa: S307 - the documented contract


def test_rates_must_sum_within_unit_interval():
    with pytest.raises(ChaosError):
        FaultSchedule.seeded(0, FaultConfig(drop_rate=0.7, delay_rate=0.5))


def test_needs_exactly_one_of_seed_or_script():
    with pytest.raises(ChaosError):
        FaultSchedule()
    with pytest.raises(ChaosError):
        FaultSchedule(seed=1, script=[])


def test_rejects_unknown_site():
    with pytest.raises(ChaosError):
        FaultSchedule.scripted([FaultEvent("disk", 0, "drop")])
    with pytest.raises(ChaosError):
        FaultSchedule.seeded(0).decide("disk")


def test_rejects_duplicate_scripted_point():
    with pytest.raises(ChaosError):
        FaultSchedule.scripted([FaultEvent("send", 0, "drop"),
                                FaultEvent("send", 0, "delay", 1.0)])


def test_max_faults_caps_injection():
    cfg = FaultConfig(drop_rate=1.0, max_faults=3)
    sched = FaultSchedule.seeded(0, cfg)
    drive(sched, n=10)
    assert len(sched.injected) == 3


def test_every_kind_is_drawable():
    kinds = {ev.kind for ev in drive(FaultSchedule.seeded(11, FULL_RATES),
                                     n=500)}
    assert kinds == {"drop", "delay", "dup", "reorder", "abort", "bounce",
                     "io_error", "corrupt", "crash", "evac"}


def test_victim_fractions_stay_in_unit_interval():
    for ev in drive(FaultSchedule.seeded(3, FULL_RATES), n=300):
        if ev.kind in ("crash", "evac", "corrupt"):
            assert 0.0 <= ev.arg < 1.0
        elif ev.kind in ("delay", "dup"):
            assert FULL_RATES.delay_ns_min <= ev.arg <= FULL_RATES.delay_ns_max
