"""Tests for the chaos runner: sweep, byte-identical replay, shrink, repro."""

import pytest

from repro.chaos import (ChaosRunner, FaultConfig, FaultEvent,
                         FragileReduceWorkload, StencilChaosWorkload)
from repro.errors import ChaosError


CONFIG = FaultConfig(
    drop_rate=0.01, delay_rate=0.08, reorder_rate=0.05,
    migrate_abort_rate=0.1, migrate_bounce_rate=0.05,
    ckpt_error_rate=0.02, ckpt_corrupt_rate=0.02,
    crash_rate=0.15, evac_rate=0.1)

#: The canonical failing schedule for the fragile reduction: one duplicated
#: contribution makes rank 0's fixed-count loop sum the wrong values.
DUP = FaultEvent("send", 0, "dup", 100.0)
NOISE = [FaultEvent("send", 1, "delay", 9_000.0),
         FaultEvent("send", 2, "reorder"),
         FaultEvent("migrate", 0, "abort"),
         FaultEvent("ckpt", 0, "io_error")]


def test_fault_free_replay_passes():
    result = ChaosRunner(StencilChaosWorkload()).replay([])
    assert result.outcome == "pass"
    assert result.schedule == []


def test_sweep_one_result_per_seed():
    results = ChaosRunner(StencilChaosWorkload(), CONFIG).sweep(range(5))
    assert [r.seed for r in results] == list(range(5))
    assert all(r.workload == "stencil" for r in results)


def test_seeded_run_replays_byte_identically():
    runner = ChaosRunner(StencilChaosWorkload(), CONFIG)
    results = [runner.run_seed(s) for s in range(8)]
    faulted = [r for r in results if r.schedule]
    assert faulted, "no seed in 0..7 injected a fault at these rates"
    for seeded in faulted:
        replayed = runner.replay(seeded.schedule)
        assert replayed.fingerprint() == seeded.fingerprint()
        assert replayed.outcome == seeded.outcome


def test_fragile_reduce_fails_under_duplication():
    runner = ChaosRunner(FragileReduceWorkload())
    assert runner.replay([]).outcome == "pass"
    result = runner.replay([DUP])
    assert result.outcome == "violation"
    assert "incorrect result" in result.detail


def test_shrink_finds_the_minimal_schedule():
    runner = ChaosRunner(FragileReduceWorkload())
    shrunk = runner.shrink([DUP] + NOISE)
    assert shrunk == [DUP]
    assert runner.replay(shrunk).failed


def test_shrink_refuses_a_passing_schedule():
    runner = ChaosRunner(FragileReduceWorkload())
    with pytest.raises(ChaosError):
        runner.shrink(NOISE)         # noise alone does not break the sum
    with pytest.raises(ChaosError):
        runner.shrink([])


def test_shrink_with_custom_predicate():
    runner = ChaosRunner(FragileReduceWorkload())
    delayed = [FaultEvent("send", 0, "delay", 7_500.0),
               FaultEvent("send", 1, "delay", 7_500.0),
               FaultEvent("send", 2, "delay", 7_500.0)]
    shrunk = runner.shrink(
        delayed, is_failure=lambda r: r.counters["delayed"] >= 1)
    assert len(shrunk) == 1
    assert shrunk[0].kind == "delay"


def test_repro_script_reproduces_the_failure():
    runner = ChaosRunner(FragileReduceWorkload())
    result = runner.replay([DUP])
    script = runner.repro_script(result)
    assert "FragileReduceWorkload" in script
    assert repr(DUP) in script
    assert result.fingerprint() in script
    # The emitted script is a runnable repro: executing it replays the
    # schedule and asserts the same fingerprint.
    exec(compile(script, "<repro>", "exec"), {"__name__": "__repro__"})
