"""Chaos determinism regression: golden fingerprints for fixed seeds.

The kernel refactor rebased the fault injector from bespoke runtime
hooks onto the kernel's named channels.  The FaultSchedule contract —
``(site, seq)`` decision points whose ``seq`` advances on *every*
consultation — means any change in consultation order or count shifts
every subsequent fault and changes the run wholesale.  These golden
fingerprints (captured at the refactor, byte-identical to the
pre-kernel injector) pin that down: a diff here means the injector's
decision points moved, which silently invalidates every recorded
chaos schedule and repro script in the wild.

If a *deliberate* semantic change lands (a new faultable site, a
different consultation order), re-capture through the parallel sweep
executor with::

    PYTHONPATH=src python -c \\
        "from tests.chaos.test_golden_seeds import regenerate; regenerate()"

and say so loudly in the commit message.  ``regenerate`` fans the
workload x seed grid out over worker processes; the executor's merge
orders fingerprints by cell id, so the captured table is identical
however many workers ran it.
"""

import pytest

from repro.chaos import ChaosRunner, FaultConfig, STANDARD_WORKLOADS

#: The sweep configuration the goldens were captured under — the
#: chaos_sweep tool's default rates, every fault class enabled.
CONFIG = FaultConfig(
    drop_rate=0.01,
    delay_rate=0.08,
    reorder_rate=0.05,
    migrate_abort_rate=0.1,
    migrate_bounce_rate=0.05,
    ckpt_error_rate=0.02,
    ckpt_corrupt_rate=0.02,
    crash_rate=0.15,
    evac_rate=0.1,
)

SEEDS = range(5)

#: workload-name -> seed -> full-run fingerprint (trace ∥ state hash).
GOLDEN = {
    "stencil": {
        0: "7ea07b808e726b79bb6e727165d7691bb211f3d2df993e6428bfee283fca353b",
        1: "5206cef14596c05c9cfb33456e2cd80f881ada3b3fdc9901d9f9d8129b355ab1",
        2: "5fd59d9332f23195a73e09ef9fdcd9a03df307f7a862404e8633de85e2c3e178",
        3: "155909e5ea2618b214d6810029c70711c221c381b2ed2827bee2ff7fe758ae31",
        4: "8ed406474041864671678648f8ca6370548e7ff6ef55ae637edc6379016ea868",
    },
    "samplesort": {
        0: "6c781ecd6491021a9612eb045f17f59fd0e3177885b226cc23668677c8aa9f51",
        1: "4484c1b3f56c01a6002effe8cb95f2f8dcf1cc1db1076e27cd1ca31317d8e31a",
        2: "c76365e0f7af699f99b995c1b4d9bdae1d4f4a9e7488a7948f3ffb8c15d7e586",
        3: "0749dc30f110869da65b1e851248c6ae90cfc53b5a50eb59ba4954cca1ef5df3",
        4: "4ee29025fec4831893149a06e68a3a0f7c79793d97abce0e7a8cf7e7e3851e08",
    },
    "btmz": {
        0: "08ad0baa8fd19c21c46cd7f9a8049d73cb38ee7f59582dc9d6da2d7648461b9a",
        1: "23c6032e318e8581547b1abdfd7f3d03907ed6f723a0c3249153676641aeffea",
        2: "4b557ec84607beeade0b851ccc5e5590da7aae68b0a3c045841639eee50630ec",
        3: "fa102158d780e3163cce80a7cddd12f7b8cac8c02e0e52d4669a65f24853cd17",
        4: "a06470fad66463c5b4de47c7a071288f54bdf63ac5c4dc035060d01df5c17125",
    },
}


def regenerate(jobs: int = 4) -> dict:
    """Re-capture GOLDEN via :mod:`repro.exec`; prints and returns it.

    Uses the parallel executor (``jobs`` workers) — byte-identical to a
    serial sweep by the executor's merge contract, so the fingerprints
    it prints are exactly what :func:`test_sweep_matches_golden_fingerprints`
    will check.
    """
    from repro.exec import (Cell, SweepExecutor, SweepSpec,
                            fault_config_params, make_backend)

    rates = fault_config_params(CONFIG)
    cells = [Cell(experiment=f"chaos:{wl.name}",
                  runner="repro.exec.runners:run_chaos_cell",
                  params={"workload": wl.name, "config": rates}, seed=s)
             for wl in STANDARD_WORKLOADS for s in SEEDS]
    results = SweepExecutor(SweepSpec("golden_seeds", cells),
                            backend=make_backend(jobs)).run()
    table: dict = {}
    for res in results:
        if not res.ok:
            raise AssertionError(f"golden cell {res.cell_id} failed:\n"
                                 f"{res.error}")
        row = res.value
        table.setdefault(row["workload"], {})[row["seed"]] = \
            row["fingerprint"]
        print(row["workload"], row["seed"], row["fingerprint"])
    return table


def test_golden_covers_every_standard_workload():
    assert set(GOLDEN) == {wl.name for wl in STANDARD_WORKLOADS}


@pytest.mark.parametrize("wl_cls", STANDARD_WORKLOADS,
                         ids=[wl.name for wl in STANDARD_WORKLOADS])
def test_sweep_matches_golden_fingerprints(wl_cls):
    wl = wl_cls()
    results = ChaosRunner(wl, CONFIG).sweep(SEEDS)
    got = {res.seed: res.fingerprint() for res in results}
    assert got == GOLDEN[wl.name]
