"""Failure-path tests for load balancing: aborts, bounces, honest databases."""

import pytest

from repro.ampi import AmpiRuntime
from repro.balance.instrument import LBDatabase
from repro.balance.manager import LBManager
from repro.chaos import (FaultEvent, FaultInjector, FaultSchedule,
                         check_invariants, wire_ampi_faults)
from repro.errors import MigrationError


class PinRank:
    """A test strategy that moves exactly one object, deterministically."""

    name = "pin-rank"

    def __init__(self, obj, dst):
        self.obj = obj
        self.dst = dst

    def map_objects(self, loads, current, npes):
        out = dict(current)
        out[self.obj] = self.dst
        return out


# -- LBManager against a failing migrate_fn ---------------------------------

class MoveEverythingToZero:
    name = "all-to-zero"

    def map_objects(self, loads, current, npes):
        return {obj: 0 for obj in loads}


def test_migrate_fn_failure_leaves_database_consistent():
    """A migrate_fn that raises mid-rebalance: the object stays put, the
    database still records the truth, and the report counts the failure."""
    db = LBDatabase(2)
    for obj, pe in [("a", 1), ("b", 1), ("c", 1)]:
        db.register(obj, pe)
        db.record(obj, 10.0)

    def migrate_fn(obj, dst):
        if obj == "b":
            raise MigrationError("simulated mid-rebalance failure")

    mgr = LBManager(db, MoveEverythingToZero(), migrate_fn)
    report = mgr.rebalance()
    assert report.migrations == 2
    assert report.failed == 1
    assert db.placement() == {"a": 0, "b": 1, "c": 0}


def test_all_moves_failing_is_a_clean_no_op():
    db = LBDatabase(2)
    for obj in ("a", "b"):
        db.register(obj, 1)
        db.record(obj, 5.0)

    def migrate_fn(obj, dst):
        raise MigrationError("nothing moves today")

    report = LBManager(db, MoveEverythingToZero(), migrate_fn).rebalance()
    assert (report.migrations, report.failed) == (0, 2)
    assert db.placement() == {"a": 1, "b": 1}


# -- the AMPI runtime's abort-and-retry protocol -----------------------------

def run_migrating_runtime(events):
    """A 4-rank run whose rebalance moves exactly rank 2 from pe0 to pe1,
    under a scripted fault schedule.  Returns (rt, injector, placements)."""
    placements = {}

    def main(mpi):
        mpi.charge(10_000.0 * (mpi.rank + 1))
        yield from mpi.migrate()
        placements[mpi.rank] = mpi.my_pe
        yield from mpi.barrier()

    rt = AmpiRuntime(2, 4, main, strategy=PinRank(2, 1),
                     slot_bytes=128 * 1024, stack_bytes=8 * 1024)
    injector = FaultInjector(FaultSchedule.scripted(events))
    ctx = wire_ampi_faults(rt, injector)
    rt.run()
    check_invariants(ctx, "quiescence")
    return rt, injector, placements


def test_clean_rebalance_moves_the_rank():
    rt, injector, placements = run_migrating_runtime([])
    assert placements == {0: 0, 1: 1, 2: 1, 3: 1}
    assert rt.migrations_abandoned == 0
    assert rt.reports[0].migrations == 1


def test_single_abort_is_retried_transparently():
    rt, injector, placements = run_migrating_runtime(
        [FaultEvent("migrate", 0, "abort")])
    assert placements[2] == 1                  # the retry landed the move
    assert injector.counters["migrations_vetoed"] == 1
    assert rt.migrations_abandoned == 0


def test_double_abort_abandons_the_move_honestly():
    """Both attempts vetoed: the rank stays home and the database is told
    the truth, even though the manager had recorded the planned move."""
    rt, injector, placements = run_migrating_runtime(
        [FaultEvent("migrate", 0, "abort"),
         FaultEvent("migrate", 1, "abort")])
    assert placements[2] == 0                  # never left pe0
    assert injector.counters["migrations_vetoed"] == 2
    assert rt.migrations_abandoned == 1
    # The report reflects the *decision* (deferred execution model); the
    # runtime's abandon counter records what actually failed after it.
    assert rt.reports[0].migrations == 1


def test_bounced_migration_returns_home_and_database_follows():
    """Crash-during-migration: the destination refuses the in-flight image,
    it ships back, and the arrival callback re-syncs the database."""
    rt, injector, placements = run_migrating_runtime(
        [FaultEvent("mig_delivery", 0, "bounce")])
    assert placements[2] == 0                  # bounced back to the source
    assert injector.counters["migrations_bounced"] == 1
    assert rt.migrator.migrations_bounced == 1
    # Truth-telling accounting: the bounce-home rebuild is *returned*,
    # not completed, and the thread's own odometer stays at zero — it
    # never actually changed processors.
    assert rt.migrator.migrations_returned == 1
    assert rt.migrator.migrations_completed == 0
    assert rt.rank_thread[2].migrations == 0
    assert rt.done


def test_migration_to_failed_pe_is_abandoned_not_lost():
    """A destination that fail-stopped before the rebalance: both migrate
    attempts abort on the dead processor and the rank stays home."""
    placements = {}

    def main(mpi):
        mpi.charge(10_000.0 * (mpi.rank + 1))
        yield from mpi.migrate()
        placements[mpi.rank] = mpi.my_pe

    rt = AmpiRuntime(3, 3, main, strategy=PinRank(0, 2),
                     placement=lambda r: r % 2,   # nobody starts on pe2
                     slot_bytes=128 * 1024, stack_bytes=8 * 1024)
    rt.cluster[2].failed = True
    rt.run()
    assert placements[0] == 0
    assert rt.migrations_abandoned == 1
    assert rt.migrator.migrations_aborted == 2
    assert rt.done
