"""Tests for the invariant registry: healthy runs pass, broken states fail."""

import pytest

from repro.chaos import (ChaosContext, FaultInjector, FaultSchedule,
                         INVARIANTS, StencilChaosWorkload, check_invariants,
                         invariant, wire_ampi_faults)
from repro.chaos.workloads import FragileReduceWorkload
from repro.core.thread import ThreadState
from repro.errors import InvariantViolation


def healthy_context():
    """A built-but-not-run runtime with an idle injector."""
    rt, _ = FragileReduceWorkload().build()
    injector = FaultInjector(FaultSchedule.scripted([]))
    injector.attach(rt.cluster, rt.checkpointer)
    return ChaosContext(runtime=rt, injector=injector)


def test_healthy_runtime_passes_all_invariants():
    ctx = healthy_context()
    check_invariants(ctx, "inject")
    check_invariants(ctx, "quiescence")


def test_completed_run_passes_at_quiescence():
    rt, check = StencilChaosWorkload().build()
    injector = FaultInjector(FaultSchedule.scripted([]))
    ctx = wire_ampi_faults(rt, injector)
    rt.run()
    check_invariants(ctx, "quiescence")
    assert check(rt)


def test_registry_rejects_duplicate_names():
    with pytest.raises(ValueError):
        @invariant("clock-monotonic")
        def clash(ctx, point):
            return None


def test_custom_invariant_is_consulted():
    @invariant("always-angry")
    def angry(ctx, point):
        return f"no {point} is good enough"
    try:
        with pytest.raises(InvariantViolation, match="always-angry"):
            check_invariants(healthy_context(), "inject")
    finally:
        del INVARIANTS["always-angry"]


def test_violation_names_every_failed_check():
    ctx = healthy_context()
    ctx.last_clocks[0] = 1e18            # clock must appear to run backwards
    ctx.injector.arrivals_scheduled = 7  # ... and conservation must break
    with pytest.raises(InvariantViolation) as e:
        check_invariants(ctx, "inject")
    assert "clock-monotonic" in str(e.value)
    assert "send-arrival-conservation" in str(e.value)


def test_lb_placement_mismatch_is_a_violation():
    ctx = healthy_context()
    rt = ctx.runtime
    rt.db.moved(1, 0)                    # database lies: rank 1 lives on pe1
    with pytest.raises(InvariantViolation, match="lb-placement-consistent"):
        check_invariants(ctx, "inject")


def test_lb_placement_skipped_mid_rebalance():
    ctx = healthy_context()
    rt = ctx.runtime
    rt.db.moved(1, 0)
    rt.rebalance_in_progress = True      # the transactional window
    try:
        for name in ("lb-placement-consistent",):
            assert INVARIANTS[name](ctx, "inject") is None
    finally:
        rt.rebalance_in_progress = False


def test_rank_on_failed_pe_is_a_violation():
    ctx = healthy_context()
    ctx.runtime.cluster[1].failed = True
    with pytest.raises(InvariantViolation, match="no-rank-on-failed-pe"):
        check_invariants(ctx, "inject")


def test_lost_thread_is_a_violation():
    ctx = healthy_context()
    rt = ctx.runtime
    thread = rt.rank_thread[0]
    rt.schedulers[0].threads.pop(thread.tid)   # the rank vanishes
    with pytest.raises(InvariantViolation, match="unique-rank-placement"):
        check_invariants(ctx, "inject")


def test_migrating_is_excused_at_inject_but_not_quiescence():
    ctx = healthy_context()
    thread = ctx.runtime.rank_thread[0]
    saved = thread.state
    thread.state = ThreadState.MIGRATING
    try:
        check_invariants(ctx, "inject")        # in flight: fine
        with pytest.raises(InvariantViolation, match="still MIGRATING"):
            check_invariants(ctx, "quiescence")
    finally:
        thread.state = saved


def test_unexpected_checkpoint_corruption_is_a_violation():
    rt, _ = FragileReduceWorkload().build()
    injector = FaultInjector(FaultSchedule.scripted([]))
    injector.attach(rt.cluster, rt.checkpointer)
    ctx = ChaosContext(runtime=rt, injector=injector)
    thread = rt.rank_thread[0]
    rt.schedulers[0].run()                     # park the threads
    key = rt.checkpointer.checkpoint(thread)
    record = rt.checkpointer.stored(key)
    record.blob = record.blob[:-1] + bytes([record.blob[-1] ^ 0xFF])
    check_invariants(ctx, "inject")            # only audited at the end
    with pytest.raises(InvariantViolation, match="checkpoint-integrity"):
        check_invariants(ctx, "quiescence")
    # A corruption the injector *injected* (and recorded) is expected.
    injector.corrupted_keys.add(key)
    check_invariants(ctx, "quiescence")
