"""Tests for return-switch functions (paper Section 2.4.1)."""

import pytest

from repro.charm import ReturnSwitchFunction, finish, suspend
from repro.charm.sdag import SdagDriver, When
from repro.errors import SdagError


class Summer(ReturnSwitchFunction):
    """Sum incoming numbers until None arrives — return-switch style.

    Note the manual discipline: the running total must live on ``self``
    (locals die at every return), and the control flow is a hand-written
    switch on the label.
    """

    def body(self, label, message):
        if label == "start":
            self.total = 0
            return suspend("accumulate")
        if label == "accumulate":
            if message is None:
                return finish(self.total)
            self.total += message
            return suspend("accumulate")
        raise AssertionError(f"unknown label {label}")


def test_summer_basic():
    fn = Summer().start()
    for v in (1, 2, 3, 4):
        fn.resume(v)
    assert not fn.finished
    fn.resume(None)
    assert fn.finished
    assert fn.result == 10
    assert fn.suspensions == 5


def test_result_before_finish_rejected():
    fn = Summer().start()
    with pytest.raises(SdagError):
        fn.result


def test_lifecycle_misuse_rejected():
    fn = Summer()
    with pytest.raises(SdagError):
        fn.resume(1)              # resume before start
    fn.start()
    with pytest.raises(SdagError):
        fn.start()                # double start
    fn.resume(None)
    with pytest.raises(SdagError):
        fn.resume(1)              # resume after finish


def test_forgotten_return_is_loud():
    """The paper: 'confusing, error-prone and tough to debug' — a body
    that forgets to return a marker fails immediately, not silently."""

    class Buggy(ReturnSwitchFunction):
        def body(self, label, message):
            self.x = 1            # ... and forgets to return suspend/finish

    with pytest.raises(SdagError, match="must return suspend"):
        Buggy().start()


class TwoPhase(ReturnSwitchFunction):
    """Receive an 'a' then a 'b' (in that order), return both."""

    def body(self, label, message):
        if label == "start":
            return suspend("want_a")
        if label == "want_a":
            self.a = message
            return suspend("want_b")
        if label == "want_b":
            return finish((self.a, message))
        raise AssertionError


def test_equivalence_with_sdag():
    """The same protocol in both styles gives the same answer; SDAG keeps
    the state in locals and the sequencing in straight-line code."""
    rs = TwoPhase().start()
    rs.resume("A").resume("B")

    log = []

    def sdag_version():
        a = yield When("a")       # locals survive across waits
        b = yield When("b")
        log.append((a, b))

    driver = SdagDriver(sdag_version())
    driver.start()
    driver.deliver("a", "A")
    driver.deliver("b", "B")

    assert rs.result == log[0] == ("A", "B")


def test_state_machine_reuse():
    """Each instance is an independent resumable activation."""
    f1, f2 = Summer().start(), Summer().start()
    f1.resume(5)
    f2.resume(100)
    f1.resume(None)
    f2.resume(None)
    assert (f1.result, f2.result) == (5, 100)
