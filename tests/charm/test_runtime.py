"""Tests for the Charm-style runtime: arrays, routing, reductions, migration."""

import pytest

from repro.charm import Chare, CharmRuntime, When, Overlap
from repro.core.pup import pup_register
from repro.errors import CommError
from repro.sim import Cluster


@pup_register
class Counter(Chare):
    """Simple chare with puppable state."""

    def __init__(self, start=0):
        self.value = start
        self.log = []

    def pup(self, p):
        self.value = p.int(self.value)

    def bump(self, by):
        self.value += by

    def record_pe(self):
        self.log.append(self.my_pe)

    def report(self, total):
        self.log.append(("reduced", total))


def make(n_pe=4, n_elem=8, cls=Counter):
    cl = Cluster(n_pe)
    rt = CharmRuntime(cl)
    proxy = rt.create_array(cls, n_elem)
    return cl, rt, proxy


def test_array_creation_places_round_robin():
    cl, rt, proxy = make(4, 8)
    for i in range(8):
        assert rt.location_of(proxy.aid, i) == i % 4
        assert rt.element(proxy.aid, i).thisIndex == i


def test_send_invokes_entry_method():
    cl, rt, proxy = make()
    proxy[3].send("bump", 5)
    proxy[3].send("bump", 2)
    cl.run()
    assert rt.element(proxy.aid, 3).value == 7


def test_local_send_fast_path():
    cl, rt, proxy = make(2, 4)
    # Element 0 and 2 are both on PE 0; send from "main" (PE 0).
    proxy[2].send("bump", 1)
    sent_before = cl[0].messages_sent
    cl.run()
    assert rt.element(proxy.aid, 2).value == 1
    assert cl[0].messages_sent == sent_before     # no network traffic


def test_broadcast():
    cl, rt, proxy = make(3, 7)
    proxy.broadcast("bump", 10)
    cl.run()
    assert all(rt.element(proxy.aid, i).value == 10 for i in range(7))


def test_index_bounds():
    cl, rt, proxy = make(2, 4)
    with pytest.raises(CommError):
        proxy[4]
    with pytest.raises(CommError):
        proxy[-1]


def test_reduction_sum():
    cl, rt, proxy = make(4, 8)

    class _:
        pass

    for i in range(8):
        rt.element(proxy.aid, i).value = i
    # Every element contributes its value.
    for i in range(8):
        elem = rt.element(proxy.aid, i)
        rt._pe_stack.append(elem.my_pe)
        elem.contribute(elem.value, "sum", "report")
        rt._pe_stack.pop()
    cl.run()
    assert ("reduced", sum(range(8))) in rt.element(proxy.aid, 0).log


def test_reduction_max_and_min():
    cl, rt, proxy = make(2, 4)
    for op, expect in (("max", 9), ("min", 0)):
        for i, v in enumerate([3, 9, 0, 4]):
            elem = rt.element(proxy.aid, i)
            rt._pe_stack.append(elem.my_pe)
            elem.contribute(v, op, "report")
            rt._pe_stack.pop()
        cl.run()
        assert ("reduced", expect) in rt.element(proxy.aid, 0).log


def test_migration_moves_state_via_pup():
    cl, rt, proxy = make(2, 2)
    proxy[1].send("bump", 42)
    cl.run()
    original = rt.element(proxy.aid, 1)
    rt.migrate_element(proxy.aid, 1, 0)
    cl.run()
    moved = rt.element(proxy.aid, 1)
    assert moved is not original          # genuinely rebuilt from bytes
    assert moved.value == 42              # state survived serialization
    assert moved.my_pe == 0
    assert rt.location_of(proxy.aid, 1) == 0


def test_messages_after_migration_are_forwarded():
    cl, rt, proxy = make(4, 4)
    rt.migrate_element(proxy.aid, 1, 3)   # home of 1 is PE 1; now lives on 3
    cl.run()
    proxy[1].send("bump", 7)
    cl.run()
    assert rt.element(proxy.aid, 1).value == 7
    assert rt.element(proxy.aid, 1).my_pe == 3


def test_migrate_back_and_forth():
    cl, rt, proxy = make(3, 3)
    for dst in (2, 1, 0):
        rt.migrate_element(proxy.aid, 0, dst)
        cl.run()
        proxy[0].send("bump", 1)
        cl.run()
    assert rt.element(proxy.aid, 0).value == 3
    assert rt.migrations == 3


def test_entry_method_sees_current_pe():
    cl, rt, proxy = make(2, 2)
    proxy.broadcast("record_pe")
    cl.run()
    assert rt.element(proxy.aid, 0).log == [0]
    assert rt.element(proxy.aid, 1).log == [1]


def test_entry_method_charges_time():
    cl, rt, proxy = make(2, 2)
    t = cl[1].now

    class Work(Chare):
        def go(self):
            self.charge(10_000)

    wp = rt.create_array(Work, 2)
    wp[1].send("go")
    cl.run()
    assert cl[1].now >= t + 10_000


# -- SDAG integration -----------------------------------------------------

class StencilChare(Chare):
    """Figure 1's life cycle as an SDAG method over the runtime."""

    ITER = 3

    def __init__(self):
        self.history = []

    def lifecycle(self):
        n = self.thisProxy.n
        left = (self.thisIndex - 1) % n
        right = (self.thisIndex + 1) % n
        for i in range(self.ITER):
            self.thisProxy[left].send("strip_from_right",
                                      (self.thisIndex, i))
            self.thisProxy[right].send("strip_from_left",
                                       (self.thisIndex, i))
            l, r = yield Overlap(When("strip_from_left"),
                                 When("strip_from_right"))
            self.history.append((i, l, r))


def test_sdag_stencil_over_runtime():
    cl = Cluster(2)
    rt = CharmRuntime(cl)
    proxy = rt.create_array(StencilChare, 4)
    proxy.broadcast("lifecycle")
    cl.run()
    for i in range(4):
        h = rt.element(proxy.aid, i).history
        assert len(h) == StencilChare.ITER
        for step, (l_src, l_i), (r_src, r_i) in h:
            assert l_src == (i - 1) % 4       # strip from the left neighbor
            assert r_src == (i + 1) % 4
            assert l_i == r_i == step          # no cross-iteration mixups


def test_sdag_chare_migration_keeps_driver():
    """A chare with a live SDAG continuation migrates object-identically."""
    cl = Cluster(2)
    rt = CharmRuntime(cl)

    class Waiter(Chare):
        def __init__(self):
            self.got = []

        def wait_two(self):
            a = yield When("item")
            self.got.append((a, self.my_pe))
            b = yield When("item")
            self.got.append((b, self.my_pe))

    proxy = rt.create_array(Waiter, 1)
    proxy[0].send("wait_two")
    proxy[0].send("item", 1)
    cl.run()
    rt.migrate_element(proxy.aid, 0, 1)
    cl.run()
    proxy[0].send("item", 2)
    cl.run()
    elem = rt.element(proxy.aid, 0)
    assert elem.got == [(1, 0), (2, 1)]
