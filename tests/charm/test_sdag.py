"""Tests for the Structured Dagger driver (standalone, no runtime)."""

import pytest

from repro.charm.sdag import Atomic, Overlap, SdagDriver, When
from repro.errors import SdagError


def drive(genfn, *msgs, start_first=True):
    """Helper: run a generator under a driver, feeding messages in order."""
    log = []
    driver = SdagDriver(genfn(log))
    if start_first:
        driver.start()
    for name, payload in msgs:
        driver.deliver(name, payload)
    return log, driver


def test_single_when():
    def gen(log):
        v = yield When("ping")
        log.append(v)

    log, driver = drive(gen, ("ping", 42))
    assert log == [42]
    assert driver.finished


def test_when_blocks_until_message():
    def gen(log):
        log.append("before")
        v = yield When("data")
        log.append(v)

    log = []
    driver = SdagDriver(gen(log))
    driver.start()
    assert log == ["before"]
    assert not driver.finished
    assert driver.waiting_on == ["data"]
    driver.deliver("data", "payload")
    assert log == ["before", "payload"]


def test_overlap_any_order():
    """The Figure 1 semantics: left/right strips in any arrival order."""
    def gen(log):
        left, right = yield Overlap(When("left"), When("right"))
        log.append((left, right))

    # Declaration order is preserved even when arrival order is reversed.
    log, _ = drive(gen, ("right", "R"), ("left", "L"))
    assert log == [("L", "R")]
    log, _ = drive(gen, ("left", "L"), ("right", "R"))
    assert log == [("L", "R")]


def test_messages_buffered_before_wait():
    """A message can arrive before the when that consumes it."""
    def gen(log):
        log.append("phase1")
        a = yield When("a")
        b = yield When("b")
        log.append((a, b))

    log = []
    driver = SdagDriver(gen(log))
    driver.start()
    driver.deliver("b", 2)      # early for the second when
    assert not driver.finished
    driver.deliver("a", 1)
    assert log == ["phase1", (1, 2)]
    assert driver.finished


def test_when_count():
    def gen(log):
        vals = yield When("chunk", count=3)
        log.append(vals)

    log, _ = drive(gen, ("chunk", 1), ("chunk", 2), ("chunk", 3))
    assert log == [[1, 2, 3]]


def test_iteration_loop():
    """for-loop over when: the stencil's outer iteration structure."""
    def gen(log):
        for i in range(3):
            v = yield When("step")
            log.append((i, v))

    log, driver = drive(gen, ("step", "a"), ("step", "b"), ("step", "c"))
    assert log == [(0, "a"), (1, "b"), (2, "c")]
    assert driver.finished


def test_atomic_block():
    def gen(log):
        v = yield Atomic(lambda: 99)
        log.append(v)
        w = yield When("x")
        log.append(w)

    log, _ = drive(gen, ("x", 1))
    assert log == [99, 1]


def test_same_name_fifo_order():
    def gen(log):
        a = yield When("m")
        b = yield When("m")
        log.append((a, b))

    log, _ = drive(gen, ("m", "first"), ("m", "second"))
    assert log == [("first", "second")]


def test_overlap_with_counts():
    def gen(log):
        pair = yield Overlap(When("a", count=2), When("b"))
        log.append(pair)

    log, _ = drive(gen, ("b", "B"), ("a", 1), ("a", 2))
    assert log == [([1, 2], "B")]


def test_deliver_after_finish_rejected():
    def gen(log):
        yield When("once")

    log, driver = drive(gen, ("once", 1))
    assert driver.finished
    with pytest.raises(SdagError):
        driver.deliver("once", 2)


def test_bad_yield_rejected():
    def gen(log):
        yield "not-a-directive"

    with pytest.raises(SdagError):
        SdagDriver(gen([])).start()


def test_empty_overlap_rejected():
    with pytest.raises(SdagError):
        Overlap()


def test_on_finish_callback():
    done = []

    def gen(log):
        yield When("go")

    driver = SdagDriver(gen([]), on_finish=lambda: done.append(True))
    driver.start()
    driver.deliver("go", None)
    assert done == [True]


def test_stencil_lifecycle_shape():
    """The full Figure 1 program shape: iterate { send; overlap; work }."""
    sent, worked = [], []

    def lifecycle(log):
        for i in range(2):
            sent.append(i)                      # atomic: sendStrips
            left, right = yield Overlap(When("from_left"),
                                        When("from_right"))
            worked.append((i, left, right))     # atomic: doWork

    driver = SdagDriver(lifecycle([]))
    driver.start()
    # Iteration 0: right arrives first.
    driver.deliver("from_right", "r0")
    driver.deliver("from_left", "l0")
    # Iteration 1: left first — and an early message for the next round
    # would be buffered, not lost.
    driver.deliver("from_left", "l1")
    driver.deliver("from_right", "r1")
    assert sent == [0, 1]
    assert worked == [(0, "l0", "r0"), (1, "l1", "r1")]
    assert driver.finished
