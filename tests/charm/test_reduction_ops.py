"""Tests for the reduction operator table."""

import pytest

from repro.charm.reduction import REDUCERS, combine
from repro.errors import CommError


def test_builtin_reducers():
    assert combine("sum", [1, 2, 3]) == 6
    assert combine("max", [3, 9, 1]) == 9
    assert combine("min", [3, 9, 1]) == 1
    assert combine("prod", [2, 3, 4]) == 24
    assert combine("and", [1, 1, 0]) is False
    assert combine("or", [0, 0, 1]) is True


def test_concat_preserves_order():
    assert combine("concat", ["a", "b", "c"]) == ["a", "b", "c"]
    assert combine("concat", [1]) == [1]


def test_unknown_op():
    with pytest.raises(CommError, match="known"):
        combine("xor", [1, 2])


def test_empty_contributions():
    with pytest.raises(CommError):
        combine("sum", [])


def test_single_value():
    for op in ("sum", "max", "min", "prod"):
        assert combine(op, [7]) == 7


def test_reducer_table_complete():
    assert {"sum", "max", "min", "prod", "and", "or", "concat"} <= set(REDUCERS)
