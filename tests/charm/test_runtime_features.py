"""Tests for quiescence detection, array sections, and array checkpoints."""

import pytest

from repro.charm import Chare, CharmRuntime
from repro.core.pup import pup_register
from repro.errors import CommError
from repro.sim import Cluster


@pup_register
class Pingable(Chare):
    def __init__(self):
        self.pings = 0
        self.quiet = []

    def pup(self, p):
        self.pings = p.int(self.pings)

    def ping(self, hops=0):
        self.pings += 1
        if hops > 0:
            nxt = (self.thisIndex + 1) % self.thisProxy.n
            self.thisProxy[nxt].send("ping", hops - 1)

    def on_quiescence(self):
        self.quiet.append(self.pings)


def make(n_pe=2, n_elem=4):
    cl = Cluster(n_pe)
    rt = CharmRuntime(cl)
    return cl, rt, rt.create_array(Pingable, n_elem)


# -- quiescence detection ------------------------------------------------------

def test_quiescence_fires_after_all_messages_drain():
    cl, rt, proxy = make()
    # A 20-hop relay keeps messages in flight for a while.
    proxy[0].send("ping", 20)
    rt.detect_quiescence(proxy.aid, 0, "on_quiescence")
    cl.run()
    elem = rt.element(proxy.aid, 0)
    assert elem.quiet, "quiescence callback never fired"
    # At quiescence every ping had been processed: 21 hops over 4 elements.
    total = sum(rt.element(proxy.aid, i).pings for i in range(4))
    assert total == 21
    assert rt._qd_created == rt._qd_processed


def test_quiescence_on_idle_system():
    cl, rt, proxy = make()
    rt.detect_quiescence(proxy.aid, 1, "on_quiescence")
    cl.run()
    assert rt.element(proxy.aid, 1).quiet == [0]


def test_quiescence_waits_while_messages_in_flight():
    """Waves that run mid-relay see unbalanced counters and re-arm."""
    cl, rt, proxy = make()
    order = []

    class Slow(Chare):
        def hop(self, hops):
            self.charge(120_000)             # slow hops span many waves
            order.append(("hop", hops))
            if hops > 0:
                nxt = (self.thisIndex + 1) % self.thisProxy.n
                self.thisProxy[nxt].send("hop", hops - 1)

        def qd(self):
            order.append("qd")

    sp = rt.create_array(Slow, 2)
    sp[0].send("hop", 10)
    rt.detect_quiescence(sp.aid, 0, "qd", check_ns=30_000)
    cl.run()
    # Every hop strictly precedes the quiescence callback.
    assert order[-1] == "qd"
    assert sum(1 for e in order if e != "qd") == 11


def test_quiescence_counts_messages_not_timers():
    """Like real Charm QD, the counting protocol sees *messages*; work
    hidden behind a raw timer is invisible to it (documented semantic)."""
    cl, rt, proxy = make()

    class Burster(Chare):
        fired = []

        def kickoff(self):
            self.runtime.cluster.after(self.my_pe, 500_000,
                                       self.thisProxy[0].send, "late")

        def late(self):
            Burster.fired.append("late")

        def done(self):
            Burster.fired.append("qd")

    bp = rt.create_array(Burster, 1)
    bp[0].send("kickoff")
    rt.detect_quiescence(bp.aid, 0, "done", check_ns=50_000)
    cl.run()
    # QD fires during the timer gap; the timer's message runs afterwards.
    assert Burster.fired == ["qd", "late"]


# -- array sections -------------------------------------------------------------

def test_section_multicast():
    cl, rt, proxy = make(2, 6)
    section = rt.section(proxy.aid, [1, 3, 5])
    assert len(section) == 3
    section.send("ping")
    cl.run()
    for i in range(6):
        assert rt.element(proxy.aid, i).pings == (1 if i % 2 else 0)


def test_section_bad_index():
    cl, rt, proxy = make()
    with pytest.raises(CommError):
        rt.section(proxy.aid, [0, 9])


# -- array checkpoint ------------------------------------------------------------

def test_array_checkpoint_restore_roundtrip():
    cl, rt, proxy = make(2, 4)
    proxy.broadcast("ping")
    cl.run()
    blob = rt.checkpoint_array(proxy.aid)
    assert isinstance(blob, bytes)
    # Mutate the live state, then restore the snapshot.
    proxy.broadcast("ping")
    cl.run()
    assert rt.element(proxy.aid, 0).pings == 2
    rt.restore_array(blob)
    for i in range(4):
        assert rt.element(proxy.aid, i).pings == 1
    # Restored elements are fully wired: messaging still works.
    proxy[2].send("ping")
    cl.run()
    assert rt.element(proxy.aid, 2).pings == 2


def test_array_checkpoint_respects_placement():
    cl, rt, proxy = make(2, 4)
    rt.migrate_element(proxy.aid, 0, 1)
    cl.run()
    blob = rt.checkpoint_array(proxy.aid)
    rt.restore_array(blob)
    assert rt.element(proxy.aid, 0).my_pe == 1


def test_checkpoint_with_live_sdag_rejected():
    from repro.charm import When

    class Waiter(Chare):
        def waitloop(self):
            yield When("never")

    cl = Cluster(1)
    rt = CharmRuntime(cl)
    wp = rt.create_array(Waiter, 1)
    wp[0].send("waitloop")
    cl.run()
    with pytest.raises(CommError, match="SDAG continuation"):
        rt.checkpoint_array(wp.aid)
