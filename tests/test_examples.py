"""Smoke tests: every shipped example runs to completion.

A release repository's examples must not rot; each is executed in-process
(fresh ``__main__``-style globals) and must finish without raising.
"""

import io
import os
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

ALL_EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py"))


def run_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    buf = io.StringIO()
    with redirect_stdout(buf):
        runpy.run_path(path, run_name="__main__")
    return buf.getvalue()


def test_every_example_is_covered():
    assert set(ALL_EXAMPLES) == {
        "quickstart.py", "migration_tour.py", "stencil_sdag.py",
        "ampi_btmz_loadbalance.py", "ampi_samplesort.py", "bigsim_md.py",
        "bigsim_whatif.py", "fault_tolerance.py", "pose_phold.py",
        "server_concurrency.py",
    }


def test_quickstart():
    out = run_example("quickstart.py")
    assert "pointers intact" in out


def test_migration_tour():
    out = run_example("migration_tour.py")
    assert out.count("OK") >= 6            # two threads x three techniques
    assert "DANGLING" not in out


def test_stencil_sdag():
    out = run_example("stencil_sdag.py")
    assert out.count("max |err| = 0.00e+00") == 2


def test_btmz_example():
    out = run_example("ampi_btmz_loadbalance.py")
    assert "B.64,8PE" in out
    assert "GreedyLB" in out


def test_bigsim_example():
    out = run_example("bigsim_md.py")
    assert "2000" in out
    assert "identical" in out


def test_bigsim_whatif_example():
    out = run_example("bigsim_whatif.py")
    assert "exact match" in out


def test_fault_tolerance_example():
    out = run_example("fault_tolerance.py")
    assert "data intact: True" in out
    assert "expected 2100" in out


def test_server_concurrency_example():
    out = run_example("server_concurrency.py")
    assert "threads + interception" in out


def test_samplesort_example():
    out = run_example("ampi_samplesort.py")
    assert "sorted 1,000,000 ints" in out
    assert "migrations" in out


def test_pose_phold_example():
    out = run_example("pose_phold.py")
    assert "matches sequential-execution reference: True" in out
    assert "rollbacks" in out
