"""Differential harness: fast kernel vs the frozen reference kernel.

The fast path (:mod:`repro.kernel.event`) re-implements the event core
around batched slot storage; :mod:`repro.kernel.refkernel` is the
frozen pre-fast-path implementation.  This suite runs *the same
randomized seeded schedule* through both and asserts they are
indistinguishable: identical event orderings, identical
``events_processed``/``len()``/``current_time``, and — with a
:class:`KernelTracer` attached to each — byte-identical traces.

Schedules are generated per seed by a deterministic driver whose
callbacks draw from a ``random.Random(seed)`` stream in dispatch order:
mixed inserts (including equal-timestamp FIFO ties), cancellations
(pending, fired, and double), ``skip_current``, quiescence re-arm
pumps, and segmented ``until``/``max_events`` policies.  If the two
kernels ever dispatch in different orders the streams diverge and the
fire logs cannot match.

The third acceptance leg — unchanged chaos golden fingerprints — is
enforced by ``tests/chaos/test_golden_seeds.py`` and
``tests/obs/test_golden_metrics.py``, which run the production (fast)
kernel against fingerprints recorded before the refactor.
"""

import json
import random

import pytest

from repro.kernel import KernelTracer
from repro.kernel.event import EventKernel as FastKernel
from repro.kernel.refkernel import EventKernel as RefKernel

#: Relative delays drawn by the driver: duplicates and 0.0 on purpose,
#: so equal-timestamp FIFO ties and run-now events are common.
_DTS = (0.0, 0.0, 1.0, 1.0, 2.0, 3.0, 5.0, 7.5)
_CATS = ("alpha", "beta", "")
_SPAWN_LIMIT = 160

COLD_SEEDS = list(range(25))
TRACED_SEEDS = list(range(100, 120))
POLICY_SEEDS = list(range(200, 212))


class _Driver:
    """Runs one seeded random schedule against one kernel."""

    def __init__(self, kernel_cls, seed, traced=False):
        self.kernel = kernel_cls(name="diff")
        self.rng = random.Random(seed)
        self.log = []
        self.handles = []
        self.next_id = 0
        self.pumps = 2
        self.tracer = KernelTracer().attach(self.kernel) if traced else None

    def spawn(self, dt):
        ident = self.next_id
        self.next_id += 1
        ev = self.kernel.schedule(
            self.kernel.current_time + dt, self.body, ident,
            category=_CATS[ident % len(_CATS)],
            flow=f"f{ident % 4}")
        self.handles.append(ev)
        return ev

    def body(self, ident):
        self.log.append((ident, self.kernel.current_time))
        r = self.rng
        act = r.random()
        if act < 0.40 and self.next_id < _SPAWN_LIMIT:
            for _ in range(r.randint(1, 2)):
                self.spawn(r.choice(_DTS))
        elif act < 0.55 and self.handles:
            # Cancel a random event: may be pending, fired, or already
            # cancelled — the last two must be no-ops on both kernels.
            self.handles[r.randrange(len(self.handles))].cancel()
        elif act < 0.65:
            self.kernel.skip_current()

    def seed_initial(self, n=30):
        for _ in range(n):
            self.spawn(self.rng.choice(_DTS))
        # A cancel storm before the first dispatch, to exercise the
        # never-ran path on both implementations.
        for _ in range(self.rng.randint(0, 8)):
            self.handles[self.rng.randrange(len(self.handles))].cancel()

    def state(self):
        k = self.kernel
        return {
            "log": self.log,
            "processed": k.events_processed,
            "len": len(k),
            "live": k.live,
            "time": k.current_time,
            "flags": [(ev.cancelled, ev.fired) for ev in self.handles],
        }


def _pump(driver):
    """Quiescence re-arm hook: two extra rounds of work per run."""
    def on_idle(kernel):
        if driver.pumps > 0:
            driver.pumps -= 1
            driver.spawn(1.0)
            return True
        return False
    return on_idle


@pytest.mark.parametrize("seed", COLD_SEEDS)
def test_cold_schedules_identical(seed):
    """Hooks-off runs (the batched fast path vs the reference loop)."""
    states = []
    for cls in (RefKernel, FastKernel):
        d = _Driver(cls, seed)
        d.seed_initial()
        ret = d.kernel.run()
        states.append((d.state(), ret))
    assert states[0] == states[1]
    assert states[0][0]["len"] == 0


@pytest.mark.parametrize("seed", TRACED_SEEDS)
def test_traced_schedules_byte_identical(seed):
    """Instrumented runs: every trace entry identical on both kernels."""
    results = []
    for cls in (RefKernel, FastKernel):
        d = _Driver(cls, seed, traced=True)
        hook = _pump(d)
        d.kernel.hooks.subscribe("on_idle", hook)
        d.seed_initial()
        ret = d.kernel.run()
        dump = "\n".join(json.dumps(e, sort_keys=True)
                         for e in d.tracer.entries)
        results.append((d.state(), ret, dump, d.tracer.counters))
    ref, fast = results
    assert ref[0] == fast[0]
    assert ref[1] == fast[1]
    assert ref[2] == fast[2], "trace streams diverged"
    assert ref[3] == fast[3]
    assert ref[3]["quiescences"] == 1


@pytest.mark.parametrize("seed", POLICY_SEEDS)
def test_segmented_policy_runs_identical(seed):
    """until/max_events cuts leave both kernels in the same state."""
    states = []
    for cls in (RefKernel, FastKernel):
        d = _Driver(cls, seed)
        d.seed_initial()
        rng = random.Random(seed + 999)
        rets = []
        for _ in range(4):
            if rng.random() < 0.5:
                rets.append(d.kernel.run(max_events=rng.randint(1, 12)))
            else:
                bound = d.kernel.current_time + rng.choice((1.0, 4.0))
                rets.append(d.kernel.run(until=bound))
        rets.append(d.kernel.run())    # final drain
        states.append((d.state(), rets))
    assert states[0] == states[1]
    assert states[0][0]["len"] == 0


def test_post_matches_reference_schedule_order():
    """The handle-free ``post()`` ingest dispatches exactly like the
    reference kernel's ``schedule()`` over the same (time, seq) keys."""
    rng = random.Random(7)
    times = [rng.choice(_DTS) * 3 for _ in range(400)]
    ref, fast = RefKernel(name="diff"), FastKernel(name="diff")
    ref_log, fast_log = [], []
    for i, t in enumerate(times):
        ref.schedule(t, ref_log.append, i)
        fast.post(t, fast_log.append, (i,))
    assert ref.run() == fast.run() == 400
    assert ref_log == fast_log


def test_post_batch_matches_reference_time_order():
    """Bulk ingest preserves the reference dispatch-time sequence."""
    rng = random.Random(11)
    times = [float(rng.randrange(50)) for _ in range(500)]
    ref, fast = RefKernel(name="diff"), FastKernel(name="diff")
    ref_log, fast_log = [], []
    for t in times:
        ref.schedule(t, lambda: ref_log.append(ref.current_time))
    fast.post_batch(times, lambda: fast_log.append(fast.current_time))
    assert ref.run() == fast.run() == 500
    assert ref_log == fast_log


def test_cancel_slots_matches_reference_cancels():
    """Bulk slot cancellation drains like per-event ref cancels."""
    times = [float(i % 23) for i in range(300)]
    ref, fast = RefKernel(name="diff"), FastKernel(name="diff")
    ref_log, fast_log = [], []
    evs = [ref.schedule(t, ref_log.append, i)
           for i, t in enumerate(times)]
    for ev in evs[::3]:
        ev.cancel()
    items = []
    for i, t in enumerate(times):
        items.append(fast.post(t, fast_log.append, (i,)))
    assert fast.cancel_slots(items[::3]) == len(evs[::3])
    assert fast.cancel_slots(items[::3]) == 0      # idempotent
    assert ref.run() == fast.run()
    assert ref_log == fast_log
    assert len(ref) == len(fast) == 0
