"""Kernel conformance: every runtime's kernel obeys the same contract.

The five run loops of the tree — the simulated cluster queue, the Cth
thread scheduler, charm/AMPI delivery, BigSim, and POSE — all dispatch
through :class:`repro.kernel.EventKernel`.  This suite drives the kernel
*as exposed by each runtime* through the behaviors the unification must
hold invariant: FIFO order at equal timestamps, cancellation during
dispatch, re-entrant scheduling from a handler, and exact quiescence.
"""

import pytest

from repro.kernel import EventKernel
from repro.sim import Cluster
from repro.sim.event import EventQueue
from tests.core.conftest import make_cluster


def _sim_kernel():
    return EventQueue().kernel


def _cth_kernel():
    _, scheds, _, _ = make_cluster(1)
    return scheds[0].kernel


def _charm_kernel():
    from repro.charm import CharmRuntime
    cl = Cluster(2)
    rt = CharmRuntime(cl)
    return rt.cluster.queue.kernel


def _bigsim_kernel():
    from repro.bigsim import BigSimEngine, TargetMachine
    from repro.workloads.md import MDConfig, MDWorkload
    eng = BigSimEngine(2, TargetMachine(dims=(2, 2, 2)),
                       MDWorkload(MDConfig(dims=(2, 2, 2))), steps=1)
    eng.run()               # drain the application; the kernel stays up
    assert eng.kernel.empty
    return eng.kernel


def _pose_kernel():
    from repro.pose import PoseEngine
    eng = PoseEngine(Cluster(2))
    return eng.kernel


PROVIDERS = {
    "sim": _sim_kernel,
    "cth": _cth_kernel,
    "charm": _charm_kernel,
    "bigsim": _bigsim_kernel,
    "pose": _pose_kernel,
}


@pytest.fixture(params=sorted(PROVIDERS))
def kernel(request):
    k = PROVIDERS[request.param]()
    assert isinstance(k, EventKernel)
    assert k.empty, "conformance drives start from an idle kernel"
    return k


def test_fifo_at_equal_timestamps(kernel):
    fired = []
    t = kernel.current_time + 10.0
    for i in range(6):
        kernel.schedule(t, fired.append, i)
    kernel.run()
    assert fired == list(range(6))


def test_cancellation_during_dispatch(kernel):
    fired = []
    t = kernel.current_time
    victim = kernel.schedule(t + 2.0, fired.append, "victim")
    kernel.schedule(t + 1.0, victim.cancel)
    kernel.schedule(t + 3.0, fired.append, "survivor")
    kernel.run()
    assert fired == ["survivor"]
    assert victim.cancelled and not victim.fired
    assert kernel.empty


def test_reentrant_scheduling_from_a_handler(kernel):
    fired = []
    t = kernel.current_time

    def chain(depth):
        fired.append(depth)
        if depth < 3:
            kernel.schedule(kernel.current_time + 1.0, chain, depth + 1)

    kernel.schedule(t + 1.0, chain, 0)
    kernel.run()
    assert fired == [0, 1, 2, 3]
    assert kernel.empty


def test_cancel_heavy_lazy_sweep(kernel):
    """Cancel two thirds of a large schedule (with double-cancels):
    the lazy-cancellation sweep must drop the stale entries without
    perturbing survivor order or the O(1) live count."""
    t = kernel.current_time
    fired = []
    evs = [kernel.schedule(t + float(i % 13), fired.append, i)
           for i in range(300)]
    for i, ev in enumerate(evs):
        if i % 3:
            ev.cancel()
    for ev in evs[1::30]:               # double-cancel a sample: no-ops
        ev.cancel()
    survivors = [i for i in range(300) if i % 3 == 0]
    assert len(kernel) == len(survivors)
    assert kernel.run() == len(survivors)
    assert fired == sorted(survivors, key=lambda i: (i % 13, i))
    assert kernel.empty
    for i, ev in enumerate(evs):
        assert ev.fired == (i % 3 == 0)
        assert ev.cancelled == (i % 3 != 0)


def test_skip_current_heavy(kernel):
    """Mostly-skipped dispatch: skipped events execute but count
    neither in run()'s return, events_processed, nor a budget."""
    t = kernel.current_time
    fired = []

    def skipper(i):
        fired.append(i)
        kernel.skip_current()

    def keeper(i):
        fired.append(i)

    for i in range(40):
        kernel.schedule(t + float(i), skipper if i % 4 else keeper, i)
    before = kernel.events_processed
    assert kernel.run() == 10           # only the 10 keepers count
    assert fired == list(range(40))     # but every event executed
    assert kernel.events_processed - before == 10

    # Budget interaction: skipped events are free against max_events.
    fired.clear()
    base = kernel.current_time
    for i in range(12):
        kernel.schedule(base + 1.0 + i, skipper if i % 2 else keeper,
                        100 + i)
    assert kernel.run(max_events=3) == 3
    assert fired == [100, 101, 102, 103, 104]
    assert len(kernel) == 7
    assert kernel.run() == 3            # drain the rest: 3 more keepers
    assert kernel.empty


def test_quiescence_exactness(kernel):
    quiesced = []
    fn = kernel.hooks.subscribe("on_quiescence", quiesced.append)
    try:
        t = kernel.current_time
        for i in range(3):
            kernel.schedule(t + float(i + 1), lambda: None)
        assert kernel.run() == 3
        # One drain, one quiescence — no spurious re-fires, and the
        # processed count is exact (no phantom or double-counted events).
        assert quiesced == [kernel]
        assert kernel.empty and len(kernel) == 0
        assert kernel.run() == 0
        assert len(quiesced) == 2
    finally:
        kernel.hooks.unsubscribe("on_quiescence", fn)
