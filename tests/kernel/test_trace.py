"""Tests for the kernel tracer: entries, counters, timelines, dump."""

import json

import pytest

from repro.errors import ReproError
from repro.kernel import EventKernel, KernelTracer
from repro.sim import Cluster
from tests.core.conftest import make_cluster


def traced_kernel():
    k = EventKernel(name="traced")
    tr = KernelTracer().attach(k)
    return k, tr


def named_handler(log, tag):
    log.append(tag)


# -- lifecycle entries ------------------------------------------------------

def test_entries_cover_the_event_lifecycle():
    k, tr = traced_kernel()
    log = []
    ev = k.schedule(2.0, named_handler, log, "x", category="demo", flow="f0")
    k.schedule(1.0, lambda: None)
    ev2 = k.schedule(3.0, lambda: None)
    ev2.cancel()
    k.run()
    kinds = [e["ev"] for e in tr.entries]
    assert kinds == ["schedule", "schedule", "schedule", "cancel",
                     "begin", "end", "begin", "end", "idle", "quiescence"]
    sched = tr.entries[0]
    assert sched == {"ev": "schedule", "kernel": "traced", "t": 2.0,
                     "seq": 0, "category": "demo", "flow": "f0",
                     "site": "named_handler"}


def test_counters_aggregate_dispatch_metrics():
    k, tr = traced_kernel()
    ev = k.schedule(1.0, lambda: None, category="work")
    k.schedule(2.0, lambda: None, category="work")
    k.schedule(102.0, lambda: None)       # a 100ns virtual-time gap
    ev.cancel()
    k.run()
    c = tr.counters
    assert c["scheduled"] == 3
    assert c["dispatched"] == 2
    assert c["cancelled"] == 1
    assert c["quiescences"] == 1
    assert c["idle_ns"] == 100.0
    assert c["by_category"] == {"work": 1, "uncategorized": 1}


def test_skipped_dispatches_are_counted_separately():
    k, tr = traced_kernel()
    k.schedule(1.0, k.skip_current)
    k.schedule(2.0, lambda: None)
    k.run()
    assert tr.counters["skipped"] == 1
    assert tr.counters["dispatched"] == 1
    skipped = [e for e in tr.entries if e.get("skipped")]
    assert len(skipped) == 1 and skipped[0]["ev"] == "end"


def test_timeline_groups_dispatches_by_flow():
    k, tr = traced_kernel()
    log = []
    k.schedule(1.0, named_handler, log, "a", category="step", flow="alpha")
    k.schedule(2.0, named_handler, log, "b", category="step", flow="beta")
    k.schedule(3.0, named_handler, log, "c", category="ack", flow="alpha")
    k.run()
    tl = tr.timeline()
    assert tl == {
        "alpha": [(1.0, "step", "named_handler"),
                  (3.0, "ack", "named_handler")],
        "beta": [(2.0, "step", "named_handler")],
    }


def test_dump_writes_parseable_json_lines(tmp_path):
    k, tr = traced_kernel()
    k.schedule(1.0, lambda: None, category="d")
    k.run()
    path = tmp_path / "trace.jsonl"
    n = tr.dump(str(path))
    lines = path.read_text().splitlines()
    assert n == len(lines) == len(tr.entries)
    parsed = [json.loads(line) for line in lines]
    assert parsed == tr.entries


# -- attachment -------------------------------------------------------------

def test_detach_restores_the_zero_cost_path():
    k = EventKernel()
    assert not k.hooks.hot
    tr = KernelTracer().attach(k)
    assert k.hooks.hot
    k.schedule(1.0, lambda: None)
    k.run()
    n = len(tr.entries)
    tr.detach()
    assert not k.hooks.hot
    k.schedule(2.0, lambda: None)
    k.run()
    assert len(tr.entries) == n


def test_double_attach_and_double_detach_are_errors():
    k = EventKernel()
    tr = KernelTracer().attach(k)
    with pytest.raises(ReproError):
        tr.attach(k)
    tr.detach()
    with pytest.raises(ReproError):
        tr.detach()


# -- runtime integration ----------------------------------------------------

def test_thread_switches_show_up_as_cth_resume():
    cl, scheds, _, _ = make_cluster(1)
    tr = KernelTracer().attach(scheds[0].kernel)

    def body(th):
        yield "yield"
        yield "yield"

    scheds[0].create(body)
    scheds[0].create(body)
    scheds[0].run()
    assert tr.counters["switches"] == tr.counters["dispatched"] > 0
    assert set(tr.counters["by_category"]) == {"cth.resume"}


def test_network_traffic_shows_up_as_messages():
    cl = Cluster(2)
    for proc in cl.processors:
        proc.set_message_handler(lambda msg: None)
    tr = KernelTracer().attach(cl.queue.kernel)
    cl.send(0, 1, "ping", 64, tag="t")
    cl.send(1, 0, "pong", 64, tag="t")
    cl.run()
    assert tr.counters["messages"] == 2
    assert all(cat.startswith("net.") for cat in tr.counters["by_category"])
    flows = tr.timeline()
    assert set(flows) == {"pe0", "pe1"}
