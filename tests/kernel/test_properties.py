"""Property tests for the kernel ordering invariants.

Seeded random schedules driven against *both* implementations — the
fast path (:mod:`repro.kernel.event`) and the frozen reference
(:mod:`repro.kernel.refkernel`) — asserting the contract properties
directly rather than by example:

* ``(time, seq)`` FIFO total order: the fire sequence is exactly the
  stable sort of the schedule by time;
* cancellation never resurrects: a cancelled event never fires, no
  matter how cancels interleave with dispatch, and double-cancels /
  cancels-after-fire stay no-ops;
* ``len()`` matches the live count through arbitrary cancel storms;
* quiescence fires exactly once per drain, after ``on_idle`` re-arms
  are exhausted.
"""

import random

import pytest

from repro.kernel.event import EventKernel as FastKernel
from repro.kernel.refkernel import EventKernel as RefKernel

KERNELS = {"fast": FastKernel, "ref": RefKernel}
SEEDS = range(8)


@pytest.fixture(params=sorted(KERNELS))
def kernel_cls(request):
    return KERNELS[request.param]


@pytest.mark.parametrize("seed", SEEDS)
def test_fifo_total_order(kernel_cls, seed):
    """Events fire in the stable (time, seq) sort of their schedule."""
    rng = random.Random(seed)
    k = kernel_cls(name="prop")
    n = 300
    pairs = [(float(rng.randrange(12)), i) for i in range(n)]
    log = []
    for t, i in pairs:
        k.schedule(t, log.append, i)
    assert k.run() == n
    assert log == [i for _t, i in sorted(pairs)]
    assert k.current_time == max(t for t, _i in pairs)


@pytest.mark.parametrize("seed", SEEDS)
def test_cancellation_never_resurrects(kernel_cls, seed):
    """No cancelled event ever fires; cancel stays sticky and no-op
    on fired events — even when callbacks cancel mid-dispatch."""
    rng = random.Random(seed)
    k = kernel_cls(name="prop")
    n = 200
    log = []
    handles = []

    def body(i):
        log.append(i)
        if handles and rng.random() < 0.4:
            handles[rng.randrange(len(handles))].cancel()

    for i in range(n):
        handles.append(k.schedule(float(rng.randrange(9)), body, i))
    pre_cancelled = set()
    for _ in range(n // 3):
        j = rng.randrange(n)
        handles[j].cancel()
        pre_cancelled.add(j)
        handles[j].cancel()     # double-cancel: still one cancellation
    k.run()
    fired = set(log)
    assert not (fired & pre_cancelled)
    for i, ev in enumerate(handles):
        assert ev.cancelled != ev.fired     # every event ended one way
        assert ev.fired == (i in fired)
        was = ev.fired
        ev.cancel()                          # cancel-after-drain no-op
        assert ev.fired == was and ev.cancelled == (not was)
    assert len(k) == 0 and k.empty


@pytest.mark.parametrize("seed", SEEDS)
def test_len_matches_live_count_through_cancel_storms(kernel_cls, seed):
    """O(1) counters agree with a model through schedule/cancel storms."""
    rng = random.Random(seed)
    k = kernel_cls(name="prop")
    handles = []
    live = set()
    for round_ in range(6):
        for _ in range(rng.randrange(10, 60)):
            i = len(handles)
            handles.append(k.schedule(float(rng.randrange(20)),
                                      lambda: None))
            live.add(i)
        for _ in range(rng.randrange(80)):
            j = rng.randrange(len(handles))
            handles[j].cancel()
            live.discard(j)
        assert len(k) == k.live == len(live)
        assert k.empty == (not live)
    assert k.run() == len(live)
    assert len(k) == 0 and k.empty


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_quiescence_fires_exactly_when_drained(kernel_cls, seed):
    """One quiescence per run(), only after re-arm pumps go dry."""
    rng = random.Random(seed)
    k = kernel_cls(name="prop")
    quiesced = []
    pumps = {"left": 3}

    def on_idle(kernel):
        assert kernel.empty, "idle hook must only fire on a drained queue"
        if pumps["left"] > 0:
            pumps["left"] -= 1
            kernel.schedule(kernel.current_time + 1.0, lambda: None)
            return True
        return False

    k.hooks.subscribe("on_idle", on_idle)
    k.hooks.subscribe("on_quiescence", quiesced.append)
    for _ in range(rng.randrange(1, 20)):
        k.schedule(float(rng.randrange(5)), lambda: None)
    k.run()
    assert quiesced == [k]      # exactly one, after all three pumps
    assert pumps["left"] == 0
    k.run()
    assert len(quiesced) == 2   # an already-empty run still quiesces
