"""Unit tests for the event kernel: ordering, cancellation, policies, hooks."""

import pytest

from repro.errors import ReproError
from repro.kernel import EventKernel, HookBus, MinHeap, RunPolicy
from repro.kernel.event import _SWEEP_MIN_STALE


# -- ordering ---------------------------------------------------------------

def test_time_order_with_fifo_ties():
    k = EventKernel()
    fired = []
    k.schedule(5.0, fired.append, "b1")
    k.schedule(2.0, fired.append, "a")
    k.schedule(5.0, fired.append, "b2")
    k.schedule(5.0, fired.append, "b3")
    k.schedule(9.0, fired.append, "c")
    assert k.run() == 5
    assert fired == ["a", "b1", "b2", "b3", "c"]
    assert k.current_time == 9.0


def test_len_and_empty_are_live_counts():
    k = EventKernel()
    assert k.empty and len(k) == 0
    evs = [k.schedule(float(i), lambda: None) for i in range(10)]
    assert len(k) == 10 and k.live == 10 and not k.empty
    evs[3].cancel()
    evs[7].cancel()
    assert len(k) == 8
    evs[3].cancel()          # double-cancel is a no-op
    assert len(k) == 8
    k.run()
    assert k.empty and len(k) == 0
    assert k.events_processed == 8


def test_live_events_snapshot_in_dispatch_order():
    k = EventKernel()
    k.schedule(3.0, lambda: None, category="late")
    ev = k.schedule(1.0, lambda: None)
    k.schedule(2.0, lambda: None, category="mid")
    ev.cancel()
    assert [e.category for e in k.live_events()] == ["mid", "late"]


# -- causality --------------------------------------------------------------

def named_callback():
    pass


def test_causality_violation_names_the_scheduling_site():
    k = EventKernel()
    k.schedule(10.0, lambda: None)
    k.run()
    with pytest.raises(ReproError) as e:
        k.schedule(3.0, named_callback)
    msg = str(e.value)
    assert "causality violation" in msg
    assert "scheduled from" in msg
    assert "named_callback" in msg


def test_causality_off_allows_rewinding_time():
    k = EventKernel(causality=False)
    k.schedule(10.0, lambda: None)
    k.run()
    k.schedule(3.0, lambda: None)   # a priority axis, not a clock
    assert k.run() == 1


def test_scheduling_at_current_time_is_legal():
    k = EventKernel()
    fired = []
    k.schedule(5.0, lambda: k.schedule(5.0, fired.append, "same-t"))
    k.run()
    assert fired == ["same-t"]


# -- cancellation -----------------------------------------------------------

def test_cancelled_events_never_fire():
    k = EventKernel()
    fired = []
    ev = k.schedule(1.0, fired.append, "dead")
    k.schedule(2.0, fired.append, "live")
    ev.cancel()
    assert k.run() == 1
    assert fired == ["live"]


def test_cancel_during_dispatch_of_an_earlier_event():
    k = EventKernel()
    fired = []
    later = k.schedule(2.0, fired.append, "victim")
    k.schedule(1.0, later.cancel)
    k.schedule(3.0, fired.append, "after")
    assert k.run() == 2
    assert fired == ["after"]


def test_cancel_after_firing_is_a_noop():
    k = EventKernel()
    ev = k.schedule(1.0, lambda: None)
    k.run()
    ev.cancel()
    assert ev.fired and not ev.cancelled


def test_batched_sweep_compacts_without_reordering():
    k = EventKernel()
    fired = []
    evs = [k.schedule(float(i % 7), fired.append, i) for i in range(400)]
    for ev in evs[::2]:
        ev.cancel()
    # The sweep physically removed cancelled entries at some point.
    assert len(k._heap) < 400
    assert len(k) == 200
    k.run()
    survivors = [i for i in range(400) if i % 2 == 1]
    assert fired == sorted(survivors, key=lambda i: (i % 7, i))


def test_sweep_threshold_is_batched_not_eager():
    k = EventKernel()
    evs = [k.schedule(float(i), lambda: None) for i in range(1000)]
    for ev in evs[:_SWEEP_MIN_STALE - 1]:
        ev.cancel()
    # Below the batch threshold nothing is compacted yet.
    assert len(k._heap) == 1000


def test_peek_time_skips_cancelled_prefix():
    k = EventKernel()
    first = k.schedule(1.0, lambda: None)
    k.schedule(2.0, lambda: None)
    assert k.peek_time() == 1.0
    first.cancel()
    assert k.peek_time() == 2.0
    assert k.peek_time() == 2.0     # idempotent


# -- skip_current -----------------------------------------------------------

def test_skip_current_outside_dispatch_is_an_error():
    with pytest.raises(ReproError):
        EventKernel().skip_current()


def test_skipped_events_cost_nothing():
    k = EventKernel()
    fired = []

    def stale():
        k.skip_current()
        k.skip_current()            # idempotent within one dispatch

    k.schedule(1.0, stale)
    k.schedule(2.0, fired.append, "real")
    assert k.run(RunPolicy.budget(1)) == 1
    assert fired == ["real"]
    assert k.events_processed == 1


# -- run policies -----------------------------------------------------------

def test_until_leaves_later_events_queued():
    k = EventKernel()
    fired = []
    for t in (1.0, 2.0, 3.0):
        k.schedule(t, fired.append, t)
    assert k.run(until=2.0) == 2
    assert fired == [1.0, 2.0]
    assert len(k) == 1
    assert k.run() == 1


def test_max_events_budget():
    k = EventKernel()
    for t in range(5):
        k.schedule(float(t), lambda: None)
    assert k.run(max_events=2) == 2
    assert k.run(RunPolicy.budget(2)) == 2
    assert k.run(RunPolicy.drain()) == 1


def test_policy_constructors():
    assert RunPolicy.until_time(7.0) == RunPolicy(until=7.0)
    assert RunPolicy.budget(3) == RunPolicy(max_events=3)
    assert RunPolicy.drain() == RunPolicy()
    p = RunPolicy(until=5.0, max_events=2)
    assert p.cuts(5.5) and not p.cuts(5.0)
    assert p.exhausted(2) and not p.exhausted(1)


def test_no_quiescence_policy_skips_idle_hooks():
    k = EventKernel()
    calls = []
    k.hooks.subscribe("on_idle", lambda kk: calls.append("idle") or False)
    k.hooks.subscribe("on_quiescence", lambda kk: calls.append("q"))
    k.schedule(1.0, lambda: None)
    k.run(RunPolicy(quiescence=False))
    assert calls == []
    k.run()
    assert calls == ["idle", "q"]


def test_on_idle_may_re_arm_work():
    k = EventKernel()
    fired = []
    pumps = []

    def pump(kernel):
        if len(pumps) < 2:
            pumps.append(1)
            kernel.schedule(kernel.current_time + 1.0, fired.append, "pumped")
            return True
        return False

    quiesced = []
    k.hooks.subscribe("on_idle", pump)
    k.hooks.subscribe("on_quiescence", lambda kk: quiesced.append(1))
    k.schedule(1.0, fired.append, "seed")
    assert k.run() == 3
    assert fired == ["seed", "pumped", "pumped"]
    assert quiesced == [1]


# -- hook bus ---------------------------------------------------------------

def test_notify_hooks_fire_in_lifecycle_order():
    k = EventKernel()
    seen = []
    k.hooks.subscribe("on_schedule", lambda kk, ev: seen.append(("s", ev.seq)))
    k.hooks.subscribe("on_dispatch_begin", lambda kk, ev: seen.append(("b", ev.seq)))
    k.hooks.subscribe("on_dispatch_end", lambda kk, ev: seen.append(("e", ev.seq)))
    k.hooks.subscribe("on_cancel", lambda kk, ev: seen.append(("c", ev.seq)))
    ev0 = k.schedule(1.0, lambda: None)
    k.schedule(2.0, lambda: None)
    ev0.cancel()
    k.run()
    assert seen == [("s", 0), ("s", 1), ("c", 0), ("b", 1), ("e", 1)]


def test_hot_flag_tracks_notify_subscribers():
    bus = HookBus()
    assert not bus.hot
    fn = bus.subscribe("on_schedule", lambda kk, ev: None)
    assert bus.hot
    bus.unsubscribe("on_schedule", fn)
    assert not bus.hot
    # Channel subscriptions never heat the notify fast path.
    bus.subscribe("net.send", lambda v: v)
    assert not bus.hot


def test_filter_chains_subscribers_in_order():
    bus = HookBus()
    assert bus.filter("x", 10) == 10          # passthrough
    bus.subscribe("x", lambda v: v + 1)
    bus.subscribe("x", lambda v: v * 2)
    assert bus.filter("x", 10) == 22


def test_decide_first_non_none_wins():
    bus = HookBus()
    assert bus.decide("verdict") is None
    bus.subscribe("verdict", lambda **ctx: None)
    bus.subscribe("verdict", lambda **ctx: "bounce")
    bus.subscribe("verdict", lambda **ctx: "ignored")
    assert bus.decide("verdict") == "bounce"


def test_has_reports_channel_subscription():
    bus = HookBus()
    assert not bus.has("net.send")
    fn = bus.subscribe("net.send", lambda v: v)
    assert bus.has("net.send")
    bus.unsubscribe("net.send", fn)
    assert not bus.has("net.send")


def test_unsubscribe_unknown_is_an_error():
    bus = HookBus()
    with pytest.raises(ReproError):
        bus.unsubscribe("on_schedule", lambda: None)
    with pytest.raises(ReproError):
        bus.unsubscribe("no.such.channel", lambda: None)


# -- MinHeap ----------------------------------------------------------------

def test_minheap_basics():
    h = MinHeap([3, 1, 2])
    assert len(h) == 3 and bool(h)
    assert h.peek() == 1
    assert h.pop() == 1
    h.push(0)
    assert h.replace(5) == 0
    assert sorted(h) == [2, 3, 5]
    h.rebuild([9, 4])
    assert [h.pop(), h.pop()] == [4, 9]
    assert not h
