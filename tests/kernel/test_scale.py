"""Tier-1 scale smoke: the batched fast path at 100k events.

Proves the two load-bearing claims of the fast-path refactor at a size
where per-event waste is unmissable:

* a 100k-event hooks-off run completes well inside a generous
  wall-clock ceiling (the dispatch budget for ROADMAP item 1's
  10⁵-flow regime);
* the drain allocates O(1), not O(events): ``tracemalloc`` across
  ``run()`` shows no per-event residue — the only allocations are the
  batch container itself, released by the end of the drain.

The timing ceiling is deliberately loose (~50ms expected, 15s allowed)
so a loaded CI container cannot flake it; the allocation assertions are
structural and host-independent.
"""

import gc
import time
import tracemalloc

from repro.kernel import EventKernel


def _nop():
    pass


def test_100k_event_batched_run_wall_clock_and_allocations():
    n = 100_000
    k = EventKernel(name="scale")
    # Non-monotonic times: the refill actually sorts, FIFO ties abound.
    times = [float(i % 997) for i in range(n)]
    items = k.post_batch(times, _nop)
    assert len(items) == n and len(k) == n

    gc.collect()
    tracemalloc.start()
    before, _peak = tracemalloc.get_traced_memory()
    snap0 = tracemalloc.take_snapshot()
    t0 = time.perf_counter()
    processed = k.run()
    wall = time.perf_counter() - t0
    snap1 = tracemalloc.take_snapshot()
    gc.collect()
    after, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assert processed == n
    assert len(k) == 0 and k.empty
    assert k.current_time == 996.0
    assert wall < 15.0, f"100k-event drain took {wall:.2f}s"
    # O(1) per-event allocation: net traced memory across the whole
    # drain stays far below one object per event (100k anythings would
    # be megabytes).
    assert after - before < 512 * 1024
    # And specifically no per-event records built inside the kernel:
    # surviving allocation blocks attributed to event.py stay constant.
    kernel_stats = [s for s in snap1.compare_to(snap0, "filename")
                    if "event.py" in (s.traceback[0].filename or "")]
    assert sum(s.count_diff for s in kernel_stats) < 100


def test_100k_cancel_storm_drains_flat():
    n = 100_000
    k = EventKernel(name="scale-cancel")
    items = k.post_batch([float(i % 89) for i in range(n)], _nop)
    assert k.cancel_slots(items[::2]) == n // 2
    assert len(k) == n // 2
    t0 = time.perf_counter()
    assert k.run() == n // 2
    assert time.perf_counter() - t0 < 15.0
    assert len(k) == 0
