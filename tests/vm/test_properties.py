"""Property-based tests for the VM substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.vm import AddressSpace, AddressSpaceLayout, PhysicalMemory, MemoryCostModel
from repro.vm.addrspace import _FreeList
from repro.vm.layout import MB


# ---------------------------------------------------------------------------
# Read/write roundtrips at arbitrary offsets and lengths
# ---------------------------------------------------------------------------

@given(
    offset=st.integers(min_value=0, max_value=3 * 4096),
    payload=st.binary(min_size=1, max_size=4096),
)
@settings(max_examples=60, deadline=None)
def test_write_read_roundtrip(offset, payload):
    pm = PhysicalMemory(8 * MB)
    sp = AddressSpace(AddressSpaceLayout.small32(), pm)
    m = sp.mmap(4 * 4096 + 4096)
    if offset + len(payload) <= m.length:
        sp.write(m.start + offset, payload)
        assert sp.read(m.start + offset, len(payload)) == payload


@given(value=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_word_roundtrip_any_value(value):
    pm = PhysicalMemory(1 * MB)
    sp = AddressSpace(AddressSpaceLayout.small32(), pm)
    m = sp.mmap(4096)
    sp.write_word(m.start, value)
    assert sp.read_word(m.start) == value


# ---------------------------------------------------------------------------
# Free-list allocator invariants
# ---------------------------------------------------------------------------

@st.composite
def alloc_scripts(draw):
    """A random sequence of allocate/free operations (sizes in pages)."""
    n = draw(st.integers(min_value=1, max_value=25))
    return [draw(st.integers(min_value=1, max_value=8)) for _ in range(n)]


@given(alloc_scripts(), st.randoms(use_true_random=False))
@settings(max_examples=60, deadline=None)
def test_freelist_never_double_allocates(sizes, rng):
    fl = _FreeList(0x1000_0000, 0x1800_0000)
    page = 4096
    live: list[tuple[int, int]] = []
    for npages in sizes:
        length = npages * page
        # Randomly free one live allocation first, sometimes.
        if live and rng.random() < 0.4:
            start, ln = live.pop(rng.randrange(len(live)))
            fl.release(start, ln)
        start = fl.allocate(length, page)
        # No overlap with any live allocation.
        for other_start, other_len in live:
            assert start + length <= other_start or other_start + other_len <= start
        live.append((start, length))
    # Free everything: full capacity restored.
    for start, ln in live:
        fl.release(start, ln)
    assert fl.free_bytes() == 0x0800_0000


@given(alloc_scripts())
@settings(max_examples=40, deadline=None)
def test_freelist_conservation(sizes):
    """free_bytes + allocated bytes is invariant."""
    total = 0x0100_0000
    fl = _FreeList(0, total)
    allocated = 0
    for npages in sizes:
        length = npages * 4096
        if fl.largest_free() < length:
            continue
        fl.allocate(length, 4096)
        allocated += length
        assert fl.free_bytes() == total - allocated


# ---------------------------------------------------------------------------
# Mapping lifecycle invariants
# ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_mmap_munmap_restores_everything(page_counts):
    pm = PhysicalMemory(16 * MB)
    sp = AddressSpace(AddressSpaceLayout.small32(), pm)
    free_before = sp.region_free_bytes("heap")
    maps = [sp.mmap(n * 4096) for n in page_counts]
    assert sp.mapped_bytes == sum(n * 4096 for n in page_counts)
    for m in maps:
        sp.munmap(m)
    assert sp.region_free_bytes("heap") == free_before
    assert sp.mapped_bytes == 0
    assert pm.frames_in_use == 0


@given(st.binary(min_size=1, max_size=2000), st.binary(min_size=1, max_size=2000))
@settings(max_examples=40, deadline=None)
def test_fork_isolation_property(parent_data, child_data):
    pm = PhysicalMemory(8 * MB)
    sp = AddressSpace(AddressSpaceLayout.small32(), pm)
    m = sp.mmap(4096, region="data")
    sp.write(m.start, parent_data)
    child = sp.fork_copy("child")
    child.write(m.start, child_data)
    assert sp.read(m.start, len(parent_data)) == parent_data


# ---------------------------------------------------------------------------
# Cost model sanity
# ---------------------------------------------------------------------------

@given(st.integers(min_value=1, max_value=10_000_000))
@settings(max_examples=30, deadline=None)
def test_memcpy_cost_monotone(nbytes):
    cm = MemoryCostModel()
    assert cm.memcpy_cost(nbytes) > 0
    assert cm.memcpy_cost(2 * nbytes) > cm.memcpy_cost(nbytes)


@given(st.integers(min_value=1, max_value=4096))
@settings(max_examples=30, deadline=None)
def test_remap_cost_exceeds_mmap_cost(npages):
    cm = MemoryCostModel()
    assert cm.remap_cost(npages) > cm.mmap_cost(npages)
    assert cm.mmap_cost(npages + 1) > cm.mmap_cost(npages)
