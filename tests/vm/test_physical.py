"""Unit tests for the physical frame pool."""

import pytest

from repro.errors import OutOfPhysicalMemory, VMError
from repro.vm import PhysicalMemory


def test_pool_capacity_accounting():
    pm = PhysicalMemory(16 * 4096, page_size=4096)
    assert pm.total_frames == 16
    assert pm.frames_in_use == 0
    f = pm.allocate_frame()
    assert pm.frames_in_use == 1
    assert pm.bytes_in_use == 4096
    pm.free_frame(f)
    assert pm.frames_in_use == 0
    assert pm.frames_free == 16


def test_exhaustion_raises():
    pm = PhysicalMemory(2 * 4096)
    pm.allocate_frame()
    pm.allocate_frame()
    with pytest.raises(OutOfPhysicalMemory):
        pm.allocate_frame()


def test_allocate_frames_all_or_nothing():
    pm = PhysicalMemory(4 * 4096)
    pm.allocate_frame()
    with pytest.raises(OutOfPhysicalMemory):
        pm.allocate_frames(4)
    # Nothing was taken by the failed bulk request.
    assert pm.frames_in_use == 1
    frames = pm.allocate_frames(3)
    assert len(frames) == 3
    assert pm.frames_free == 0


def test_free_then_reallocate_returns_zeroed_frame():
    pm = PhysicalMemory(1 * 4096)
    f = pm.allocate_frame()
    f.write(0, b"hello")
    pm.free_frame(f)
    g = pm.allocate_frame()
    assert g.read(0, 5) == b"\x00" * 5


def test_double_free_rejected():
    pm = PhysicalMemory(2 * 4096)
    f = pm.allocate_frame()
    pm.free_frame(f)
    with pytest.raises(VMError):
        pm.free_frame(f)


def test_foreign_frame_rejected():
    pm1 = PhysicalMemory(2 * 4096)
    pm2 = PhysicalMemory(2 * 4096)
    f = pm1.allocate_frame()
    with pytest.raises(VMError):
        pm2.free_frame(f)


def test_pinned_frame_cannot_be_freed():
    pm = PhysicalMemory(2 * 4096)
    f = pm.allocate_frame()
    f.pinned = True
    with pytest.raises(VMError):
        pm.free_frame(f)


def test_frame_lazy_materialization():
    pm = PhysicalMemory(4 * 4096)
    f = pm.allocate_frame()
    assert not f.materialized
    assert f.read(100, 8) == b"\x00" * 8          # read does not materialize
    assert not f.materialized
    f.write(0, b"x")
    assert f.materialized


def test_frame_read_write_bounds():
    pm = PhysicalMemory(4 * 4096)
    f = pm.allocate_frame()
    with pytest.raises(VMError):
        f.read(4090, 10)
    with pytest.raises(VMError):
        f.write(4095, b"ab")


def test_frame_copy_from():
    pm = PhysicalMemory(4 * 4096)
    a, b = pm.allocate_frame(), pm.allocate_frame()
    a.write(10, b"payload")
    b.copy_from(a)
    assert b.read(10, 7) == b"payload"


def test_bad_page_size_rejected():
    with pytest.raises(VMError):
        PhysicalMemory(4096, page_size=3000)
    with pytest.raises(VMError):
        PhysicalMemory(5000, page_size=4096)
