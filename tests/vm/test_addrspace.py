"""Unit tests for simulated address spaces."""

import pytest

from repro.errors import (
    MapError,
    OutOfVirtualAddressSpace,
    PageFault,
    ProtectionFault,
    SegmentationFault,
)
from repro.vm import AddressSpace, AddressSpaceLayout, PhysicalMemory, Protection
from repro.vm.layout import MB


@pytest.fixture()
def space():
    pm = PhysicalMemory(64 * MB)
    return AddressSpace(AddressSpaceLayout.small32(), pm, name="test")


def test_mmap_read_write_roundtrip(space):
    m = space.mmap(8192, tag="buf")
    space.write(m.start, b"hello world")
    assert space.read(m.start, 11) == b"hello world"
    assert space.resident_bytes == 8192


def test_mmap_rounds_to_pages(space):
    m = space.mmap(1)
    assert m.length == 4096


def test_cross_page_read_write(space):
    m = space.mmap(8192)
    payload = bytes(range(256)) * 40            # 10240 > one page? No: 10240 > 8192
    payload = payload[:8000]
    space.write(m.start + 100, payload)
    assert space.read(m.start + 100, len(payload)) == payload


def test_word_roundtrip_32bit(space):
    m = space.mmap(4096)
    space.write_word(m.start + 8, 0xDEADBEEF)
    assert space.read_word(m.start + 8) == 0xDEADBEEF
    assert space.read(m.start + 8, 4) == bytes.fromhex("efbeadde")  # little endian


def test_word_roundtrip_64bit():
    pm = PhysicalMemory(64 * MB)
    sp = AddressSpace(AddressSpaceLayout.large64(), pm)
    m = sp.mmap(4096)
    sp.write_word(m.start, 2**63 + 12345)
    assert sp.read_word(m.start) == 2**63 + 12345


def test_unmapped_access_segfaults(space):
    with pytest.raises(SegmentationFault):
        space.read(0x5000_0000, 4)
    with pytest.raises(SegmentationFault):
        space.write(0x5000_0000, b"x")


def test_reserved_access_pagefaults(space):
    m = space.mmap(4096, reserve_only=True, region="iso")
    with pytest.raises(PageFault):
        space.read(m.start, 1)
    assert space.page_faults == 1


def test_protection_enforced(space):
    m = space.mmap(4096, prot=Protection.READ)
    space.read(m.start, 4)
    with pytest.raises(ProtectionFault):
        space.write(m.start, b"x")


def test_fixed_address_mmap(space):
    iso = space.layout.regions["iso"]
    m = space.mmap(4096, addr=iso.start + 0x10000)
    assert m.start == iso.start + 0x10000
    # Same fixed range cannot be mapped twice.
    with pytest.raises(MapError):
        space.mmap(4096, addr=iso.start + 0x10000)


def test_fixed_mmap_must_be_aligned(space):
    with pytest.raises(MapError):
        space.mmap(4096, addr=space.layout.regions["iso"].start + 1)


def test_munmap_releases_va_and_frames(space):
    before_free = space.region_free_bytes("heap")
    m = space.mmap(16384)
    assert space.region_free_bytes("heap") == before_free - 16384
    space.munmap(m)
    assert space.region_free_bytes("heap") == before_free
    assert space.resident_bytes == 0
    with pytest.raises(SegmentationFault):
        space.read(m.start, 1)


def test_munmap_twice_rejected(space):
    m = space.mmap(4096)
    space.munmap(m)
    with pytest.raises(MapError):
        space.munmap(m)


def test_va_exhaustion():
    """A tiny heap region runs out of virtual addresses even with free RAM."""
    pm = PhysicalMemory(64 * MB)
    lay = AddressSpaceLayout.small32()
    sp = AddressSpace(lay, pm)
    heap = lay.regions["heap"]
    with pytest.raises(OutOfVirtualAddressSpace):
        sp.mmap(heap.size + 4096, region="heap")


def test_reserve_only_consumes_va_not_frames(space):
    m = space.mmap(1 * MB, reserve_only=True, region="iso")
    assert space.mapped_bytes == 1 * MB
    assert space.resident_bytes == 0
    assert space.physical.frames_in_use == 0
    assert m.reserved


def test_attach_detach_frames(space):
    m = space.mmap(8192, reserve_only=True, region="iso")
    frames = space.physical.allocate_frames(2)
    frames[0].write(0, b"migrated!")
    space.attach_frames(m, frames)
    assert space.read(m.start, 9) == b"migrated!"
    assert not m.reserved
    out = space.detach_frames(m)
    assert out == frames
    assert m.reserved
    with pytest.raises(PageFault):
        space.read(m.start, 1)


def test_attach_wrong_count_rejected(space):
    m = space.mmap(8192, reserve_only=True, region="iso")
    with pytest.raises(MapError):
        space.attach_frames(m, space.physical.allocate_frames(1))


def test_remap_frames_aliasing(space):
    """The memory-aliasing switch: same VA, different physical pages."""
    m = space.mmap(8192, tag="common-stack", region="stack")
    space.write(m.start, b"thread-A")
    frames_b = space.physical.allocate_frames(2)
    frames_b[0].write(0, b"thread-B")
    frames_a = space.remap_frames(m, frames_b)
    assert space.read(m.start, 8) == b"thread-B"
    # Thread A's data survived, un-copied, in its own frames.
    assert frames_a[0].read(0, 8) == b"thread-A"
    # Switch back.
    space.remap_frames(m, frames_a)
    assert space.read(m.start, 8) == b"thread-A"


def test_mapping_at_and_mappings(space):
    m1 = space.mmap(4096, tag="a")
    m2 = space.mmap(4096, tag="b")
    assert space.mapping_at(m1.start + 10) is m1
    assert space.mapping_at(m2.start) is m2
    assert space.mapping_at(0x7000_0000) is None
    assert {m.tag for m in space.mappings()} == {"a", "b"}


def test_fork_copy_isolates_memory(space):
    m = space.mmap(4096, tag="globals", region="data")
    space.write(m.start, b"parent")
    child = space.fork_copy("child")
    assert child.read(m.start, 6) == b"parent"
    child.write(m.start, b"child!")
    # Parent unaffected: full separation of state (paper Section 2.1).
    assert space.read(m.start, 6) == b"parent"
    assert child.read(m.start, 6) == b"child!"


def test_fork_copy_preserves_reservations(space):
    m = space.mmap(8192, reserve_only=True, region="iso")
    child = space.fork_copy("child")
    with pytest.raises(PageFault):
        child.read(m.start, 1)


def test_counters(space):
    m = space.mmap(4096)
    space.write(m.start, b"abcd")
    space.read(m.start, 4)
    space.memcpy_in(m.start + 100, m.start, 4)
    assert space.mmap_calls == 1
    assert space.bytes_written >= 4
    assert space.bytes_read >= 4
    assert space.bytes_copied == 4
    space.munmap(m)
    assert space.munmap_calls == 1


def test_memset(space):
    m = space.mmap(4096)
    space.memset(m.start, 0xAB, 16)
    assert space.read(m.start, 16) == b"\xab" * 16


def test_page_size_mismatch_rejected():
    pm = PhysicalMemory(1 * MB, page_size=8192)
    with pytest.raises(Exception):
        AddressSpace(AddressSpaceLayout.small32(page_size=4096), pm)


def test_mprotect_changes_page_rights(space):
    m = space.mmap(8192)
    space.write(m.start, b"rw-data")
    space.mprotect(m, Protection.READ)
    assert space.read(m.start, 7) == b"rw-data"
    with pytest.raises(ProtectionFault):
        space.write(m.start + 4096, b"x")      # every page affected
    space.mprotect(m, Protection.RW)
    space.write(m.start, b"ok")


def test_mprotect_unknown_mapping_rejected(space):
    m = space.mmap(4096)
    space.munmap(m)
    with pytest.raises(MapError):
        space.mprotect(m, Protection.READ)
