"""Unit tests for address-space layouts and regions."""

import pytest

from repro.errors import VMError
from repro.vm import AddressSpaceLayout, Region
from repro.vm.layout import GB, MB, TB


def test_region_basics():
    r = Region("heap", 0x1000, 0x2000)
    assert r.end == 0x3000
    assert r.contains(0x1000)
    assert r.contains(0x2FFF)
    assert not r.contains(0x3000)
    assert not r.contains(0xFFF)


def test_region_overlap():
    a = Region("a", 0x1000, 0x1000)
    b = Region("b", 0x1800, 0x1000)
    c = Region("c", 0x2000, 0x1000)
    assert a.overlaps(b)
    assert not a.overlaps(c)
    assert b.overlaps(c)


def test_small32_required_regions_present():
    lay = AddressSpaceLayout.small32()
    for name in ("text", "data", "heap", "iso", "stack"):
        assert name in lay.regions
    assert lay.word_bits == 32
    assert lay.word_bytes == 4


def test_small32_iso_region_is_largest():
    """The paper: 'normally the largest space available lies between the
    process stack and the heap' — the iso region dominates the 32-bit map."""
    lay = AddressSpaceLayout.small32()
    iso = lay.regions["iso"]
    assert all(iso.size >= r.size for r in lay.regions.values())
    assert iso.size > 2 * GB
    assert iso.size < 4 * GB


def test_large64_iso_region_terabytes():
    lay = AddressSpaceLayout.large64()
    assert lay.regions["iso"].size >= 16 * TB
    assert lay.word_bytes == 8


def test_page_helpers():
    lay = AddressSpaceLayout.small32()
    assert lay.page_of(0) == 0
    assert lay.page_of(4095) == 0
    assert lay.page_of(4096) == 1
    assert lay.page_base(4097) == 4096
    assert lay.page_align_up(1) == 4096
    assert lay.page_align_up(4096) == 4096
    assert lay.page_align_up(4097) == 8192
    assert lay.pages_for(1) == 1
    assert lay.pages_for(8192) == 2


def test_region_of():
    lay = AddressSpaceLayout.small32()
    heap = lay.regions["heap"]
    assert lay.region_of(heap.start) is heap
    with pytest.raises(VMError):
        lay.region_of(0)  # below text


def test_layout_rejects_overlapping_regions():
    with pytest.raises(VMError):
        AddressSpaceLayout(32, 4096, [
            Region("text", 0x1000, 0x10000),
            Region("data", 0x5000, 0x1000),
            Region("heap", 0x20000, 0x1000),
            Region("iso", 0x30000, 0x1000),
            Region("stack", 0x40000, 0x1000),
        ])


def test_layout_rejects_unaligned_regions():
    with pytest.raises(VMError):
        AddressSpaceLayout(32, 4096, [
            Region("text", 0x1001, 0x1000),
            Region("data", 0x10000, 0x1000),
            Region("heap", 0x20000, 0x1000),
            Region("iso", 0x30000, 0x1000),
            Region("stack", 0x40000, 0x1000),
        ])


def test_layout_rejects_missing_required_region():
    with pytest.raises(VMError):
        AddressSpaceLayout(32, 4096, [
            Region("text", 0x1000, 0x1000),
            Region("data", 0x10000, 0x1000),
        ])


def test_layout_rejects_bad_word_bits():
    with pytest.raises(VMError):
        AddressSpaceLayout(16, 4096, [])


def test_mb_gb_constants():
    assert MB == 1024 * 1024
    assert GB == 1024 * MB
