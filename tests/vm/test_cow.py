"""Tests for copy-on-write fork."""

import pytest

from repro.vm import AddressSpace, AddressSpaceLayout, PhysicalMemory
from repro.vm.layout import MB


def make_space():
    pm = PhysicalMemory(64 * MB)
    return AddressSpace(AddressSpaceLayout.small32(), pm), pm


def test_cow_fork_shares_frames_initially():
    sp, pm = make_space()
    m = sp.mmap(4 * 4096, region="data")
    sp.write(m.start, b"shared")
    frames_before = pm.frames_in_use
    child = sp.fork_copy("child", cow=True)
    # No new physical frames for the fork itself.
    assert pm.frames_in_use == frames_before
    assert child.read(m.start, 6) == b"shared"
    assert child.resident_bytes == sp.resident_bytes


def test_cow_write_in_child_copies_one_page():
    sp, pm = make_space()
    m = sp.mmap(4 * 4096, region="data")
    sp.write(m.start, b"original")
    child = sp.fork_copy("child", cow=True)
    before = pm.frames_in_use
    child.write(m.start, b"CHANGED!")
    assert pm.frames_in_use == before + 1     # exactly one page copied
    assert child.cow_breaks == 1
    assert sp.read(m.start, 8) == b"original"
    assert child.read(m.start, 8) == b"CHANGED!"
    # Untouched pages are still shared.
    child.write(m.start + 3 * 4096, b"x")
    assert pm.frames_in_use == before + 2


def test_cow_write_in_parent_isolated_too():
    sp, pm = make_space()
    m = sp.mmap(4096, region="data")
    sp.write(m.start, b"v1")
    child = sp.fork_copy("child", cow=True)
    sp.write(m.start, b"v2")
    assert sp.cow_breaks == 1
    assert child.read(m.start, 2) == b"v1"
    assert sp.read(m.start, 2) == b"v2"


def test_cow_last_owner_writes_in_place():
    """After one side broke the share, the other writes without copying."""
    sp, pm = make_space()
    m = sp.mmap(4096, region="data")
    child = sp.fork_copy("child", cow=True)
    child.write(m.start, b"a")            # breaks the share (copy)
    frames = pm.frames_in_use
    sp.write(m.start, b"b")               # exclusive now: no copy
    assert pm.frames_in_use == frames
    assert sp.cow_breaks == 1


def test_cow_reads_never_copy():
    sp, pm = make_space()
    m = sp.mmap(4 * 4096, region="data")
    child = sp.fork_copy("child", cow=True)
    before = pm.frames_in_use
    for off in range(0, 4 * 4096, 4096):
        assert child.read(m.start + off, 8) == sp.read(m.start + off, 8)
    assert pm.frames_in_use == before
    assert child.cow_breaks == 0


def test_cow_child_teardown_releases_shares():
    sp, pm = make_space()
    m = sp.mmap(2 * 4096, region="data")
    sp.write(m.start, b"keep")
    child = sp.fork_copy("child", cow=True)
    for cm in list(child.mappings()):
        child.munmap(cm)
    # Parent's data intact and frames still owned by the parent.
    assert sp.read(m.start, 4) == b"keep"
    sp.write(m.start, b"still-writable")
    assert sp.read(m.start, 5) == b"still"


def test_cow_grandchildren():
    """Fork of a fork: three owners of one frame, each isolating on write."""
    sp, pm = make_space()
    m = sp.mmap(4096, region="data")
    sp.write(m.start, b"gen0")
    child = sp.fork_copy("child", cow=True)
    grand = child.fork_copy("grand", cow=True)
    grand.write(m.start, b"gen2")
    child.write(m.start, b"gen1")
    assert sp.read(m.start, 4) == b"gen0"
    assert child.read(m.start, 4) == b"gen1"
    assert grand.read(m.start, 4) == b"gen2"


def test_eager_fork_still_copies():
    sp, pm = make_space()
    m = sp.mmap(4096, region="data")
    before = pm.frames_in_use
    sp.fork_copy("child", cow=False)
    assert pm.frames_in_use == before + 1
