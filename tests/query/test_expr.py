"""Total-evaluation semantics: queries over heterogeneous trace
entries filter instead of crashing."""

import pytest

from repro.errors import QueryError
from repro.query import compile_predicate, parse


def ev(text, entry=None):
    return parse(text).evaluate(entry if entry is not None else {})


def test_missing_fields_are_none():
    assert ev("nope") is None
    assert ev("a.b.c", {"a": {"b": 1}}) is None
    assert ev("a.b", {"a": 3}) is None
    assert ev("has(nope)") is False
    assert ev("has(t)", {"t": 0}) is True


def test_field_digit_segments_index_dicts_and_lists():
    assert ev("busy.0", {"busy": {"0": 7.5}}) == 7.5
    assert ev("path.1", {"path": [10, 20]}) == 20
    assert ev("path.9", {"path": [10, 20]}) is None


def test_comparisons_against_missing_are_false_not_errors():
    for text in ("t > 5", "5 > t", "t <= 5", "t >= t"):
        assert ev(text) is False
    # Equality still works against the hole.
    assert ev("t == none") is True
    assert ev("t != none") is False


def test_incomparable_types_compare_false():
    assert ev("'a' < 1") is False
    assert ev("ev > 3", {"ev": "end"}) is False


def test_arithmetic_propagates_the_hole():
    assert ev("t + 1") is None
    assert ev("-t") is None
    assert ev("t * 2 > 10") is False
    assert ev("1 / 0") is None
    assert ev("1 % 0") is None
    assert ev("-'abc'") is None
    assert ev("'a' + 1") is None


def test_and_or_are_python_valued():
    assert ev("0 or 5") == 5
    assert ev("0 and 5") == 0
    assert ev("3 and 5") == 5
    assert ev("'' or 'x'") == "x"
    assert ev("not nope") is True


def test_short_circuit_skips_the_right_operand():
    # 1/0 evaluates to None (not an error), so prove short-circuit by
    # value: the left operand must come back untouched.
    assert ev("0 and (1 / 0)") == 0
    assert ev("7 or (1 / 0)") == 7


def test_scalar_builtins():
    assert ev("len('abc')") == 3
    assert ev("len(5)") is None
    assert ev("abs(0 - 3)") == 3
    assert ev("int('12')") == 12
    assert ev("int('x')") is None
    assert ev("float('2.5')") == 2.5
    assert ev("startswith(category, 'net.')",
              {"category": "net.ampi"}) is True
    assert ev("startswith(category, 'net.')", {"category": 7}) is False
    assert ev("startswith(nope, 'x')") is False


def test_aggregates_refuse_scalar_context():
    with pytest.raises(QueryError, match="aggregate"):
        ev("count()")
    with pytest.raises(QueryError, match="aggregate"):
        ev("sum(t) > 3", {"t": 1})


def test_predicates_are_total_over_garbage_entries():
    pred = compile_predicate(
        "t - sent > 1000 and startswith(category, 'net.') "
        "and busy.0 / bytes < 2")
    for entry in ({}, {"t": "str"}, {"category": 3}, {"busy": []},
                  {"t": 1, "sent": None}, {"bytes": 0, "busy": {"0": 1}}):
        assert pred(entry) is False
