"""``python -m repro.query`` and ``tools/query.py``: exit codes,
diagnostics, and byte-stable output."""

import json
import os
import subprocess
import sys

ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))


def _cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.query", *args],
        capture_output=True, text=True, env=env, cwd=ROOT)


def test_filter_exit_codes(chaos_trace_file, chaos_trace):
    hit = _cli("filter", chaos_trace_file, "ev == 'end'", "--count")
    assert hit.returncode == 0, hit.stderr
    assert int(hit.stdout) == \
        sum(1 for e in chaos_trace if e.get("ev") == "end")
    miss = _cli("filter", chaos_trace_file, "ev == 'no-such-event'")
    assert miss.returncode == 1
    assert miss.stdout == ""


def test_filter_json_lines_round_trip(chaos_trace_file, chaos_trace):
    proc = _cli("filter", chaos_trace_file, "ev == 'send'", "--json")
    assert proc.returncode == 0, proc.stderr
    got = [json.loads(line) for line in proc.stdout.splitlines()]
    want = [e for e in chaos_trace if e.get("ev") == "send"]
    assert got == want
    assert len(want) > 0


def test_syntax_error_is_exit_2_with_caret(chaos_trace_file):
    proc = _cli("filter", chaos_trace_file, "ev == ")
    assert proc.returncode == 2
    assert "^" in proc.stderr
    assert "Traceback" not in proc.stderr


def test_aggregate_cli_matches_module_api(chaos_trace_file, chaos_trace):
    from repro.query import aggregate_entries, canonical_json
    proc = _cli("aggregate", chaos_trace_file,
                "count(), sum(bytes) by ev", "--json")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == canonical_json(
        aggregate_entries(chaos_trace, "count(), sum(bytes) by ev"))


def test_timeline_cli_renders_and_serializes(chaos_trace_file):
    human = _cli("timeline", chaos_trace_file, "--windows", "4")
    assert human.returncode == 0, human.stderr
    assert "makespan" in human.stdout
    machine = _cli("timeline", chaos_trace_file, "--windows", "4", "--json")
    assert len(json.loads(machine.stdout)["windows"]) == 4


def test_missing_trace_and_bad_runspec_are_exit_2():
    assert _cli("filter", "no-such.trace", "ev").returncode == 2
    proc = _cli("bisect", "chaos:nope:seed=1", "chaos:stencil:seed=2")
    assert proc.returncode == 2
    assert "runspec" in proc.stderr


def test_bisect_cli_identical_and_divergent():
    same = _cli("bisect", "flows:ring:ranks=3:rounds=2",
                "flows:ring:ranks=3:rounds=2", "--json")
    assert same.returncode == 0, same.stderr
    assert json.loads(same.stdout)["diverged"] is False
    diff = _cli("bisect", "flows:spin:rounds=2", "flows:spin:rounds=3",
                "--json")
    assert diff.returncode == 1, diff.stderr
    result = json.loads(diff.stdout)
    assert result["diverged"] is True
    assert result["index"] >= 0
    assert result["a"] != result["b"]


def test_at_cli_output_is_byte_stable():
    args = ("at", "flows:stencil:form=thread", "@40")
    first = _cli(*args)
    assert first.returncode == 0, first.stderr
    assert _cli(*args).stdout == first.stdout
    compiled = _cli("at", "flows:stencil:form=compiled", "@40")
    assert compiled.stdout == first.stdout
    state = json.loads(first.stdout)
    assert state["kind"] == "flows"


def test_tools_wrapper_is_equivalent():
    proc = subprocess.run(
        [sys.executable, os.path.join(ROOT, "tools", "query.py"),
         "bisect", "flows:spin:rounds=2", "flows:spin:rounds=2"],
        capture_output=True, text=True, cwd=ROOT)
    assert proc.returncode == 0, proc.stderr
    assert "identical" in proc.stdout
