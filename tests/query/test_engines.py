"""Differential pins: filter/aggregate/timeline over the golden chaos
trace must agree exactly with hand-computed values."""

import pytest

from repro.errors import QueryError
from repro.query import (aggregate_entries, canonical_json,
                         filter_entries, timeline_entries, trace_makespan,
                         window_index)


def test_filter_matches_hand_loop(chaos_trace):
    got = filter_entries(chaos_trace, "ev == 'end' and not skipped")
    want = [e for e in chaos_trace
            if e.get("ev") == "end" and not e.get("skipped")]
    assert got == want
    assert len(got) > 0


def test_filter_startswith_matches_hand_loop(chaos_trace):
    got = filter_entries(chaos_trace, "startswith(category, 'net.')")
    want = [e for e in chaos_trace
            if isinstance(e.get("category"), str)
            and e["category"].startswith("net.")]
    assert got == want
    assert len(got) > 0


def test_filter_arithmetic_matches_hand_loop(chaos_trace):
    got = filter_entries(chaos_trace, "ev == 'send' and bytes / 1024 >= 1")
    want = [e for e in chaos_trace
            if e.get("ev") == "send" and e.get("bytes", 0) >= 1024]
    assert got == want


def test_aggregate_count_sum_by_ev_matches_hand(chaos_trace):
    result = aggregate_entries(chaos_trace, "count(), sum(bytes) by ev")
    assert result["entries"] == len(chaos_trace)
    want = {}
    for e in chaos_trace:
        key = e.get("ev")
        cnt, tot = want.get(key, (0, 0))
        b = e.get("bytes")
        numeric = isinstance(b, (int, float)) and not isinstance(b, bool)
        want[key] = (cnt + 1, tot + (b if numeric else 0))
    got = {row["group"]["ev"]: (row["aggregates"]["count()"],
                                row["aggregates"]["sum(bytes)"])
           for row in result["rows"]}
    assert got == want
    assert len(got) > 1


def test_aggregate_rows_come_out_key_sorted(chaos_trace):
    result = aggregate_entries(chaos_trace, "count() by ev, category")
    keys = [canonical_json([row["group"]["ev"], row["group"]["category"]])
            for row in result["rows"]]
    assert keys == sorted(keys)
    assert len(keys) == len(set(keys))


def test_aggregate_min_max_avg_match_hand(chaos_trace):
    ends = [e for e in chaos_trace if e.get("ev") == "end"]
    result = aggregate_entries(ends, "min(t), max(t), avg(t)")
    (row,) = result["rows"]
    ts = [e["t"] for e in ends]
    assert row["aggregates"]["min(t)"] == min(ts)
    assert row["aggregates"]["max(t)"] == max(ts)
    assert row["aggregates"]["avg(t)"] == pytest.approx(sum(ts) / len(ts))


def test_aggregate_count_with_predicate_argument(chaos_trace):
    result = aggregate_entries(chaos_trace, "count(ev == 'end')")
    (row,) = result["rows"]
    assert row["aggregates"]["count(ev == 'end')"] == \
        sum(1 for e in chaos_trace if e.get("ev") == "end")


def test_aggregate_empty_input_is_one_sane_row():
    result = aggregate_entries([], "count(), sum(bytes), avg(t)")
    assert result == {"entries": 0, "rows": [{
        "group": {},
        "aggregates": {"count()": 0, "sum(bytes)": 0, "avg(t)": None},
    }]}
    # With a by-clause an empty input has no groups, hence no rows.
    assert aggregate_entries([], "count() by ev")["rows"] == []


def test_timeline_conserves_counts_and_sums(chaos_trace):
    result = timeline_entries(chaos_trace, windows=6, value="bytes")
    assert result["makespan_ns"] == trace_makespan(chaos_trace)
    assert len(result["windows"]) == 6
    assert sum(w["count"] for w in result["windows"]) == len(chaos_trace)
    hand_bytes = sum(
        e["bytes"] for e in chaos_trace
        if isinstance(e.get("bytes"), (int, float))
        and not isinstance(e.get("bytes"), bool))
    assert sum(w["sum"] for w in result["windows"]) == \
        pytest.approx(hand_bytes)
    for i, w in enumerate(result["windows"]):
        width = result["makespan_ns"] / 6
        assert w["t0"] == pytest.approx(i * width)
        assert w["t1"] == pytest.approx((i + 1) * width)


def test_timeline_where_clause_matches_filter(chaos_trace):
    where = "ev == 'end' and not skipped"
    result = timeline_entries(chaos_trace, windows=4, where=where)
    assert sum(w["count"] for w in result["windows"]) == \
        len(filter_entries(chaos_trace, where))


def test_timeline_empty_and_invalid():
    assert timeline_entries([], windows=4) == \
        {"makespan_ns": 0.0, "windows": []}
    with pytest.raises(QueryError):
        timeline_entries([], windows=0)


def test_window_index_clamps_both_ends():
    assert window_index(-5.0, 10.0, 4) == 0
    assert window_index(0.0, 10.0, 4) == 0
    assert window_index(39.9, 10.0, 4) == 3
    assert window_index(40.0, 10.0, 4) == 3
    assert window_index(1e9, 10.0, 4) == 3
    assert window_index(5.0, 0.0, 4) == 0


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]}) == \
        canonical_json({"a": [2, {"c": 4, "d": 3}], "b": 1})
    assert " " not in canonical_json({"a": [1, 2]})
