"""Parser properties: parse -> unparse -> parse is a fixed point, and
every malformed input dies with a *positioned* syntax error, never a
bare traceback."""

import random

import pytest

from repro.errors import QuerySyntaxError
from repro.query import (AggregateSpec, Binary, Call, Field, Literal,
                         Unary, parse, parse_aggregate)

# -- round trip: fixed cases ------------------------------------------------

ROUNDTRIP = [
    "ev == 'end'",
    "ev == 'end' and not skipped",
    "startswith(category, 'net.') and has(sent)",
    "t - sent > 1000 or bytes >= 4096",
    "busy.0 + busy.1",
    "(a or b) and not (c or d)",
    "-t * 2 + 1",
    "1 + 2 * 3 - 4 / 5 % 6",
    "(ev == 'end') == (ev != 'begin')",
    "not not ok",
    "len(msg.path) == 3",
    "none == none",
    "true and false or none",
    "-(a + b)",
    "a - (b - c)",
    "a / (b * c)",
    "int(float('2.5')) + abs(-x)",
]


@pytest.mark.parametrize("text", ROUNDTRIP)
def test_unparse_is_a_fixed_point(text):
    tree = parse(text)
    canonical = tree.unparse()
    again = parse(canonical)
    assert again == tree
    assert again.unparse() == canonical


AGG_ROUNDTRIP = [
    "count()",
    "count(skipped)",
    "count(), sum(bytes) by category",
    "min(t), max(t), avg(t) by ev, category",
    "sum(busy.0) by flow",
]


@pytest.mark.parametrize("text", AGG_ROUNDTRIP)
def test_aggregate_unparse_is_a_fixed_point(text):
    spec = parse_aggregate(text)
    assert isinstance(spec, AggregateSpec)
    canonical = spec.unparse()
    again = parse_aggregate(canonical)
    assert again == spec
    assert again.unparse() == canonical


# -- round trip: randomized trees -------------------------------------------

_LITERALS = [0, 3, 42, 1000000, 0.5, 2.25, 100.0, True, False, None,
             "x", "net.ampi", "it's", "a\\b", ""]
_PATHS = [("ev",), ("t",), ("category",), ("busy", "0"),
          ("msg", "src"), ("clock", "1", "deep")]
_UNARY = ["not", "-"]
_BINARY = ["or", "and", "==", "!=", "<", "<=", ">", ">=",
           "+", "-", "*", "/", "%"]
_CALLS_1 = ["has", "len", "abs", "int", "float"]


def _tree(rng, depth):
    # Nonnegative literals only: ``Literal(-3)`` unparses to ``-3``,
    # which reparses as ``Unary('-', Literal(3))`` — a distinct (but
    # equivalent) tree, so the generator leaves negation to Unary.
    if depth <= 0 or rng.random() < 0.3:
        if rng.random() < 0.5:
            return Literal(rng.choice(_LITERALS))
        return Field(rng.choice(_PATHS))
    pick = rng.random()
    if pick < 0.2:
        return Unary(rng.choice(_UNARY), _tree(rng, depth - 1))
    if pick < 0.35:
        name = rng.choice(_CALLS_1 + ["startswith"])
        n_args = 2 if name == "startswith" else 1
        return Call(name, tuple(_tree(rng, depth - 1)
                                for _ in range(n_args)))
    return Binary(rng.choice(_BINARY), _tree(rng, depth - 1),
                  _tree(rng, depth - 1))


def test_random_trees_round_trip():
    rng = random.Random(0x51C2)
    for _ in range(300):
        tree = _tree(rng, rng.randint(1, 4))
        text = tree.unparse()
        assert parse(text) == tree, text
        assert parse(text).unparse() == text


# -- malformed input: positioned errors, never tracebacks -------------------

POSITIONED = [
    ("", 0),
    ("ev ==", 5),
    ("a == b == c", 7),
    ("1 +", 3),
    ("(a", 2),
    ("foo(x)", 0),
    ("len()", 0),
    ("startswith(a)", 0),
    ("ev = 1", 3),
    ("not", 3),
    ("by", 0),
    ("true.x", 4),
    ("count() by ev", 8),
]


@pytest.mark.parametrize("text,pos", POSITIONED)
def test_syntax_errors_carry_the_position(text, pos):
    with pytest.raises(QuerySyntaxError) as exc:
        parse(text)
    assert exc.value.pos == pos
    assert "column" in str(exc.value)


MALFORMED = [
    "'unterminated", "a.", "a..b", "a.'x'", "((a)", "a)",
    "1 2", "and a", "a and", "a or or b", "* 3", "a !", "!= b",
    "'bad \\q escape'", "len(a, b)", "has()", "a , b", "a.by",
    "none(x)", "a == ", "--", "%", ".a", "count(", "sum(t))",
]


@pytest.mark.parametrize("text", MALFORMED)
def test_malformed_input_never_leaks_a_traceback(text):
    with pytest.raises(QuerySyntaxError) as exc:
        parse(text)
    assert 0 <= exc.value.pos <= len(text)


AGG_MALFORMED = [
    ("ev", 0),                # bare field is not an aggregate call
    ("len(x)", 0),            # scalar builtin is not an aggregate
    ("count", 5),             # aggregate without parentheses
    ("count() by 1", 11),     # group key must be a field
    ("count() by", 10),
    ("count() sum()", 8),     # missing comma
    ("sum()", 0),             # sum needs an argument
]


@pytest.mark.parametrize("text,pos", AGG_MALFORMED)
def test_aggregate_spec_errors_carry_the_position(text, pos):
    with pytest.raises(QuerySyntaxError) as exc:
        parse_aggregate(text)
    assert exc.value.pos == pos


def test_caret_diagnostic_points_at_the_error():
    with pytest.raises(QuerySyntaxError) as exc:
        parse("ev == ")
    caret = exc.value.caret()
    line_text, line_caret = caret.splitlines()
    assert "ev == " in line_text
    assert line_caret.startswith(" " * len("ev == ") + "^")
