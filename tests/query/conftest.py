"""Shared fixtures: one golden chaos trace, re-executed once per
session and used both in-memory (differential engine pins) and as a
JSONL file (CLI tests)."""

import json

import pytest

from repro.query.replay import parse_runspec, run_recorded

GOLDEN_RUNSPEC = "chaos:stencil:seed=1"


@pytest.fixture(scope="session")
def chaos_trace():
    return run_recorded(parse_runspec(GOLDEN_RUNSPEC))


@pytest.fixture(scope="session")
def chaos_trace_file(chaos_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("query") / "chaos.trace"
    with open(path, "w") as f:
        for e in chaos_trace:
            f.write(json.dumps(e) + "\n")
    return str(path)
