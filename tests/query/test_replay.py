"""Time travel: runspecs, bisect, and replay-to-a-point state dumps.

The acceptance pins live here: bisect over two runs differing only in
seed must report the *true* first divergence (checked against a hand
scan of both traces), and ``at`` dumps must be byte-identical across
repeated invocations and across thread-form vs compiled-form runs."""

import pytest

from repro.errors import QueryError
from repro.query import (canonical_json, first_divergence, parse_runspec,
                         parse_timespec, replay_at, run_recorded)

from tests.query.conftest import GOLDEN_RUNSPEC


# -- runspecs ---------------------------------------------------------------


def test_runspec_parses_and_canonicalizes():
    spec = parse_runspec("chaos:stencil:seed=3")
    assert (spec.kind, spec.target, spec.params) == \
        ("chaos", "stencil", {"seed": 3})
    assert spec.canonical() == "chaos:stencil:seed=3"
    # Param order is not significant; the canonical form sorts it.
    a = parse_runspec("flows:ring:rounds=2:form=compiled:ranks=3")
    b = parse_runspec("flows:ring:form=compiled:ranks=3:rounds=2")
    assert a.canonical() == b.canonical() == \
        "flows:ring:form=compiled:ranks=3:rounds=2"


@pytest.mark.parametrize("bad", [
    "chaos",                        # no target
    "bench:stencil",                # unknown kind
    "chaos:quicksort",              # unknown target
    "chaos:stencil:ranks=4",        # flows-only param
    "chaos:stencil:seed",           # not key=value
    "flows:ring:form=threaded",     # unknown form
    "flows:nope",                   # unknown program
])
def test_bad_runspecs_are_query_errors(bad):
    with pytest.raises(QueryError, match="runspec|form"):
        parse_runspec(bad)


def test_timespec_parses_time_and_event_counts():
    assert parse_timespec("250000") == ("time", 250000.0)
    assert parse_timespec("1.5e6") == ("time", 1.5e6)
    assert parse_timespec("@120") == ("events", 120)
    for bad in ("@1.5", "@", "soon"):
        with pytest.raises(QueryError):
            parse_timespec(bad)


# -- bisect primitive: hand-constructed pins --------------------------------


def test_first_divergence_pinpoints_the_first_mismatch():
    a = [{"seq": 0}, {"seq": 1, "t": 5}, {"seq": 2}]
    b = [{"seq": 0}, {"seq": 1, "t": 9}, {"seq": 2}]
    assert first_divergence(a, b) == \
        {"index": 1, "a": {"seq": 1, "t": 5}, "b": {"seq": 1, "t": 9}}
    # Later mismatches must not mask the first one.
    c = [{"seq": 0}, {"seq": 1, "t": 9}, {"seq": 99}]
    assert first_divergence(a, c)["index"] == 1


def test_first_divergence_prefix_and_identical():
    a = [{"seq": 0}, {"seq": 1}]
    assert first_divergence(a, list(a)) is None
    assert first_divergence(a, a[:1]) == \
        {"index": 1, "a": {"seq": 1}, "b": None}
    assert first_divergence(a[:1], a) == \
        {"index": 1, "a": None, "b": {"seq": 1}}
    assert first_divergence([], []) is None


# -- replayed runs ----------------------------------------------------------


def test_flows_replay_is_deterministic_and_form_invariant():
    thread = parse_runspec("flows:stencil:form=thread")
    compiled = parse_runspec("flows:stencil:form=compiled")
    t1 = run_recorded(thread)
    t2 = run_recorded(thread)
    c1 = run_recorded(compiled)
    assert len(t1) > 0
    assert first_divergence(t1, t2) is None
    # The FlowWorld contract: thread and compiled forms of one program
    # produce byte-identical traces.
    assert canonical_json(t1) == canonical_json(c1)


def test_chaos_bisect_reports_the_true_first_divergence(chaos_trace):
    other = run_recorded(parse_runspec("chaos:stencil:seed=2"))
    d = first_divergence(chaos_trace, other)
    assert d is not None, "seeds 1 and 2 must diverge under chaos faults"
    hand = next(i for i, (x, y) in enumerate(zip(chaos_trace, other))
                if x != y)
    assert d["index"] == hand
    assert d["a"] == chaos_trace[hand]
    assert d["b"] == other[hand]
    assert chaos_trace[:hand] == other[:hand]


def test_chaos_same_seed_is_byte_identical(chaos_trace):
    again = run_recorded(parse_runspec(GOLDEN_RUNSPEC))
    assert canonical_json(again) == canonical_json(chaos_trace)


# -- at: state dumps --------------------------------------------------------


def test_flows_at_dump_is_byte_stable_across_forms():
    thread = parse_runspec("flows:stencil:form=thread")
    compiled = parse_runspec("flows:stencil:form=compiled")
    dump = canonical_json(replay_at(thread, "@40"))
    assert canonical_json(replay_at(thread, "@40")) == dump
    assert canonical_json(replay_at(compiled, "@40")) == dump
    state = replay_at(thread, "@40")
    assert state["kind"] == "flows"
    assert state["events_processed"] <= 40
    assert "form" not in dump


def test_flows_at_full_horizon_matches_a_completed_run():
    spec = parse_runspec("flows:ring:ranks=3:rounds=2")
    state = replay_at(spec, "@1000000")
    assert state["finished"] == 3
    assert state["pending_events"] == []
    assert all(ms == [] for ms in state["mailboxes"].values())


def test_chaos_at_dump_is_deterministic_and_coherent():
    spec = parse_runspec(GOLDEN_RUNSPEC)
    state = replay_at(spec, "250000")
    again = replay_at(spec, "250000")
    assert canonical_json(state) == canonical_json(again)
    assert state["kind"] == "chaos"
    assert state["runspec"] == GOLDEN_RUNSPEC
    assert state["at"] == {"kind": "time", "value": 250000.0}
    # Every network event inside the horizon was delivered; whatever is
    # still live is exactly the traffic crossing it.
    assert state["time_ns"] <= 250000.0
    for ev in state["in_flight"]:
        assert ev["t"] > 250000.0
    # The dump is structurally coherent: placements cover all ranks and
    # agree with the per-PE resident lists.
    placement = state["rank_placement"]
    assert len(placement) == state["num_ranks"]
    for pe, row in state["per_pe"].items():
        assert row["resident_ranks"] == \
            sorted(int(r) for r, p in placement.items() if str(p) == pe)


def test_chaos_at_event_bound_caps_network_events():
    spec = parse_runspec(GOLDEN_RUNSPEC)
    state = replay_at(spec, "@10")
    assert state["net_events_processed"] <= 10
    assert state["finished_ranks"] < state["num_ranks"]
