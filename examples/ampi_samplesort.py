#!/usr/bin/env python3
"""Parallel sample sort over AMPI: a full MPI mini-application.

Sorts one million integers across 16 virtual ranks on 4 simulated
processors, exercising most of the AMPI API on real data:

1. every rank sorts its local chunk and contributes samples
   (``allgather``);
2. rank 0 selects splitters and broadcasts them (``bcast``);
3. ranks partition their data and exchange buckets (``alltoall`` with
   NumPy payloads — bandwidth is charged for every element);
4. each rank merges its bucket locally and the result is validated
   against NumPy's own sort.

Because ranks are migratable threads, the same program then re-runs with a
skewed input distribution plus an ``MPI_Migrate`` point, showing load
balancing fixing the bucket imbalance that skewed data creates.

Run:  python examples/ampi_samplesort.py
"""

import numpy as np

from repro.ampi import AmpiRuntime
from repro.balance import GreedyLB, NullLB

N = 1_000_000
RANKS = 16
PES = 4


def make_input(skewed, seed=2006):
    rng = np.random.default_rng(seed)
    if skewed:
        # Zipf-ish pile-up at low values: buckets become very unequal.
        data = (rng.zipf(1.5, size=N) % 100_000).astype(np.int64)
    else:
        data = rng.integers(0, 100_000, size=N, dtype=np.int64)
    return np.array_split(data, RANKS)


def sample_sort_main(chunks, results, do_migrate):
    def main(mpi):
        local = np.sort(chunks[mpi.rank])
        # 1. regular samples: interior quantiles of the sorted chunk.
        pos = np.linspace(0, len(local) - 1, mpi.size + 2).astype(int)[1:-1]
        samples = local[pos].tolist()
        all_samples = yield from mpi.allgather(samples)
        # 2. rank 0 picks splitters.
        splitters = None
        if mpi.rank == 0:
            flat = np.sort(np.concatenate([np.asarray(s)
                                           for s in all_samples]))
            idx = np.linspace(0, len(flat) - 1, mpi.size + 1).astype(int)
            splitters = flat[idx][1:-1]
        splitters = yield from mpi.bcast(splitters, root=0)
        # 3. partition and exchange.
        bounds = np.searchsorted(local, splitters)
        buckets = np.split(local, bounds)
        incoming = yield from mpi.alltoall(buckets)
        # 4. merge my bucket; charge for the merge work.
        mine = np.sort(np.concatenate(incoming))
        mpi.charge(25.0 * len(mine))         # ns per element merged
        if do_migrate:
            yield from mpi.migrate()
            mpi.charge(25.0 * len(mine))     # the post-LB half of the work
        results[mpi.rank] = mine

    return main


def run(skewed, strategy, label):
    chunks = make_input(skewed)
    results = {}
    rt = AmpiRuntime(PES, RANKS, sample_sort_main(chunks, results,
                                                  do_migrate=skewed),
                     strategy=strategy, slot_bytes=256 * 1024,
                     stack_bytes=8 * 1024)
    rt.run()
    merged = np.concatenate([results[r] for r in range(RANKS)])
    expected = np.sort(np.concatenate(chunks))
    assert np.array_equal(merged, expected), "sort is wrong!"
    sizes = [len(results[r]) for r in range(RANKS)]
    print(f"  {label}: sorted {N:,} ints in {rt.makespan_ns / 1e6:.2f} ms "
          f"virtual; bucket sizes {min(sizes):,}..{max(sizes):,}"
          + (f"; {rt.migrator.migrations_completed} migrations"
             if rt.migrator.migrations_completed else ""))
    return rt.makespan_ns


def main():
    print(f"Sample sort: {N:,} integers, {RANKS} ranks on {PES} processors")
    print("\nUniform input (balanced buckets):")
    run(skewed=False, strategy=NullLB(), label="uniform")

    print("\nSkewed (Zipf) input — buckets become unequal, so the merge "
          "load is unbalanced:")
    t_no = run(skewed=True, strategy=NullLB(), label="skewed, no LB ")
    t_lb = run(skewed=True, strategy=GreedyLB(), label="skewed, GreedyLB")
    print(f"\n  thread migration recovers {t_no / t_lb:.2f}x on the skewed "
          f"run — the application code never mentions processors.")


if __name__ == "__main__":
    main()
