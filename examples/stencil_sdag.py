#!/usr/bin/env python3
"""The paper's Figure 1 program: a 5-point stencil in Structured Dagger.

Each chare owns a strip of a 2-D grid.  One iteration of its life cycle:

    atomic  { send my boundary strips to both neighbors }
    overlap { when strip_from_left(...)   -> copy it
              when strip_from_right(...)  -> copy it }      # any order!
    atomic  { relax the interior }

The computation is a real Jacobi iteration over NumPy arrays, and the
result is checked against the sequential reference — and then the same
computation is run again through AMPI threads (the blocking-receive style)
to show both flow-of-control styles the paper compares.

Run:  python examples/stencil_sdag.py
"""

import numpy as np

from repro.charm import Chare, CharmRuntime, Overlap, When
from repro.sim import Cluster
from repro.workloads.stencil import (StencilConfig, initial_grid,
                                     jacobi_reference, run_ampi_stencil)

CFG = StencilConfig(rows=48, cols=24, iterations=8)
WORKERS = 6
collected = {}


class StencilStrip(Chare):
    """One strip of the grid as an event-driven object."""

    def lifecycle(self):
        n = self.thisProxy.n
        rows_per = CFG.rows // n
        lo = self.thisIndex * rows_per
        hi = CFG.rows if self.thisIndex == n - 1 else lo + rows_per
        strip = initial_grid(CFG)[lo:hi].copy()
        up, down = self.thisIndex - 1, self.thisIndex + 1

        for it in range(CFG.iterations):
            # atomic { sendStripToLeftAndRight(); }
            if up >= 0:
                self.thisProxy[up].send("strip_from_right", strip[0].copy(),
                                        size_bytes=strip[0].nbytes)
            if down < n:
                self.thisProxy[down].send("strip_from_left", strip[-1].copy(),
                                          size_bytes=strip[-1].nbytes)
            # overlap { when strip_from_left ... when strip_from_right ... }
            if up >= 0 and down < n:
                above, below = yield Overlap(When("strip_from_left"),
                                             When("strip_from_right"))
            elif up >= 0:
                above, below = (yield When("strip_from_left")), None
            else:
                above, below = None, (yield When("strip_from_right"))
            # atomic { doWork(); }
            parts = [p for p in (above[None, :] if above is not None else None,
                                 strip,
                                 below[None, :] if below is not None else None)
                     if p is not None]
            ext = np.vstack(parts)
            off = 1 if above is not None else 0
            nxt = strip.copy()
            for i in range(strip.shape[0]):
                gi = lo + i
                if gi in (0, CFG.rows - 1):
                    continue
                e = i + off
                nxt[i, 1:-1] = 0.25 * (ext[e - 1, 1:-1] + ext[e + 1, 1:-1]
                                       + ext[e, :-2] + ext[e, 2:])
            strip = nxt
            self.charge(CFG.ns_per_point * strip.size)
        # Teaching shortcut: the example harvests results into a host-side
        # dict to compare against the sequential reference; the chare never
        # migrates after writing it.
        collected[self.thisIndex] = strip  # migralint: disable=MIG002


def main():
    print(f"SDAG stencil: {CFG.rows}x{CFG.cols} grid, {WORKERS} chares, "
          f"{CFG.iterations} iterations")
    cluster = Cluster(3)
    runtime = CharmRuntime(cluster)
    array = runtime.create_array(StencilStrip, WORKERS)
    array.broadcast("lifecycle")
    cluster.run()

    result = np.vstack([collected[i] for i in range(WORKERS)])
    expected = jacobi_reference(initial_grid(CFG), CFG.iterations)
    err = np.abs(result - expected).max()
    print(f"  SDAG result vs sequential reference: max |err| = {err:.2e}")
    assert err < 1e-12
    print(f"  entry methods invoked: {runtime.entries_invoked}, "
          f"virtual makespan: {cluster.makespan / 1e6:.3f} ms")

    print("\nSame computation as AMPI threads (blocking receives):")
    rt, ampi_result = run_ampi_stencil(CFG, num_procs=3, num_ranks=WORKERS)
    err = np.abs(ampi_result - expected).max()
    print(f"  AMPI result vs reference: max |err| = {err:.2e}")
    assert err < 1e-12
    print(f"  virtual makespan: {rt.makespan_ns / 1e6:.3f} ms "
          f"(threads suspend inside recv instead of returning to a "
          f"scheduler — no code inversion needed)")


if __name__ == "__main__":
    main()
