#!/usr/bin/env python3
"""Optimistic parallel discrete-event simulation (mini-POSE).

The paper's Section 1 lists "parallel discrete event simulations, where
each simulation object can be treated as a separate flow of control" among
the applications needing many flows; POSE [39] is the group's engine, and
BigSim was first built on it.

This example runs a PHOLD-style workload — the standard PDES benchmark —
over the Time-Warp engine: 16 logical processes on 4 simulated processors
bounce timestamped jobs at deterministic pseudo-random delays and
destinations.  Network latency reorders arrivals, so posers speculate,
roll back on stragglers (restoring PUP snapshots), and cancel wrong sends
with antimessages — yet the result is *exactly* the sequential execution's,
which the script verifies.

Run:  python examples/pose_phold.py
"""

from repro.core.pup import pup_register
from repro.pose import PoseEngine, Poser
from repro.sim import Cluster

LPS = 16
PES = 4
INITIAL_JOBS = 8
HOPS_PER_JOB = 12


def prng(vt, lp, salt):
    """Deterministic hash-based pseudo-randomness (replay-safe: a rolled
    back and re-executed event makes identical choices)."""
    h = (int(vt * 1000) * 2654435761 + lp * 40503 + salt * 69621) & 0xFFFFFFFF
    return h / 0xFFFFFFFF


@pup_register
class PholdLP(Poser):
    """One PHOLD logical process."""

    def __init__(self):
        self.handled = []          # (vt, job) pairs, in processed order

    def pup(self, p):
        self.handled = p.list_int(self.handled)

    def on_job(self, data):
        job, hop, vt = data["job"], data["hop"], data["vt"]
        self.handled.append(job * 100 + hop)
        if hop >= HOPS_PER_JOB:
            return []
        me = int(self.poser_id[2:])
        dst = int(prng(vt, me, job) * LPS) % LPS
        delay = 0.5 + 2.0 * prng(vt, me, job + 7)
        return [(f"lp{dst}", "job",
                 {"job": job, "hop": hop + 1, "vt": vt + delay}, delay)]


def sequential_reference():
    """Re-run the same event semantics in strict timestamp order."""
    from repro.kernel import MinHeap
    logs = {i: [] for i in range(LPS)}
    heap = MinHeap()
    uid = 0
    for job in range(INITIAL_JOBS):
        heap.push((float(job + 1), uid,
                   job % LPS, {"job": job, "hop": 0,
                               "vt": float(job + 1)}))
        uid += 1
    while heap:
        vt, _, lp, data = heap.pop()
        logs[lp].append(data["job"] * 100 + data["hop"])
        if data["hop"] >= HOPS_PER_JOB:
            continue
        dst = int(prng(data["vt"], lp, data["job"]) * LPS) % LPS
        delay = 0.5 + 2.0 * prng(data["vt"], lp, data["job"] + 7)
        uid += 1
        heap.push((vt + delay, uid, dst,
                   {"job": data["job"], "hop": data["hop"] + 1,
                    "vt": data["vt"] + delay}))
    return logs


def main():
    cluster = Cluster(PES)
    engine = PoseEngine(cluster)
    for i in range(LPS):
        engine.register(f"lp{i}", PholdLP(), i % PES)
    for job in range(INITIAL_JOBS):
        engine.schedule(f"lp{job % LPS}", "job",
                        {"job": job, "hop": 0, "vt": float(job + 1)},
                        at=float(job + 1))
    stats = engine.run()

    total = INITIAL_JOBS * (HOPS_PER_JOB + 1)
    print(f"PHOLD: {LPS} LPs on {PES} processors, {INITIAL_JOBS} jobs x "
          f"{HOPS_PER_JOB + 1} hops = {total} committed events")
    print(f"  events processed : {stats.events_processed} "
          f"({stats.events_processed - total} speculative re-executions)")
    print(f"  rollbacks        : {stats.rollbacks} "
          f"({stats.events_rolled_back} events undone)")
    print(f"  antimessages     : {stats.antimessages}")
    print(f"  snapshot traffic : {engine.snapshot_bytes / 1024:.1f} KiB "
          f"(PUP, the same serializer migration uses)")

    reference = sequential_reference()
    # Committed per-LP logs: in-timestamp-order multiset equality.
    ok = all(sorted(engine.poser(f"lp{i}").handled) == sorted(reference[i])
             for i in range(LPS))
    print(f"  matches sequential-execution reference: {ok}")
    assert ok


if __name__ == "__main__":
    main()
