#!/usr/bin/env python3
"""The Figure 11 experiment: BigSim simulating an MD run on a huge machine.

Simulates a Blue Gene-like target machine (2,000 target processors by
default; set REPRO_FULL=1 for the paper's 200,000) running a cube-
decomposed molecular-dynamics timestep, with every target processor
represented by one migratable user-level thread.  Prints host simulation
time per MD step versus the number of simulating processors — the paper's
"excellent scalability" curve — plus the predicted target-machine time,
which must not depend on the host processor count.

Run:  python examples/bigsim_md.py
"""

import os
import time

from repro.bigsim import BigSimEngine, TargetMachine
from repro.workloads.md import MDConfig, MDWorkload


def main():
    full = os.environ.get("REPRO_FULL", "") == "1"
    dims = (50, 50, 80) if full else (10, 10, 20)
    cfg = MDConfig(dims=dims)
    workload = MDWorkload(cfg)
    print(f"Target machine: {cfg.num_cells} processors "
          f"({dims[0]}x{dims[1]}x{dims[2]} torus), MD cube decomposition")
    print(f"Total force work per step: "
          f"{workload.total_compute_ns() / 1e6:.1f} ms of target time\n")

    print(f"{'host procs':>10} | {'threads/proc':>12} | "
          f"{'host time/step (ms)':>19} | {'predicted target/step':>21}")
    print("-" * 72)
    prediction = None
    for p in (4, 8, 16, 32, 64):
        wall = time.time()
        engine = BigSimEngine(p, TargetMachine(dims=dims), workload, steps=2)
        res = engine.run()
        prediction = res.predicted_target_ns_per_step
        print(f"{p:>10} | {res.threads_per_host_proc:>12.0f} | "
              f"{res.host_ns_per_step / 1e6:>19.2f} | "
              f"{prediction / 1e6:>18.3f} ms"
              f"   [{time.time() - wall:.1f}s wall]")

    print("\nThe predicted target time is identical for every host size —")
    print("that invariance is what makes BigSim a *predictor*, and the")
    print("decreasing host time per step is Figure 11's scalability curve.")


if __name__ == "__main__":
    main()
