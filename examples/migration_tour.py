#!/usr/bin/env python3
"""A tour of the three thread-migration techniques (paper Section 3.4).

For each of stack-copying, isomalloc, and memory-aliasing threads this
example:

1. creates threads whose stacks contain *self-referential pointers*;
2. shows what one context switch costs under that technique (the Figure 9
   trade-off);
3. migrates a thread to another simulated processor and re-chases the
   pointers there;
4. reports the virtual-address and physical-memory footprint — the 32-bit
   scalability story that motivates memory aliasing.

Run:  python examples/migration_tour.py
"""

from repro.core import (CthScheduler, IsomallocArena, IsomallocStacks,
                        MemoryAliasStacks, StackCopyStacks, ThreadMigrator)
from repro.sim import Cluster

STACK = 64 * 1024


def build_world(technique):
    cluster = Cluster(2, platform="linux_x86")
    arena = IsomallocArena(cluster.platform.layout(), 2,
                           slot_bytes=256 * 1024)
    scheds = []
    for pe in range(2):
        space, prof = cluster[pe].space, cluster.platform
        if technique == "isomalloc":
            mgr = IsomallocStacks(space, prof, arena, pe, stack_bytes=STACK)
        elif technique == "stack_copy":
            mgr = StackCopyStacks(space, prof, stack_bytes=STACK)
        else:
            mgr = MemoryAliasStacks(space, prof, stack_bytes=STACK)
        scheds.append(CthScheduler(cluster[pe], mgr))
    return cluster, scheds, ThreadMigrator(cluster, scheds)


def body(th):
    """Store a pointer chain *inside the stack*: slot A points at slot B."""
    a = th.alloca(16)
    b = th.alloca(16)
    th.write_word(a, b)             # stack pointer into the stack itself
    th.write_word(b, 0xC0FFEE)
    yield "suspend"
    chased = th.read_word(th.read_word(a))
    pe = th.scheduler.processor.id
    print(f"      after migration (pe{pe}): *(*A) = {chased:#x} "
          f"{'OK' if chased == 0xC0FFEE else 'DANGLING!'}")


def main():
    for technique in ("stack_copy", "isomalloc", "memory_alias"):
        print(f"\n=== {technique} ===")
        cluster, scheds, migrator = build_world(technique)
        mgr = scheds[0].stack_manager
        t1 = scheds[0].create(body, name="t1")
        t2 = scheds[0].create(body, name="t2")
        scheds[0].run()

        # One switch cycle cost under this technique.
        cost = mgr.switch_in(t1.stack)
        cost += mgr.switch_out(t1.stack)
        print(f"   one switch cycle: {cost / 1000:.2f} us "
              f"(+{cluster.platform.uthread_switch_ns / 1000:.2f} us "
              f"register swap)")
        print(f"   concurrent active threads allowed: "
              f"{'yes' if mgr.concurrent_active else 'no (single stack address)'}")

        migrator.migrate(t1, 1)
        cluster.run()
        print(f"   migrated t1: {migrator.bytes_shipped} bytes over the wire")
        scheds[1].awaken(t1)
        scheds[1].run()
        scheds[0].awaken(t2)
        scheds[0].run()

        space0 = cluster[0].space
        print(f"   pe0 footprint: {space0.mapped_bytes // 1024} KB virtual, "
              f"{space0.resident_bytes // 1024} KB physical, "
              f"{space0.mmap_calls} mmap calls, "
              f"{space0.bytes_copied // 1024} KB copied")

    print("\nFigure 9 in one line: copy pays per byte, isomalloc pays "
          "nothing, aliasing pays one remap —\nand all three keep every "
          "pointer valid across the move.")


if __name__ == "__main__":
    main()
