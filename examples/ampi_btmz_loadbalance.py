#!/usr/bin/env python3
"""The Figure 12 experiment: BT-MZ under AMPI with thread migration.

Runs the BT-MZ-like multi-zone workload over each of the paper's
configurations twice — once without load balancing, once with GreedyLB
thread migration at each iteration boundary — and prints the comparison
the paper plots.

Run:  python examples/ampi_btmz_loadbalance.py
"""

from repro.balance import GreedyLB, NullLB, RefineLB
from repro.workloads.btmz import BTMZConfig, make_zones, run_btmz

CASES = [("A", 8, 4), ("A", 16, 8), ("B", 16, 8), ("B", 32, 8),
         ("B", 64, 8)]


def main():
    zones_a = make_zones("A")
    pts = [z.points for z in zones_a]
    print(f"BT-MZ class A: {len(zones_a)} zones, size ratio "
          f"max/min = {max(pts) / min(pts):.1f} "
          f"(the documented ~20x imbalance)\n")

    print(f"{'config':>10} | {'no LB (ms)':>11} | {'GreedyLB (ms)':>13} | "
          f"{'speedup':>7} | {'imbalance':>12} | migrations")
    print("-" * 75)
    for cls_name, nprocs, npes in CASES:
        cfg = BTMZConfig(cls_name, nprocs, npes, iterations=6)
        no_lb = run_btmz(cfg, NullLB())
        with_lb = run_btmz(cfg, GreedyLB())
        speedup = no_lb.makespan_ns / with_lb.makespan_ns
        print(f"{cfg.label:>10} | {no_lb.makespan_ns / 1e6:>11.1f} | "
              f"{with_lb.makespan_ns / 1e6:>13.1f} | {speedup:>7.2f} | "
              f"{with_lb.imbalance_before:>5.2f} -> {with_lb.imbalance_after:<4.2f} | "
              f"{with_lb.migrations}")

    print("\nPaper's observation: same-class/same-PE runs converge with LB,")
    print("vary dramatically without it.  Class B on 8 PEs:")
    b_cases = [c for c in CASES if c[0] == "B" and c[2] == 8]
    no_times, lb_times = [], []
    for cls_name, nprocs, npes in b_cases:
        cfg = BTMZConfig(cls_name, nprocs, npes, iterations=6)
        no_times.append(run_btmz(cfg, NullLB()).makespan_ns / 1e6)
        lb_times.append(run_btmz(cfg, GreedyLB()).makespan_ns / 1e6)
    print(f"  without LB: {['%.1f' % t for t in no_times]} ms "
          f"(spread {max(no_times) / min(no_times):.2f}x)")
    print(f"  with LB:    {['%.1f' % t for t in lb_times]} ms "
          f"(spread {max(lb_times) / min(lb_times):.2f}x)")

    print("\nStrategy comparison on B.32,8PE:")
    for strat in (NullLB(), RefineLB(), GreedyLB()):
        res = run_btmz(BTMZConfig("B", 32, 8, iterations=6), strat)
        print(f"  {strat.name:>9}: {res.makespan_ns / 1e6:8.1f} ms, "
              f"{res.migrations:3d} migrations")


if __name__ == "__main__":
    main()
