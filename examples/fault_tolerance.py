#!/usr/bin/env python3
"""Fault tolerance via migration (paper Section 3), chaos-tested.

Three demonstrations:

1. **Proactive evacuation** — "migration can allow all the work to be moved
   off a processor ... to vacate a node that is expected to fail": all
   threads are drained off processor 0 before its 'failure', then finish
   on the survivors.
2. **Coordinated checkpoint/recovery under injected failure** —
   "checkpointing is simply migration to disk": AMPI ranks hit a
   checkpoint barrier, their full images are written to a simulated disk
   (real serialized bytes, at ~100 MB/s with seeks), then a *scripted
   chaos fault* fail-stops processor 0 and its ranks are rebuilt from the
   images on the surviving processor with their heap state intact —
   runtime invariants checked at the injection point.
3. **Shrinking a failure to a minimal repro** — the chaos runner
   delta-debugs a noisy failing fault schedule down to the single fault
   that breaks a fragile (at-most-once-assuming) reduction.

Run:  python examples/fault_tolerance.py
"""

from repro.ampi import AmpiRuntime
from repro.chaos import (ChaosRunner, FaultEvent, FaultInjector,
                         FaultSchedule, FragileReduceWorkload,
                         wire_ampi_faults)
from repro.core import (Checkpointer, CthScheduler, IsomallocArena,
                        IsomallocStacks, ThreadMigrator)
from repro.sim import Cluster


def build_cluster(n):
    cluster = Cluster(n)
    arena = IsomallocArena(cluster.platform.layout(), n,
                           slot_bytes=256 * 1024)
    scheds = [CthScheduler(cluster[pe],
                           IsomallocStacks(cluster[pe].space,
                                           cluster.platform, arena, pe,
                                           stack_bytes=16 * 1024))
              for pe in range(n)]
    return cluster, scheds, ThreadMigrator(cluster, scheds)


def demo_evacuation():
    print("=== Proactive evacuation (vacate a failing node) ===")
    cluster, scheds, migrator = build_cluster(3)
    ck = Checkpointer(migrator)
    finished = []

    def worker(th, i):
        data = th.malloc(64)
        th.write_word(data, i * 11)
        yield "suspend"
        finished.append((i, th.read_word(data), th.scheduler.processor.id))

    threads = [scheds[0].create(lambda th, i=i: worker(th, i))
               for i in range(8)]
    scheds[0].run()
    print(f"  8 threads on pe0; pe0 'is expected to fail' — evacuating...")
    moved = ck.evacuate(0)
    cluster.run()
    print(f"  moved {moved} threads, "
          f"{migrator.bytes_shipped} bytes over the wire; pe0 now holds "
          f"{cluster[0].space.resident_bytes} resident bytes")
    for t in threads:
        t.scheduler.awaken(t)
    for s in scheds[1:]:
        s.run()
    pes = sorted({pe for _, _, pe in finished})
    ok = all(v == i * 11 for i, v, _ in finished)
    print(f"  all 8 finished on processors {pes}, data intact: {ok}\n")


def demo_checkpoint_recovery():
    print("=== Coordinated checkpoint + chaos-injected failure recovery ===")
    results = {}

    def main(mpi):
        th = mpi.thread
        acc = th.malloc(8)
        th.write_word(acc, (mpi.rank + 1) * 100)
        yield from mpi.checkpoint()            # <- images hit the disk here
        total = yield from mpi.allreduce(th.read_word(acc), op="sum")
        results[mpi.rank] = (total, mpi.my_pe)

    rt = AmpiRuntime(2, 6, main)
    # The failure is a *scripted chaos fault*: at the first checkpoint
    # barrier, crash the first live processor (fraction 0.0 -> pe0).  The
    # harness removes pe0's ranks, marks it failed, and recovers every
    # lost rank from its fresh on-disk image on the survivors — checking
    # runtime invariants at the injection point.
    schedule = FaultSchedule.scripted(
        [FaultEvent("barrier", 0, "crash", 0.0)])
    injector = FaultInjector(schedule)
    wire_ampi_faults(rt, injector)
    rt.run()
    print(f"  checkpoint written ({rt.checkpointer.bytes_written} bytes on "
          f"disk); chaos schedule injected: {schedule.script()}")
    print(f"  pe0 failed at the barrier; {rt.checkpointer.restores_done} "
          f"ranks restored from disk onto pe1 "
          f"(injector: {injector.summary()})")
    expected = sum((r + 1) * 100 for r in range(6))
    print(f"  computation completed: allreduce = "
          f"{results[0][0]} (expected {expected})")
    print(f"  final rank placement: "
          f"{[results[r][1] for r in range(6)]} — everyone on pe1's side "
          f"of the failure\n")


def demo_shrinker():
    print("=== Shrinking a chaos failure to a minimal repro ===")
    # A reduction that wrongly assumes at-most-once delivery, under a
    # noisy schedule: one duplicated message plus assorted benign faults.
    runner = ChaosRunner(FragileReduceWorkload())
    noisy = [FaultEvent("send", 0, "dup", 100.0),
             FaultEvent("send", 1, "delay", 9_000.0),
             FaultEvent("send", 2, "reorder"),
             FaultEvent("migrate", 0, "abort")]
    result = runner.replay(noisy)
    print(f"  noisy schedule: {len(noisy)} faults -> outcome "
          f"{result.outcome!r} ({result.detail})")
    minimal = runner.shrink(noisy)
    print(f"  ddmin shrink: {len(noisy)} faults -> {len(minimal)}; the "
          f"culprit is {minimal[0]!r}")
    replay = runner.replay(minimal)
    print(f"  minimal schedule still fails ({replay.outcome}) and replays "
          f"byte-identically: fingerprint {replay.fingerprint()[:16]}...")
    print(f"  repro_script() renders it as a runnable bug report")


if __name__ == "__main__":
    demo_evacuation()
    demo_checkpoint_recovery()
    demo_shrinker()
