#!/usr/bin/env python3
"""Fault tolerance via migration (paper Section 3).

Two demonstrations:

1. **Proactive evacuation** — "migration can allow all the work to be moved
   off a processor ... to vacate a node that is expected to fail": all
   threads are drained off processor 0 before its 'failure', then finish
   on the survivors.
2. **Coordinated checkpoint/recovery** — "checkpointing is simply migration
   to disk": AMPI ranks hit a checkpoint barrier, their full images are
   written to a simulated disk (real serialized bytes, at ~100 MB/s with
   seeks), processor 0 then fails, and its ranks are rebuilt from the
   images on the surviving processor with their heap state intact.

Run:  python examples/fault_tolerance.py
"""

from repro.ampi import AmpiRuntime
from repro.core import (Checkpointer, CthScheduler, IsomallocArena,
                        IsomallocStacks, ThreadMigrator)
from repro.sim import Cluster


def build_cluster(n):
    cluster = Cluster(n)
    arena = IsomallocArena(cluster.platform.layout(), n,
                           slot_bytes=256 * 1024)
    scheds = [CthScheduler(cluster[pe],
                           IsomallocStacks(cluster[pe].space,
                                           cluster.platform, arena, pe,
                                           stack_bytes=16 * 1024))
              for pe in range(n)]
    return cluster, scheds, ThreadMigrator(cluster, scheds)


def demo_evacuation():
    print("=== Proactive evacuation (vacate a failing node) ===")
    cluster, scheds, migrator = build_cluster(3)
    ck = Checkpointer(migrator)
    finished = []

    def worker(th, i):
        data = th.malloc(64)
        th.write_word(data, i * 11)
        yield "suspend"
        finished.append((i, th.read_word(data), th.scheduler.processor.id))

    threads = [scheds[0].create(lambda th, i=i: worker(th, i))
               for i in range(8)]
    scheds[0].run()
    print(f"  8 threads on pe0; pe0 'is expected to fail' — evacuating...")
    moved = ck.evacuate(0)
    cluster.run()
    print(f"  moved {moved} threads, "
          f"{migrator.bytes_shipped} bytes over the wire; pe0 now holds "
          f"{cluster[0].space.resident_bytes} resident bytes")
    for t in threads:
        t.scheduler.awaken(t)
    for s in scheds[1:]:
        s.run()
    pes = sorted({pe for _, _, pe in finished})
    ok = all(v == i * 11 for i, v, _ in finished)
    print(f"  all 8 finished on processors {pes}, data intact: {ok}\n")


def demo_checkpoint_recovery():
    print("=== Coordinated checkpoint + failure recovery ===")
    results = {}

    def main(mpi):
        th = mpi.thread
        acc = th.malloc(8)
        th.write_word(acc, (mpi.rank + 1) * 100)
        yield from mpi.checkpoint()            # <- images hit the disk here
        total = yield from mpi.allreduce(th.read_word(acc), op="sum")
        results[mpi.rank] = (total, mpi.my_pe)

    rt = AmpiRuntime(2, 6, main)

    def inject_failure():
        lost = [r for r in range(6) if rt.rank_pe(r) == 0]
        print(f"  checkpoint written ({rt.checkpointer.bytes_written} bytes "
              f"on disk); processor 0 FAILS, losing ranks {lost}")
        sched = rt.schedulers[0]
        for rank in lost:
            thread = rt.rank_thread[rank]
            sched.remove(thread)
            sched.stack_manager.evacuate(thread.stack)
        for rank in lost:
            rt.recover_rank(rank, dst_pe=1)
        print(f"  ranks {lost} restored from disk onto processor 1")
        rt.on_checkpoint = None

    rt.on_checkpoint = inject_failure
    rt.run()
    expected = sum((r + 1) * 100 for r in range(6))
    print(f"  computation completed: allreduce = "
          f"{results[0][0]} (expected {expected})")
    print(f"  final rank placement: "
          f"{[results[r][1] for r in range(6)]} — everyone on pe1's side "
          f"of the failure")


if __name__ == "__main__":
    demo_evacuation()
    demo_checkpoint_recovery()
