#!/usr/bin/env python3
"""BigSim two-phase mode: emulate once, predict many machines.

The real BigSim writes per-target-processor event logs during emulation and
then replays them under candidate machine parameters — that is how one run
of the application answers "what if the network were faster?" or "what if
the CPUs were 2x?" for a machine that does not exist yet.

This example emulates one MD run over a 512-processor target torus,
records the trace, verifies the replay reproduces the emulation's
prediction exactly, and then sweeps interconnect and CPU designs.

Run:  python examples/bigsim_whatif.py
"""

from repro.bigsim import BigSimEngine, TargetMachine, replay
from repro.workloads.md import MDConfig, MDWorkload

DIMS = (8, 8, 8)


def main():
    wl = MDWorkload(MDConfig(dims=DIMS))
    base = TargetMachine(dims=DIMS)
    print(f"Emulating {base.num_procs} target processors "
          f"(one user-level thread each) on 8 host processors...")
    engine = BigSimEngine(8, base, wl, steps=3, record_trace=True)
    res = engine.run()
    print(f"  emulation predicted {res.predicted_target_ns_per_step / 1e3:.1f} "
          f"us per MD step; trace has {len(engine.trace.events)} blocks")

    check = replay(engine.trace, base)
    print(f"  trace replay, same machine: "
          f"{check / 1e3:.1f} us per step "
          f"({'exact match' if abs(check - res.predicted_target_ns_per_step) < 1e-6 else 'MISMATCH'})\n")

    print("What-if sweep (no re-emulation — pure trace replay):")
    print(f"{'candidate machine':>42} | us/step")
    print("-" * 56)
    candidates = [
        ("baseline torus (3 us, 175 MB/s)", base, 1.0),
        ("cut latency to 0.5 us", TargetMachine(
            DIMS, network_latency_ns=500,
            network_bytes_per_ns=base.network_bytes_per_ns), 1.0),
        ("4x link bandwidth", TargetMachine(
            DIMS, network_latency_ns=base.network_latency_ns,
            network_bytes_per_ns=4 * base.network_bytes_per_ns), 1.0),
        ("2x faster CPUs", base, 2.0),
        ("2x CPUs AND 4x bandwidth", TargetMachine(
            DIMS, network_latency_ns=base.network_latency_ns,
            network_bytes_per_ns=4 * base.network_bytes_per_ns), 2.0),
    ]
    for label, machine, cpu in candidates:
        t = replay(engine.trace, machine, cpu_scale=cpu)
        print(f"{label:>42} | {t / 1e3:8.1f}")
    print("\nCompute and network improvements compose sub-linearly — the")
    print("dependency graph in the trace is what captures that.")


if __name__ == "__main__":
    main()
