#!/usr/bin/env python3
"""Network-server concurrency: the paper's intro use case, three ways.

"Web and other network servers, where communication with each client can be
handled by a separate flow of control" (Section 1).  Each of 32 clients
needs: read request (1 ms of blocking I/O), compute a response (0.2 ms),
write response (0.5 ms of blocking I/O).

Three servers handle the same workload on one simulated processor:

* **threads, naive blocking** — every blocking call stalls the whole
  process (Section 2.3's disadvantage);
* **threads + intercepting runtime** — blocking calls are replaced with
  non-blocking ones and other threads run meanwhile (the Pth-style layer);
* **event-driven objects** — the same logic inverted into callbacks
  (no stacks at all, but the handler is split across methods).

Run:  python examples/server_concurrency.py
"""

from repro.charm import Chare, CharmRuntime, When
from repro.core import CthScheduler, IsomallocArena, IsomallocStacks
from repro.sim import Cluster

CLIENTS = 32
READ_NS = 1_000_000.0
COMPUTE_NS = 200_000.0
WRITE_NS = 500_000.0


def thread_server(io_mode):
    cluster = Cluster(1)
    arena = IsomallocArena(cluster.platform.layout(), 1,
                           slot_bytes=64 * 1024)
    sched = CthScheduler(
        cluster[0],
        IsomallocStacks(cluster[0].space, cluster.platform, arena, 0,
                        stack_bytes=8 * 1024),
        io_mode=io_mode)
    served = []

    def handle_client(th, cid):
        """The whole client conversation reads top-to-bottom."""
        yield ("io", READ_NS)        # blocking read
        th.charge(COMPUTE_NS)        # compute response
        yield ("io", WRITE_NS)       # blocking write
        served.append(cid)

    for cid in range(CLIENTS):
        sched.create(lambda th, cid=cid: handle_client(th, cid))
    # Drain: scheduler rounds interleaved with IO-completion timers.
    while len(served) < CLIENTS:
        progressed = sched.run() > 0
        progressed |= cluster.run() > 0
        assert progressed, "server stalled"
    return cluster[0].now, len(served)


class ClientHandler(Chare):
    """Event-driven version: the conversation is split across events."""

    done = []

    def start(self):
        # Post the read; control RETURNS to the scheduler here, and the
        # continuation lives in the next entry method — the inversion the
        # paper contrasts with threads.
        self.runtime.cluster.after(self.my_pe, READ_NS,
                                   self.thisProxy[self.thisIndex].send,
                                   "read_done")

    def read_done(self):
        self.charge(COMPUTE_NS)
        self.runtime.cluster.after(self.my_pe, WRITE_NS,
                                   self.thisProxy[self.thisIndex].send,
                                   "write_done")

    def write_done(self):
        ClientHandler.done.append(self.thisIndex)


def event_server():
    ClientHandler.done = []
    cluster = Cluster(1)
    runtime = CharmRuntime(cluster)
    handlers = runtime.create_array(ClientHandler, CLIENTS)
    handlers.broadcast("start")
    cluster.run()
    return cluster[0].now, len(ClientHandler.done)


def main():
    t_naive, n1 = thread_server("naive")
    t_smart, n2 = thread_server("intercept")
    t_event, n3 = event_server()
    assert n1 == n2 == n3 == CLIENTS

    ideal = READ_NS + WRITE_NS + CLIENTS * COMPUTE_NS
    print(f"{CLIENTS} clients, each: {READ_NS/1e6:.1f} ms read + "
          f"{COMPUTE_NS/1e6:.1f} ms compute + {WRITE_NS/1e6:.1f} ms write\n")
    print(f"{'server':>28} | {'total time':>12} | notes")
    print("-" * 75)
    print(f"{'threads, naive blocking':>28} | {t_naive/1e6:>9.2f} ms | "
          f"every call stalls the whole process")
    print(f"{'threads + interception':>28} | {t_smart/1e6:>9.2f} ms | "
          f"I/O overlapped; code still reads top-to-bottom")
    print(f"{'event-driven objects':>28} | {t_event/1e6:>9.2f} ms | "
          f"same overlap; logic split across 3 entry methods")
    print(f"{'(I/O-bound lower bound)':>28} | {ideal/1e6:>9.2f} ms |")
    print(f"\nInterception wins {t_naive/t_smart:.1f}x over naive blocking — "
          f"and matches the\nevent-driven server while keeping straight-line "
          f"control flow (Section 2.4's trade-off).")


if __name__ == "__main__":
    main()
