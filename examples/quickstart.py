#!/usr/bin/env python3
"""Quickstart: migratable user-level threads in 60 lines.

Creates a two-processor simulated cluster, runs a few isomalloc-backed
user-level threads on processor 0, builds a pointer-linked structure in
migratable heap memory, migrates one thread to processor 1 mid-run, and
shows that every pointer is still valid afterwards — the paper's core
guarantee.

Run:  python examples/quickstart.py
"""

from repro.core import (CthScheduler, IsomallocArena, IsomallocStacks,
                        ThreadMigrator)
from repro.sim import Cluster


def main():
    # A 2-processor simulated cluster (x86 Linux profile) with the
    # cluster-wide isomalloc partition agreed "at startup".
    cluster = Cluster(2, platform="linux_x86")
    arena = IsomallocArena(cluster.platform.layout(), num_pes=2)
    schedulers = [
        CthScheduler(cluster[pe],
                     IsomallocStacks(cluster[pe].space, cluster.platform,
                                     arena, pe, stack_bytes=32 * 1024),
                     emulate_swap=True)
        for pe in range(2)
    ]
    migrator = ThreadMigrator(cluster, schedulers)

    def worker(th):
        """A thread body: build a linked list in migratable heap memory."""
        head = 0
        for value in (30, 20, 10):
            node = th.malloc(16)
            th.write_word(node, value)        # node.value
            th.write_word(node + 8, head)     # node.next
            head = node
        cell = th.alloca(8)                    # a stack slot pointing at heap
        th.write_word(cell, head)
        print(f"  [{th.name}] built list at {head:#x} on pe"
              f"{th.scheduler.processor.id}")
        yield "suspend"                        # wait here (CthSuspend)
        # After migration: chase the pointers on the new processor.
        values, cursor = [], th.read_word(cell)
        while cursor:
            values.append(th.read_word(cursor))
            cursor = th.read_word(cursor + 8)
        print(f"  [{th.name}] resumed on pe{th.scheduler.processor.id}; "
              f"list reads {values} — pointers intact, no rewriting")

    print("Creating threads on processor 0...")
    threads = [schedulers[0].create(worker, name=f"worker{i}")
               for i in range(3)]
    schedulers[0].run()

    print("Migrating worker1 to processor 1 "
          f"({migrator.bytes_shipped} bytes shipped so far)...")
    migrator.migrate(threads[1], dst_pe=1)
    cluster.run()
    print(f"  shipped {migrator.bytes_shipped} simulated bytes over the "
          f"network (stack + heap + metadata)")

    print("Resuming all threads...")
    for t in threads:
        t.scheduler.awaken(t)
    for sched in schedulers:
        sched.run()

    print(f"\nVirtual time: pe0={cluster[0].now:.0f}ns, "
          f"pe1={cluster[1].now:.0f}ns")
    print(f"Context switches: pe0={schedulers[0].context_switches}, "
          f"pe1={schedulers[1].context_switches}")


if __name__ == "__main__":
    main()
