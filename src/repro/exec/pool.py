"""Sweep backends: where cells actually run.

Two interchangeable backends share one contract — ``run(cells,
warmup_runners, notify, on_result=None) -> [CellResult]`` aligned with
the input order (``on_result(cell, result)`` fires the moment each
cell's result is final, so callers like the
:class:`~repro.exec.cache.ResultCache` can persist incrementally — a
killed sweep keeps every cell it finished):

* :class:`SerialBackend` executes cells in-process, in order.  It is the
  debugging reference: ``--jobs 1`` goes through it, and a parallel run
  must merge to byte-identical results.
* :class:`LocalPool` fans cells out over ``jobs`` worker processes.
  Each worker warms up (imports the sweep's runner modules) before its
  first cell; the parent dispatches exactly one cell per worker at a
  time, so when a worker *dies* (hard crash, not a Python exception) the
  parent knows precisely which cell it held, retries that cell once on a
  fresh worker, and only then marks it ``error`` — the chaos
  retry-once discipline applied to the harness itself.  ``Ctrl-C``
  tears the pool down gracefully (terminate, join, re-raise).

Python exceptions inside a runner are *not* retried: cells are
deterministic, so a raising cell would raise again; the worker catches
the exception and returns an ``error`` result with the full traceback.
Both backends take this exact path, which is what keeps serial and
parallel output byte-identical even for failing cells.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.exec.spec import Cell, CellResult, resolve_runner

__all__ = ["SerialBackend", "LocalPool", "make_backend", "run_cell",
           "register_backend", "backend_from_spec", "backend_names"]

#: notify callback: ``notify(event, payload_dict)``.
Notify = Callable[[str, dict], None]

#: per-result callback: ``on_result(cell, result)`` as each cell lands.
OnResult = Optional[Callable[[Cell, CellResult], None]]


def run_cell(cell: Cell) -> dict:
    """Execute one cell and reduce it to a plain result dict.

    This is the single execution path for both backends (the worker loop
    calls it in a child process, :class:`SerialBackend` in the parent),
    so a cell cannot behave differently under ``--jobs 1``.  A raising
    runner becomes ``status="error"`` with the traceback; the payload is
    always plain data, safe to ship over a queue.
    """
    # duration_s is host-side diagnostics about the run, not part of
    # the result value; cells themselves stay pure in (params, seed).
    # migralint: disable=DET001
    t0 = time.perf_counter()
    try:
        fn = resolve_runner(cell.runner)
        value = fn(dict(cell.params), cell.seed)
        return {"status": "ok", "value": value, "error": "",
                "duration_s": time.perf_counter() - t0}  # migralint: disable=DET001
    except Exception:  # noqa: BLE001 - containment is the whole point
        return {"status": "error", "value": None,
                "error": traceback.format_exc(),
                "duration_s": time.perf_counter() - t0}  # migralint: disable=DET001


class SerialBackend:
    """Run every cell in the calling process, in submission order."""

    jobs = 1

    def run(self, cells: Sequence[Cell], warmup_runners: Sequence[str],
            notify: Notify, on_result: OnResult = None) -> List[CellResult]:
        results: List[CellResult] = []
        for cell in cells:
            notify("cell.start", {"cell_id": cell.cell_id})
            raw = run_cell(cell)
            result = CellResult(cell_id=cell.cell_id, status=raw["status"],
                                value=raw["value"], error=raw["error"],
                                duration_s=raw["duration_s"])
            results.append(result)
            if on_result is not None:
                on_result(cell, result)
            notify("cell.done", {"cell_id": cell.cell_id,
                                 "status": result.status,
                                 "duration_s": result.duration_s,
                                 "attempts": result.attempts,
                                 "cached": False})
        return results


def _worker_main(token: int, task_q, result_q,
                 warmup_runners: Sequence[str]) -> None:
    """Worker loop: warm up, then run one cell per message until sentinel.

    Warmup imports every runner module the sweep uses so the first real
    cell does not pay import cost; a broken runner path is reported by
    the cell that names it, not the warmup.
    """
    for dotted in warmup_runners:
        try:
            resolve_runner(dotted)
        except Exception:  # noqa: BLE001 - surfaced per-cell later
            pass
    result_q.put(("ready", token, None, None))
    while True:
        item = task_q.get()
        if item is None:
            return
        idx, cell = item
        result_q.put(("done", token, idx, run_cell(cell)))


class _Worker:
    """Parent-side bookkeeping for one worker process."""

    def __init__(self, ctx, token: int, result_q,
                 warmup_runners: Sequence[str]):
        self.token = token
        self.task_q = ctx.SimpleQueue()
        self.proc = ctx.Process(
            target=_worker_main, name=f"exec-worker-{token}",
            args=(token, self.task_q, result_q, tuple(warmup_runners)),
            daemon=True)
        self.proc.start()
        self.busy: Optional[int] = None      # index of the in-flight cell

    def dispatch(self, idx: int, cell: Cell) -> None:
        assert self.busy is None
        self.busy = idx
        self.task_q.put((idx, cell))

    def stop(self) -> None:
        try:
            self.task_q.put(None)
        except (OSError, ValueError):  # pragma: no cover - late teardown
            pass


class LocalPool:
    """A ``multiprocessing`` fan-out backend with crash containment."""

    #: How long to wait on the result queue before polling worker health.
    _POLL_S = 0.1

    def __init__(self, jobs: Optional[int] = None,
                 start_method: Optional[str] = None):
        self.jobs = max(1, jobs if jobs is not None
                        else (multiprocessing.cpu_count() or 1))
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)

    def run(self, cells: Sequence[Cell], warmup_runners: Sequence[str],
            notify: Notify, on_result: OnResult = None) -> List[CellResult]:
        cells = list(cells)
        if not cells:
            return []
        result_q = self._ctx.Queue()
        todo: List[int] = list(range(len(cells)))       # not yet dispatched
        attempts: Dict[int, int] = {i: 0 for i in todo}
        results: Dict[int, CellResult] = {}
        workers: Dict[int, _Worker] = {}
        next_token = 0

        def spawn() -> _Worker:
            nonlocal next_token
            w = _Worker(self._ctx, next_token, result_q, warmup_runners)
            workers[w.token] = w
            next_token += 1
            return w

        def dispatch_idle() -> None:
            idle = sorted(t for t, w in workers.items() if w.busy is None)
            for token in idle:
                if not todo:
                    break
                idx = todo.pop(0)
                attempts[idx] += 1
                workers[token].dispatch(idx, cells[idx])
                notify("cell.start", {"cell_id": cells[idx].cell_id})

        try:
            for _ in range(min(self.jobs, len(cells))):
                spawn()
            dispatch_idle()
            while len(results) < len(cells):
                try:
                    kind, token, idx, raw = result_q.get(
                        timeout=self._POLL_S)
                except queue_mod.Empty:
                    self._handle_dead_workers(cells, workers, todo, attempts,
                                              results, notify, spawn,
                                              on_result)
                    dispatch_idle()
                    continue
                worker = workers.get(token)
                if worker is None:
                    continue                 # late message from a reaped worker
                if kind == "ready":
                    continue
                if kind == "done" and worker.busy == idx:
                    worker.busy = None
                    results[idx] = CellResult(
                        cell_id=cells[idx].cell_id, status=raw["status"],
                        value=raw["value"], error=raw["error"],
                        attempts=attempts[idx],
                        duration_s=raw["duration_s"])
                    if on_result is not None:
                        on_result(cells[idx], results[idx])
                    notify("cell.done", {"cell_id": cells[idx].cell_id,
                                         "status": raw["status"],
                                         "duration_s": raw["duration_s"],
                                         "attempts": attempts[idx],
                                         "cached": False})
                    dispatch_idle()
            return [results[i] for i in range(len(cells))]
        except KeyboardInterrupt:
            for w in workers.values():
                w.proc.terminate()
            raise
        finally:
            for w in workers.values():
                w.stop()
            # Shutdown grace period for worker processes — host
            # plumbing after every cell result is already in hand.
            # migralint: disable=DET001
            deadline = time.monotonic() + 2.0
            for w in workers.values():
                w.proc.join(max(0.0, deadline - time.monotonic()))  # migralint: disable=DET001
                if w.proc.is_alive():  # pragma: no cover - stuck worker
                    w.proc.terminate()
                    w.proc.join(1.0)
            result_q.cancel_join_thread()
            result_q.close()

    def _handle_dead_workers(self, cells, workers, todo, attempts, results,
                             notify, spawn, on_result: OnResult = None
                             ) -> None:
        """Contain hard crashes: retry the held cell once, then error."""
        for token in sorted(workers):
            w = workers[token]
            if w.proc.is_alive():
                continue
            idx = w.busy
            del workers[token]
            if idx is None:
                # Died idle (e.g. during warmup with nothing assigned).
                if todo:
                    spawn()
                continue
            cell = cells[idx]
            exitcode = w.proc.exitcode
            if attempts[idx] < 2:
                notify("cell.crash", {"cell_id": cell.cell_id,
                                      "exitcode": exitcode,
                                      "will_retry": True})
                todo.insert(0, idx)          # retry first, on a fresh worker
            else:
                notify("cell.crash", {"cell_id": cell.cell_id,
                                      "exitcode": exitcode,
                                      "will_retry": False})
                results[idx] = CellResult(
                    cell_id=cell.cell_id, status="error",
                    error=(f"worker process died twice running this cell "
                           f"(last exit code {exitcode}); no Python "
                           f"traceback — the crash killed the "
                           f"interpreter"),
                    attempts=attempts[idx])
                if on_result is not None:
                    on_result(cell, results[idx])
                notify("cell.done", {"cell_id": cell.cell_id,
                                     "status": "error", "duration_s": 0.0,
                                     "attempts": attempts[idx],
                                     "cached": False})
            if todo:
                spawn()


def make_backend(jobs: int):
    """``jobs`` → the right backend (1 = serial reference, N = pool)."""
    if jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {jobs}")
    return SerialBackend() if jobs == 1 else LocalPool(jobs=jobs)


def _make_serial(jobs: Optional[int]):
    return SerialBackend()


def _make_local(jobs: Optional[int]):
    # ``None`` keeps LocalPool's own default (one worker per CPU).
    return LocalPool(jobs=jobs)


#: The pluggable backend registry: name -> ``factory(jobs) -> backend``.
#: Populated once at import with the two in-tree backends; a multi-host
#: backend registers here without the service or CLI changing.
_BACKENDS: Dict[str, Callable] = {
    "serial": _make_serial,
    "local": _make_local,
}


def register_backend(name: str, factory: Callable) -> None:
    """Register ``factory(jobs) -> backend`` under ``name``.

    Factories must return objects honouring the ``run(cells,
    warmup_runners, notify, on_result=None)`` contract.  Re-registering
    a taken name is an error — silently shadowing ``serial`` would
    change what ``--jobs 1`` means.
    """
    if name in _BACKENDS:
        raise ReproError(f"backend {name!r} is already registered")
    _BACKENDS[name] = factory


def backend_names() -> List[str]:
    """The registered backend names, sorted (for CLI help/validation)."""
    return sorted(_BACKENDS)


def backend_from_spec(spec: str, jobs: Optional[int] = None):
    """Build a backend from a ``name`` or ``name:jobs`` spec string.

    ``"serial"`` → the in-process reference; ``"local:4"`` → a 4-worker
    :class:`LocalPool`; an explicit ``jobs`` argument wins over the
    suffix.  Unknown names list the registry in the error.
    """
    name, _, suffix = spec.partition(":")
    if suffix:
        try:
            jobs = int(suffix) if jobs is None else jobs
        except ValueError:
            raise ReproError(f"backend spec {spec!r}: jobs suffix must be "
                             f"an integer")
    factory = _BACKENDS.get(name)
    if factory is None:
        raise ReproError(f"unknown backend {name!r}; registered: "
                         f"{', '.join(backend_names())}")
    if jobs is not None and jobs < 1:
        raise ReproError(f"backend jobs must be >= 1, got {jobs}")
    return factory(jobs)
