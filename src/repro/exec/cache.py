"""Disk-backed result cache: a cell whose key hash has a result is skipped.

The cache keys on :meth:`Cell.cache_key` — a content hash of the runner
path, canonical params, and seed — so a cache hit means "this exact
computation already ran", independent of which process ran it or in what
order.  Only ``ok`` results are stored: errors and crashes always re-run,
mirroring the chaos retry discipline of never memoizing a failure.

The on-disk layout is **sharded**: entry ``abcdef…`` lives at
``<root>/ab/abcdef….json``, a two-level fan-out over the first two hex
characters of the key.  SHA-256 keys spread uniformly, so a cache with
millions of entries keeps every directory at ~1/256th of the population
and :meth:`ResultCache.stats` / shard listing never has to scan one
giant directory.  Flat caches from before the sharding (every entry
directly under ``<root>``) are migrated into shards on open, so old
sweep caches keep their hits.

Entries embed the cache key they were stored under and :meth:`get`
re-verifies it, so a file copied or renamed onto another key's path is
detected as poisoned (deleted, treated as a miss) instead of being
served as that key's result — the filename is an index, never the
authority.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from repro.exec.spec import Cell, CellResult

__all__ = ["ResultCache"]

#: Hex alphabet of the SHA-256 cache keys; shard names draw from it.
_HEX = set("0123456789abcdef")


def _is_flat_entry(name: str) -> bool:
    """Whether a filename is a pre-sharding flat entry (``<hex64>.json``)."""
    stem, ext = os.path.splitext(name)
    return ext == ".json" and len(stem) == 64 and set(stem) <= _HEX


class ResultCache:
    """A sharded directory tree of ``<ab>/<cache-key>.json`` cell results."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._migrate_flat_entries()

    # -- layout ---------------------------------------------------------

    def _shard_dir(self, key: str) -> str:
        return os.path.join(self.root, key[:2])

    def _path_for_key(self, key: str) -> str:
        return os.path.join(self._shard_dir(key), key + ".json")

    def _path(self, cell: Cell) -> str:
        return self._path_for_key(cell.cache_key())

    def _migrate_flat_entries(self) -> int:
        """Move pre-sharding flat entries into their shards.

        Migration is per-file ``os.replace`` — atomic on one filesystem —
        so a cache shared with a concurrently running sweep never shows
        a half-moved entry; at worst both processes race to move the
        same file and the loser's replace is a no-op re-replace.
        """
        moved = 0
        for name in os.listdir(self.root):
            if not _is_flat_entry(name):
                continue
            src = os.path.join(self.root, name)
            if not os.path.isfile(src):
                continue
            shard = os.path.join(self.root, name[:2])
            os.makedirs(shard, exist_ok=True)
            os.replace(src, os.path.join(shard, name))
            moved += 1
        return moved

    # -- the cache contract ---------------------------------------------

    def get(self, cell: Cell) -> Optional[CellResult]:
        """The cached result for ``cell``, or ``None`` on a miss.

        An unreadable/corrupt entry counts as a miss (the sweep re-runs
        the cell and overwrites it) rather than poisoning the sweep.  An
        entry whose *stored* cache key disagrees with the key it was
        found under — a file copied or renamed across keys — is deleted
        and counts as a miss: content decides, never the filename.
        """
        key = cell.cache_key()
        path = self._path_for_key(key)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        stored_key = data.get("cache_key")
        if stored_key is not None and stored_key != key:
            # Poisoned: this payload was written for a different key.
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - racing eviction
                pass
            return None
        if data.get("cell_id") != cell.cell_id or data.get("status") != "ok":
            return None
        result = CellResult.from_json(data)
        result.cached = True
        return result

    def put(self, cell: Cell, result: CellResult) -> None:
        """Store an ``ok`` result; failures are never cached."""
        if not result.ok:
            return
        key = cell.cache_key()
        shard = self._shard_dir(key)
        os.makedirs(shard, exist_ok=True)
        payload = result.to_json()
        payload["cache_key"] = key
        # Write-rename so a parallel reader never sees a torn entry; the
        # temp file lives in the destination shard so the rename stays a
        # same-directory atomic replace.
        fd, tmp = tempfile.mkstemp(dir=shard, suffix=".tmp")
        done = False
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, self._path_for_key(key))
            done = True
        finally:
            # Any failure — OSError from the filesystem *or* e.g. a
            # TypeError from json.dump on an unserializable payload —
            # must not leak an orphan ``*.tmp``.
            if not done and os.path.exists(tmp):
                os.unlink(tmp)

    def stats(self) -> Dict[str, int]:
        """Entry and shard counts, for the sweep summary line.

        Counting walks only the 2-hex shard directories, each holding
        ~1/256th of the entries, so the scan stays cheap as the cache
        grows.
        """
        entries = 0
        shards = 0
        for name in sorted(os.listdir(self.root)):
            sub = os.path.join(self.root, name)
            if len(name) == 2 and set(name) <= _HEX and os.path.isdir(sub):
                shards += 1
                entries += sum(1 for n in os.listdir(sub)
                               if n.endswith(".json"))
        return {"entries": entries, "shards": shards}
