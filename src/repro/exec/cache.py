"""Disk-backed result cache: a cell whose key hash has a result is skipped.

The cache keys on :meth:`Cell.cache_key` — a content hash of the runner
path, canonical params, and seed — so a cache hit means "this exact
computation already ran", independent of which process ran it or in what
order.  Only ``ok`` results are stored: errors and crashes always re-run,
mirroring the chaos retry discipline of never memoizing a failure.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, Optional

from repro.exec.spec import Cell, CellResult

__all__ = ["ResultCache"]


class ResultCache:
    """One directory of ``<cache-key>.json`` cell results."""

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, cell: Cell) -> str:
        return os.path.join(self.root, cell.cache_key() + ".json")

    def get(self, cell: Cell) -> Optional[CellResult]:
        """The cached result for ``cell``, or ``None`` on a miss.

        An unreadable/corrupt entry counts as a miss (the sweep re-runs
        the cell and overwrites it) rather than poisoning the sweep.
        """
        path = self._path(cell)
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return None
        if data.get("cell_id") != cell.cell_id or data.get("status") != "ok":
            return None
        result = CellResult.from_json(data)
        result.cached = True
        return result

    def put(self, cell: Cell, result: CellResult) -> None:
        """Store an ``ok`` result; failures are never cached."""
        if not result.ok:
            return
        path = self._path(cell)
        # Write-rename so a parallel reader never sees a torn entry.
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(result.to_json(), fh)
            os.replace(tmp, path)
        except OSError:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    def stats(self) -> Dict[str, int]:
        """Entry count, for the sweep summary line."""
        entries = [n for n in os.listdir(self.root) if n.endswith(".json")]
        return {"entries": len(entries)}
