"""Sweep specifications: what a parallel sweep runs, one cell at a time.

A *cell* is the unit of fan-out: one experiment configuration at one
seed, identified by a stable ``(experiment, config-hash, seed)`` id.
Cells are **plain data** — a dotted-path worker entry point plus a
JSON-able parameter dict — never live runtime objects, so a cell crosses
a process boundary without dragging kernel state with it and its id is
the same in every process that computes it (the property the
:class:`~repro.exec.cache.ResultCache` and the byte-identical
serial-vs-parallel merge both hang off).
"""

from __future__ import annotations

import hashlib
import importlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["Cell", "CellResult", "SweepSpec", "resolve_runner"]


def _canonical(params: Dict[str, Any]) -> str:
    """Canonical JSON for hashing: sorted keys, no whitespace drift."""
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as e:
        raise ReproError(
            f"cell params must be JSON-able plain data (no live runtime "
            f"objects): {e}")


def resolve_runner(dotted: str) -> Callable:
    """Import a worker entry point from its ``pkg.mod:function`` path.

    Entry points are addressed by name — not passed as callables — so a
    cell never pickles a closure or a bound method, and a freshly
    spawned worker resolves exactly the code the parent named.
    """
    if ":" not in dotted:
        raise ReproError(
            f"runner {dotted!r} must be a 'package.module:function' path")
    mod_name, fn_name = dotted.split(":", 1)
    fn = getattr(importlib.import_module(mod_name), fn_name, None)
    if not callable(fn):
        raise ReproError(f"runner {dotted!r} does not name a callable")
    return fn


@dataclass(frozen=True)
class Cell:
    """One independent sweep cell: an experiment at one configuration/seed.

    ``runner`` is the dotted path of the worker entry point
    (``fn(params, seed) -> JSON-able payload``); ``params`` must be
    plain data.  ``seed`` is ``None`` for unseeded experiments (e.g. a
    figure regeneration).
    """

    experiment: str
    runner: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None

    @property
    def config_hash(self) -> str:
        """Stable short hash of the cell's code + configuration."""
        blob = f"{self.runner}\n{_canonical(dict(self.params))}"
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    @property
    def cell_id(self) -> str:
        """The stable ``experiment/config-hash/seed`` identity."""
        tail = "-" if self.seed is None else str(self.seed)
        return f"{self.experiment}/{self.config_hash}/{tail}"

    @property
    def sort_key(self) -> Tuple:
        """Merge order: experiment, then config, then *numeric* seed."""
        return (self.experiment, self.config_hash,
                self.seed is not None, self.seed or 0)

    def cache_key(self) -> str:
        """Full-length content hash keying the on-disk result cache."""
        blob = (f"exec-cache-v1\n{self.experiment}\n{self.runner}\n"
                f"{_canonical(dict(self.params))}\n{self.seed!r}")
        return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class CellResult:
    """What one cell produced (or how it failed)."""

    cell_id: str
    status: str                  # "ok" | "error"
    value: Any = None            # the runner's JSON-able payload
    error: str = ""              # traceback / crash detail when status=error
    attempts: int = 1            # 2 when the retry-on-fresh-worker fired
    duration_s: float = 0.0      # wall time of the successful attempt
    cached: bool = False         # True when served from the ResultCache

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> Dict[str, Any]:
        return {"cell_id": self.cell_id, "status": self.status,
                "value": self.value, "error": self.error,
                "attempts": self.attempts, "duration_s": self.duration_s}

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "CellResult":
        return cls(cell_id=data["cell_id"], status=data["status"],
                   value=data.get("value"), error=data.get("error", ""),
                   attempts=data.get("attempts", 1),
                   duration_s=data.get("duration_s", 0.0))


class SweepSpec:
    """A named collection of cells with unique, stable ids."""

    def __init__(self, name: str, cells: Sequence[Cell]):
        self.name = name
        self.cells: List[Cell] = list(cells)
        if not self.cells:
            raise ReproError(f"sweep {name!r} has no cells — an empty "
                             f"sweep succeeds vacuously and hides mistakes")
        seen: Dict[str, Cell] = {}
        for cell in self.cells:
            cid = cell.cell_id
            if cid in seen:
                raise ReproError(f"duplicate cell id {cid!r} in sweep "
                                 f"{name!r}")
            seen[cid] = cell

    def __len__(self) -> int:
        return len(self.cells)

    def runners(self) -> List[str]:
        """Distinct runner paths, for per-worker warmup."""
        return sorted({cell.runner for cell in self.cells})

    def merged_order(self) -> List[Cell]:
        """Cells in merge order (by cell id components, seeds numeric)."""
        return sorted(self.cells, key=lambda c: c.sort_key)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SweepSpec {self.name!r}: {len(self.cells)} cell(s)>"
