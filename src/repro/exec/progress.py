"""Live sweep progress over the kernel's HookBus conventions.

The executor publishes its lifecycle on named :class:`HookBus` channels
(``exec.sweep.begin``, ``exec.cell.start``, ``exec.cell.done``,
``exec.cell.crash``, ``exec.sweep.end``) exactly the way the runtimes
publish their faultable sites: anything — a progress bar, a test, a
future scheduler — subscribes without the executor knowing.
:class:`ProgressReporter` is the stock subscriber: done/running/failed
counts plus an ETA extrapolated from completed-cell wall time.

Wall-clock only ever feeds the *display*; nothing time-derived touches a
result, which is how a sweep stays byte-identical across machines.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

from repro.kernel import HookBus

__all__ = ["EXEC_CHANNELS", "ProgressReporter"]

#: The executor's published channels, in rough firing order.
EXEC_CHANNELS = (
    "exec.sweep.begin",
    "exec.cell.start",
    "exec.cell.done",
    "exec.cell.crash",
    "exec.sweep.end",
)


class ProgressReporter:
    """Subscribe to a sweep's channels and narrate done/running/failed.

    Pass a :class:`~repro.obs.metrics.MetricsRegistry` as ``registry``
    to additionally publish the same lifecycle as ``exec.cells.*``
    counters and the ``exec.cells.total`` gauge (counts only — the
    wall-clock ETA never enters the registry).
    """

    def __init__(self, bus: HookBus, stream: Optional[TextIO] = None,
                 registry=None, clock=None):
        self.bus = bus
        self.stream = stream if stream is not None else sys.stderr
        self.registry = registry
        # Injectable clock so the ETA math is testable with fake time;
        # the wall clock only ever feeds the operator display.
        # migralint: disable=DET001
        self._clock = clock if clock is not None else time.monotonic
        self.total = 0
        self.done = 0
        self.failed = 0
        self.running = 0
        self.crashes = 0
        self._t0: Optional[float] = None     # set by exec.sweep.begin
        self._live = self.stream.isatty() if hasattr(
            self.stream, "isatty") else False
        self._subscribed = []
        for channel, fn in (("exec.sweep.begin", self._on_begin),
                            ("exec.cell.start", self._on_start),
                            ("exec.cell.done", self._on_done),
                            ("exec.cell.crash", self._on_crash),
                            ("exec.sweep.end", self._on_end)):
            bus.subscribe(channel, fn)
            self._subscribed.append((channel, fn))

    def detach(self) -> None:
        """Unsubscribe from every channel (reporters are per-sweep)."""
        for channel, fn in self._subscribed:
            self.bus.unsubscribe(channel, fn)
        self._subscribed = []

    # -- channel subscribers (filter-style: return the payload) ---------

    def _on_begin(self, payload, **ctx):
        self.total = payload["cells"]
        # Wall clock feeds the operator-facing ETA line only.
        self._t0 = self._clock()
        if self.registry is not None:
            self.registry.gauge("exec.cells.total").set(self.total)
        return payload

    def _on_start(self, payload, **ctx):
        self.running += 1
        return payload

    def _on_crash(self, payload, **ctx):
        self.crashes += 1
        if self.registry is not None:
            self.registry.counter("exec.cells.crashes").inc()
        if payload["will_retry"]:
            self.running -= 1       # the retry's cell.start re-counts it
            self._emit(f"worker died on {payload['cell_id']} "
                       f"(exit {payload['exitcode']}); retrying once",
                       force=True)
        return payload

    def _on_done(self, payload, **ctx):
        self.done += 1
        if not payload.get("cached"):
            self.running = max(0, self.running - 1)
        if payload["status"] != "ok":
            self.failed += 1
        if self.registry is not None:
            self.registry.counter("exec.cells.done").inc()
            if payload.get("cached"):
                self.registry.counter("exec.cells.cached").inc()
            if payload["status"] != "ok":
                self.registry.counter("exec.cells.failed").inc()
        step = max(1, self.total // 10)
        self._emit(self._line(), force=self._live or self.failed
                   or self.done % step == 0 or self.done == self.total)
        return payload

    def _on_end(self, payload, **ctx):
        if self._live:
            self.stream.write("\n")
        self._emit(f"sweep {payload['name']!r}: {payload['ok']} ok, "
                   f"{payload['error']} failed in "
                   f"{payload['duration_s']:.1f}s", force=True)
        return payload

    # -- rendering ------------------------------------------------------

    def _eta_s(self) -> Optional[float]:
        """Extrapolated seconds remaining, or ``None`` when unknowable.

        ``None`` (no ETA shown) rather than a nonsense number when:
        no cell has finished; the sweep is done; ``exec.sweep.begin``
        never fired (``_t0`` unset — extrapolating from epoch would
        claim a gigantic ETA); or the first completion landed within
        timer resolution (elapsed ≤ 0 — zero would claim the rest of
        the sweep is free, and a clock hiccup would go negative).
        """
        if not self.done or self.done >= self.total or self._t0 is None:
            return None
        elapsed = self._clock() - self._t0
        if elapsed <= 0.0:
            return None
        return elapsed / self.done * (self.total - self.done)

    def _line(self) -> str:
        eta = self._eta_s()
        tail = f", ETA {eta:.1f}s" if eta is not None else ""
        return (f"[exec] {self.done}/{self.total} done, "
                f"{self.running} running, {self.failed} failed{tail}")

    def _emit(self, text: str, force: bool) -> None:
        if not force:
            return
        if self._live:
            self.stream.write("\r" + text.ljust(60))
        else:
            self.stream.write(text + "\n")
        self.stream.flush()
