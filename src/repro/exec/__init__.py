"""repro.exec — the deterministic parallel sweep executor.

Every experiment in this repository is a grid of *independent,
deterministic* cells — (workload, config, seed) for a chaos sweep, one
experiment per cell for the paper figures.  This package fans that grid
out across worker processes without surrendering a single reproducibility
guarantee:

* a :class:`SweepSpec` of plain-data :class:`Cell`\\ s, each with a
  stable ``(experiment, config-hash, seed)`` id;
* :class:`LocalPool` (``multiprocessing``) and :class:`SerialBackend`
  (the ``--jobs 1`` debugging reference) running the *same* cell code;
* a disk :class:`ResultCache` keyed on content hashes;
* crash containment with the chaos retry-once discipline;
* progress on the kernel :class:`~repro.kernel.HookBus` conventions;
* a merge that orders results by cell id, so output files are
  byte-identical no matter how many workers raced to produce them.

The paper's argument that loosely-coupled flows of control migrate
freely is the same argument that lets these cells scatter across
processes: nothing a cell needs lives anywhere but its spec.
"""

from repro.exec.cache import ResultCache
from repro.exec.executor import SweepExecutor
from repro.exec.pool import (LocalPool, SerialBackend, backend_from_spec,
                             backend_names, make_backend, register_backend,
                             run_cell)
from repro.exec.progress import EXEC_CHANNELS, ProgressReporter
from repro.exec.runners import (chaos_result_row, fault_config_params,
                                run_bench_cell, run_chaos_cell)
from repro.exec.spec import Cell, CellResult, SweepSpec, resolve_runner

__all__ = [
    "Cell", "CellResult", "SweepSpec", "resolve_runner",
    "ResultCache",
    "SerialBackend", "LocalPool", "make_backend", "run_cell",
    "register_backend", "backend_from_spec", "backend_names",
    "EXEC_CHANNELS", "ProgressReporter",
    "SweepExecutor",
    "chaos_result_row", "fault_config_params", "run_chaos_cell",
    "run_bench_cell",
]
