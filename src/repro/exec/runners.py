"""Worker entry points: how a cell's plain params become a real run.

Every function here follows the worker purity discipline that the
EXC001 lint rule enforces over this package: an entry point takes
``(params, seed)`` **plain data**, constructs whatever runtime it needs
through public constructors *inside the call*, and returns a JSON-able
payload.  No live kernel, scheduler, or runtime object ever crosses the
process boundary — a worker's world is rebuilt from names and numbers,
which is precisely why a cell computes the same bytes in any process.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

__all__ = ["chaos_result_row", "fault_config_params", "run_chaos_cell",
           "run_bench_cell"]


def fault_config_params(config) -> Dict[str, Any]:
    """A ``FaultConfig`` as the plain dict a chaos cell carries."""
    return dataclasses.asdict(config)


def chaos_result_row(result) -> Dict[str, Any]:
    """Reduce a :class:`~repro.chaos.ChaosResult` to its JSON row.

    This is the exact row shape ``results/chaos_sweep.json`` records;
    keeping it here lets the sweep tool, the golden-seed regeneration,
    and ad-hoc sweeps share one definition.
    """
    return {
        "workload": result.workload,
        "seed": result.seed,
        "outcome": result.outcome,
        "detail": result.detail,
        "faults": len(result.schedule),
        "schedule": [repr(ev) for ev in result.schedule],
        "fingerprint": result.fingerprint(),
        "makespan_ns": result.makespan_ns,
        "counters": {k: v for k, v in result.counters.items() if v},
    }


def run_chaos_cell(params: Dict[str, Any],
                   seed: Optional[int]) -> Dict[str, Any]:
    """One seeded chaos run: ``{"workload": name, "config": rates}``."""
    from repro.chaos import ChaosRunner, FaultConfig
    from repro.chaos.workloads import STANDARD_WORKLOADS

    workloads = {cls.name: cls for cls in STANDARD_WORKLOADS}
    config = FaultConfig(**params.get("config", {}))
    runner = ChaosRunner(workloads[params["workload"]](), config)
    return chaos_result_row(runner.run_seed(seed))


def run_bench_cell(params: Dict[str, Any],
                   seed: Optional[int]) -> Dict[str, Any]:
    """One paper experiment: ``{"experiment": "fig9"}``.

    The experiment writes its own ``results/`` file as a side effect
    (each experiment owns a distinct file, so parallel cells never
    collide); the captured stdout comes back as the payload so the
    parent can print reports in a stable order.
    """
    import contextlib
    import io

    from repro.bench.__main__ import EXPERIMENTS

    name = params["experiment"]
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        EXPERIMENTS[name]()
    return {"experiment": name, "output": buf.getvalue()}
