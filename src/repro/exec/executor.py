"""The sweep executor: cache, fan out, contain, merge.

:class:`SweepExecutor` ties the pieces together for one
:class:`~repro.exec.spec.SweepSpec`:

1. consult the :class:`~repro.exec.cache.ResultCache` (unless
   ``force``) and set already-computed cells aside;
2. hand the remaining cells to the backend (serial or
   :class:`~repro.exec.pool.LocalPool`), publishing progress on the
   hook bus as they start/finish/crash;
3. cache fresh ``ok`` results;
4. **merge**: return every result ordered by cell id — completion
   order never leaks into output, so a 4-worker sweep and a serial one
   produce byte-identical files.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from repro.exec.cache import ResultCache
from repro.exec.pool import SerialBackend
from repro.exec.spec import CellResult, SweepSpec
from repro.kernel import HookBus

__all__ = ["SweepExecutor"]


class SweepExecutor:
    """Run one sweep spec through a backend, with caching and merging."""

    def __init__(self, spec: SweepSpec, backend=None,
                 cache: Optional[ResultCache] = None, force: bool = False,
                 hooks: Optional[HookBus] = None):
        self.spec = spec
        self.backend = backend or SerialBackend()
        self.cache = cache
        self.force = force
        self.hooks = hooks or HookBus()

    def _emit(self, channel: str, payload: dict) -> dict:
        return self.hooks.filter(channel, payload)

    def run(self) -> List[CellResult]:
        """Execute the sweep; results come back ordered by cell id."""
        # Host-side sweep duration for the progress log only — never
        # visible to cells, which see only (params, seed).
        # migralint: disable=DET001
        t0 = time.monotonic()
        by_id: Dict[str, CellResult] = {}
        todo = []
        for cell in self.spec.cells:
            hit = (self.cache.get(cell)
                   if self.cache is not None and not self.force else None)
            if hit is not None:
                by_id[cell.cell_id] = hit
            else:
                todo.append(cell)
        self._emit("exec.sweep.begin", {
            "name": self.spec.name, "cells": len(self.spec),
            "cached": len(by_id)})
        for result in by_id.values():
            self._emit("exec.cell.done", {
                "cell_id": result.cell_id, "status": result.status,
                "duration_s": result.duration_s,
                "attempts": result.attempts, "cached": True})
        if todo:
            def notify(event: str, payload: dict) -> None:
                self._emit("exec." + event, payload)

            def on_result(cell, result) -> None:
                # Persist each cell the moment it lands — a sweep killed
                # mid-run resumes from every finished cell, which is
                # what the serve journal's replay-from-cache rests on.
                if self.cache is not None:
                    self.cache.put(cell, result)

            fresh = self.backend.run(todo, self.spec.runners(), notify,
                                     on_result=on_result)
            for cell, result in zip(todo, fresh):
                by_id[cell.cell_id] = result
        merged = [by_id[c.cell_id] for c in self.spec.merged_order()]
        self._emit("exec.sweep.end", {
            "name": self.spec.name,
            "ok": sum(1 for r in merged if r.ok),
            "error": sum(1 for r in merged if not r.ok),
            "duration_s": time.monotonic() - t0})  # migralint: disable=DET001
        return merged
