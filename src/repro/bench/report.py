"""Plain-text rendering of benchmark tables and series."""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

__all__ = ["render_table", "render_series", "save_report", "RESULTS_DIR"]

#: Where benchmark targets drop their text reports.
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "..",
                           "results")


def render_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render rows as an aligned ASCII table."""
    cols = [[str(h)] + [str(r[i]) for r in rows]
            for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in rows:
        lines.append(" | ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def render_series(x_label: str, xs: Sequence, series: Dict[str, Sequence],
                  title: str = "", fmt: str = "{:.3f}") -> str:
    """Render named y-series over a shared x axis as an aligned table.

    Missing points (None) render as ``-`` — e.g. mechanisms past their
    flow-count limit in Figures 4–8.
    """
    headers = [x_label] + list(series)
    rows: List[List[str]] = []
    for i, x in enumerate(xs):
        row = [str(x)]
        for name in series:
            y = series[name][i]
            row.append("-" if y is None else fmt.format(y))
        rows.append(row)
    return render_table(headers, rows, title=title)


def save_report(name: str, text: str) -> str:
    """Write a report under ``results/`` and return its path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.abspath(os.path.join(RESULTS_DIR, name))
    with open(path, "w") as f:
        f.write(text + "\n")
    return path
