"""Benchmark harness: builders and renderers for every table and figure.

Each paper experiment has one builder here returning plain data (series or
table rows) plus a text renderer; the pytest-benchmark targets under
``benchmarks/`` call these, print the paper-style output, assert the shape
criteria from DESIGN.md Section 4, and benchmark the underlying primitive.
"""

from repro.bench.report import render_series, render_table, save_report
from repro.bench.figures import (FIGURE_PLATFORMS, context_switch_series,
                                 stack_size_series, bigsim_series,
                                 btmz_series, minimal_swap_rows)
from repro.bench.tables import table1_rows, table2_rows

__all__ = [
    "render_series",
    "render_table",
    "save_report",
    "FIGURE_PLATFORMS",
    "context_switch_series",
    "stack_size_series",
    "bigsim_series",
    "btmz_series",
    "minimal_swap_rows",
    "table1_rows",
    "table2_rows",
]
