"""Row builders for the paper's tables."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.flows import (KernelThreadFlow, ProcessFlow, UserThreadFlow,
                         probe_limit)
from repro.sim import Processor, get_platform

__all__ = ["TABLE1_COLUMNS", "table1_rows", "TABLE2_COLUMNS",
           "TABLE2_PROBE_CAPS", "table2_cell", "table2_rows"]

#: Paper Table 1 column order: (display name, platform profile).
TABLE1_COLUMNS: List[Tuple[str, str]] = [
    ("X86", "linux_x86"),
    ("IA64", "ia64"),
    ("Opteron", "opteron"),
    ("Mac OS X", "mac_g5"),
    ("IBM SP", "ibm_sp"),
    ("SUN", "solaris"),
    ("Alpha", "alpha"),
    ("BG/L", "bluegene_l"),
    ("Windows", "windows"),
]


def table1_rows() -> List[List[str]]:
    """Table 1: portability of the three migratable-thread techniques.

    Every cell is *derived* from the platform's feature flags (mmap
    availability, stack-base fixity, QuickThreads port, microkernel remap
    extension) — see :class:`repro.sim.platform.PlatformProfile`.
    """
    techniques = [
        ("Stack Copy", "stack_copy_support"),
        ("Isomalloc", "isomalloc_support"),
        ("Memory Alias", "memory_alias_support"),
    ]
    rows = []
    for label, method in techniques:
        row = [label]
        for _, pname in TABLE1_COLUMNS:
            row.append(getattr(get_platform(pname), method)())
        rows.append(row)
    return rows


#: Paper Table 2 column order: (display name, platform profile).
TABLE2_COLUMNS: List[Tuple[str, str]] = [
    ("Linux", "linux_x86"),
    ("Sun", "solaris"),
    ("IBM SP", "ibm_sp"),
    ("Alpha", "alpha"),
    ("Mac OS", "mac_g5"),
    ("IA-64", "ia64"),
]

#: Probe caps per (mechanism, platform): where the paper's experiment
#: stopped probing.  Cells whose cap is reached print with a trailing "+".
TABLE2_PROBE_CAPS: Dict[str, Dict[str, int]] = {
    "process": {"linux_x86": 20_000, "solaris": 30_000, "ibm_sp": 1_000,
                "alpha": 5_000, "mac_g5": 2_000, "ia64": 50_000},
    "pthread": {"linux_x86": 1_000, "solaris": 5_000, "ibm_sp": 5_000,
                "alpha": 90_000, "mac_g5": 10_000, "ia64": 30_000},
    "cth": {"linux_x86": 90_000, "solaris": 90_000, "ibm_sp": 20_000,
            "alpha": 90_000, "mac_g5": 90_000, "ia64": 50_000},
}

_MECHS = {
    "process": (ProcessFlow, "Process", "ulimit/kernel"),
    "pthread": (KernelThreadFlow, "Kernel Threads", "kernel"),
    "cth": (UserThreadFlow, "User-level Threads", "memory"),
}


def table2_cell(params: Dict, seed) -> Dict:
    """Executor worker: one Table 2 probe (mechanism × platform).

    ``params = {"mechanism": key, "platform": profile, "cap": int,
    "chunk": int}`` → the probe outcome as plain data.  Each probe is
    its own cell because a probe *ends in a refusal by design*; the
    executor's crash containment keeps an unexpected failure in one
    cell from taking down the table.
    """
    from repro.flows import MECHANISMS
    cls = MECHANISMS[params["mechanism"]]
    proc = Processor(0, get_platform(params["platform"]))
    probe = probe_limit(cls(proc), cap=params["cap"],
                        chunk=params["chunk"])
    return {"mechanism": probe.mechanism, "platform": probe.platform,
            "count": probe.count, "hit_limit": probe.hit_limit,
            "limiting_factor": probe.limiting_factor,
            "display": probe.display()}


def table2_rows(chunk: int = 256, cache=None) -> List[List[str]]:
    """Table 2: practical flow-count limits, measured by live probing.

    Each cell creates flows on a fresh simulated processor until the OS
    model or memory refuses, or the paper's probe cap is reached (shown
    with a trailing ``+``, the paper's "90000+" notation).  The probes
    run as one executor cell per (mechanism, platform) — cached when a
    :class:`~repro.exec.cache.ResultCache` is passed — and the merged
    rows are byte-identical to the old inline loop.
    """
    from repro.errors import ReproError
    from repro.exec import Cell, SweepExecutor, SweepSpec
    cells = []
    for key in _MECHS:
        for _, pname in TABLE2_COLUMNS:
            cells.append(Cell(
                experiment="table2.limits",
                runner="repro.bench.tables:table2_cell",
                params={"mechanism": key, "platform": pname,
                        "cap": TABLE2_PROBE_CAPS[key][pname],
                        "chunk": chunk}))
    results = SweepExecutor(SweepSpec(name="table2", cells=cells),
                            cache=cache).run()
    probes: Dict[Tuple[str, str], Dict] = {}
    for res in results:
        if not res.ok:
            raise ReproError(f"table2 cell {res.cell_id} failed: "
                             f"{res.error}")
        probes[(res.value["mechanism"], res.value["platform"])] = res.value
    rows = []
    for key, (cls, label, factor) in _MECHS.items():
        row = [label, factor]
        for _, pname in TABLE2_COLUMNS:
            probe = probes[(cls.label, get_platform(pname).name)]
            if key == "process" and probe["hit_limit"]:
                # The probing program is itself a process; the paper
                # reports the kernel's total, so count it back in.
                row.append(str(probe["count"] + 1))
            else:
                row.append(probe["display"])
        rows.append(row)
    return rows
