"""Regenerate every paper table and figure from the command line.

Usage::

    python -m repro.bench                 # everything
    python -m repro.bench fig9 table2     # just some experiments
    python -m repro.bench -j 4            # fan out over 4 workers
    REPRO_FULL=1 python -m repro.bench fig11   # paper-scale Figure 11

Reports are printed and saved under ``results/``.  This is the same
machinery the pytest-benchmark targets drive; the CLI exists so downstream
users can regenerate the evaluation without the test harness.

Experiments run as independent :mod:`repro.exec` cells: a raising
experiment no longer aborts the rest of the run (and no longer leaves
later result files silently stale) — every experiment runs, a pass/fail
table sums up, and the exit code is nonzero if anything failed.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.figures import (FIGURE_PLATFORMS, bigsim_series,
                                 btmz_series, context_switch_series,
                                 minimal_swap_rows, stack_size_series)
from repro.bench.report import render_series, render_table, save_report
from repro.bench.tables import (TABLE1_COLUMNS, TABLE2_COLUMNS, table1_rows,
                                table2_rows)


def _emit(name: str, text: str) -> None:
    print("\n" + text)
    print(f"[saved {save_report(name, text)}]")


def run_table1() -> None:
    """Table 1: portability matrix."""
    headers = ["Thread"] + [n for n, _ in TABLE1_COLUMNS]
    _emit("table1_portability.txt",
          render_table(headers, table1_rows(),
                       "Table 1: portability of migratable thread "
                       "implementations"))


def run_table2() -> None:
    """Table 2: practical flow limits."""
    headers = (["Flow of control", "Limiting Factor"]
               + [n for n, _ in TABLE2_COLUMNS])
    _emit("table2_limits.txt",
          render_table(headers, table2_rows(),
                       "Table 2: approximate practical limits"))


def run_context_figure(fig_no: int) -> None:
    """One of Figures 4-8."""
    platform = FIGURE_PLATFORMS[fig_no]
    xs, series = context_switch_series(platform)
    _emit(f"fig{fig_no}_{platform}.txt",
          render_series("n_flows", xs, series,
                        f"Figure {fig_no}: context switch time (us) "
                        f"vs number of flows — {platform}"))


def run_fig9() -> None:
    """Figure 9: stack-size sweep."""
    sizes, series = stack_size_series()
    labels = [f"{s // 1024}KB" if s < 1024 * 1024
              else f"{s // (1024 * 1024)}MB" for s in sizes]
    _emit("fig9_stacksize.txt",
          render_series("stack", labels, series,
                        "Figure 9: context switch time (us) vs stack size"))


def run_fig10() -> None:
    """Figure 10: minimal swap routines."""
    _emit("fig10_minswap.txt",
          render_table(["routine", "instructions", "memory ops",
                        "modeled cycles", "modeled ns @2.2GHz"],
                       minimal_swap_rows(),
                       "Figure 10: minimal context switching routines"))


def run_fig11() -> None:
    """Figure 11: BigSim MD scaling."""
    procs, series, targets = bigsim_series()
    _emit("fig11_bigsim.txt",
          render_series("host procs", procs, series,
                        f"Figure 11: simulation time per MD step (ms), "
                        f"{targets} target processors"))


def run_fig12() -> None:
    """Figure 12: BT-MZ with/without LB."""
    rows = [[label,
             f"{no.makespan_ns / 1e6:.1f}",
             f"{lb.makespan_ns / 1e6:.1f}",
             f"{no.makespan_ns / lb.makespan_ns:.2f}x",
             lb.migrations]
            for label, no, lb in btmz_series()]
    _emit("fig12_btmz.txt",
          render_table(["config", "no LB (ms)", "with LB (ms)", "speedup",
                        "migrations"], rows,
                       "Figure 12: BT-MZ with vs without load balancing"))


EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "fig4": lambda: run_context_figure(4),
    "fig5": lambda: run_context_figure(5),
    "fig6": lambda: run_context_figure(6),
    "fig7": lambda: run_context_figure(7),
    "fig8": lambda: run_context_figure(8),
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "fig12": run_fig12,
}


def main(argv: list[str]) -> int:
    """CLI entry point; returns a process exit code."""
    from repro.exec import (Cell, ProgressReporter, SweepExecutor,
                            SweepSpec, make_backend)

    ap = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate paper tables and figures.")
    ap.add_argument("experiments", nargs="*", metavar="EXPERIMENT",
                    help=f"subset to run (default: all of "
                         f"{', '.join(EXPERIMENTS)})")
    ap.add_argument("-j", "--jobs", type=int, default=1,
                    help="worker processes (default 1)")
    args = ap.parse_args(argv)
    wanted = args.experiments or list(EXPERIMENTS)
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"known: {', '.join(EXPERIMENTS)}")
        return 2
    if args.jobs < 1:
        print(f"-j/--jobs must be >= 1 (got {args.jobs})")
        return 2

    t0 = time.time()
    cells = [Cell(experiment=f"bench:{name}",
                  runner="repro.exec.runners:run_bench_cell",
                  params={"experiment": name})
             for name in wanted]
    executor = SweepExecutor(SweepSpec("bench", cells),
                             backend=make_backend(args.jobs))
    reporter = ProgressReporter(executor.hooks)
    try:
        results = {r.cell_id: r for r in executor.run()}
    finally:
        reporter.detach()

    # Print reports in the order the user asked for them, not completion
    # (or merge) order; failures print their traceback where the report
    # would have been and the run keeps going.
    table = []
    failed = []
    for cell in cells:
        result = results[cell.cell_id]
        name = cell.params["experiment"]
        if result.ok:
            sys.stdout.write(result.value["output"])
            table.append([name, "ok", f"{result.duration_s:.2f}"])
        else:
            failed.append(name)
            print(f"\nFAILED {name}:\n{result.error}", end="")
            tail = result.error.strip().splitlines()[-1]
            table.append([name, f"FAILED: {tail}", f"{result.duration_s:.2f}"])

    print("\n" + render_table(["experiment", "status", "time (s)"], table,
                              f"{len(wanted)} experiment(s) in "
                              f"{time.time() - t0:.1f}s"))
    if failed:
        print(f"{len(failed)} experiment(s) failed: {', '.join(failed)}")
        return 1
    return 0


def console_main() -> None:
    """setuptools console-script entry point (``repro-bench``)."""
    raise SystemExit(main(sys.argv[1:]))


if __name__ == "__main__":
    console_main()
