"""Series builders for the paper's figures."""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.balance.strategies import GreedyLB, NullLB
from repro.bigsim import BigSimEngine, TargetMachine
from repro.core.context import SWAP32, SWAP64
from repro.core.isomalloc import IsomallocArena
from repro.core.stacks import (IsomallocStacks, MemoryAliasStacks,
                               StackCopyStacks)
from repro.errors import OSLimitError, OutOfPhysicalMemory, \
    OutOfVirtualAddressSpace, ReproError
from repro.flows import (AmpiThreadFlow, KernelThreadFlow, ProcessFlow,
                         UserThreadFlow)
from repro.sim import Processor, get_platform
from repro.workloads.btmz import BTMZConfig, BTMZResult, run_btmz
from repro.workloads.md import MDConfig, MDWorkload

__all__ = ["FIGURE_PLATFORMS", "FLOW_GRID", "STACK_SIZES",
           "context_switch_cell", "context_switch_series",
           "stack_size_series",
           "minimal_swap_rows", "bigsim_series", "btmz_series",
           "full_scale"]

#: Figure number -> platform, as in the paper's Section 4.1.
FIGURE_PLATFORMS = {
    4: "linux_x86",
    5: "mac_g5",
    6: "solaris",
    7: "ibm_sp",
    8: "alpha",
}

#: Flow counts swept in Figures 4-8.
FLOW_GRID = [2, 4, 8, 16, 32, 64, 128, 256, 512, 1000, 2000, 5000,
             10_000, 20_000, 50_000]

#: Stack sizes swept in Figure 9 ("from 8KB to 8MB ... using alloca()").
STACK_SIZES = [8 * 1024 << i for i in range(11)]      # 8 KB .. 8 MB


def full_scale() -> bool:
    """Whether full-paper-scale runs were requested (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "") == "1"


# ---------------------------------------------------------------------------
# Figures 4-8: context switch time vs number of flows
# ---------------------------------------------------------------------------

#: Figure 4-8 series order (and the per-cell fan-out grain).
_FIGURE_MECHS = ("process", "pthread", "cth", "ampi")


def context_switch_cell(params: Dict, seed) -> Dict:
    """Executor worker: one mechanism's Figure 4-8 series on one platform.

    ``params = {"platform": str, "mechanism": label, "grid": [int...],
    "rounds": int}`` → ``{"mechanism": label, "ys": [µs-or-None...]}``.
    One cell per mechanism keeps a limit crash (a mechanism refusing
    creation is the *point* of the figure) contained to its own series.
    """
    from repro.flows import MECHANISMS
    cls = MECHANISMS[params["mechanism"]]
    proc = Processor(0, get_platform(params["platform"]))
    if cls is AmpiThreadFlow:
        mech = cls(proc, slot_bytes=32 * 1024)
    else:
        mech = cls(proc)
    ys: List[Optional[float]] = []
    dead = False
    for n in params["grid"]:
        if dead:
            ys.append(None)
            continue
        try:
            res = mech.run_yield_benchmark(n, rounds=params["rounds"],
                                           keep=True)
            ys.append(res.ns_per_switch / 1000.0)         # µs
        except (OSLimitError, OutOfPhysicalMemory,
                OutOfVirtualAddressSpace):
            ys.append(None)
            dead = True
    mech.destroy_all()
    return {"mechanism": mech.label, "ys": ys}


def context_switch_series(platform_name: str,
                          grid: Sequence[int] = FLOW_GRID,
                          rounds: int = 3,
                          cache=None,
                          ) -> Tuple[List[int], Dict[str, List[Optional[float]]]]:
    """Time per flow per context switch (µs) for the four mechanisms.

    Each mechanism runs on a fresh simulated processor of the platform and
    is driven through the real creation + yield-loop microbenchmark; a
    mechanism's series ends (None) where its platform limit refuses further
    creation — the same truncation the paper's plots show.

    The series fan out as one executor cell per mechanism (cached and
    crash-contained when ``cache`` — a
    :class:`~repro.exec.cache.ResultCache` — is provided); the merged
    output is byte-identical to the old inline loop.
    """
    from repro.exec import Cell, SweepExecutor, SweepSpec
    grid = sorted(grid)
    cells = [Cell(experiment=f"fig.switch.{platform_name}",
                  runner="repro.bench.figures:context_switch_cell",
                  params={"platform": platform_name, "mechanism": key,
                          "grid": list(grid), "rounds": rounds})
             for key in _FIGURE_MECHS]
    results = SweepExecutor(SweepSpec(name="context-switch", cells=cells),
                            cache=cache).run()
    out: Dict[str, List[Optional[float]]] = {}
    for res in results:
        if not res.ok:
            raise ReproError(f"figure cell {res.cell_id} failed: "
                             f"{res.error}")
        out[res.value["mechanism"]] = res.value["ys"]
    # Preserve the historical series order (insertion order of the dict).
    out = {label: out[label] for label in ("process", "pthread", "cth",
                                           "ampi")}
    return list(grid), out


# ---------------------------------------------------------------------------
# Figure 9: context switch time vs stack size for migratable threads
# ---------------------------------------------------------------------------

def stack_size_series(platform_name: str = "linux_x86",
                      sizes: Sequence[int] = STACK_SIZES,
                      ) -> Tuple[List[int], Dict[str, List[float]]]:
    """Per-switch time (µs) of the three migration techniques vs live
    stack bytes, on the Figure 9 machine (x86 Linux).

    For each size two threads are created, consume the full stack with
    alloca(), and one switch cycle (out + in) is costed through the real
    stack managers.
    """
    profile = get_platform(platform_name)
    out: Dict[str, List[float]] = {"stack_copy": [], "isomalloc": [],
                                   "memory_alias": []}
    for size in sizes:
        for technique in out:
            proc = Processor(0, profile)
            if technique == "isomalloc":
                arena = IsomallocArena(proc.layout, 1,
                                       slot_bytes=2 * size + 64 * 1024)
                mgr = IsomallocStacks(proc.space, profile, arena, 0,
                                      stack_bytes=size)
            elif technique == "stack_copy":
                mgr = StackCopyStacks(proc.space, profile, stack_bytes=size)
            else:
                mgr = MemoryAliasStacks(proc.space, profile,
                                        stack_bytes=size)
            a, b = mgr.create_stack(), mgr.create_stack()
            a.consume(size)
            b.consume(size)
            # Warm up: make a the active thread where that is meaningful.
            mgr.switch_in(a)
            cost = profile.uthread_switch_ns
            cost += mgr.switch_out(a)
            cost += mgr.switch_in(b)
            out[technique].append(cost / 1000.0)          # µs
            mgr.switch_out(b)
            mgr.destroy_stack(a)
            mgr.destroy_stack(b)
    return list(sizes), out


# ---------------------------------------------------------------------------
# Figure 10: minimal context switching
# ---------------------------------------------------------------------------

def minimal_swap_rows(cpu_ghz: float = 2.2) -> List[List]:
    """Rows describing the two minimal swap routines on the 2.2 GHz
    Athlon64 of Figure 10 (paper: 16 ns / 18 ns)."""
    rows = []
    for name, swap in (("swap32 (x86, 32-bit)", SWAP32),
                       ("swap64 (x86-64)", SWAP64)):
        rows.append([
            name,
            swap.instruction_count,
            swap.memory_ops,
            f"{swap.cycles():.1f}",
            f"{swap.cost_ns(cpu_ghz):.1f}",
        ])
    return rows


# ---------------------------------------------------------------------------
# Figure 11: BigSim MD simulation time per step
# ---------------------------------------------------------------------------

def bigsim_series(host_procs: Sequence[int] = (4, 8, 16, 32, 64),
                  steps: int = 2,
                  ) -> Tuple[List[int], Dict[str, List[float]], int]:
    """Host time per simulated MD step (ms) vs simulating processors.

    Default target machine is 2,000 processors (a 10x10x20 torus); with
    ``REPRO_FULL=1`` the paper's full 200,000 (50x50x80) is used — slow in
    host wall-clock but identical in structure.
    """
    dims = (50, 50, 80) if full_scale() else (10, 10, 20)
    cfg = MDConfig(dims=dims)
    workload = MDWorkload(cfg)
    times: List[float] = []
    for p in host_procs:
        engine = BigSimEngine(p, TargetMachine(dims=dims), workload,
                              steps=steps)
        res = engine.run()
        times.append(res.host_ns_per_step / 1e6)          # ms
    return list(host_procs), {"time_per_step_ms": times}, cfg.num_cells


# ---------------------------------------------------------------------------
# Figure 12: BT-MZ with and without load balancing
# ---------------------------------------------------------------------------

#: The paper's x-axis configurations (class.NPROCS, PEs).
BTMZ_CASES = [("A", 8, 4), ("A", 16, 8), ("B", 16, 8), ("B", 32, 8),
              ("B", 64, 8)]


def btmz_series(cases: Sequence[Tuple[str, int, int]] = tuple(BTMZ_CASES),
                iterations: int = 6,
                ) -> List[Tuple[str, BTMZResult, BTMZResult]]:
    """(label, without-LB result, with-LB result) per configuration."""
    out = []
    for cls_name, nprocs, npes in cases:
        cfg = BTMZConfig(cls_name, nprocs, npes, iterations=iterations)
        no_lb = run_btmz(cfg, NullLB())
        with_lb = run_btmz(cfg, GreedyLB())
        out.append((cfg.label, no_lb, with_lb))
    return out
