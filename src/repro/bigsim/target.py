"""Target-machine description for BigSim runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["TargetMachine"]


@dataclass(frozen=True)
class TargetMachine:
    """The machine being predicted (a Blue Gene-like torus by default).

    Attributes
    ----------
    dims:
        Torus dimensions; the number of target processors is their product.
    network_latency_ns / network_bytes_per_ns:
        The *target* interconnect model used for target-time prediction
        (distinct from the host cluster's network).
    """

    dims: Tuple[int, int, int] = (10, 10, 20)
    network_latency_ns: float = 3_000.0          # BG/L-torus class
    network_bytes_per_ns: float = 0.175          # ~175 MB/s per link

    @property
    def num_procs(self) -> int:
        """Total target processors."""
        x, y, z = self.dims
        return x * y * z

    def message_ns(self, size_bytes: int) -> float:
        """Target-network transfer time for one message."""
        return self.network_latency_ns + size_bytes / self.network_bytes_per_ns
