"""BigSim event logs and trace-driven re-prediction.

The real BigSim runs in two phases: an *emulation* executes the application
once and writes per-target-processor event logs; a *trace-driven
simulation* then replays those logs under different target-machine
parameters (network latency, bandwidth, CPU scaling) without re-running the
application — that is how one emulation run predicts many candidate
machines (paper references [40, 43]).

:class:`TraceLog` is the event log; :func:`replay` re-executes the logged
dependency graph under a new :class:`~repro.bigsim.target.TargetMachine`
and CPU scale.  Replaying under the *same* parameters must reproduce the
original prediction exactly — the tests pin that down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.bigsim.target import TargetMachine
from repro.errors import ReproError

__all__ = ["TraceEvent", "TraceLog", "replay"]


@dataclass(frozen=True)
class TraceEvent:
    """One sequential execution block of a target processor.

    A block computes for ``compute_ns`` (target time), after sending
    nothing, and completes only once every message listed in ``receives``
    (identified by ``(sender, step)``) has arrived; it then sends one
    ``ghost_bytes``-sized message to each processor in ``sends``.
    """

    proc: int
    step: int
    compute_ns: float
    sends: Tuple[int, ...]
    receives: Tuple[Tuple[int, int], ...]
    ghost_bytes: int


@dataclass
class TraceLog:
    """Per-target-processor event logs from one emulation run."""

    num_procs: int
    steps: int
    events: List[TraceEvent] = field(default_factory=list)

    def add(self, event: TraceEvent) -> None:
        """Append one block (emulation-side API)."""
        self.events.append(event)

    def for_proc(self, proc: int) -> List[TraceEvent]:
        """A processor's blocks in step order."""
        out = [e for e in self.events if e.proc == proc]
        out.sort(key=lambda e: e.step)
        return out

    def validate(self) -> None:
        """Check the log is complete: every (proc, step) block present."""
        seen = {(e.proc, e.step) for e in self.events}
        missing = [(p, s) for p in range(self.num_procs)
                   for s in range(self.steps) if (p, s) not in seen]
        if missing:
            raise ReproError(
                f"trace incomplete: missing {len(missing)} blocks, "
                f"first {missing[:3]}")


def replay(trace: TraceLog, target: TargetMachine,
           cpu_scale: float = 1.0) -> float:
    """Re-predict target time per step from a trace.

    Walks the logged dependency graph step by step: a block starts when
    its processor finished its previous block, runs its (possibly
    re-scaled) compute, then its outgoing messages arrive at
    ``finish + target.message_ns(bytes)``; the next block additionally
    waits for all its logged receives.  Returns the predicted target
    nanoseconds per step (max completion / steps).

    ``cpu_scale`` > 1 models a faster target CPU (compute shrinks).
    """
    trace.validate()
    index: Dict[Tuple[int, int], TraceEvent] = {
        (e.proc, e.step): e for e in trace.events}
    # clock[p] = target time at which processor p's last block finished.
    clock: Dict[int, float] = {p: 0.0 for p in range(trace.num_procs)}
    # arrival[(sender, step, receiver)] = message arrival time.
    arrival: Dict[Tuple[int, int, int], float] = {}
    for step in range(trace.steps):
        # Compute phase and sends for every processor at this step...
        finish_compute: Dict[int, float] = {}
        for p in range(trace.num_procs):
            block = index[(p, step)]
            t = clock[p] + block.compute_ns / cpu_scale
            finish_compute[p] = t
            for dst in block.sends:
                arrival[(p, step, dst)] = t + target.message_ns(
                    block.ghost_bytes)
        # ...then each processor waits for its logged receives.
        for p in range(trace.num_procs):
            block = index[(p, step)]
            t = finish_compute[p]
            for (sender, sstep) in block.receives:
                t = max(t, arrival[(sender, sstep, p)])
            clock[p] = t
    return max(clock.values()) / trace.steps
