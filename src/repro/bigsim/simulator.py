"""The BigSim engine: target processors as migratable user-level threads."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.ampi import AmpiRuntime
from repro.balance.strategies import NullLB, Strategy
from repro.bigsim.target import TargetMachine
from repro.bigsim.trace import TraceEvent, TraceLog
from repro.errors import ReproError
from repro.workloads.md import MDWorkload

__all__ = ["BigSimEngine", "BigSimResult"]


@dataclass(frozen=True)
class BigSimResult:
    """Outcome of one BigSim run."""

    host_processors: int
    target_processors: int
    steps: int
    #: Host (simulating-machine) execution time for the whole run, ns.
    host_total_ns: float
    #: Host time per simulated timestep — Figure 11's y axis.
    host_ns_per_step: float
    #: Predicted target-machine time per timestep (max over target procs).
    predicted_target_ns_per_step: float
    threads_per_host_proc: float


class BigSimEngine:
    """Run an MD-like application over a simulated target machine.

    Each target processor is one AMPI rank (a migratable user-level thread)
    on the simulated host cluster.  Per timestep a target processor:

    1. computes its cube's forces — host work equal to the force
       computation (BigSim executes the real code) advances both the host
       clock and the thread's *target clock*;
    2. exchanges ghost atoms with its six torus neighbors; the messages
       carry target timestamps, and the receiver's target clock advances to
       ``max(own, sender_time + target_network_time)`` — BigSim's
       prediction rule;
    3. proceeds to the next step (tags keep steps matched, so no global
       barrier is needed — exactly the loose coupling that lets the
       simulation scale).
    """

    def __init__(self, host_procs: int, target: TargetMachine,
                 workload: MDWorkload, steps: int = 2, *,
                 platform: str = "alpha",
                 sim_overhead_ns: float = 2_000.0,
                 host_speed_ratio: float = 1.0,
                 strategy: "Strategy | None" = None,
                 lb_period: int = 0,
                 placement: str = "round_robin",
                 record_trace: bool = False):
        if target.num_procs != workload.cfg.num_cells:
            raise ReproError(
                f"target machine has {target.num_procs} processors but the "
                f"workload decomposes into {workload.cfg.num_cells} cells")
        if steps <= 0:
            raise ReproError("need at least one timestep")
        self.host_procs = host_procs
        self.target = target
        self.workload = workload
        self.steps = steps
        self.sim_overhead_ns = sim_overhead_ns
        self.host_speed_ratio = host_speed_ratio
        #: Load-balance the *simulation itself*: with ``lb_period = k``,
        #: target-processor threads hit an MPI_Migrate point every k steps,
        #: so uneven target work (e.g. dense MD cells) is spread across the
        #: host processors — the two halves of the paper composed.
        self.lb_period = lb_period
        if placement == "block":
            # Locality-preserving: contiguous target processors (torus
            # slabs) per host processor — BigSim's realistic mapping, and
            # the one that concentrates spatially-correlated load.
            per = -(-target.num_procs // host_procs)
            place = lambda rank: min(rank // per, host_procs - 1)
        elif placement == "round_robin":
            place = None
        else:
            raise ReproError(f"unknown placement {placement!r}")
        self._target_clocks: Dict[int, float] = {}
        #: Event log of the emulation (BigSim's two-phase mode); filled
        #: when ``record_trace`` and replayable with
        #: :func:`repro.bigsim.trace.replay` under other machine models.
        self.trace: Optional[TraceLog] = (
            TraceLog(target.num_procs, steps) if record_trace else None)
        self.runtime = AmpiRuntime(
            host_procs, target.num_procs, self._main,
            platform=platform,
            strategy=strategy or NullLB(),
            placement=place,
            slot_bytes=64 * 1024, stack_bytes=8 * 1024)

    def _main(self, mpi):
        cell = mpi.rank
        wl = self.workload
        tgt = self.target
        neighbors = wl.neighbors(cell)
        compute = wl.compute_ns(cell)
        ghost = wl.ghost_bytes(cell)
        tclock = 0.0
        for step in range(self.steps):
            # 1. force computation: host executes the real work.
            mpi.charge(compute / self.host_speed_ratio
                       + self.sim_overhead_ns)
            tclock += compute
            # 2. ghost exchange with target-time stamping; the message
            # carries its own size so the receiver prices the transfer
            # with the *sender's* ghost volume.
            mpi.send_many([(n, (tclock, ghost), ("ghost", step, cell),
                            ghost) for n in neighbors])
            for n in neighbors:
                sender_t, sender_bytes = yield from mpi.recv(
                    source=n, tag=("ghost", step, n))
                arrival = sender_t + tgt.message_ns(sender_bytes)
                if arrival > tclock:
                    tclock = arrival
            if self.trace is not None:
                self.trace.add(TraceEvent(
                    proc=cell, step=step, compute_ns=compute,
                    sends=tuple(neighbors),
                    receives=tuple((n, step) for n in neighbors),
                    ghost_bytes=ghost))
            if self.lb_period and (step + 1) % self.lb_period == 0:
                yield from mpi.migrate()
        self._target_clocks[cell] = tclock

    @property
    def kernel(self):
        """The host cluster's event kernel.  BigSim has no run loop of
        its own: target clocks are carried in message payloads while all
        actual dispatch — sends, receives, migrations — happens as events
        on this kernel (driven through the AMPI runtime's interleave)."""
        return self.runtime.cluster.queue.kernel

    def run(self) -> BigSimResult:
        """Execute the simulation; returns timing results."""
        self.runtime.run()
        host_total = self.runtime.makespan_ns
        predicted = max(self._target_clocks.values()) / self.steps
        return BigSimResult(
            host_processors=self.host_procs,
            target_processors=self.target.num_procs,
            steps=self.steps,
            host_total_ns=host_total,
            host_ns_per_step=host_total / self.steps,
            predicted_target_ns_per_step=predicted,
            threads_per_host_proc=self.target.num_procs / self.host_procs,
        )
