"""BigSim: simulating a huge target machine with user-level threads (§4.4).

BigSim predicts the performance of applications on machines far larger than
the host: each *target processor* is represented by one user-level thread on
a *simulating processor*, "one physical processor [simulating] hundreds or
even thousands of processors of the simulated machine".  Figure 11 runs
200,000 target processors (50,000 threads per host processor at p = 4) —
feasible only with user-level threads, per Table 2's limits.

Pleasingly self-similar: our host cluster is itself simulated, so the
reproduction is a simulator running inside a simulator, each level with its
own clock — target time is predicted with per-thread virtual clocks and
timestamped messages, while host time accrues on the simulated host
processors and gives the Figure 11 y-axis (execution time per simulated
timestep versus host processors).
"""

from repro.bigsim.target import TargetMachine
from repro.bigsim.simulator import BigSimEngine, BigSimResult
from repro.bigsim.trace import TraceEvent, TraceLog, replay

__all__ = ["TargetMachine", "BigSimEngine", "BigSimResult",
           "TraceEvent", "TraceLog", "replay"]
