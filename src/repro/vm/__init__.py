"""Simulated virtual-memory substrate.

This package provides the machinery the paper's migration techniques are
defined in terms of: physical page frames, per-address-space page tables,
``mmap``/``munmap``/``mremap`` with page-granular mappings, and 32-/64-bit
virtual-address-space layouts with a dedicated *isomalloc region* (paper
Figure 2).

The substrate is deliberately faithful at the level the paper cares about:

* virtual addresses are plain integers and pointers stored *inside*
  simulated memory are just encoded addresses, so pointer validity across a
  migration is a mechanically checkable property;
* physical frames are distinct from virtual mappings, so memory-aliasing
  stacks ("map the thread's frames at the common stack address instead of
  copying") are a real operation;
* address-space exhaustion is modeled, so isomalloc's 32-bit scalability
  limit (Section 3.4.2) actually occurs.
"""

from repro.vm.physical import Frame, PhysicalMemory
from repro.vm.pagetable import PageTable, PageTableEntry, Protection
from repro.vm.layout import AddressSpaceLayout, Region
from repro.vm.addrspace import AddressSpace, Mapping
from repro.vm.costs import MemoryCostModel

__all__ = [
    "Frame",
    "PhysicalMemory",
    "PageTable",
    "PageTableEntry",
    "Protection",
    "AddressSpaceLayout",
    "Region",
    "AddressSpace",
    "Mapping",
    "MemoryCostModel",
]
