"""Virtual-address-space layouts for 32- and 64-bit simulated machines.

The layout carves the virtual address space into named regions.  The key
region for this paper is the **isomalloc region**: "normally the largest
space available lies between the process stack and the heap" (Section 3.4.2,
Figure 2).  On 32-bit machines that region is small enough that isomalloc
runs out of address space with a few thousand megabyte-scale threads, which
is the motivation for memory-aliasing stacks; on 64-bit machines it is
effectively unbounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

from repro.errors import VMError

__all__ = ["Region", "AddressSpaceLayout", "KB", "MB", "GB", "TB"]

KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB


@dataclass(frozen=True)
class Region:
    """A named, contiguous range ``[start, start+size)`` of virtual addresses."""

    name: str
    start: int
    size: int

    @property
    def end(self) -> int:
        """One past the last address in the region."""
        return self.start + self.size

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside the region."""
        return self.start <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        """Whether two regions share any address."""
        return self.start < other.end and other.start < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Region {self.name} [{self.start:#x}, {self.end:#x})>"


class AddressSpaceLayout:
    """Region map plus word size and page size for one machine model.

    Standard regions (all layouts define these names):

    ``text``
        Program code; mapped read-execute.
    ``data``
        Global variables and the Global Offset Table.
    ``heap``
        Conventional (non-isomalloc) heap, grows upward.
    ``iso``
        The isomalloc region, partitioned cluster-wide into per-processor
        slots (Figure 2).
    ``stack``
        The system stack area.  The *common stack address* used by
        stack-copying and memory-aliasing threads lives here.
    """

    def __init__(self, word_bits: int, page_size: int, regions: Iterable[Region]):
        if word_bits not in (32, 64):
            raise VMError(f"word_bits must be 32 or 64, got {word_bits}")
        self.word_bits = word_bits
        self.word_bytes = word_bits // 8
        self.page_size = page_size
        self.regions: Dict[str, Region] = {}
        for region in regions:
            if region.start % page_size or region.size % page_size:
                raise VMError(f"region {region.name} is not page aligned")
            for existing in self.regions.values():
                if existing.overlaps(region):
                    raise VMError(f"region {region.name} overlaps {existing.name}")
            self.regions[region.name] = region
        for required in ("text", "data", "heap", "iso", "stack"):
            if required not in self.regions:
                raise VMError(f"layout missing required region {required!r}")

    # -- address helpers ----------------------------------------------------

    @property
    def address_limit(self) -> int:
        """Total size of the virtual address space."""
        return 1 << self.word_bits

    def page_of(self, address: int) -> int:
        """Virtual page number containing ``address``."""
        return address // self.page_size

    def page_base(self, address: int) -> int:
        """Base address of the page containing ``address``."""
        return address - (address % self.page_size)

    def page_align_up(self, length: int) -> int:
        """Round ``length`` up to a whole number of pages."""
        return -(-length // self.page_size) * self.page_size

    def pages_for(self, length: int) -> int:
        """Number of pages needed to cover ``length`` bytes."""
        return -(-length // self.page_size)

    def region_of(self, address: int) -> Region:
        """Return the region containing ``address``.

        Raises
        ------
        VMError
            If the address is outside every region.
        """
        for region in self.regions.values():
            if region.contains(address):
                return region
        raise VMError(f"address {address:#x} falls outside every region")

    # -- canned layouts -----------------------------------------------------

    @classmethod
    def small32(cls, page_size: int = 4096) -> "AddressSpaceLayout":
        """A conventional 32-bit layout (x86 Linux flavored).

        1 GiB is reserved for the kernel (not represented as a usable
        region), and roughly 2 GiB between heap and stack forms the
        isomalloc region — enough that megabyte-scale thread slots exhaust
        it after a few thousand threads, per Section 3.4.2.
        """
        return cls(
            word_bits=32,
            page_size=page_size,
            regions=[
                # Starts are 64 KiB-aligned so large-page machine models
                # (e.g. the page-size ablation) can share the layout.
                Region("text", 0x0805_0000, 16 * MB),
                Region("data", 0x0905_0000, 64 * MB),
                Region("heap", 0x0D05_0000, 256 * MB),
                Region("iso", 0x2000_0000, 0x9E00_0000),  # ~2.47 GiB
                Region("stack", 0xBE00_0000, 16 * MB),
            ],
        )

    @classmethod
    def large64(cls, page_size: int = 4096) -> "AddressSpaceLayout":
        """A 64-bit layout with a terabyte-scale isomalloc region.

        Matches the paper's observation that 64-bit machines "normally have
        terabytes of virtual memory space available, and so never suffer
        from this problem".
        """
        return cls(
            word_bits=64,
            page_size=page_size,
            regions=[
                Region("text", 0x0000_0000_0040_0000, 64 * MB),
                Region("data", 0x0000_0000_0440_0000, 1 * GB),
                Region("heap", 0x0000_0000_4440_0000, 63 * GB),
                Region("iso", 0x0000_1000_0000_0000, 16 * TB),
                Region("stack", 0x0000_7000_0000_0000, 1 * GB),
            ],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<AddressSpaceLayout {self.word_bits}-bit, {len(self.regions)} regions>"
