"""Simulated address spaces: mappings, reads/writes, and remapping.

An :class:`AddressSpace` combines an :class:`~repro.vm.layout.AddressSpaceLayout`
(where regions live), a :class:`~repro.vm.pagetable.PageTable` (what is
mapped), and a :class:`~repro.vm.physical.PhysicalMemory` pool (what is
resident).  It exposes the handful of operations the paper's techniques are
built from:

* ``mmap``/``munmap`` with either kernel-chosen or fixed addresses;
* *reserved* mappings that consume virtual address space but no physical
  frames — how isomalloc claims remote threads' slots "only in principle";
* ``attach_frames``/``detach_frames`` to make a reserved range resident or
  strip its frames out (a migration departing/arriving);
* ``remap_frames`` to alias a different set of physical frames under an
  existing virtual range — the memory-aliasing stack switch (Figure 3);
* byte and word reads/writes with protection checking, so simulated
  pointers stored in simulated memory behave like real ones.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    MapError,
    OutOfVirtualAddressSpace,
    PageFault,
    ProtectionFault,
    SegmentationFault,
    VMError,
)
from repro.vm.layout import AddressSpaceLayout
from repro.vm.pagetable import PageTable, Protection
from repro.vm.physical import Frame, PhysicalMemory

__all__ = ["Mapping", "AddressSpace"]


class Mapping:
    """One contiguous mmap'ed range within an address space."""

    __slots__ = ("start", "length", "prot", "region", "tag", "reserved")

    def __init__(self, start: int, length: int, prot: Protection,
                 region: str, tag: str, reserved: bool):
        self.start = start
        self.length = length
        self.prot = prot
        self.region = region
        #: Free-form label ("stack of thread 7", "GOT", ...), for debugging
        #: and for migration bookkeeping.
        self.tag = tag
        #: True if created without physical backing (isomalloc remote claim).
        self.reserved = reserved

    @property
    def end(self) -> int:
        """One past the mapping's last address."""
        return self.start + self.length

    def contains(self, address: int) -> bool:
        """Whether ``address`` falls inside this mapping."""
        return self.start <= address < self.end

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "reserved" if self.reserved else "mapped"
        return f"<Mapping {self.tag!r} [{self.start:#x},{self.end:#x}) {kind}>"


class _FreeList:
    """First-fit free-interval allocator over one region's address range.

    Intervals are kept sorted and non-adjacent, so fixed allocation and
    release locate their interval with :func:`bisect.bisect_right` —
    O(log n) plus a list shift — which matters when tens of thousands of
    thread stacks live in one region.
    """

    def __init__(self, start: int, end: int):
        self._intervals: List[Tuple[int, int]] = [(start, end)]

    def allocate(self, length: int, align: int) -> int:
        """Carve out an aligned range of ``length`` bytes; first fit."""
        for i, (lo, hi) in enumerate(self._intervals):
            base = -(-lo // align) * align
            if base + length <= hi:
                self._remove_range(i, lo, hi, base, base + length)
                return base
        raise OutOfVirtualAddressSpace(
            f"no free interval of {length} bytes (align {align})"
        )

    def allocate_fixed(self, start: int, length: int) -> None:
        """Carve out exactly ``[start, start+length)``; error if not free."""
        end = start + length
        i = bisect.bisect_right(self._intervals, (start, float("inf"))) - 1
        if i >= 0:
            lo, hi = self._intervals[i]
            if lo <= start and end <= hi:
                self._remove_range(i, lo, hi, start, end)
                return
        raise MapError(f"fixed range [{start:#x},{end:#x}) is not free")

    def release(self, start: int, length: int) -> None:
        """Return ``[start, start+length)`` to the free list, merging."""
        end = start + length
        iv = self._intervals
        i = bisect.bisect_right(iv, (start, float("inf")))
        # Overlap check against the neighbors.
        if i > 0 and iv[i - 1][1] > start:
            raise MapError(
                f"release [{start:#x},{end:#x}) overlaps free interval")
        if i < len(iv) and iv[i][0] < end:
            raise MapError(
                f"release [{start:#x},{end:#x}) overlaps free interval")
        merge_left = i > 0 and iv[i - 1][1] == start
        merge_right = i < len(iv) and iv[i][0] == end
        if merge_left and merge_right:
            iv[i - 1] = (iv[i - 1][0], iv[i][1])
            del iv[i]
        elif merge_left:
            iv[i - 1] = (iv[i - 1][0], end)
        elif merge_right:
            iv[i] = (start, iv[i][1])
        else:
            iv.insert(i, (start, end))

    def free_bytes(self) -> int:
        """Total bytes currently free."""
        return sum(hi - lo for lo, hi in self._intervals)

    def largest_free(self) -> int:
        """Size of the largest free interval."""
        return max((hi - lo for lo, hi in self._intervals), default=0)

    def _remove_range(self, i: int, lo: int, hi: int, start: int, end: int) -> None:
        repl: List[Tuple[int, int]] = []
        if lo < start:
            repl.append((lo, start))
        if end < hi:
            repl.append((end, hi))
        self._intervals[i:i + 1] = repl


class AddressSpace:
    """A simulated process address space.

    Parameters
    ----------
    layout:
        Region map, word size and page size.
    physical:
        Frame pool backing resident pages (typically shared by every address
        space on one simulated processor).
    name:
        Identifier used in fault messages.
    """

    def __init__(self, layout: AddressSpaceLayout, physical: PhysicalMemory,
                 name: str = "anon"):
        if physical.page_size != layout.page_size:
            raise VMError("physical page size differs from layout page size")
        self.layout = layout
        self.physical = physical
        self.name = name
        self.pagetable = PageTable()
        self._mappings: Dict[int, Mapping] = {}       # keyed by start address
        self._free: Dict[str, _FreeList] = {
            rname: _FreeList(r.start, r.end) for rname, r in layout.regions.items()
        }
        # -- accounting (read by cost models and by the benchmarks) --------
        self.mmap_calls = 0
        self.munmap_calls = 0
        self.remap_calls = 0
        self.page_faults = 0
        self.cow_breaks = 0
        self.bytes_copied = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    # mapping management
    # ------------------------------------------------------------------

    def mmap(self, length: int, prot: Protection = Protection.RW, *,
             region: str = "heap", addr: Optional[int] = None,
             reserve_only: bool = False, tag: str = "") -> Mapping:
        """Create a new mapping.

        Parameters
        ----------
        length:
            Bytes to map; rounded up to whole pages.
        prot:
            Protection bits for every page of the mapping.
        region:
            Which layout region to allocate from when ``addr`` is ``None``.
        addr:
            Fixed start address (must be page aligned and free), or ``None``
            to let the allocator choose — like ``MAP_FIXED`` vs. not.
        reserve_only:
            If true, claim the virtual range without assigning physical
            frames.  Reads/writes fault until :meth:`attach_frames`.
        tag:
            Debugging/bookkeeping label.
        """
        if length <= 0:
            raise MapError(f"mmap length must be positive, got {length}")
        length = self.layout.page_align_up(length)
        if addr is None:
            start = self._free[region].allocate(length, self.layout.page_size)
        else:
            if addr % self.layout.page_size:
                raise MapError(f"fixed mmap address {addr:#x} not page aligned")
            region = self.layout.region_of(addr).name
            self._free[region].allocate_fixed(addr, length)
            start = addr
        npages = length // self.layout.page_size
        first_vpn = self.layout.page_of(start)
        if reserve_only:
            for vpn in range(first_vpn, first_vpn + npages):
                self.pagetable.map(vpn, None, prot)
        else:
            try:
                frames = self.physical.allocate_frames(npages)
            except Exception:
                self._free[region].release(start, length)
                raise
            for i, vpn in enumerate(range(first_vpn, first_vpn + npages)):
                self.pagetable.map(vpn, frames[i], prot)
        mapping = Mapping(start, length, prot, region, tag, reserve_only)
        self._mappings[start] = mapping
        self.mmap_calls += 1
        return mapping

    def munmap(self, mapping: Mapping) -> None:
        """Destroy a mapping, freeing any resident frames."""
        if self._mappings.get(mapping.start) is not mapping:
            raise MapError(f"mapping {mapping!r} not found in {self.name!r}")
        first_vpn = self.layout.page_of(mapping.start)
        npages = mapping.length // self.layout.page_size
        for vpn in range(first_vpn, first_vpn + npages):
            pte = self.pagetable.unmap(vpn)
            if pte.frame is not None:
                self.physical.free_frame(pte.frame)
        self._free[mapping.region].release(mapping.start, mapping.length)
        del self._mappings[mapping.start]
        self.munmap_calls += 1

    def mprotect(self, mapping: Mapping, prot: Protection) -> None:
        """Change every page's protection bits in an existing mapping."""
        if self._mappings.get(mapping.start) is not mapping:
            raise MapError(f"mapping {mapping!r} not found in {self.name!r}")
        first_vpn = self.layout.page_of(mapping.start)
        npages = mapping.length // self.layout.page_size
        for vpn in range(first_vpn, first_vpn + npages):
            self.pagetable.protect(vpn, prot)
        mapping.prot = prot

    def mapping_at(self, address: int) -> Optional[Mapping]:
        """Return the mapping containing ``address``, or ``None``."""
        # Mappings are few per space in practice; linear scan keeps the
        # structure simple.  Hot paths (read/write) go through the page
        # table instead.
        for m in self._mappings.values():
            if m.contains(address):
                return m
        return None

    def mappings(self) -> List[Mapping]:
        """All current mappings (unordered)."""
        return list(self._mappings.values())

    # ------------------------------------------------------------------
    # frame attachment (isomalloc migrate-in/out) and aliasing
    # ------------------------------------------------------------------

    def attach_frames(self, mapping: Mapping, frames: List[Frame]) -> None:
        """Back a reserved mapping with physical frames (migrate-in)."""
        npages = mapping.length // self.layout.page_size
        if len(frames) != npages:
            raise MapError(f"need {npages} frames, got {len(frames)}")
        first_vpn = self.layout.page_of(mapping.start)
        for i, vpn in enumerate(range(first_vpn, first_vpn + npages)):
            pte = self.pagetable.lookup(vpn)
            if pte is None:
                raise MapError(f"page {vpn} of {mapping!r} not mapped")
            if pte.frame is not None:
                raise MapError(f"page {vpn} of {mapping!r} already resident")
            pte.frame = frames[i]
        mapping.reserved = False
        self.remap_calls += 1

    def detach_frames(self, mapping: Mapping) -> List[Frame]:
        """Strip a mapping's frames, leaving the range reserved (migrate-out).

        The caller takes ownership of the returned frames; the virtual range
        stays claimed so no other allocation can reuse the addresses.
        """
        npages = mapping.length // self.layout.page_size
        first_vpn = self.layout.page_of(mapping.start)
        frames: List[Frame] = []
        for vpn in range(first_vpn, first_vpn + npages):
            pte = self.pagetable.lookup(vpn)
            if pte is None or pte.frame is None:
                raise MapError(f"page {vpn} of {mapping!r} not resident")
            frames.append(pte.frame)
            pte.frame = None
        mapping.reserved = True
        self.remap_calls += 1
        return frames

    def remap_frames(self, mapping: Mapping, frames: List[Frame]) -> List[Frame]:
        """Swap the physical frames under a mapping; return the old frames.

        This is the memory-aliasing context switch (paper Figure 3): the
        virtual range — the common stack address — is untouched, but a
        different thread's physical pages now appear behind it.  Neither set
        of frames is copied or freed; ownership of the displaced frames
        passes to the caller.
        """
        npages = mapping.length // self.layout.page_size
        if len(frames) != npages:
            raise MapError(f"need {npages} frames, got {len(frames)}")
        first_vpn = self.layout.page_of(mapping.start)
        old: List[Frame] = []
        for i, vpn in enumerate(range(first_vpn, first_vpn + npages)):
            pte = self.pagetable.lookup(vpn)
            if pte is None:
                raise MapError(f"page {vpn} of {mapping!r} not mapped")
            old.append(pte.frame)  # may be None for a reserved page
            pte.frame = frames[i]
        mapping.reserved = False
        self.remap_calls += 1
        return old

    # ------------------------------------------------------------------
    # loads and stores
    # ------------------------------------------------------------------

    def _translate(self, address: int, *, write: bool) -> Tuple[Frame, int]:
        vpn = self.layout.page_of(address)
        pte = self.pagetable.lookup(vpn)
        if pte is None:
            raise SegmentationFault(address, self.name)
        if pte.frame is None:
            self.page_faults += 1
            raise PageFault(address, self.name)
        needed = Protection.WRITE if write else Protection.READ
        if not pte.prot & needed:
            raise ProtectionFault(address, "write" if write else "read", self.name)
        if write and pte.cow:
            # Break the copy-on-write sharing: this owner gets a private
            # copy (or exclusive use, if it is the last sharer).
            self.cow_breaks += 1
            if pte.frame.refcount > 1:
                private = self.physical.allocate_frame()
                private.copy_from(pte.frame)
                self.physical.free_frame(pte.frame)   # drops one owner
                pte.frame = private
                self.bytes_copied += self.layout.page_size
            pte.cow = False
        return pte.frame, address % self.layout.page_size

    def read(self, address: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``address`` (may span pages)."""
        out = bytearray()
        remaining = length
        cursor = address
        page_size = self.layout.page_size
        while remaining > 0:
            frame, offset = self._translate(cursor, write=False)
            chunk = min(remaining, page_size - offset)
            out += frame.read(offset, chunk)
            cursor += chunk
            remaining -= chunk
        self.bytes_read += length
        return bytes(out)

    def write(self, address: int, payload: bytes) -> None:
        """Write ``payload`` starting at ``address`` (may span pages)."""
        cursor = address
        view = memoryview(payload)
        page_size = self.layout.page_size
        while view:
            frame, offset = self._translate(cursor, write=True)
            chunk = min(len(view), page_size - offset)
            frame.write(offset, bytes(view[:chunk]))
            cursor += chunk
            view = view[chunk:]
        self.bytes_written += len(payload)

    def read_word(self, address: int) -> int:
        """Read one machine word (layout word size, little endian)."""
        return int.from_bytes(self.read(address, self.layout.word_bytes), "little")

    def write_word(self, address: int, value: int) -> None:
        """Write one machine word (layout word size, little endian)."""
        self.write(address, value.to_bytes(self.layout.word_bytes, "little", signed=False))

    def memset(self, address: int, value: int, length: int) -> None:
        """Fill ``length`` bytes at ``address`` with ``value``."""
        self.write(address, bytes([value]) * length)

    def memcpy_in(self, dst: int, src: int, length: int) -> None:
        """Copy ``length`` bytes within this address space, counting the copy."""
        self.write(dst, self.read(src, length))
        self.bytes_copied += length

    # ------------------------------------------------------------------
    # interrogation
    # ------------------------------------------------------------------

    def is_mapped(self, address: int) -> bool:
        """Whether the page containing ``address`` has any mapping."""
        return self.pagetable.lookup(self.layout.page_of(address)) is not None

    def is_resident(self, address: int) -> bool:
        """Whether the page containing ``address`` has a physical frame."""
        pte = self.pagetable.lookup(self.layout.page_of(address))
        return pte is not None and pte.frame is not None

    @property
    def mapped_bytes(self) -> int:
        """Total virtual bytes claimed by mappings (resident or reserved)."""
        return sum(m.length for m in self._mappings.values())

    @property
    def resident_bytes(self) -> int:
        """Total bytes backed by physical frames."""
        return self.pagetable.resident_pages() * self.layout.page_size

    def region_free_bytes(self, region: str) -> int:
        """Free virtual address space remaining in ``region``."""
        return self._free[region].free_bytes()

    def region_largest_free(self, region: str) -> int:
        """Largest contiguous free range in ``region``."""
        return self._free[region].largest_free()

    # ------------------------------------------------------------------
    # process-model support
    # ------------------------------------------------------------------

    def fork_copy(self, name: str, cow: bool = False) -> "AddressSpace":
        """Duplicate this address space (fork()).

        With ``cow=False`` every resident page is eagerly copied — the
        ancient fork.  With ``cow=True`` parent and child *share* frames
        marked copy-on-write (for writable pages), and the first write on
        either side pays the copy — the modern fork, which is why process
        creation looks cheap until the child touches its memory.  Either
        way the paper's point stands: full separation of state makes
        processes "heavy-weight" in total memory once both sides write.
        """
        child = AddressSpace(self.layout, self.physical, name)
        page = self.layout.page_size
        for m in self._mappings.values():
            cm = child.mmap(m.length, m.prot, addr=m.start,
                            reserve_only=True, tag=m.tag)
            if m.reserved:
                continue
            npages = m.length // page
            first_vpn = self.layout.page_of(m.start)
            if cow:
                writable = bool(m.prot & Protection.WRITE)
                for vpn in range(first_vpn, first_vpn + npages):
                    src = self.pagetable.lookup(vpn)
                    assert src is not None and src.frame is not None
                    self.physical.share_frame(src.frame)
                    dst = child.pagetable.lookup(vpn)
                    assert dst is not None
                    dst.frame = src.frame
                    if writable:
                        src.cow = True
                        dst.cow = True
                cm.reserved = False
            else:
                frames = self.physical.allocate_frames(npages)
                for i, vpn in enumerate(range(first_vpn,
                                              first_vpn + npages)):
                    src = self.pagetable.lookup(vpn)
                    assert src is not None and src.frame is not None
                    frames[i].copy_from(src.frame)
                child.attach_frames(cm, frames)
                child.bytes_copied += m.length
        return child

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<AddressSpace {self.name!r} {len(self._mappings)} mappings, "
                f"{self.resident_bytes} resident bytes>")
