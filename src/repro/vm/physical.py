"""Physical memory: page frames and the frame allocator.

Physical memory is a pool of fixed-size page frames.  Frames are the unit of
residency accounting: isomalloc reserves *virtual* ranges cluster-wide but
only assigns frames to locally-resident threads ("Addresses used by all
remote threads are claimed only in principle, but never actually allocated
physical memory unless that remote thread migrates in", paper Section 3.4.2).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import OutOfPhysicalMemory, VMError

__all__ = ["Frame", "PhysicalMemory"]


class Frame:
    """One physical page frame.

    A frame owns its backing :class:`bytearray` lazily: frames that have
    never been written report as zero-filled without allocating host memory,
    which lets tests build simulated machines with gigabytes of "physical"
    memory cheaply.
    """

    __slots__ = ("index", "page_size", "_data", "pinned", "allocated",
                 "refcount")

    def __init__(self, index: int, page_size: int):
        self.index = index
        self.page_size = page_size
        self._data: Optional[bytearray] = None
        #: Pinned frames may not be freed (used for kernel-reserved pages).
        self.pinned = False
        #: Whether the frame is currently handed out by its pool.
        self.allocated = True
        #: Owners sharing this frame (copy-on-write fork raises it).
        self.refcount = 1

    @property
    def data(self) -> bytearray:
        """Backing bytes, materialized on first touch."""
        if self._data is None:
            self._data = bytearray(self.page_size)
        return self._data

    @property
    def materialized(self) -> bool:
        """Whether the frame has host-memory backing yet."""
        return self._data is not None

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at ``offset`` within the frame."""
        if offset < 0 or offset + length > self.page_size:
            raise VMError(f"frame read out of range: {offset}+{length} > {self.page_size}")
        if self._data is None:
            return bytes(length)
        return bytes(self._data[offset:offset + length])

    def write(self, offset: int, payload: bytes) -> None:
        """Write ``payload`` at ``offset`` within the frame."""
        if offset < 0 or offset + len(payload) > self.page_size:
            raise VMError(f"frame write out of range: {offset}+{len(payload)} > {self.page_size}")
        self.data[offset:offset + len(payload)] = payload

    def zero(self) -> None:
        """Reset the frame to all-zero (drops host backing)."""
        self._data = None

    def copy_from(self, other: "Frame") -> None:
        """Copy another frame's contents into this one."""
        if other.page_size != self.page_size:
            raise VMError("frame size mismatch in copy_from")
        if other._data is None:
            self._data = None
        else:
            self.data[:] = other._data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "materialized" if self.materialized else "zero"
        return f"<Frame #{self.index} {state}>"


class PhysicalMemory:
    """A pool of physical page frames with a simple free-list allocator.

    Parameters
    ----------
    total_bytes:
        Size of simulated physical memory.  Must be a multiple of
        ``page_size``.
    page_size:
        Frame size in bytes (default 4 KiB, like the paper's x86 targets).
    """

    def __init__(self, total_bytes: int, page_size: int = 4096):
        if page_size <= 0 or page_size & (page_size - 1):
            raise VMError(f"page_size must be a power of two, got {page_size}")
        if total_bytes % page_size:
            raise VMError("total_bytes must be a multiple of page_size")
        self.page_size = page_size
        self.total_frames = total_bytes // page_size
        self._frames: dict[int, Frame] = {}
        self._next_unused = 0
        self._free: list[int] = []
        #: Cumulative allocation statistics (never reset by free()).
        self.frames_allocated_ever = 0

    # -- capacity ----------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Total simulated physical capacity in bytes."""
        return self.total_frames * self.page_size

    @property
    def frames_in_use(self) -> int:
        """Number of currently-allocated frames."""
        return self._next_unused - len(self._free)

    @property
    def bytes_in_use(self) -> int:
        """Bytes of physical memory currently allocated."""
        return self.frames_in_use * self.page_size

    @property
    def frames_free(self) -> int:
        """Number of frames still available."""
        return self.total_frames - self.frames_in_use

    # -- allocation --------------------------------------------------------

    def allocate_frame(self) -> Frame:
        """Allocate one zeroed frame.

        Raises
        ------
        OutOfPhysicalMemory
            If the pool is exhausted.
        """
        if self._free:
            index = self._free.pop()
            frame = self._frames[index]
            frame.zero()
            frame.allocated = True
            frame.refcount = 1
        else:
            if self._next_unused >= self.total_frames:
                raise OutOfPhysicalMemory(
                    f"physical memory exhausted: {self.total_frames} frames "
                    f"({self.total_bytes} bytes) all in use"
                )
            index = self._next_unused
            self._next_unused += 1
            frame = Frame(index, self.page_size)
            self._frames[index] = frame
        self.frames_allocated_ever += 1
        return frame

    def allocate_frames(self, count: int) -> list[Frame]:
        """Allocate ``count`` frames, all-or-nothing."""
        if count > self.frames_free:
            raise OutOfPhysicalMemory(
                f"requested {count} frames but only {self.frames_free} free"
            )
        return [self.allocate_frame() for _ in range(count)]

    def free_frame(self, frame: Frame) -> None:
        """Return a frame to the pool."""
        if frame.pinned:
            raise VMError(f"cannot free pinned frame #{frame.index}")
        if self._frames.get(frame.index) is not frame:
            raise VMError(f"frame #{frame.index} does not belong to this pool")
        if not frame.allocated:
            raise VMError(f"double free of frame #{frame.index}")
        if frame.refcount > 1:
            # A shared (COW) frame: drop one owner, keep the memory.
            frame.refcount -= 1
            return
        frame.zero()
        frame.allocated = False
        self._free.append(frame.index)

    def share_frame(self, frame: Frame) -> Frame:
        """Add an owner to a frame (copy-on-write sharing)."""
        if self._frames.get(frame.index) is not frame or not frame.allocated:
            raise VMError(f"cannot share frame #{frame.index}")
        frame.refcount += 1
        return frame

    def free_frames(self, frames: list[Frame]) -> None:
        """Return several frames to the pool."""
        for f in frames:
            self.free_frame(f)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<PhysicalMemory {self.frames_in_use}/{self.total_frames} frames "
                f"({self.page_size}B pages)>")
