"""Page tables: virtual-page to physical-frame mappings with protections."""

from __future__ import annotations

import enum
from typing import Iterator, Optional

from repro.errors import MapError
from repro.vm.physical import Frame

__all__ = ["Protection", "PageTableEntry", "PageTable"]


class Protection(enum.Flag):
    """Page protection bits (a subset of mmap's PROT_*)."""

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    EXEC = enum.auto()
    #: Convenience combination used by almost every data mapping.
    RW = READ | WRITE
    #: Convenience combination for text segments.
    RX = READ | EXEC


class PageTableEntry:
    """One virtual page's mapping.

    ``frame is None`` encodes a *reserved* page: the virtual range is claimed
    (isomalloc-style "claimed only in principle") but touching it raises
    :class:`~repro.errors.PageFault` until a frame is attached.
    """

    __slots__ = ("frame", "prot", "cow")

    def __init__(self, frame: Optional[Frame], prot: Protection):
        self.frame = frame
        self.prot = prot
        #: Copy-on-write: the frame is shared; the first write copies it.
        self.cow = False

    @property
    def resident(self) -> bool:
        """Whether the page has a physical frame behind it."""
        return self.frame is not None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        backing = f"frame#{self.frame.index}" if self.frame else "reserved"
        return f"<PTE {backing} {self.prot}>"


class PageTable:
    """Sparse map from virtual page number to :class:`PageTableEntry`.

    The table knows nothing about address-space layout or frame ownership;
    :class:`repro.vm.AddressSpace` layers policy on top.
    """

    def __init__(self) -> None:
        self._entries: dict[int, PageTableEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def lookup(self, vpn: int) -> Optional[PageTableEntry]:
        """Return the entry for virtual page ``vpn``, or ``None``."""
        return self._entries.get(vpn)

    def map(self, vpn: int, frame: Optional[Frame], prot: Protection) -> PageTableEntry:
        """Install a mapping for ``vpn``; the page must not already be mapped."""
        if vpn in self._entries:
            raise MapError(f"virtual page {vpn} already mapped")
        pte = PageTableEntry(frame, prot)
        self._entries[vpn] = pte
        return pte

    def remap(self, vpn: int, frame: Optional[Frame]) -> PageTableEntry:
        """Replace the frame behind an existing mapping (memory aliasing).

        This is the primitive behind the paper's memory-aliasing stacks: the
        virtual page keeps its address and protections, but the physical
        frame behind it changes (Section 3.4.3, Figure 3).
        """
        pte = self._entries.get(vpn)
        if pte is None:
            raise MapError(f"virtual page {vpn} not mapped; cannot remap")
        pte.frame = frame
        return pte

    def protect(self, vpn: int, prot: Protection) -> None:
        """Change protections on an existing mapping (mprotect)."""
        pte = self._entries.get(vpn)
        if pte is None:
            raise MapError(f"virtual page {vpn} not mapped; cannot protect")
        pte.prot = prot

    def unmap(self, vpn: int) -> PageTableEntry:
        """Remove and return the mapping for ``vpn``."""
        try:
            return self._entries.pop(vpn)
        except KeyError:
            raise MapError(f"virtual page {vpn} not mapped; cannot unmap") from None

    def mapped_pages(self) -> Iterator[int]:
        """Iterate over all mapped virtual page numbers (unordered)."""
        return iter(self._entries)

    def resident_pages(self) -> int:
        """Count pages that currently have a physical frame."""
        return sum(1 for e in self._entries.values() if e.frame is not None)
