"""Memory-operation cost models (virtual nanoseconds).

The paper reports wall-clock microbenchmarks on 2003–2006 hardware.  We
reproduce the *shapes* of those measurements by charging each mechanism for
the operations it actually performs, using per-platform constants.  The
constants live here and in :mod:`repro.sim.platform`; the operation counts
come from the real behaviour of :class:`repro.vm.AddressSpace` and the stack
managers.

All costs are expressed in integer virtual nanoseconds so simulations are
exactly deterministic and platform-independent.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryCostModel"]


@dataclass(frozen=True)
class MemoryCostModel:
    """Costs of memory-system operations on one simulated platform.

    Attributes
    ----------
    memcpy_bytes_per_ns:
        Sustained copy bandwidth.  Stack-copying threads pay
        ``2 * stack_bytes / memcpy_bytes_per_ns`` per switch (copy out the
        old thread, copy in the new one).
    syscall_ns:
        Fixed cost of entering and leaving the kernel once.  The paper notes
        that "if a user-level thread context switch involves even one system
        call, most of the speed advantage of user-level threads is lost"
        (Section 4.3) — this constant is why.
    mmap_fixed_ns:
        Cost of one mmap/mremap call beyond the bare syscall (VMA bookkeeping).
    per_page_map_ns:
        Incremental cost per page of a mapping operation (page-table edits).
        This term gives memory-aliasing stacks their slow growth with stack
        size in Figure 9.
    tlb_flush_ns:
        Cost of the TLB shootdown a remap or address-space switch implies.
    page_fault_ns:
        Cost of servicing one soft page fault.
    page_zero_ns:
        Cost of zeroing a fresh page at allocation.
    """

    memcpy_bytes_per_ns: float = 2.0       # ~2 GB/s, early-2000s DDR
    syscall_ns: float = 300.0
    mmap_fixed_ns: float = 600.0
    per_page_map_ns: float = 55.0
    tlb_flush_ns: float = 500.0
    page_fault_ns: float = 2_000.0
    page_zero_ns: float = 800.0

    def memcpy_cost(self, nbytes: int) -> float:
        """Virtual ns to copy ``nbytes``."""
        return nbytes / self.memcpy_bytes_per_ns

    def mmap_cost(self, npages: int) -> float:
        """Virtual ns for one mapping call covering ``npages`` pages."""
        return self.syscall_ns + self.mmap_fixed_ns + self.per_page_map_ns * npages

    def remap_cost(self, npages: int) -> float:
        """Virtual ns for a remap (memory-aliasing switch) of ``npages``.

        A remap is a mapping call plus the TLB flush the aliasing requires.
        """
        return self.mmap_cost(npages) + self.tlb_flush_ns

    def fault_cost(self, nfaults: int) -> float:
        """Virtual ns for ``nfaults`` soft page faults."""
        return nfaults * self.page_fault_ns

    def allocation_cost(self, npages: int) -> float:
        """Virtual ns to allocate and zero ``npages`` fresh pages."""
        return self.mmap_cost(npages) + npages * self.page_zero_ns
