"""``python -m repro.obs`` — the trace analyzer CLI.

Subcommands:

``report <trace> [--json] [--windows N]``
    Analyze a JSON-lines kernel trace (written by
    ``KernelTracer.dump`` or ``RunObserver.dump``) into per-PE
    utilization, a load-imbalance timeline, the migration table, and
    message histograms.  ``--json`` emits the stable machine-readable
    report (sorted keys; the form golden fingerprints hash).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.obs.report import build_report, load_trace, render_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Projections-style analysis of repro kernel traces")
    sub = parser.add_subparsers(dest="command", required=True)

    rep = sub.add_parser("report", help="analyze a JSON-lines trace")
    rep.add_argument("trace", help="trace file from KernelTracer/RunObserver"
                                   ".dump()")
    rep.add_argument("--json", action="store_true",
                     help="emit the stable JSON report instead of tables")
    rep.add_argument("--windows", type=int, default=8,
                     help="imbalance-timeline resolution (default 8)")

    args = parser.parse_args(argv)
    try:
        entries = load_trace(args.trace)
        if not entries:
            print(f"error: {args.trace}: empty trace (no entries to "
                  "analyze)", file=sys.stderr)
            return 2
        report = build_report(entries, windows=args.windows)
    except (OSError, ReproError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2
    try:
        if args.json:
            print(json.dumps(report, sort_keys=True))
        else:
            print(render_report(report))
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe: that's fine, but
        # Python would print a traceback at interpreter exit unless the
        # dangling stdout is abandoned first.
        sys.stdout = None
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
