"""Bench workers for the perf-regression gate (``tools/bench_all.py``).

Each entry point follows the ``(params, seed) -> JSON-able dict`` worker
purity discipline from :mod:`repro.exec.runners`: it builds its world
through public constructors inside the call and returns plain numbers,
so the gate can run cells through any :class:`SweepExecutor` backend.

Every worker times a best-of-``repeats`` inner loop with
``time.perf_counter`` and reports **ns per operation** — the same
methodology as ``tools/bench_kernel.py`` — plus enough simulated-side
counters (events, moves, cells) for the gate to sanity-check that each
run did the same amount of work as the baseline it is compared against.
"""

from __future__ import annotations

import os
import time
from typing import Any, Dict, Optional

__all__ = ["run_kernel_bench", "run_cancel_bench", "run_migration_bench",
           "run_exec_bench", "run_lint_bench", "run_compiled_switch",
           "run_serve_dedupe", "run_query_filter", "run_noop_cell"]


def _best_of(repeats: int, fn) -> float:
    """Best wall-clock seconds over ``repeats`` calls of ``fn``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        # Measuring host time is this module's entire purpose; the
        # benches stay deterministic in their *workload*, not their
        # timings (the gate compares ratios, not fingerprints).
        # migralint: disable=DET001
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)  # migralint: disable=DET001
    return best


def run_kernel_bench(params: Dict[str, Any],
                     seed: Optional[int]) -> Dict[str, Any]:
    """Hooks-off dispatch throughput: ``{"events": n, "repeats": k}``.

    Times the fast-path ingest + drain (``post_batch`` + ``run``) — the
    loop event-compiled flows ride — with the timestamp list built
    outside the timed region so the metric is pure kernel cost.
    """
    from repro.kernel import EventKernel

    n = int(params.get("events", 20_000))
    repeats = int(params.get("repeats", 3))
    times = [float(i) for i in range(n)]
    nop = lambda: None  # noqa: E731 - minimal dispatch target

    def one_round():
        kernel = EventKernel(name="bench")
        kernel.post_batch(times, nop)
        kernel.run()

    best = _best_of(repeats, one_round)
    return {"events": n, "ns_per_event": best * 1e9 / n}


def run_cancel_bench(params: Dict[str, Any],
                     seed: Optional[int]) -> Dict[str, Any]:
    """Post-then-cancel half the events: timer-heavy workloads.

    ``post_batch`` + bulk ``cancel_slots`` on every other slot (the
    POSE-rollback shape) + a drain over the survivors.
    """
    from repro.kernel import EventKernel

    n = int(params.get("events", 20_000))
    repeats = int(params.get("repeats", 3))
    times = [float(i) for i in range(n)]
    nop = lambda: None  # noqa: E731

    def one_round():
        kernel = EventKernel(name="bench-cancel")
        items = kernel.post_batch(times, nop)
        kernel.cancel_slots(items[::2])
        kernel.run()

    best = _best_of(repeats, one_round)
    return {"events": n, "ns_per_event": best * 1e9 / n}


def run_migration_bench(params: Dict[str, Any],
                        seed: Optional[int]) -> Dict[str, Any]:
    """A small AMPI run that actually migrates ranks.

    ``{"ranks": r, "pes": p, "iterations": it, "repeats": k}`` — each
    rank does a ring exchange per iteration and hits an ``MPI_Migrate``
    barrier, so the timed path covers pack/ship/rebuild and the LB
    database, not just the kernels.
    """
    ranks = int(params.get("ranks", 8))
    pes = int(params.get("pes", 2))
    iterations = int(params.get("iterations", 2))
    repeats = int(params.get("repeats", 2))
    result: Dict[str, Any] = {}

    def one_round():
        from repro.ampi import AmpiRuntime

        def main(mpi):
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            for _ in range(iterations):
                mpi.charge(50_000.0 * (1 + mpi.rank % 3))
                mpi.send(right, mpi.rank, tag="ring", size_bytes=1024)
                yield from mpi.recv(left, tag="ring")
                yield from mpi.migrate()

        rt = AmpiRuntime(pes, ranks, main)
        rt.run()
        result["migrations"] = rt.migrator.migrations_completed
        result["makespan_ns"] = rt.makespan_ns

    best = _best_of(repeats, one_round)
    moves = max(1, result.get("migrations", 0))
    result.update({"ranks": ranks, "pes": pes, "iterations": iterations,
                   "wall_ms": best * 1e3,
                   "ns_per_migration": best * 1e9 / moves})
    return result


def run_lint_bench(params: Dict[str, Any],
                   seed: Optional[int]) -> Dict[str, Any]:
    """Full static-analysis pass: every rule plus the flow report.

    ``{"paths": [...], "flow": bool, "repeats": k}`` — times
    :func:`repro.analysis.analyze_paths` over the given repo-relative
    paths and (when ``flow`` is set) a full
    :func:`repro.analysis.flow.build_flow_report`, i.e. the exact work
    the lint gate and the compilability contract do per CI run.  The
    metric is ns per analyzed file so it tracks analyzer cost, not
    tree growth.
    """
    from repro.analysis import analyze_paths
    from repro.analysis.core import collect_files
    from repro.analysis.flow import build_flow_report
    from repro.analysis.flow.report import default_root

    root = default_root()
    paths = [os.path.join(root, p)
             for p in params.get("paths", ["src", "examples"])]
    flow = bool(params.get("flow", True))
    repeats = int(params.get("repeats", 2))
    files = collect_files(paths)

    def one_round():
        analyze_paths(paths)
        if flow:
            build_flow_report(root)

    best = _best_of(repeats, one_round)
    return {"files": len(files), "flow": flow,
            "ns_per_file": best * 1e9 / max(1, len(files))}


def run_compiled_switch(params: Dict[str, Any],
                        seed: Optional[int]) -> Dict[str, Any]:
    """Compiled-continuation context-switch throughput.

    ``{"flows": n, "rounds": r, "repeats": k}`` — compiles a spin
    workload once per round and drives ``flows`` continuation state
    machines through :meth:`FlowMechanism.run_workload` on the fast-path
    kernel.  The metric is host ns per dispatch (one trampoline step +
    kernel event), i.e. the switch cost the compiled mechanism trades
    against user-level threads.
    """
    from repro.flows import CompiledContinuationFlow
    from repro.flows.programs import spin_program
    from repro.sim import Processor, get_platform

    flows = int(params.get("flows", 5_000))
    rounds = int(params.get("rounds", 4))
    repeats = int(params.get("repeats", 3))
    counters: Dict[str, Any] = {}

    def one_round():
        mech = CompiledContinuationFlow(
            Processor(0, get_platform("linux_x86")))
        run = mech.run_workload(spin_program(flows, rounds),
                                real_flows=False)
        counters["dispatches"] = run.dispatches
        counters["kernel_events"] = run.kernel_events

    best = _best_of(repeats, one_round)
    return {"flows": flows, "rounds": rounds,
            "dispatches": counters["dispatches"],
            "kernel_events": counters["kernel_events"],
            "ns_per_dispatch": best * 1e9 / max(1, counters["dispatches"])}


def run_serve_dedupe(params: Dict[str, Any],
                     seed: Optional[int]) -> Dict[str, Any]:
    """The sweep service's cache-hit fast path: a fully deduped sweep.

    ``{"cells": n, "repeats": k}`` — populates a sharded
    :class:`~repro.exec.cache.ResultCache` with ``n`` no-op cells, then
    times re-running the identical sweep: every cell is a content-hash
    hit served from disk, which is the path an identical submission
    takes through ``repro.serve``.  The metric is host ns per deduped
    cell (hash the cell, find the shard, read + verify the entry,
    merge) — the marginal cost of serving a duplicate request.
    """
    import shutil
    import tempfile

    from repro.exec import Cell, ResultCache, SweepExecutor, SweepSpec

    n = int(params.get("cells", 256))
    repeats = int(params.get("repeats", 3))
    root = tempfile.mkdtemp(prefix="serve-dedupe-bench-")
    try:
        cache = ResultCache(root)
        cells = [Cell(experiment="dedupe",
                      runner="repro.obs.benches:run_noop_cell",
                      params={"i": i}, seed=i) for i in range(n)]
        spec = SweepSpec(name="bench-serve-dedupe", cells=cells)
        SweepExecutor(spec, cache=cache).run()          # populate: all miss

        hit_counts = []

        def one_round():
            results = SweepExecutor(spec, cache=cache).run()
            hit_counts.append(sum(1 for r in results if r.cached))

        best = _best_of(repeats, one_round)
        if any(hits != n for hits in hit_counts):       # pragma: no cover
            raise RuntimeError(f"dedupe bench expected {n} hits/round, "
                               f"got {hit_counts}")
        shards = cache.stats()["shards"]
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {"cells": n, "shards": shards, "ns_per_cell": best * 1e9 / n}


def run_query_filter(params: Dict[str, Any],
                     seed: Optional[int]) -> Dict[str, Any]:
    """Predicate evaluation throughput of the trace-query engine.

    ``{"entries": n, "repeats": k}`` — builds ``n`` synthetic trace
    entries shaped like a real kernel dump (a deterministic mix of
    ``schedule``/``end``/``send`` schemas, no RNG) outside the timed
    region, then times :func:`repro.query.engines.filter_entries` with
    a representative compiled predicate.  The metric is host ns per
    entry scanned — the marginal cost every ``repro.query filter`` and
    every canned obs-report view pays per trace line.
    """
    from repro.query.engines import compile_predicate, filter_entries

    n = int(params.get("entries", 100_000))
    repeats = int(params.get("repeats", 3))
    categories = ("net.ampi", "cth.resume", "lb.step", "")
    entries = []
    for i in range(n):
        e: Dict[str, Any] = {"ev": ("schedule", "end", "send")[i % 3],
                             "t": float(i * 17 % 1_000_000), "seq": i,
                             "category": categories[i % 4]}
        if e["ev"] == "end":
            e["skipped"] = (i % 9 == 0)
        elif e["ev"] == "send":
            e["bytes"] = 64 << (i % 7)
        entries.append(e)
    pred = compile_predicate(
        "ev == 'end' and not skipped and startswith(category, 'net.') "
        "or bytes >= 4096")
    matched: Dict[str, int] = {}

    def one_round():
        matched["n"] = len(filter_entries(entries, pred))

    best = _best_of(repeats, one_round)
    return {"entries": n, "matched": matched["n"],
            "ns_per_entry": best * 1e9 / n}


def run_noop_cell(params: Dict[str, Any],
                  seed: Optional[int]) -> Dict[str, Any]:
    """The cheapest possible worker: isolates executor overhead."""
    return {"ok": True, "seed": seed, "i": params.get("i", 0)}


def run_exec_bench(params: Dict[str, Any],
                   seed: Optional[int]) -> Dict[str, Any]:
    """Per-cell overhead of the sweep executor itself.

    Runs ``{"cells": n}`` no-op cells through a serial, cache-less
    :class:`SweepExecutor`; the reported per-cell cost is pure harness
    (spec hashing, result plumbing, progress hooks).
    """
    from repro.exec import Cell, SweepExecutor, SweepSpec

    n = int(params.get("cells", 64))
    repeats = int(params.get("repeats", 3))

    def one_round():
        cells = [Cell(experiment="noop",
                      runner="repro.obs.benches:run_noop_cell",
                      params={"i": i}, seed=i) for i in range(n)]
        spec = SweepSpec(name="bench-exec", cells=cells)
        SweepExecutor(spec).run()

    best = _best_of(repeats, one_round)
    return {"cells": n, "ns_per_cell": best * 1e9 / n}
