"""Projections-style post-mortem analysis of a kernel trace.

Given a JSON-lines trace written by :class:`~repro.kernel.KernelTracer`
(or its run-wide subclass :class:`~repro.obs.collect.RunObserver`),
:func:`build_report` computes the paper-reproduction's standard views:

* **per-PE utilization** — busy time integrated from the ``busy`` fields
  the observer attributes to each dispatch, against the run makespan;
* **load imbalance over time** — the makespan split into equal windows,
  each scored ``max(busy)/avg(busy)`` across PEs (1.0 = perfect);
* **migration table** — per (src, dst) move counts and bytes, split into
  completed moves and bounce-home returns, matching the
  :class:`~repro.core.migration.ThreadMigrator` counters exactly;
* **message histograms** — size and delivery-latency distributions over
  the fixed bucket layouts from :mod:`repro.obs.metrics`.

Every view degrades gracefully: a plain ``KernelTracer`` dump (no
``busy``/``send``/``migration`` entries) still yields category counts
and whatever the schema carries, with the missing sections marked
absent rather than wrong.  ``--json`` output is fully deterministic —
sorted keys, fixed buckets, no host timestamps — so fingerprints of it
are stable across runs (and are pinned by the golden-metrics tests).
"""

from __future__ import annotations

from typing import Any, Dict, List

# Re-exported here for backward compatibility; the loader lives with the
# tracer so every trace consumer shares one parsing/validation surface.
from repro.kernel.trace import load_trace
from repro.obs.metrics import BYTE_BUCKETS, Histogram, TIME_NS_BUCKETS
from repro.query.engines import (aggregate_entries, compile_predicate,
                                 filter_entries, trace_makespan,
                                 window_index)

__all__ = ["load_trace", "build_report", "render_report"]

# The report's fixed views are just canned queries; keeping them in the
# query language makes `python -m repro.query` and this report read the
# trace identically (and documents the schema each view depends on).
_IS_MIGRATION = compile_predicate("ev == 'migration'")
_IS_SEND = compile_predicate("ev == 'send'")
_IS_NET_DELIVERY = compile_predicate(
    "ev == 'end' and not skipped and startswith(category, 'net.') "
    "and has(sent)")
_IS_DISPATCH_END = "ev == 'end' and not skipped"


# ---------------------------------------------------------------------------


def _utilization(entries, makespan: float) -> Dict[str, Any]:
    busy: Dict[str, float] = {}
    for e in entries:
        for pe, ns in e.get("busy", {}).items():
            busy[pe] = busy.get(pe, 0.0) + ns
    pes = sorted(busy, key=int)
    return {
        "makespan_ns": makespan,
        "per_pe": {pe: {"busy_ns": busy[pe],
                        "util": busy[pe] / makespan if makespan > 0 else 0.0}
                   for pe in pes},
    }


def _imbalance_timeline(entries, makespan: float,
                        windows: int) -> List[Dict[str, Any]]:
    """Windowed max/avg busy-time ratio across PEs.

    Each dispatch's busy charge is attributed to the window containing
    its event time — a discretization (a long dispatch straddling a
    boundary lands entirely in one window), which is exactly what
    Projections' usage profile does at its display resolution.  The
    window index is clamped at *both* ends: an out-of-range timestamp
    (negative, or past the makespan) charges the nearest edge window,
    so Σ(window busy) always equals the trace's total busy time.
    """
    if makespan <= 0 or windows <= 0:
        return []
    pes: set = set()
    per_window: List[Dict[str, float]] = [dict() for _ in range(windows)]
    width = makespan / windows
    for e in entries:
        b = e.get("busy")
        if not b:
            continue
        w = window_index(e.get("t", 0.0), width, windows)
        acc = per_window[w]
        for pe, ns in b.items():
            pes.add(pe)
            acc[pe] = acc.get(pe, 0.0) + ns
    n_pes = len(pes)
    out = []
    for w, acc in enumerate(per_window):
        total = sum(acc.values())
        avg = total / n_pes if n_pes else 0.0
        peak = max(acc.values()) if acc else 0.0
        out.append({
            "t0": w * width,
            "t1": (w + 1) * width,
            "busy_ns": total,
            "imbalance": peak / avg if avg else 0.0,
        })
    return out


def _migration_table(entries) -> Dict[str, Any]:
    """Per-route move counts/bytes from ``migration`` entries.

    ``migration`` entries come from the ``migration.done`` channel and
    carry the post-fix accounting semantics: a bounce-home rebuild is
    ``returned``, not completed, so the ``completed`` total here agrees
    exactly with ``ThreadMigrator.migrations_completed``.
    """
    routes: Dict[tuple, Dict[str, Any]] = {}
    completed = returned = 0
    bytes_moved = 0
    for e in filter_entries(entries, _IS_MIGRATION):
        key = (e["src"], e["dst"])
        row = routes.setdefault(key, {"moves": 0, "returns": 0, "bytes": 0})
        if e.get("returned"):
            row["returns"] += 1
            returned += 1
        else:
            row["moves"] += 1
            completed += 1
        row["bytes"] += e.get("bytes", 0)
        bytes_moved += e.get("bytes", 0)
    return {
        "completed": completed,
        "returned": returned,
        "bytes": bytes_moved,
        "routes": [
            {"src": src, "dst": dst, **routes[(src, dst)]}
            for src, dst in sorted(routes)
        ],
    }


def _message_histograms(entries) -> Dict[str, Any]:
    sizes = Histogram("net.msg_bytes", BYTE_BUCKETS)
    latency = Histogram("net.latency_ns", TIME_NS_BUCKETS)
    for e in entries:
        if _IS_SEND(e):
            sizes.observe(e["bytes"])
        elif _IS_NET_DELIVERY(e):
            latency.observe(e["t"] - e["sent"])
    return {"sizes": sizes.snapshot(), "latency_ns": latency.snapshot()}


def _categories(entries) -> Dict[str, int]:
    result = aggregate_entries(filter_entries(entries, _IS_DISPATCH_END),
                               "count() by category")
    return {row["group"]["category"] or "uncategorized":
            row["aggregates"]["count()"]
            for row in result["rows"]}


# ---------------------------------------------------------------------------


def build_report(entries: List[Dict[str, Any]],
                 registry=None, windows: int = 8) -> Dict[str, Any]:
    """Compute the full report dict from trace ``entries``.

    The result is plain JSON-able data with deterministic ordering; pass
    an optional :class:`MetricsRegistry` to embed its snapshot.
    """
    makespan = trace_makespan(entries)
    report: Dict[str, Any] = {
        "events": len(entries),
        "utilization": _utilization(entries, makespan),
        "imbalance_timeline": _imbalance_timeline(entries, makespan,
                                                  windows),
        "migrations": _migration_table(entries),
        "messages": _message_histograms(entries),
        "categories": _categories(entries),
    }
    if registry is not None:
        report["metrics"] = registry.snapshot()
    return report


def _fmt_ns(ns: float) -> str:
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`build_report` output."""
    lines: List[str] = []
    util = report["utilization"]
    lines.append(f"== run: {report['events']} trace entries, makespan "
                 f"{_fmt_ns(util['makespan_ns'])}")

    lines.append("")
    lines.append("-- per-PE utilization")
    if util["per_pe"]:
        for pe, row in util["per_pe"].items():
            bar = "#" * int(round(row["util"] * 40))
            lines.append(f"  pe{pe:>3}  {_fmt_ns(row['busy_ns']):>10}  "
                         f"{row['util'] * 100:5.1f}%  {bar}")
    else:
        lines.append("  (trace carries no busy attribution — record it "
                     "with repro.obs.RunObserver)")

    timeline = report["imbalance_timeline"]
    if timeline:
        lines.append("")
        lines.append("-- load imbalance over time (max/avg busy per window;"
                     " 1.00 = balanced)")
        for w in timeline:
            mark = "*" * int(round(min(w["imbalance"], 5.0) * 8))
            lines.append(f"  [{_fmt_ns(w['t0']):>10} .. "
                         f"{_fmt_ns(w['t1']):>10}]  "
                         f"{w['imbalance']:5.2f}  {mark}")

    mig = report["migrations"]
    lines.append("")
    lines.append(f"-- migrations: {mig['completed']} completed, "
                 f"{mig['returned']} returned, {mig['bytes']}B shipped")
    for row in mig["routes"]:
        lines.append(f"  pe{row['src']} -> pe{row['dst']}: "
                     f"{row['moves']} moves, {row['returns']} returns, "
                     f"{row['bytes']}B")

    msgs = report["messages"]
    lines.append("")
    lines.append(f"-- messages: {msgs['sizes']['count']} sends, "
                 f"{msgs['sizes']['total']:.0f}B total")
    for label, h in (("size", msgs["sizes"]),
                     ("latency", msgs["latency_ns"])):
        if not h["count"]:
            continue
        lines.append(f"   {label} histogram:")
        for bucket, n in h["buckets"].items():
            if n:
                lines.append(f"     {bucket:>12}  {n}")

    cats = report["categories"]
    if cats:
        lines.append("")
        lines.append("-- dispatches by category")
        for cat in sorted(cats):
            lines.append(f"  {cat:<24} {cats[cat]}")

    if "metrics" in report:
        m = report["metrics"]
        lines.append("")
        lines.append("-- metrics registry")
        for name, v in m["counters"].items():
            lines.append(f"  {name:<32} {v}")
        for name, v in m["gauges"].items():
            lines.append(f"  {name:<32} {v:g}")
    return "\n".join(lines)
