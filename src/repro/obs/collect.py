"""The run observer: one tracer + one metrics registry for a whole machine.

:class:`RunObserver` extends the kernel's :class:`KernelTracer` across a
full simulated run.  The base tracer watches one kernel; a run is many —
the cluster's network/timer kernel plus one Cth thread kernel per
processor — and the interesting numbers (per-PE busy time, message
volume, migrations) live on the runtime channels the kernels publish.
The observer therefore:

* attaches the inherited tracer to the **cluster kernel** (full
  schedule/begin/end/idle fidelity, exactly the KernelTracer schema);
* additionally subscribes its dispatch hooks on every **thread kernel**,
  recording their ``end`` entries into the same JSON-lines stream;
* attributes **per-PE busy time** to events: processor ``busy_ns`` is
  snapshotted around every dispatch, and each ``end`` entry carries a
  ``busy`` map (``pe -> ns charged``) and a ``clock`` map (``pe ->
  local virtual time``) for whichever processors advanced — the fields
  the Projections-style report integrates into utilization profiles and
  imbalance timelines.  Work the runtime driver charges outside any
  dispatch (checkpoint barriers, recovery) is flushed into standalone
  ``charge`` entries, so the per-entry ``busy`` maps sum exactly to
  every processor's final ``busy_ns``;
* subscribes the sanctioned channels — ``net.send``,
  ``migration.done``, ``checkpoint.write`` — recording ``send`` /
  ``migration`` / ``checkpoint`` entries and populating the
  :class:`~repro.obs.metrics.MetricsRegistry`.

Everything follows the hook bus's zero-cost-when-off discipline: an
unattached observer costs the kernels nothing but the one ``hot`` bool
they already check, and :meth:`RunObserver.detach` restores exactly that
state.  Nothing here mutates the run — subscribers return every filtered
value unchanged — so fault-injection determinism and chaos fingerprints
are identical with or without an observer attached (pinned by tests).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.kernel import KernelTracer
from repro.obs.metrics import (BYTE_BUCKETS, MetricsRegistry,
                               TIME_NS_BUCKETS)

__all__ = ["RunObserver"]


class RunObserver(KernelTracer):
    """Metrics + machine-wide trace for one :class:`Cluster` run.

    Parameters
    ----------
    cluster:
        The simulated machine whose kernel and channels to observe.
    schedulers:
        Optional per-PE :class:`CthScheduler`\\ s; their thread kernels'
        dispatches are folded into the same trace (context switches and
        the busy time charged by thread slices).
    registry:
        An existing :class:`MetricsRegistry` to populate, or ``None``
        for a fresh one.
    """

    def __init__(self, cluster, schedulers=(),
                 registry: Optional[MetricsRegistry] = None):
        super().__init__()
        self.cluster = cluster
        self.schedulers = list(schedulers)
        self.registry = registry or MetricsRegistry()
        self._procs = cluster.processors
        self._last_busy: Optional[List[float]] = None
        self._thread_kernels = [s.kernel for s in self.schedulers]
        self._attached_extra: List[Any] = []
        self._channel_subs: List[tuple] = []
        r = self.registry
        self._c_dispatched = r.counter("kernel.dispatched")
        self._c_switches = r.counter("kernel.switches")
        self._c_msgs = r.counter("net.messages")
        self._c_net_bytes = r.counter("net.bytes")
        self._h_msg_bytes = r.histogram("net.msg_bytes", BYTE_BUCKETS)
        self._h_latency = r.histogram("net.latency_ns", TIME_NS_BUCKETS)
        self._c_mig_done = r.counter("migration.completed")
        self._c_mig_ret = r.counter("migration.returned")
        self._c_mig_bytes = r.counter("migration.bytes")
        self._c_ckpt = r.counter("checkpoint.writes")
        self._c_ckpt_bytes = r.counter("checkpoint.bytes")

    @classmethod
    def for_ampi(cls, rt, registry: Optional[MetricsRegistry] = None
                 ) -> "RunObserver":
        """Observer over an :class:`AmpiRuntime`'s whole machine.

        Also points the runtime's LB database at the same registry, so
        every rebalance window publishes its imbalance reading.
        """
        obs = cls(rt.cluster, rt.schedulers, registry=registry)
        rt.db.attach_metrics(obs.registry)
        return obs

    # -- attachment -----------------------------------------------------

    def attach(self, kernel=None) -> "RunObserver":
        """Attach to the cluster kernel, thread kernels, and channels."""
        super().attach(kernel or self.cluster.queue.kernel)
        self._last_busy = [p.busy_ns for p in self._procs]
        #: Busy time already on the clocks when observation began (e.g.
        #: thread-creation costs charged at runtime construction); the
        #: trace attributes everything *after* this baseline, so
        #: ``sum(busy maps) == busy_ns - busy_at_attach`` exactly.
        self.busy_at_attach = tuple(self._last_busy)
        for k in self._thread_kernels:
            k.hooks.subscribe("on_dispatch_begin", self._on_begin)
            k.hooks.subscribe("on_dispatch_end", self._on_end)
            self._attached_extra.append(k)
        bus = self.cluster.queue.hooks
        for channel, fn in (("net.send", self._on_net_send),
                            ("migration.done", self._on_migration_done),
                            ("checkpoint.write", self._on_checkpoint)):
            bus.subscribe(channel, fn)
            self._channel_subs.append((bus, channel, fn))
        return self

    def detach(self) -> None:
        """Unsubscribe everywhere; all kernels return to the cold path."""
        for k in self._attached_extra:
            k.hooks.unsubscribe("on_dispatch_begin", self._on_begin)
            k.hooks.unsubscribe("on_dispatch_end", self._on_end)
        self._attached_extra = []
        for bus, channel, fn in self._channel_subs:
            bus.unsubscribe(channel, fn)
        self._channel_subs = []
        super().detach()

    # -- dispatch hooks --------------------------------------------------

    def _flush_outside(self, t: float) -> None:
        """Attribute busy time charged *outside* any observed dispatch.

        The runtime driver charges processors directly at points no
        kernel dispatches (coordinated checkpoint barriers, recovery
        rebuilds).  Flushing those deltas into their own ``charge``
        entries — rather than silently re-baselining past them — keeps
        the trace's invariant exact: summing every entry's ``busy`` map
        reproduces each processor's ``busy_ns`` to the nanosecond.
        """
        busy = self._last_busy
        if busy is None:
            return
        busy_map: Dict[str, float] = {}
        clock_map: Dict[str, float] = {}
        for i, p in enumerate(self._procs):
            delta = p.busy_ns - busy[i]
            if delta:
                busy_map[str(i)] = delta
                clock_map[str(i)] = p.now
                busy[i] = p.busy_ns
        if busy_map:
            self.entries.append({"ev": "charge", "t": t,
                                 "busy": busy_map, "clock": clock_map})

    def _on_begin(self, kernel, ev) -> None:
        # Charges since the last dispatch ended belong to the driver,
        # not to this event: flush them before baselining.
        self._flush_outside(ev.time)
        if kernel is self._kernel:
            super()._on_begin(kernel, ev)

    def _on_end(self, kernel, ev) -> None:
        if kernel is self._kernel:
            super()._on_end(kernel, ev)
            entry = self.entries[-1]
            skipped = entry.get("skipped", False)
        else:
            # A thread kernel's dispatch: same entry schema, same
            # aggregate counters; idle accounting stays cluster-only
            # (thread kernels run on FIFO priority keys, not time).
            entry = self._entry("end", kernel, ev)
            c = self.counters
            skipped = bool(kernel._skip)
            if skipped:
                entry["skipped"] = True
                c["skipped"] += 1
            else:
                c["dispatched"] += 1
                cat = ev.category or "uncategorized"
                by_cat = c["by_category"]
                by_cat[cat] = by_cat.get(cat, 0) + 1
                if cat == "cth.resume":
                    c["switches"] += 1
        if not skipped:
            self._c_dispatched.inc()
            if ev.category == "cth.resume":
                self._c_switches.inc()
            if (ev.category and ev.category.startswith("net.")
                    and "sent" in entry):
                self._h_latency.observe(ev.time - entry["sent"])
        busy = self._last_busy
        if busy is not None:
            busy_map: Dict[str, float] = {}
            clock_map: Dict[str, float] = {}
            for i, p in enumerate(self._procs):
                delta = p.busy_ns - busy[i]
                if delta:
                    busy_map[str(i)] = delta
                    clock_map[str(i)] = p.now
                    busy[i] = p.busy_ns
            if busy_map:
                entry["busy"] = busy_map
                entry["clock"] = clock_map

    # -- channel subscribers (all pass their value through unchanged) ---

    def _on_net_send(self, arrivals, msg=None, **ctx):
        if msg is not None:
            self._c_msgs.inc()
            self._c_net_bytes.inc(msg.size_bytes)
            self._h_msg_bytes.observe(msg.size_bytes)
            self.entries.append({
                "ev": "send", "t": msg.send_time, "src": msg.src,
                "dst": msg.dst, "bytes": msg.size_bytes, "tag": msg.tag})
        return arrivals

    def _on_migration_done(self, payload, **ctx):
        if payload.get("returned"):
            self._c_mig_ret.inc()
        else:
            self._c_mig_done.inc()
        self._c_mig_bytes.inc(payload["bytes"])
        entry = {"ev": "migration"}
        entry.update(payload)
        self.entries.append(entry)
        return payload

    def _on_checkpoint(self, blob, key=None, **ctx):
        self._c_ckpt.inc()
        self._c_ckpt_bytes.inc(len(blob))
        self.entries.append({"ev": "checkpoint", "key": key,
                             "bytes": len(blob)})
        return blob

    # -- finalization ---------------------------------------------------

    def finalize(self) -> MetricsRegistry:
        """Fold end-of-run state into the registry; returns it.

        Safe to call more than once (gauges are overwritten, and the
        per-PE busy integration lives in the trace, not in deltas here).
        """
        r = self.registry
        makespan = max((p.now for p in self._procs), default=0.0)
        self._flush_outside(makespan)  # tail charges after the last event
        r.gauge("run.makespan_ns").set(makespan)
        for p in self._procs:
            r.gauge(f"pe{p.id}.busy_ns").set(p.busy_ns)
            r.gauge(f"pe{p.id}.util").set(
                p.busy_ns / makespan if makespan else 0.0)
            r.gauge(f"pe{p.id}.messages_sent").set(p.messages_sent)
        return r

    def dump(self, path: str) -> int:
        self.finalize()
        return super().dump(path)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<RunObserver {len(self.entries)} entries over "
                f"{1 + len(self._thread_kernels)} kernel(s)>")
