"""The metrics registry: counters, gauges, deterministic histograms.

The paper's second half is a measurement argument, so the reproduction
gets a first-class metrics layer: a :class:`MetricsRegistry` holds named
:class:`Counter`\\ s, :class:`Gauge`\\ s, and :class:`Histogram`\\ s that
observability subscribers (see :mod:`repro.obs.collect`) populate from
the kernel's hook bus.  Everything here is engineered for determinism:

* histogram bucket layouts are **fixed at creation** (the default byte
  and nanosecond layouts below never depend on observed data), so two
  identical runs produce byte-identical snapshots;
* :meth:`MetricsRegistry.snapshot` renders every instrument in sorted
  name order with plain JSON-able values — the stable form the golden
  metrics fingerprints hash;
* nothing in this module reads the host clock or any RNG.  Host-side
  profiling lives in :mod:`repro.obs.profile` and stays out of the
  registry on purpose.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "BYTE_BUCKETS", "TIME_NS_BUCKETS", "RATIO_BUCKETS"]

#: Message/image sizes: powers of four from 64 B to 16 MiB.
BYTE_BUCKETS: Tuple[float, ...] = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 16777216)

#: Virtual durations: decades from 1 µs to 1 s (in nanoseconds).
TIME_NS_BUCKETS: Tuple[float, ...] = (
    1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9)

#: Load-imbalance ratios (max/avg; 1.0 is perfect balance).
RATIO_BUCKETS: Tuple[float, ...] = (1.0, 1.1, 1.25, 1.5, 2.0, 3.0, 5.0)


class Counter:
    """A monotonically increasing count (events, bytes, moves)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A point-in-time value (current utilization, epoch, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Fixed-bucket distribution: counts per ``value <= edge`` bucket.

    The bucket layout is immutable after construction — never derived
    from the data — so identical runs bucket identically and snapshots
    compare byte-for-byte.
    """

    __slots__ = ("name", "edges", "counts", "count", "total")

    def __init__(self, name: str, edges: Sequence[float] = BYTE_BUCKETS):
        if not edges or list(edges) != sorted(edges):
            raise ReproError(
                f"histogram {name!r} needs ascending bucket edges")
        self.name = name
        self.edges: Tuple[float, ...] = tuple(float(e) for e in edges)
        #: One count per edge plus the +inf overflow bucket.
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.edges, v)] += 1
        self.count += 1
        self.total += v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        buckets = {f"le_{edge:g}": n
                   for edge, n in zip(self.edges, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {"buckets": buckets, "count": self.count,
                "total": self.total}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Histogram {self.name} n={self.count} mean={self.mean:g}>"


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted in name order.

    One registry per observed run.  Names are namespaced with dots by
    convention (``net.messages``, ``migration.bytes``, ``pe0.busy_ns``);
    a name identifies exactly one instrument kind — asking for a counter
    named like an existing gauge is an error, not a shadow.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access ----------------------------------------------

    def _claim(self, name: str, kind: Dict) -> None:
        for table in (self._counters, self._gauges, self._histograms):
            if table is not kind and name in table:
                raise ReproError(
                    f"metric {name!r} already exists with a different kind")

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            self._claim(name, self._counters)
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            self._claim(name, self._gauges)
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str,
                  edges: Sequence[float] = BYTE_BUCKETS) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            self._claim(name, self._histograms)
            h = self._histograms[name] = Histogram(name, edges)
        elif tuple(float(e) for e in edges) != h.edges:
            raise ReproError(
                f"histogram {name!r} re-requested with different edges")
        return h

    def get(self, name: str) -> Optional[Any]:
        """Look up an existing instrument of any kind, or ``None``."""
        return (self._counters.get(name) or self._gauges.get(name)
                or self._histograms.get(name))

    # -- output ----------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Stable JSON-able view: every instrument, sorted by name."""
        return {
            "counters": {n: self._counters[n].value
                         for n in sorted(self._counters)},
            "gauges": {n: self._gauges[n].value
                       for n in sorted(self._gauges)},
            "histograms": {n: self._histograms[n].snapshot()
                           for n in sorted(self._histograms)},
        }

    def render(self) -> str:
        """Human-readable dump of the registry, sorted by name."""
        lines = []
        for name in sorted(self._counters):
            lines.append(f"{name:<32} {self._counters[name].value}")
        for name in sorted(self._gauges):
            lines.append(f"{name:<32} {self._gauges[name].value:g}")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(f"{name:<32} n={h.count} mean={h.mean:g} "
                         f"total={h.total:g}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<MetricsRegistry {len(self._counters)} counters, "
                f"{len(self._gauges)} gauges, "
                f"{len(self._histograms)} histograms>")
