"""Host-side phase profiling: where does the *emulator* spend its time?

The simulation charges virtual nanoseconds with perfect determinism; the
host process running it does not.  :class:`PhaseProfiler` measures the
skew — wall-clock and CPU seconds per named phase of a run, optionally
against the virtual time the cluster advanced during that phase — so a
slow experiment can be diagnosed (is the stencil compute expensive, or
is the checkpoint layer doing too much Python?).

Host timings are inherently nondeterministic, so they stay **out of**
the :class:`~repro.obs.metrics.MetricsRegistry` and out of every golden
fingerprint; this module is a diagnostic sidecar, never an input to a
deterministic report.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List, Optional

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates wall/CPU host time per named phase.

    Usage::

        prof = PhaseProfiler(cluster)
        with prof.phase("setup"):
            build_everything()
        with prof.phase("run"):
            cluster.run()
        print(prof.report())

    Phases may repeat (times accumulate) and nest (each phase bills its
    own span, including children — like a flat ``perf`` view, not a
    call tree).
    """

    def __init__(self, cluster=None):
        self.cluster = cluster
        self.phases: Dict[str, Dict[str, float]] = {}
        self._order: List[str] = []

    @contextmanager
    def phase(self, name: str):
        """Context manager billing its body's host time to ``name``."""
        row = self.phases.get(name)
        if row is None:
            row = self.phases[name] = {
                "wall_s": 0.0, "cpu_s": 0.0, "virtual_ns": 0.0, "hits": 0}
            self._order.append(name)
        # PhaseProfiler's one job is comparing host effort to simulated
        # progress — the sanctioned wall/CPU clock user (ISSUE 6).
        # migralint: disable=DET001
        wall0 = time.perf_counter()
        cpu0 = time.process_time()  # migralint: disable=DET001
        vt0 = self.cluster.time if self.cluster is not None else 0.0
        try:
            yield row
        finally:
            row["wall_s"] += time.perf_counter() - wall0  # migralint: disable=DET001
            row["cpu_s"] += time.process_time() - cpu0  # migralint: disable=DET001
            if self.cluster is not None:
                row["virtual_ns"] += self.cluster.time - vt0
            row["hits"] += 1

    def skew(self, name: str) -> Optional[float]:
        """Host seconds per simulated second for phase ``name``.

        ``None`` when the phase advanced no virtual time (setup phases)
        or was never entered.
        """
        row = self.phases.get(name)
        if not row or not row["virtual_ns"]:
            return None
        return row["wall_s"] / (row["virtual_ns"] * 1e-9)

    def report(self) -> str:
        """Aligned per-phase table, in first-entered order."""
        lines = ["phase                     wall(s)   cpu(s)  virt(ms)"
                 "     host-s/sim-s  hits"]
        for name in self._order:
            row = self.phases[name]
            skew = self.skew(name)
            skew_txt = f"{skew:15.1f}" if skew is not None else f"{'-':>15}"
            lines.append(
                f"{name:<24} {row['wall_s']:8.4f} {row['cpu_s']:8.4f} "
                f"{row['virtual_ns'] / 1e6:9.3f}  {skew_txt}  "
                f"{row['hits']:4d}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PhaseProfiler {len(self.phases)} phase(s)>"
