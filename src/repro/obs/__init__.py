"""repro.obs — the observability layer: metrics, traces, reports.

The paper's evaluation is a measurement story (per-PE utilization
before/after load balancing, migration cost curves, flow-creation
overheads), so the reproduction carries a first-class observability
layer riding the kernel's hook bus:

* :class:`MetricsRegistry` / :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` — deterministic instruments with fixed bucket
  layouts (:mod:`repro.obs.metrics`);
* :class:`RunObserver` — a run-wide :class:`KernelTracer` that also
  watches the thread kernels and the sanctioned runtime channels,
  attributing busy time per PE (:mod:`repro.obs.collect`);
* :func:`build_report` / ``python -m repro.obs report <trace>`` — the
  Projections-style post-mortem analyzer (:mod:`repro.obs.report`);
* :class:`PhaseProfiler` — host-side wall/CPU profiling per run phase,
  kept out of the deterministic registry (:mod:`repro.obs.profile`);
* :mod:`repro.obs.benches` — the workers behind the
  ``tools/bench_all.py`` perf-regression gate.

Everything is strictly opt-in: with no observer attached, the kernels
run their zero-cost path (one boolean per dispatch, one dict lookup per
published channel) — pinned by the overhead tests.
"""

from repro.obs.metrics import (BYTE_BUCKETS, Counter, Gauge, Histogram,
                               MetricsRegistry, RATIO_BUCKETS,
                               TIME_NS_BUCKETS)
from repro.obs.collect import RunObserver
from repro.obs.profile import PhaseProfiler
from repro.obs.report import build_report, load_trace, render_report

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "RATIO_BUCKETS",
    "RunObserver",
    "TIME_NS_BUCKETS",
    "build_report",
    "load_trace",
    "render_report",
]
