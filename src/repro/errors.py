"""Exception hierarchy shared across the :mod:`repro` package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without also swallowing programming errors.  The
hierarchy mirrors the layering of the library: virtual-memory faults, OS-model
resource refusals, threading errors, communication errors, and migration
errors each have their own branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "VMError",
    "SegmentationFault",
    "PageFault",
    "ProtectionFault",
    "MapError",
    "OutOfPhysicalMemory",
    "OutOfVirtualAddressSpace",
    "OSLimitError",
    "ProcessLimitExceeded",
    "ThreadLimitExceeded",
    "ThreadError",
    "SchedulerError",
    "MigrationError",
    "MigrationAborted",
    "CheckpointError",
    "PupError",
    "CommError",
    "SdagError",
    "AmpiError",
    "ChaosError",
    "InvariantViolation",
    "QueryError",
    "QuerySyntaxError",
]


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


# ---------------------------------------------------------------------------
# Virtual memory
# ---------------------------------------------------------------------------

class VMError(ReproError):
    """Base class for simulated virtual-memory errors."""


class SegmentationFault(VMError):
    """Access to a virtual address with no mapping at all.

    Equivalent to SIGSEGV on an unmapped page: the address is not backed by
    any page-table entry in the faulting :class:`~repro.vm.AddressSpace`.
    """

    def __init__(self, address: int, space: str = "?"):
        super().__init__(f"segmentation fault at {address:#x} in address space {space!r}")
        self.address = address
        self.space = space


class PageFault(VMError):
    """Access to a reserved-but-unbacked page.

    Isomalloc reserves virtual ranges cluster-wide but only assigns physical
    frames to locally-resident threads; touching a reserved remote page
    raises this fault (the paper's "DSM page fault" that thread migration is
    designed to avoid, Section 3.4.2).
    """

    def __init__(self, address: int, space: str = "?"):
        super().__init__(f"page fault (reserved, unbacked) at {address:#x} in {space!r}")
        self.address = address
        self.space = space


class ProtectionFault(VMError):
    """Access violating a mapping's protection bits (e.g. write to RO page)."""

    def __init__(self, address: int, operation: str, space: str = "?"):
        super().__init__(f"protection fault: {operation} at {address:#x} in {space!r}")
        self.address = address
        self.operation = operation
        self.space = space


class MapError(VMError):
    """Invalid mmap/munmap/mremap request (overlap, misalignment, bad range)."""


class OutOfPhysicalMemory(VMError):
    """The simulated machine has no free physical frames left."""


class OutOfVirtualAddressSpace(VMError):
    """A region of the virtual address space has been exhausted.

    This is the failure mode the paper's memory-aliasing technique exists to
    avoid on 32-bit machines (Section 3.4.3): isomalloc consumes virtual
    address space on *every* processor proportional to the *total* number of
    threads.
    """


# ---------------------------------------------------------------------------
# OS resource-limit models
# ---------------------------------------------------------------------------

class OSLimitError(ReproError):
    """An operating-system-model limit refused a resource request."""


class ProcessLimitExceeded(OSLimitError):
    """fork() refused: per-user or kernel process limit reached (Table 2)."""


class ThreadLimitExceeded(OSLimitError):
    """pthread_create() refused: kernel thread limit reached (Table 2)."""


# ---------------------------------------------------------------------------
# Threading / scheduling
# ---------------------------------------------------------------------------

class ThreadError(ReproError):
    """Invalid user-level thread operation (bad state transition, etc.)."""


class SchedulerError(ReproError):
    """Scheduler misuse, e.g. yielding from outside any thread context."""


# ---------------------------------------------------------------------------
# Migration / serialization
# ---------------------------------------------------------------------------

class MigrationError(ReproError):
    """A thread or object migration could not be carried out."""


class MigrationAborted(MigrationError):
    """A migration was refused before any state changed hands.

    Raised when the destination is unavailable (failed processor) or a
    fault injector vetoed the move.  Because the abort happens before the
    source scheduler is mutated, callers may simply retry or leave the
    thread where it is — the thread is never lost.
    """


class CheckpointError(MigrationError):
    """A checkpoint could not be written, or a stored image failed its
    integrity check on restore (simulated disk error or corruption)."""


class PupError(ReproError):
    """Pack/UnPack framework error (size mismatch, unknown type, ...)."""


# ---------------------------------------------------------------------------
# Communication / runtime layers
# ---------------------------------------------------------------------------

class CommError(ReproError):
    """Message-layer error (unknown destination, truncation, ...)."""


class SdagError(ReproError):
    """Structured-Dagger construct misuse or state-machine violation."""


class AmpiError(ReproError):
    """Adaptive-MPI semantic error (count mismatch, invalid rank, ...)."""


# ---------------------------------------------------------------------------
# Chaos / fault injection
# ---------------------------------------------------------------------------

class ChaosError(ReproError):
    """Fault-injection subsystem misuse (bad schedule, bad site, ...)."""


class InvariantViolation(ChaosError):
    """A registered runtime invariant failed under fault injection.

    This is the chaos harness's *finding*, not an injected fault: the
    runtime reached a state it promises never to reach (lost rank,
    inconsistent LB database, non-monotonic clock, ...).
    """


class QueryError(ReproError):
    """Trace-query subsystem misuse (bad runspec, bad aggregate, ...)."""


class QuerySyntaxError(QueryError):
    """A malformed query expression, with the offending position.

    Carries ``text`` (the full query) and ``pos`` (0-based character
    offset) so reporters can render a caret diagnostic; ``str()`` is a
    one-line ``<message> at column N`` form.
    """

    def __init__(self, message: str, text: str = "", pos: int = 0):
        super().__init__(f"{message} at column {pos + 1}")
        self.reason = message
        self.text = text
        self.pos = pos

    def caret(self) -> str:
        """Two-line diagnostic: the query with a caret under the error."""
        return f"{self.text}\n{' ' * self.pos}^ {self.reason}"
