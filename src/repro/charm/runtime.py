"""The Charm-style runtime: chare arrays, routing, reductions, migration.

Location-independent messaging works as in the real system's array manager
(paper Section 3.1.2, reference [28]): every element has a *home* processor
(``index % P``) that always knows its authoritative location.  Senders use a
local location cache; a message reaching a processor the element has left
is forwarded — via the departure tombstone or the home — so "object or
thread migration with ongoing point-to-point communication" just works.

Entry methods are ordinary methods; generator methods are SDAG methods and
are driven by :class:`repro.charm.sdag.SdagDriver`.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import CommError
from repro.charm.chare import Chare
from repro.charm.reduction import combine
from repro.charm.sdag import SdagDriver
from repro.core.pup import pup_pack, pup_unpack
from repro.kernel import QuiescenceCounter
from repro.sim.cluster import Cluster
from repro.sim.dispatch import TagDispatcher
from repro.sim.network import Message

__all__ = ["CharmRuntime", "ArrayProxy", "ElementProxy"]

_TAG = "charm"


class ElementProxy:
    """Handle for sending messages to one array element."""

    def __init__(self, runtime: "CharmRuntime", aid: int, index: int):
        self._runtime = runtime
        self.aid = aid
        self.index = index

    def send(self, method: str, *args: Any, size_bytes: int = 64) -> None:
        """Asynchronously invoke ``method(*args)`` on the element."""
        self._runtime.send_invoke(self.aid, self.index, method, args,
                                  size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ElementProxy a{self.aid}[{self.index}]>"


class ArrayProxy:
    """Handle for a whole chare array."""

    def __init__(self, runtime: "CharmRuntime", aid: int, n: int):
        self._runtime = runtime
        self.aid = aid
        self.n = n

    def __getitem__(self, index: int) -> ElementProxy:
        if not 0 <= index < self.n:
            raise CommError(f"array index {index} out of range [0,{self.n})")
        return ElementProxy(self._runtime, self.aid, index)

    def __len__(self) -> int:
        return self.n

    def broadcast(self, method: str, *args: Any, size_bytes: int = 64) -> None:
        """Invoke ``method`` on every element."""
        for i in range(self.n):
            self[i].send(method, *args, size_bytes=size_bytes)


class SectionProxy:
    """Multicast handle over a subset of an array's elements."""

    def __init__(self, runtime: "CharmRuntime", aid: int, indices: list):
        self._runtime = runtime
        self.aid = aid
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def send(self, method: str, *args: Any, size_bytes: int = 64) -> None:
        """Invoke ``method`` on every element of the section."""
        for i in self.indices:
            self._runtime.send_invoke(self.aid, i, method, args, size_bytes)


class _ArrayRecord:
    """Runtime bookkeeping for one chare array."""

    def __init__(self, aid: int, cls: Type[Chare], n: int):
        self.aid = aid
        self.cls = cls
        self.n = n
        self.reductions: Dict[Tuple[str, str, int], List[Any]] = {}
        self.red_rounds: Dict[int, int] = {}     # per-element round counter


class CharmRuntime:
    """Per-cluster event-driven object runtime."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.nproc = len(cluster)
        self._arrays: Dict[int, _ArrayRecord] = {}
        self._next_aid = 0
        # per-PE state
        self._local: List[Dict[Tuple[int, int], Chare]] = [
            {} for _ in range(self.nproc)]
        self._home_loc: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(self.nproc)]
        self._tombstone: List[Dict[Tuple[int, int], int]] = [
            {} for _ in range(self.nproc)]
        self._drivers: Dict[Tuple[int, int], SdagDriver] = {}
        self._early: Dict[Tuple[int, int], List[Tuple[str, Any]]] = {}
        #: Processor considered "current" for sends made outside any entry
        #: method (the mainchare's processor).
        self._pe_stack: List[int] = [0]
        for proc in cluster.processors:
            TagDispatcher.of(proc).register(_TAG, self._on_message)
        # -- statistics ------------------------------------------------------
        self.entries_invoked = 0
        self.messages_forwarded = 0
        self.migrations = 0
        # quiescence-detection counters (application messages only),
        # kept by the kernel's two-wave counting detector
        self._qd = QuiescenceCounter()

    # ------------------------------------------------------------------
    # array creation
    # ------------------------------------------------------------------

    def create_array(self, cls: Type[Chare], n: int,
                     placement: Optional[Callable[[int], int]] = None,
                     args: Tuple = ()) -> ArrayProxy:
        """Create an ``n``-element chare array of class ``cls``.

        ``placement(index) -> pe`` chooses initial processors (default:
        round-robin, which is also each element's *home*).
        """
        if n <= 0:
            raise CommError("array needs at least one element")
        aid = self._next_aid
        self._next_aid += 1
        rec = _ArrayRecord(aid, cls, n)
        self._arrays[aid] = rec
        proxy = ArrayProxy(self, aid, n)
        for i in range(n):
            pe = placement(i) if placement else i % self.nproc
            chare = cls(*args)
            chare.thisIndex = i
            chare.thisProxy = proxy
            chare.runtime = self
            chare._pe = pe
            self._local[pe][(aid, i)] = chare
            self._home_loc[self._home(i)][(aid, i)] = pe
            self.cluster[pe].charge(self.cluster.platform.event_dispatch_ns)
            rec.red_rounds[i] = 0
        return proxy

    def proxy(self, aid: int) -> ArrayProxy:
        """Re-obtain the proxy for an existing array."""
        rec = self._arrays[aid]
        return ArrayProxy(self, rec.aid, rec.n)

    def _home(self, index: int) -> int:
        return index % self.nproc

    @property
    def current_pe(self) -> int:
        """The processor whose entry method is currently executing."""
        return self._pe_stack[-1]

    def element(self, aid: int, index: int) -> Chare:
        """Direct (test/debug) access to an element object."""
        for pe in range(self.nproc):
            ch = self._local[pe].get((aid, index))
            if ch is not None:
                return ch
        raise CommError(f"element a{aid}[{index}] not found anywhere")

    def location_of(self, aid: int, index: int) -> int:
        """Authoritative current processor of an element (home's view)."""
        return self._home_loc[self._home(index)][(aid, index)]

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------

    def send_invoke(self, aid: int, index: int, method: str, args: Tuple,
                    size_bytes: int, src_pe: Optional[int] = None) -> None:
        """Send an entry-method invocation to an element, wherever it is."""
        src = self.current_pe if src_pe is None else src_pe
        self._qd.note_created()
        key = (aid, index)
        # Local fast path: same-processor invocations skip the network,
        # like Charm's in-process delivery.
        if key in self._local[src]:
            self.cluster.after(src, self.cluster.platform.event_dispatch_ns,
                               self._execute, src, aid, index, method, args,
                               category="charm.exec")
            return
        dst = self._believed_location(src, key)
        self.cluster.send(src, dst, ("invoke", aid, index, method, args),
                          size_bytes=size_bytes, tag=_TAG)

    def _believed_location(self, pe: int, key: Tuple[int, int]) -> int:
        tomb = self._tombstone[pe].get(key)
        if tomb is not None:
            return tomb
        home = self._home(key[1])
        if pe == home:
            return self._home_loc[home][key]
        return self._home_loc[home].get(key, home)  # shared-read of home map
        # Note: reading the home map from afar models the sender's cached
        # location; staleness is handled by forwarding on arrival.

    def _on_message(self, msg: Message) -> None:
        kind = msg.payload[0]
        pe = msg.dst
        if kind == "invoke":
            _, aid, index, method, args = msg.payload
            key = (aid, index)
            if key in self._local[pe]:
                self._execute(pe, aid, index, method, args)
            else:
                self._forward(pe, msg)
        elif kind == "migrate":
            self._arrive(pe, msg.payload)
        elif kind == "locupdate":
            _, aid, index, new_pe = msg.payload
            self._home_loc[pe][(aid, index)] = new_pe
        elif kind == "reduce":
            self._on_reduce(pe, msg.payload)
        else:
            raise CommError(f"unknown charm message kind {kind!r}")

    def _forward(self, pe: int, msg: Message) -> None:
        """The element is not here: follow tombstone or ask the home."""
        _, aid, index, method, args = msg.payload
        key = (aid, index)
        self.messages_forwarded += 1
        tomb = self._tombstone[pe].get(key)
        if tomb is not None and tomb != pe:
            self.cluster.send(pe, tomb, msg.payload,
                              size_bytes=msg.size_bytes, tag=_TAG)
            return
        home = self._home(index)
        if pe == home:
            loc = self._home_loc[home].get(key)
            if loc is None or loc == pe:
                raise CommError(
                    f"home {home} has no live location for a{aid}[{index}]")
            self.cluster.send(pe, loc, msg.payload,
                              size_bytes=msg.size_bytes, tag=_TAG)
        else:
            self.cluster.send(pe, home, msg.payload,
                              size_bytes=msg.size_bytes, tag=_TAG)

    # ------------------------------------------------------------------
    # entry-method execution
    # ------------------------------------------------------------------

    def _execute(self, pe: int, aid: int, index: int, method: str,
                 args: Tuple) -> None:
        key = (aid, index)
        chare = self._local[pe].get(key)
        if chare is None:
            # Raced with a migration that happened after scheduling; the
            # message stays outstanding (no processed count).
            dst = self._believed_location(pe, key)
            self.cluster.send(pe, dst, ("invoke", aid, index, method, args),
                              size_bytes=64, tag=_TAG)
            self.messages_forwarded += 1
            self._qd.note_processed()  # balanced by the resend's arrival
            self._qd.note_created()
            return
        self.cluster[pe].charge(self.cluster.platform.event_dispatch_ns)
        self.entries_invoked += 1
        self._qd.note_processed()
        driver = self._drivers.get(key)
        if driver is not None and not driver.finished:
            # An active SDAG method consumes named messages.
            payload = args[0] if len(args) == 1 else args
            self._pe_stack.append(pe)
            try:
                driver.deliver(method, payload)
            finally:
                self._pe_stack.pop()
            return
        fn = getattr(chare, method, None)
        if fn is None:
            # A named message for an SDAG method that has not started yet:
            # buffer until the driver exists (early-arrival tolerance).
            payload = args[0] if len(args) == 1 else args
            self._early.setdefault(key, []).append((method, payload))
            return
        self._pe_stack.append(pe)
        try:
            if inspect.isgeneratorfunction(fn.__func__ if hasattr(fn, "__func__") else fn):
                gen = fn(*args)
                driver = SdagDriver(gen,
                                    on_finish=lambda k=key: self._drivers.pop(k, None))
                self._drivers[key] = driver
                driver.start()
                # Deliver any messages that arrived before the driver existed.
                for name, payload in self._early.pop(key, []):
                    if not driver.finished:
                        driver.deliver(name, payload)
            else:
                fn(*args)
        finally:
            self._pe_stack.pop()

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------

    def _contribute(self, aid: int, index: int, value: Any, op: str,
                    callback: str) -> None:
        rec = self._arrays[aid]
        rnd = rec.red_rounds[index]
        rec.red_rounds[index] = rnd + 1
        pe = self.current_pe
        # Contributions stream to processor 0, which completes the round.
        if pe == 0:
            self._on_reduce(0, ("reduce", aid, rnd, op, callback, value))
        else:
            self.cluster.send(pe, 0, ("reduce", aid, rnd, op, callback, value),
                              size_bytes=64, tag=_TAG)

    def _on_reduce(self, pe: int, payload: Tuple) -> None:
        _, aid, rnd, op, callback, value = payload
        rec = self._arrays[aid]
        bucket = rec.reductions.setdefault((op, callback, rnd), [])
        bucket.append(value)
        if len(bucket) == rec.n:
            result = combine(op, bucket)
            del rec.reductions[(op, callback, rnd)]
            self.send_invoke(aid, 0, callback, (result,), size_bytes=64,
                             src_pe=pe)

    # ------------------------------------------------------------------
    # migration (paper Section 3.2)
    # ------------------------------------------------------------------

    def migrate_element(self, aid: int, index: int, dst_pe: int) -> None:
        """Move an element to ``dst_pe``, packing its state with PUP."""
        key = (aid, index)
        src = None
        for pe in range(self.nproc):
            if key in self._local[pe]:
                src = pe
                break
        if src is None:
            raise CommError(f"cannot migrate unknown element a{aid}[{index}]")
        if src == dst_pe:
            return
        chare = self._local[src].pop(key)
        driver = self._drivers.pop(key, None)
        # Pack the application state for real when the class is puppable.
        blob: Optional[bytes]
        try:
            blob = pup_pack(chare)
            wire = len(blob)
        except Exception:
            blob = None
            wire = 256
        self._tombstone[src][key] = dst_pe
        self.cluster[src].charge(self.cluster.platform.mem.memcpy_cost(wire))
        self.cluster.send(src, dst_pe,
                          ("migrate", aid, index, blob, chare, driver, wire),
                          size_bytes=wire, tag=_TAG)
        self.migrations += 1

    def _arrive(self, pe: int, payload: Tuple) -> None:
        _, aid, index, blob, chare, driver, wire = payload
        key = (aid, index)
        if blob is not None and driver is None:
            # With no live SDAG continuation, the serialized image is the
            # whole object: rebuild from bytes (the real PUP path).  A live
            # driver's generator closes over the original object, so that
            # object itself is kept (see DESIGN.md on generator state).
            # Rebuild from the serialized image — the PUP path is real.
            rebuilt = pup_unpack(blob)
            rebuilt.thisIndex = index
            rebuilt.thisProxy = ArrayProxy(self, aid, self._arrays[aid].n)
            rebuilt.runtime = self
            chare = rebuilt
        chare._pe = pe
        self.cluster[pe].charge(self.cluster.platform.mem.memcpy_cost(wire))
        self._local[pe][key] = chare
        if driver is not None:
            self._drivers[key] = driver
        self._tombstone[pe].pop(key, None)
        home = self._home(index)
        if home == pe:
            self._home_loc[pe][key] = pe
        else:
            self.cluster.send(pe, home, ("locupdate", aid, index, pe),
                              size_bytes=32, tag=_TAG)

    # ------------------------------------------------------------------
    # quiescence detection
    # ------------------------------------------------------------------

    def detect_quiescence(self, aid: int, index: int, method: str,
                          check_ns: float = 50_000.0) -> None:
        """Invoke ``method`` on one element when the system is quiescent.

        Quiescence = no application entry-method messages outstanding.
        The kernel's :class:`~repro.kernel.QuiescenceCounter` runs the
        classic two-wave counting protocol: a detector timer snapshots
        the (created, processed) counters; when two consecutive waves see
        identical, balanced counters, no message can be in flight, and
        the callback fires.  Runtime-internal messages (location updates)
        are not counted — quiescence is an application-level property.
        """
        self._qd.detect(
            lambda delay, fn, *a: self.cluster.after(
                0, delay, fn, *a, category="charm.qd"),
            lambda: self.send_invoke(aid, index, method, (), size_bytes=32,
                                     src_pe=0),
            check_ns=check_ns)

    # ------------------------------------------------------------------
    # array sections (multicast to a subset)
    # ------------------------------------------------------------------

    def section(self, aid: int, indices) -> "SectionProxy":
        """Create a section proxy over a subset of an array's elements."""
        rec = self._arrays[aid]
        idx = list(indices)
        for i in idx:
            if not 0 <= i < rec.n:
                raise CommError(f"section index {i} out of range")
        return SectionProxy(self, aid, idx)

    # ------------------------------------------------------------------
    # whole-array checkpointing (PUP to bytes)
    # ------------------------------------------------------------------

    def checkpoint_array(self, aid: int) -> bytes:
        """Serialize every element of an array (application state only).

        Elements must be ``pup_register``'ed.  Returns real bytes; restore
        with :meth:`restore_array`.  Elements with live SDAG continuations
        cannot be checkpointed (generator state is process-local).
        """
        from repro.core.pup import pack_value
        rec = self._arrays[aid]
        blobs = []
        for i in range(rec.n):
            if (aid, i) in self._drivers:
                raise CommError(
                    f"element a{aid}[{i}] has a live SDAG continuation; "
                    f"checkpoint at a quiescent point")
            chare = self.element(aid, i)
            blobs.append((i, chare.my_pe, pup_pack(chare)))
        return pack_value({"aid": aid, "n": rec.n,
                           "elements": [list(b) for b in blobs]})

    def restore_array(self, blob: bytes) -> ArrayProxy:
        """Rebuild a checkpointed array's elements at their saved places.

        The elements replace the current ones of the same array id (a
        restart-in-place model).
        """
        from repro.core.pup import unpack_value
        image = unpack_value(blob)
        aid = image["aid"]
        rec = self._arrays.get(aid)
        if rec is None or rec.n != image["n"]:
            raise CommError("restore_array: no matching live array")
        proxy = ArrayProxy(self, aid, rec.n)
        for i, pe, data in image["elements"]:
            rebuilt = pup_unpack(data)
            rebuilt.thisIndex = i
            rebuilt.thisProxy = proxy
            rebuilt.runtime = self
            rebuilt._pe = pe
            # Remove the old element wherever it currently lives.
            for p in range(self.nproc):
                self._local[p].pop((aid, i), None)
            self._local[pe][(aid, i)] = rebuilt
            self._home_loc[self._home(i)][(aid, i)] = pe
        return proxy

    # ------------------------------------------------------------------

    # quiescence counters, exposed for tests and the conformance suite
    @property
    def _qd_created(self) -> int:
        return self._qd.created

    @property
    def _qd_processed(self) -> int:
        return self._qd.processed

    def run(self, **kwargs) -> int:
        """Drain the cluster's event queue — the charm runtime has no run
        loop of its own; every entry-method delivery, SDAG continuation,
        and quiescence wave is an event on the cluster's
        :class:`~repro.kernel.EventKernel` (convenience passthrough,
        accepts ``until``/``max_events``/``policy``)."""
        return self.cluster.run(**kwargs)
