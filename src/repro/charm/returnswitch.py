"""Return-switch functions: thread-free suspension by hand (paper §2.4.1).

"A C or C++ subroutine can be written in a return-switch style to mimic
thread suspend/resume.  When the subroutine is 'suspended', it returns
instead of blocking with a flag indicating the point it left off.  When the
subroutine is 'resumed', the same subroutine is called with the flag which
can then be used in a 'goto' or 'switch' statement to resume execution at
the point it left off."

This module is the faithful Pythonic rendering of that technique — and of
its ergonomics.  A :class:`ReturnSwitchFunction` subclass writes one
``body(label, message)`` method that *returns* a :func:`suspend` marker
(carrying the resume label) instead of blocking; all state that must
survive suspension lives in instance attributes, because locals die at each
return — exactly the manual state management the paper calls "confusing,
error-prone and tough to debug" and which SDAG (Section 2.4.2) and threads
exist to avoid.  The unit tests implement the same protocol in both styles
to exhibit the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.errors import SdagError

__all__ = ["suspend", "finish", "ReturnSwitchFunction"]


@dataclass(frozen=True)
class _Suspend:
    """Marker returned by a body: 'I stopped; resume me at this label'."""

    label: str


@dataclass(frozen=True)
class _Finish:
    """Marker returned by a body: the function has completed."""

    result: Any


def suspend(label: str) -> _Suspend:
    """Return this from ``body`` to suspend until the next message."""
    return _Suspend(label)


def finish(result: Any = None) -> _Finish:
    """Return this from ``body`` to complete the function."""
    return _Finish(result)


class ReturnSwitchFunction:
    """Driver for one return-switch-style resumable function.

    Subclasses implement ``body(label, message)``:

    * ``label`` is where execution left off (``"start"`` initially);
    * ``message`` is the input that caused the resume (None at start);
    * the method must return :func:`suspend(next_label) <suspend>` or
      :func:`finish(result) <finish>` — anything else is an error, the
      "tough to debug" failure mode made loud.

    Persistent state goes in ``self`` attributes; locals do not survive.
    """

    START = "start"

    def __init__(self) -> None:
        self._label: Optional[str] = self.START
        self._result: Any = None
        self._started = False
        #: Number of suspensions so far (each is one scheduler round trip).
        self.suspensions = 0

    # -- protocol ------------------------------------------------------------

    def body(self, label: str, message: Any) -> Any:
        """Override: one 'switch on label' step of the function."""
        raise NotImplementedError

    # -- driving ------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the function ran to completion."""
        return self._label is None

    @property
    def result(self) -> Any:
        """The completion value (only meaningful once finished)."""
        if not self.finished:
            raise SdagError("return-switch function has not finished")
        return self._result

    def start(self) -> "ReturnSwitchFunction":
        """Run from the beginning up to the first suspension."""
        if self._started:
            raise SdagError("return-switch function already started")
        self._started = True
        self._step(None)
        return self

    def resume(self, message: Any = None) -> "ReturnSwitchFunction":
        """Deliver a message: call the body with the saved label."""
        if not self._started:
            raise SdagError("resume before start()")
        if self.finished:
            raise SdagError("resume after finish")
        self._step(message)
        return self

    def _step(self, message: Any) -> None:
        out = self.body(self._label, message)
        if isinstance(out, _Suspend):
            self._label = out.label
            self.suspensions += 1
        elif isinstance(out, _Finish):
            self._label = None
            self._result = out.result
        else:
            raise SdagError(
                f"{type(self).__name__}.body returned {out!r}; a "
                f"return-switch body must return suspend(label) or "
                f"finish(result) — the manual-discipline hazard the paper "
                f"warns about")
