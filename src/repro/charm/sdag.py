"""Structured Dagger (SDAG): coordination constructs for chares.

Section 2.4.2 of the paper: SDAG lets a chare express its life cycle as
straight-line code with ``when``/``overlap``/``atomic`` constructs instead
of inverted event-handler style; a preprocessor turns the syntax into an
efficient finite-state machine.

Here the "preprocessor output" is a driver over a Python generator: an SDAG
entry method is a generator method that yields :class:`When` /
:class:`Overlap` / :class:`Atomic` directives.  The Figure 1 stencil
program becomes::

    class Stencil(Chare):
        def lifecycle(self):                       # entry void stencilLifeCycle()
            for i in range(MAX_ITER):              # for (i=0; i<MAX_ITER; i++)
                self.send_strips()                 # atomic {...}
                left, right = yield Overlap(       # overlap {
                    When("strip_from_left"),       #   when getStripFromLeft(...)
                    When("strip_from_right"))      #   when getStripFromRight(...)
                self.do_work(left, right)          # atomic { doWork(); }

The driver buffers messages per name, so the two strips "can occur and be
processed in any order" — exactly the overlap semantics; ordinary Python
code between yields is atomic by construction (one entry method runs at a
time per processor), matching the ``atomic`` construct.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from repro.errors import SdagError

__all__ = ["When", "Overlap", "Atomic", "SdagDriver", "SdagError"]


@dataclass(frozen=True)
class When:
    """Wait for one message named ``name``; yields its payload.

    ``count`` waits for that many messages of the name, returned as a list
    (the paper's iterative patterns, e.g. "process A and B messages in
    alternating sequence k times", compose from this and plain loops).
    """

    name: str
    count: int = 1


@dataclass(frozen=True)
class Overlap:
    """Wait for several :class:`When` clauses, satisfiable in any order.

    Yields a tuple of payloads in *declaration* order, regardless of the
    order the messages arrived — the message-order independence the
    ``overlap`` construct asserts.
    """

    whens: Tuple[When, ...]

    def __init__(self, *whens: When):
        if not whens or not all(isinstance(w, When) for w in whens):
            raise SdagError("Overlap takes one or more When clauses")
        object.__setattr__(self, "whens", tuple(whens))


@dataclass(frozen=True)
class Atomic:
    """Run a callable as an explicit atomic block; yields its result.

    Provided for fidelity with the paper's syntax — plain Python code
    between yields is equally atomic.
    """

    fn: Callable[[], Any]


class SdagDriver:
    """The finite-state machine driving one chare's SDAG entry method.

    The driver owns per-name message buffers; arriving messages either
    satisfy the directive currently waited on or are buffered for a later
    ``when`` — "the Structured Dagger preprocessor transforms all this
    syntax into code for an efficient finite-state machine".
    """

    def __init__(self, gen: Generator, on_finish: Optional[Callable[[], None]] = None):
        self.gen = gen
        self.buffers: Dict[str, deque] = {}
        self._waiting: Optional[Tuple[When, ...]] = None
        self._collected: Dict[int, List[Any]] = {}
        self.finished = False
        self.on_finish = on_finish
        self.messages_buffered = 0

    # -- message intake -----------------------------------------------------

    def wants(self, name: str) -> bool:
        """Whether this driver will ever consume messages named ``name``.

        The runtime uses this to decide between buffering for the driver
        and invoking a plain entry method.  Conservatively true — SDAG
        methods receive through the driver for their whole life.
        """
        return not self.finished

    def deliver(self, name: str, payload: Any) -> None:
        """Feed one message to the driver; advances the FSM if unblocked."""
        if self.finished:
            raise SdagError(f"message {name!r} delivered to finished driver")
        self.buffers.setdefault(name, deque()).append(payload)
        self.messages_buffered += 1
        self._try_advance()

    # -- FSM ---------------------------------------------------------------

    def start(self) -> None:
        """Begin executing the entry method."""
        self._step(None)

    def _step(self, send_value: Any) -> None:
        while True:
            try:
                directive = self.gen.send(send_value)
            except StopIteration:
                self.finished = True
                if self.on_finish:
                    self.on_finish()
                return
            if isinstance(directive, Atomic):
                send_value = directive.fn()
                continue
            if isinstance(directive, When):
                directive = Overlap(directive)
                single = True
            elif isinstance(directive, Overlap):
                single = False
            else:
                raise SdagError(
                    f"SDAG method yielded {directive!r}; expected "
                    f"When/Overlap/Atomic")
            self._waiting = directive.whens
            self._waiting_single = single
            self._collected = {i: [] for i in range(len(directive.whens))}
            if not self._try_advance():
                return
            # _try_advance re-entered _step; unwind this frame.
            return

    def _try_advance(self) -> bool:
        """If the waited-on directive is satisfiable from buffers, resume.

        Returns True when the FSM advanced (and this call re-entered
        :meth:`_step`).
        """
        if self._waiting is None:
            return False
        # Draw buffered messages into each clause, up to its count.
        for i, w in enumerate(self._waiting):
            got = self._collected[i]
            buf = self.buffers.get(w.name)
            while buf and len(got) < w.count:
                got.append(buf.popleft())
        if not all(len(self._collected[i]) == w.count
                   for i, w in enumerate(self._waiting)):
            return False
        results = []
        for i, w in enumerate(self._waiting):
            vals = self._collected[i]
            results.append(vals[0] if w.count == 1 else list(vals))
        value = results[0] if self._waiting_single else tuple(results)
        self._waiting = None
        self._collected = {}
        self._step(value)
        return True

    @property
    def waiting_on(self) -> List[str]:
        """Names of messages the driver is currently blocked on."""
        if self._waiting is None:
            return []
        return [w.name for w in self._waiting]
