"""Reduction operators for chare-array contribute() calls."""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.errors import CommError

__all__ = ["REDUCERS", "combine"]

#: Built-in reducers, by name.  Each maps (accumulator, value) -> accumulator.
REDUCERS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "max": max,
    "min": min,
    "prod": lambda a, b: a * b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "concat": lambda a, b: list(a) + [b] if isinstance(a, list) else [a, b],
}


def combine(op: str, values: list) -> Any:
    """Fold ``values`` with reducer ``op`` (left fold, deterministic order)."""
    if op not in REDUCERS:
        raise CommError(f"unknown reduction op {op!r}; "
                        f"known: {sorted(REDUCERS)}")
    if not values:
        raise CommError("reduction over no contributions")
    if op == "concat":
        out: list = []
        for v in values:
            out.append(v)
        return out
    fn = REDUCERS[op]
    acc = values[0]
    for v in values[1:]:
        acc = fn(acc, v)
    return acc
