"""Charm-style event-driven object runtime (paper Sections 2.4, 3.2).

Event-driven objects ("chares") are the fourth flow-of-control mechanism:
location-independent objects whose execution is a sequence of entry-method
invocations driven by message arrival.  Because "the entire execution state
normally consists of a few application data structures and the name of the
next event to run", chare migration is the simplest kind — pack the data
(via the PUP framework), move it, and keep going (Section 3.2).

The runtime provides:

* :class:`Chare` — base class for event-driven objects;
* :class:`CharmRuntime` — per-processor schedulers, location-independent
  messaging with home-based location management and post-migration
  forwarding, broadcasts, and reductions;
* :mod:`repro.charm.sdag` — Structured Dagger (``when`` / ``overlap`` /
  ``atomic``) for expressing a chare's life cycle without inversion of
  control (paper Section 2.4.2, Figure 1).
"""

from repro.charm.chare import Chare
from repro.charm.runtime import ArrayProxy, CharmRuntime, ElementProxy
from repro.charm.reduction import REDUCERS
from repro.charm.sdag import Atomic, Overlap, SdagError, When
from repro.charm.returnswitch import ReturnSwitchFunction, finish, suspend

__all__ = [
    "Chare",
    "CharmRuntime",
    "ArrayProxy",
    "ElementProxy",
    "REDUCERS",
    "When",
    "Overlap",
    "Atomic",
    "SdagError",
    "ReturnSwitchFunction",
    "suspend",
    "finish",
]
