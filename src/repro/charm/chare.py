"""Chare base class: a migratable event-driven object."""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.charm.runtime import ArrayProxy, CharmRuntime

__all__ = ["Chare"]


class Chare:
    """An event-driven object living in a chare array.

    Subclasses define entry methods (plain methods invoked by arriving
    messages) and may define SDAG methods (generator methods driven by
    :mod:`repro.charm.sdag`).  Chares that migrate should implement
    ``pup(p)`` for their application state; the runtime packs them with the
    PUP framework.

    Runtime-injected attributes (set before any entry method runs):

    ``thisIndex``
        This element's index in its array.
    ``thisProxy``
        An :class:`~repro.charm.runtime.ArrayProxy` for the whole array.
    ``runtime``
        The hosting :class:`~repro.charm.runtime.CharmRuntime`.
    """

    thisIndex: int = -1
    thisProxy: Optional["ArrayProxy"] = None
    runtime: Optional["CharmRuntime"] = None
    _pe: int = -1

    @property
    def my_pe(self) -> int:
        """The processor this chare currently lives on."""
        return self._pe

    def charge(self, ns: float) -> None:
        """Account ``ns`` of entry-method computation to the local processor."""
        assert self.runtime is not None
        self.runtime.cluster[self._pe].charge(ns)

    def contribute(self, value: Any, op: str, callback: str) -> None:
        """Join the array-wide reduction ``op``; the reduced value is
        delivered to entry method ``callback`` of element 0."""
        assert self.runtime is not None and self.thisProxy is not None
        self.runtime._contribute(self.thisProxy.aid, self.thisIndex,
                                 value, op, callback)

    def migrate_me(self, dst_pe: int) -> None:
        """Ask the runtime to move this chare to another processor
        (takes effect after the current entry method returns)."""
        assert self.runtime is not None and self.thisProxy is not None
        self.runtime.migrate_element(self.thisProxy.aid, self.thisIndex,
                                     dst_pe)

    def pup(self, p) -> None:
        """Pack/unpack application state; default packs nothing.

        Subclasses with state must override (and remember that the
        runtime re-injects ``thisIndex``/``thisProxy``/``runtime`` after
        unpacking, so only application fields belong here).
        """
