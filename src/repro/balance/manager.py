"""The LB manager: turn a strategy's placement into actual migrations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.balance.instrument import LBDatabase
from repro.balance.strategies import Strategy
from repro.errors import MigrationError

__all__ = ["LBManager", "RebalanceReport"]


@dataclass(frozen=True)
class RebalanceReport:
    """What one rebalance did."""

    strategy: str
    epoch: int
    objects: int
    migrations: int
    imbalance_before: float
    imbalance_after: float
    #: Moves the strategy wanted that ``migrate_fn`` refused
    #: (:class:`~repro.errors.MigrationError`); those objects stayed put
    #: and the database still records their true placement.
    failed: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tail = f" ({self.failed} failed)" if self.failed else ""
        return (f"[{self.strategy} epoch {self.epoch}] {self.objects} objs, "
                f"{self.migrations} migrations{tail}, max/avg "
                f"{self.imbalance_before:.2f} -> {self.imbalance_after:.2f}")


class LBManager:
    """Runs a strategy against the database and issues migrations.

    ``migrate_fn(obj, dst_pe)`` performs the actual move (the AMPI runtime
    passes its thread migrator; tests can pass a recorder).
    """

    def __init__(self, db: LBDatabase, strategy: Strategy,
                 migrate_fn: Callable[[Hashable, int], None]):
        self.db = db
        self.strategy = strategy
        self.migrate_fn = migrate_fn
        self.reports: list[RebalanceReport] = []

    def rebalance(self) -> RebalanceReport:
        """Measure, decide, migrate, and open a new measurement window."""
        loads = self.db.intrinsic_loads()
        current = self.db.placement()
        before = self.db.imbalance()
        feed = getattr(self.strategy, "set_comm_graph", None)
        if feed is not None:
            feed(self.db.comm_graph())
        feed_speeds = getattr(self.strategy, "set_pe_speeds", None)
        if feed_speeds is not None:
            feed_speeds(self.db.pe_speeds())
        new = self.strategy.map_objects(loads, current, self.db.npes)
        missing = set(loads) - set(new)
        if missing:
            raise ValueError(
                f"{self.strategy.name} dropped objects: {sorted(map(str, missing))}")
        moves = 0
        failed = 0
        for obj, dst in sorted(new.items(), key=lambda kv: str(kv[0])):
            if current.get(obj) != dst:
                # The database is only told about moves that actually
                # happened: a migrate_fn failure leaves the object's
                # recorded placement — and reality — unchanged, and the
                # rebalance presses on with the remaining moves.
                try:
                    self.migrate_fn(obj, dst)
                except MigrationError:
                    failed += 1
                    continue
                self.db.moved(obj, dst)
                moves += 1
        after = self.db.imbalance()
        report = RebalanceReport(
            strategy=self.strategy.name,
            epoch=self.db.epoch,
            objects=len(loads),
            migrations=moves,
            imbalance_before=before,
            imbalance_after=after,
            failed=failed,
        )
        self.reports.append(report)
        self.db.reset_loads()
        return report
