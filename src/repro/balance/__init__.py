"""Measurement-based load balancing (paper Sections 3, 4.5).

The paper's load-balancing story: run many more migratable flows than
processors, measure each flow's load, and periodically migrate flows from
overloaded to underloaded processors.  This package provides the load
database, the placement strategies, and the manager that turns a strategy's
output into thread migrations.
"""

from repro.balance.instrument import LBDatabase
from repro.balance.strategies import (GreedyCommLB, GreedyLB, NullLB,
                                      RandomLB, RefineLB, RotateLB, Strategy)
from repro.balance.manager import LBManager, RebalanceReport

__all__ = [
    "LBDatabase",
    "Strategy",
    "GreedyLB",
    "GreedyCommLB",
    "RefineLB",
    "RotateLB",
    "RandomLB",
    "NullLB",
    "LBManager",
    "RebalanceReport",
]
