"""The load database: measured per-object loads and current placement."""

from __future__ import annotations

from typing import Dict, Hashable, List

__all__ = ["LBDatabase"]


class LBDatabase:
    """Measured loads of migratable objects since the last rebalance.

    The runtime calls :meth:`record` as objects compute; strategies read
    :meth:`loads` and :meth:`placement`.  ``epoch`` counts rebalances, and
    :meth:`reset_loads` starts a new measurement window — the
    measurement-based model of Charm++'s load balancing framework.
    """

    def __init__(self, npes: int):
        self.npes = npes
        self._load: Dict[Hashable, float] = {}
        self._pe: Dict[Hashable, int] = {}
        #: Bytes exchanged per (sender, receiver) object pair this window.
        self._comm: Dict[tuple, int] = {}
        #: Relative speed of each processor (1.0 = dedicated; a node with
        #: 75% background load has speed 0.25).
        self._speed: List[float] = [1.0] * npes
        self.epoch = 0
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
        #: every measurement window publishes its closing imbalance.
        self._metrics = None

    def attach_metrics(self, registry) -> None:
        """Publish per-window balance readings into ``registry``.

        At each :meth:`reset_loads` (i.e. each rebalance) the closing
        window's max/avg imbalance is observed into the
        ``lb.imbalance`` histogram, and ``lb.epoch`` / ``lb.windows``
        track progress.  Pass ``None`` to detach.
        """
        if registry is None:
            self._metrics = None
            return
        from repro.obs.metrics import RATIO_BUCKETS
        self._metrics = {
            "imbalance": registry.histogram("lb.imbalance", RATIO_BUCKETS),
            "windows": registry.counter("lb.windows"),
            "epoch": registry.gauge("lb.epoch"),
        }
        self._metrics["epoch"].set(self.epoch)

    def register(self, obj: Hashable, pe: int) -> None:
        """Start tracking an object at its initial processor."""
        self._load.setdefault(obj, 0.0)
        self._pe[obj] = pe

    def unregister(self, obj: Hashable) -> None:
        """Stop tracking an object (it finished)."""
        self._load.pop(obj, None)
        self._pe.pop(obj, None)

    def record(self, obj: Hashable, ns: float) -> None:
        """Add ``ns`` of measured work to an object's current window."""
        self._load[obj] = self._load.get(obj, 0.0) + ns

    def record_comm(self, src: Hashable, dst: Hashable, nbytes: int) -> None:
        """Add ``nbytes`` of traffic from ``src`` to ``dst`` to the window.

        Feeds communication-aware strategies (GreedyCommLB); pairs where
        either end is untracked are ignored.
        """
        if src in self._pe and dst in self._pe and src != dst:
            key = (src, dst)
            self._comm[key] = self._comm.get(key, 0) + nbytes

    def comm_graph(self) -> Dict[tuple, int]:
        """Bytes exchanged per directed object pair this window."""
        return dict(self._comm)

    def comm_between(self, a: Hashable, b: Hashable) -> int:
        """Total bytes between two objects, both directions."""
        return self._comm.get((a, b), 0) + self._comm.get((b, a), 0)

    def tracks(self, obj: Hashable) -> bool:
        """Whether ``obj`` is currently registered (live)."""
        return obj in self._pe

    def moved(self, obj: Hashable, pe: int) -> None:
        """Note that an object migrated to ``pe``."""
        self._pe[obj] = pe

    def set_pe_speed(self, pe: int, speed: float) -> None:
        """Record a processor's available speed (1.0 = fully ours)."""
        if not 0.0 < speed <= 1.0:
            raise ValueError(f"speed must be in (0, 1], got {speed}")
        self._speed[pe] = speed

    def pe_speeds(self) -> List[float]:
        """Relative speed per processor."""
        return list(self._speed)

    def loads(self) -> Dict[Hashable, float]:
        """Measured (wall-time) load per object in the current window."""
        return dict(self._load)

    def intrinsic_loads(self) -> Dict[Hashable, float]:
        """Processor-speed-normalized loads: the object's inherent work.

        An object measured on a half-speed processor did half the work its
        wall time suggests; strategies must plan with intrinsic work or
        they will forever chase the slow node's inflation.
        """
        return {obj: wall * self._speed[self._pe[obj]]
                for obj, wall in self._load.items()}

    def placement(self) -> Dict[Hashable, int]:
        """Current processor of each tracked object."""
        return dict(self._pe)

    def pe_loads(self) -> List[float]:
        """Aggregate measured load per processor."""
        out = [0.0] * self.npes
        for obj, load in self._load.items():
            out[self._pe[obj]] += load
        return out

    def imbalance(self) -> float:
        """max/avg processor load (1.0 is perfect balance)."""
        loads = self.pe_loads()
        total = sum(loads)
        if total == 0:
            return 1.0
        avg = total / self.npes
        return max(loads) / avg

    def reset_loads(self) -> None:
        """Open a new measurement window (after a rebalance)."""
        if self._metrics is not None:
            self._metrics["imbalance"].observe(self.imbalance())
            self._metrics["windows"].inc()
        for obj in self._load:
            self._load[obj] = 0.0
        self._comm.clear()
        self.epoch += 1
        if self._metrics is not None:
            self._metrics["epoch"].set(self.epoch)
