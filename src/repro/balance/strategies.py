"""Load-balancing placement strategies.

Each strategy maps measured per-object loads and the current placement to a
new placement.  The names and behaviours follow the classic Charm++
strategy suite:

``GreedyLB``
    Ignore current placement; assign objects heaviest-first to the
    least-loaded processor (LPT scheduling).  Best balance, most migration.
``RefineLB``
    Keep the current placement and move objects off overloaded processors
    until every processor is within a tolerance of the average.  Fewer
    migrations, slightly worse balance.
``RotateLB`` / ``RandomLB``
    Sanity baselines (shift every object by one processor / place
    uniformly at random).
``NullLB``
    Do nothing — the "without load balancing" arm of Figure 12.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Hashable

from repro.kernel import MinHeap

__all__ = ["Strategy", "GreedyLB", "GreedyCommLB", "RefineLB", "RotateLB",
           "RandomLB", "NullLB"]

Placement = Dict[Hashable, int]
Loads = Dict[Hashable, float]


class Strategy(ABC):
    """Interface for placement strategies."""

    name: str = "?"

    @abstractmethod
    def map_objects(self, loads: Loads, current: Placement,
                    npes: int) -> Placement:
        """Return the new placement (must cover exactly ``loads``'s keys)."""


class NullLB(Strategy):
    """Leave every object where it is."""

    name = "NullLB"

    def map_objects(self, loads: Loads, current: Placement,
                    npes: int) -> Placement:
        return dict(current)


class GreedyLB(Strategy):
    """Heaviest-first onto the earliest-finishing processor (LPT).

    Speed-aware: with per-processor speeds (fed by the LB manager from the
    database), a processor's finish time is its assigned work divided by
    its speed, so slow (externally loaded) nodes receive proportionally
    less — paper reference [10]'s workstation-cluster adaptation.
    """

    name = "GreedyLB"

    def __init__(self):
        self._speeds: list = []

    def set_pe_speeds(self, speeds: list) -> None:
        """Provide relative processor speeds (manager hook)."""
        self._speeds = list(speeds)

    def map_objects(self, loads: Loads, current: Placement,
                    npes: int) -> Placement:
        speeds = (self._speeds if len(self._speeds) == npes
                  else [1.0] * npes)
        heap = MinHeap((0.0, pe) for pe in range(npes))
        out: Placement = {}
        # Ties broken deterministically by object key order.
        for obj in sorted(loads, key=lambda o: (-loads[o], str(o))):
            finish, pe = heap.peek()
            out[obj] = pe
            heap.replace((finish + loads[obj] / speeds[pe], pe))
        return out


class RefineLB(Strategy):
    """Move objects off overloaded processors until within tolerance.

    ``tolerance`` is the allowed max/avg overshoot (1.05 = within 5%).
    Speed-aware like :class:`GreedyLB`: all comparisons use *finish time*
    (assigned work divided by the processor's speed), so a half-speed
    workstation counts as overloaded with half the work.
    """

    name = "RefineLB"

    def __init__(self, tolerance: float = 1.05):
        self.tolerance = tolerance
        self._speeds: list = []

    def set_pe_speeds(self, speeds: list) -> None:
        """Provide relative processor speeds (manager hook)."""
        self._speeds = list(speeds)

    def map_objects(self, loads: Loads, current: Placement,
                    npes: int) -> Placement:
        speeds = (self._speeds if len(self._speeds) == npes
                  else [1.0] * npes)
        out = dict(current)
        pe_load = [0.0] * npes
        pe_objs: Dict[int, list] = {pe: [] for pe in range(npes)}
        for obj, load in loads.items():
            pe = out[obj]
            pe_load[pe] += load
            pe_objs[pe].append(obj)
        total = sum(pe_load)
        if total == 0:
            return out

        def finish(p):
            return pe_load[p] / speeds[p]

        avg_finish = total / sum(speeds)
        threshold = avg_finish * self.tolerance
        # Repeatedly take the latest-finishing processor above threshold
        # and move its best-fitting object to the earliest-finishing one.
        for _ in range(4 * len(loads)):          # bounded work
            heavy = max(range(npes), key=finish)
            if finish(heavy) <= threshold:
                break
            light = min(range(npes), key=finish)
            overshoot = (finish(heavy) - avg_finish) * speeds[heavy]
            candidates = sorted(pe_objs[heavy], key=lambda o: loads[o])
            if not candidates:
                break
            # Prefer the largest object that still fits in the overshoot;
            # otherwise the smallest one (to make progress).
            fitting = [o for o in candidates if loads[o] <= overshoot]
            move = fitting[-1] if fitting else candidates[0]
            if ((pe_load[light] + loads[move]) / speeds[light]
                    >= finish(heavy)):
                break                              # no profitable move left
            pe_objs[heavy].remove(move)
            pe_objs[light].append(move)
            pe_load[heavy] -= loads[move]
            pe_load[light] += loads[move]
            out[move] = light
        return out


class RotateLB(Strategy):
    """Shift every object to the next processor (stress-test baseline)."""

    name = "RotateLB"

    def map_objects(self, loads: Loads, current: Placement,
                    npes: int) -> Placement:
        return {obj: (current.get(obj, 0) + 1) % npes for obj in loads}


class RandomLB(Strategy):
    """Uniform random placement with a fixed seed (reproducible).

    The draw is derived from ``(seed, invocation index)``, not the seed
    alone: re-seeding from scratch on every call would hand back the
    identical placement at every rebalance after the first, so repeat
    rebalances would migrate nothing.  A fresh strategy instance replays
    the same sequence of placements, keeping whole runs reproducible.
    """

    name = "RandomLB"

    def __init__(self, seed: int = 12345):
        self.seed = seed
        self._invocation = 0

    def map_objects(self, loads: Loads, current: Placement,
                    npes: int) -> Placement:
        rng = random.Random(f"{self.seed}:{self._invocation}")
        self._invocation += 1
        return {obj: rng.randrange(npes)
                for obj in sorted(loads, key=str)}


class GreedyCommLB(Strategy):
    """Communication-aware greedy placement.

    Like :class:`GreedyLB`, objects are placed heaviest-first onto the
    least-cost processor — but the cost of a candidate processor mixes its
    compute load with a *communication penalty*: bytes the object exchanges
    with objects placed on **other** processors (scaled by ``byte_cost``,
    ns of network time per byte).  Heavily-communicating objects therefore
    pull toward each other, trading a little compute balance for locality —
    the trade-off the Charm++ comm-aware strategies make.

    The communication graph comes from
    :meth:`repro.balance.instrument.LBDatabase.record_comm`; pass it via
    ``set_comm_graph`` (the LB manager does this automatically when the
    database has one).
    """

    name = "GreedyCommLB"

    def __init__(self, byte_cost: float = 4.0):
        self.byte_cost = byte_cost
        self._comm: Dict[tuple, int] = {}

    def set_comm_graph(self, comm: Dict[tuple, int]) -> None:
        """Provide the measured (src, dst) -> bytes traffic matrix."""
        self._comm = dict(comm)

    def _traffic(self, a: Hashable, b: Hashable) -> int:
        return self._comm.get((a, b), 0) + self._comm.get((b, a), 0)

    def map_objects(self, loads: Loads, current: Placement,
                    npes: int) -> Placement:
        pe_load = [0.0] * npes
        placed: Dict[int, list] = {pe: [] for pe in range(npes)}
        out: Placement = {}
        order = sorted(loads, key=lambda o: (-loads[o], str(o)))
        for obj in order:
            best_pe, best_cost = 0, None
            for pe in range(npes):
                # Compute cost: the processor's load after adding obj.
                cost = pe_load[pe] + loads[obj]
                # Communication cost: traffic to already-placed objects
                # that live elsewhere.
                remote = sum(self._traffic(obj, other)
                             for p, objs in placed.items() if p != pe
                             for other in objs)
                local_saving = sum(self._traffic(obj, other)
                                   for other in placed[pe])
                cost += self.byte_cost * (remote - local_saving)
                if best_cost is None or cost < best_cost:
                    best_pe, best_cost = pe, cost
            out[obj] = best_pe
            pe_load[best_pe] += loads[obj]
            placed[best_pe].append(obj)
        return out
