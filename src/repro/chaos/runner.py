"""The chaos runner: sweep seeds, replay failures, shrink them to minimal.

A :class:`ChaosRunner` binds one workload to one :class:`FaultConfig` and
offers the full reproduce-and-minimize loop:

* :meth:`run_seed` — one seeded run;
* :meth:`sweep` — many seeds, one :class:`ChaosResult` each;
* :meth:`replay` — re-run an explicit fault script; a failing seeded
  run's recorded schedule replays to the *same fingerprint*;
* :meth:`shrink` — ddmin-style delta debugging over a failing schedule,
  returning the smallest sub-schedule that still fails;
* :meth:`repro_script` — a runnable Python file reproducing a result
  from its ``(seed, schedule)`` pair, suitable for a bug report.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence

from repro.chaos.faults import FaultConfig, FaultEvent, FaultSchedule
from repro.chaos.harness import ChaosResult, drive_ampi_chaos
from repro.chaos.workloads import ChaosWorkload
from repro.errors import ChaosError

__all__ = ["ChaosRunner"]


class ChaosRunner:
    """Runs one chaos workload under seeded or scripted fault schedules."""

    def __init__(self, workload: ChaosWorkload,
                 config: Optional[FaultConfig] = None):
        self.workload = workload
        self.config = config or FaultConfig()

    # -- running --------------------------------------------------------

    def run_seed(self, seed: int) -> ChaosResult:
        """One run with faults drawn from ``random.Random(seed)``."""
        schedule = FaultSchedule.seeded(seed, self.config)
        return drive_ampi_chaos(self.workload, schedule, seed=seed)

    def sweep(self, seeds: Sequence[int]) -> List[ChaosResult]:
        """One seeded run per seed, in order."""
        return [self.run_seed(s) for s in seeds]

    def replay(self, events: Sequence[FaultEvent]) -> ChaosResult:
        """Re-run the workload under an explicit fault script.

        Replaying the ``schedule`` of a seeded result reproduces that
        run byte-identically (same :meth:`ChaosResult.fingerprint`),
        because scripted events fire at the same ``(site, seq)`` decision
        points the seeded draw hit.
        """
        schedule = FaultSchedule.scripted(events)
        return drive_ampi_chaos(self.workload, schedule, seed=None)

    # -- minimization ---------------------------------------------------

    def shrink(self, events: Sequence[FaultEvent],
               is_failure: Optional[Callable[[ChaosResult], bool]] = None,
               ) -> List[FaultEvent]:
        """Delta-debug a failing schedule down to a minimal one (ddmin).

        Repeatedly replays sub-schedules, keeping any complement that
        still satisfies ``is_failure`` (default: outcome is a violation
        or error) and refining granularity until no single event can be
        removed.  Returns the shrunk schedule; the input is not modified.
        """
        if is_failure is None:
            is_failure = lambda res: res.failed
        events = list(events)
        if not events:
            raise ChaosError("shrink needs a non-empty schedule")
        if not is_failure(self.replay(events)):
            raise ChaosError(
                "shrink: the full schedule does not reproduce the failure")
        n = 2
        while len(events) >= 2:
            size = math.ceil(len(events) / n)
            chunks = [events[i:i + size]
                      for i in range(0, len(events), size)]
            reduced = False
            for skip in range(len(chunks)):
                candidate = [ev for j, chunk in enumerate(chunks)
                             if j != skip for ev in chunk]
                if candidate and is_failure(self.replay(candidate)):
                    events = candidate
                    n = max(n - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if n >= len(events):
                    break
                n = min(n * 2, len(events))
        return events

    # -- reporting ------------------------------------------------------

    def repro_script(self, result: ChaosResult) -> str:
        """A runnable Python source reproducing ``result``.

        The emitted script replays the exact applied schedule (the
        ``(site, seq)`` events), so it reproduces the run regardless of
        the seed that originally found it.
        """
        cls = type(self.workload).__name__
        body = "\n".join(f"    {ev!r}," for ev in result.schedule)
        return f'''#!/usr/bin/env python3
"""Chaos repro: workload {self.workload.name!r}, outcome {result.outcome!r}.

Found with seed {result.seed}; replays the exact fault schedule, so the
run below reproduces byte-identically (fingerprint
{result.fingerprint()}).
"""

from repro.chaos import ChaosRunner, FaultEvent
from repro.chaos.workloads import {cls}

SCHEDULE = [
{body}
]

result = ChaosRunner({cls}()).replay(SCHEDULE)
print(result)
assert result.fingerprint() == {result.fingerprint()!r}, "did not reproduce"
'''
