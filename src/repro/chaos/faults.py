"""Deterministic fault schedules: what goes wrong, where, and when.

A :class:`FaultSchedule` answers one question at every *faultable decision
point* in a run — "does a fault fire here?" — in one of two modes:

* **seeded**: decisions are drawn from a private ``random.Random(seed)``
  stream against the rates in a :class:`FaultConfig`.  Every fault that
  fires is recorded as a :class:`FaultEvent`.
* **scripted**: decisions replay an explicit list of
  :class:`FaultEvent`\\ s, matched by ``(site, seq)``.

The two modes compose into reproducibility: a failing seeded run's
recorded events (:meth:`FaultSchedule.script`) replayed as a scripted
schedule hit the *same* decision points and inject the *same* faults, so
the run reproduces byte-identically — the property the chaos runner's
shrinker and repro scripts are built on.

Decision points are identified by a *site* (one of :data:`SITES`) and a
per-site sequence number that advances on **every** consultation, fault
or not.  Because the simulation itself is deterministic, the k-th
consultation of a site is the same physical event in every run of the
same workload, which is what makes ``(site, seq)`` a stable address.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ChaosError

__all__ = ["SITES", "FaultEvent", "FaultConfig", "FaultSchedule"]

#: The faultable decision sites.
#:
#: * ``send`` — a faultable message leaves :meth:`Cluster.send`
#:   (drop / delay / dup / reorder);
#: * ``migrate`` — a migration is about to start (abort before any state
#:   moves);
#: * ``mig_delivery`` — a thread image arrives at its destination
#:   (bounce: the destination refuses and the image ships home);
#: * ``ckpt`` — a checkpoint blob is about to hit the simulated disk
#:   (io_error / corrupt);
#: * ``barrier`` — a coordinated checkpoint barrier completed
#:   (crash / evac of a processor).
SITES = ("send", "migrate", "mig_delivery", "ckpt", "barrier")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault: ``kind`` fired at decision point ``(site, seq)``.

    The repr is valid Python — a printed schedule pastes straight back
    into a scripted :class:`FaultSchedule` (see
    :meth:`ChaosRunner.repro_script`).

    ``arg`` is the kind's parameter: extra delay in ns (``delay``, and
    the duplicate's offset for ``dup``), or a fraction in ``[0, 1)``
    selecting a victim among the currently-live choices (``crash`` /
    ``evac`` pick a processor, ``corrupt`` picks a payload byte) — a
    fraction, not an index, so a schedule stays meaningful as processors
    fail or blob sizes change.
    """

    site: str
    seq: int
    kind: str
    arg: Any = None


@dataclass(frozen=True)
class FaultConfig:
    """Per-decision-point fault rates for seeded schedules.

    Rates are probabilities per consultation of the matching site; the
    kinds of one site are mutually exclusive (at most one fault per
    decision point).
    """

    # -- "send" site ----------------------------------------------------
    drop_rate: float = 0.0
    delay_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    delay_ns_min: float = 2_000.0
    delay_ns_max: float = 50_000.0
    # -- "migrate" / "mig_delivery" sites -------------------------------
    migrate_abort_rate: float = 0.0
    migrate_bounce_rate: float = 0.0
    # -- "ckpt" site ----------------------------------------------------
    ckpt_error_rate: float = 0.0
    ckpt_corrupt_rate: float = 0.0
    # -- "barrier" site -------------------------------------------------
    crash_rate: float = 0.0
    evac_rate: float = 0.0
    #: Stop injecting after this many faults (0 = unlimited).
    max_faults: int = 0

    def _check(self) -> None:
        pairs = [("send", self.drop_rate + self.delay_rate + self.dup_rate
                  + self.reorder_rate),
                 ("migrate", self.migrate_abort_rate),
                 ("mig_delivery", self.migrate_bounce_rate),
                 ("ckpt", self.ckpt_error_rate + self.ckpt_corrupt_rate),
                 ("barrier", self.crash_rate + self.evac_rate)]
        for site, total in pairs:
            if not 0.0 <= total <= 1.0:
                raise ChaosError(
                    f"{site!r} fault rates sum to {total}, not in [0, 1]")


class FaultSchedule:
    """A deterministic answer to "does a fault fire at this point?".

    Build one with :meth:`seeded` or :meth:`scripted`; the injector calls
    :meth:`decide` at every faultable decision point.  Applied events
    accumulate in :attr:`injected` (and :meth:`script` returns them),
    which is exactly the list a scripted replay needs.
    """

    def __init__(self, *, seed: Optional[int] = None,
                 config: Optional[FaultConfig] = None,
                 script: Optional[Sequence[FaultEvent]] = None):
        if (seed is None) == (script is None):
            raise ChaosError(
                "FaultSchedule needs exactly one of seed= or script= "
                "(use .seeded() / .scripted())")
        self.seed = seed
        self.config = config or FaultConfig()
        self.config._check()
        self._rng = random.Random(seed) if seed is not None else None
        self._script: Dict[Tuple[str, int], FaultEvent] = {}
        if script is not None:
            for ev in script:
                if ev.site not in SITES:
                    raise ChaosError(f"unknown fault site {ev.site!r}; "
                                     f"known: {SITES}")
                key = (ev.site, ev.seq)
                if key in self._script:
                    raise ChaosError(f"duplicate scripted event at {key}")
                self._script[key] = ev
        self._seq: Dict[str, int] = {site: 0 for site in SITES}
        #: Every fault actually applied this run, in application order.
        self.injected: List[FaultEvent] = []

    # -- constructors ---------------------------------------------------

    @classmethod
    def seeded(cls, seed: int,
               config: Optional[FaultConfig] = None) -> "FaultSchedule":
        """Draw faults from ``random.Random(seed)`` at ``config``'s rates."""
        return cls(seed=seed, config=config)

    @classmethod
    def scripted(cls, events: Sequence[FaultEvent]) -> "FaultSchedule":
        """Replay exactly ``events``, matched by ``(site, seq)``."""
        return cls(script=list(events))

    @property
    def mode(self) -> str:
        """``"seeded"`` or ``"scripted"``."""
        return "seeded" if self._rng is not None else "scripted"

    # -- the one decision -----------------------------------------------

    def decide(self, site: str) -> Optional[FaultEvent]:
        """Consume one decision point at ``site``; maybe return a fault.

        Advances the site's sequence number unconditionally — in both
        modes, fault or not — so seeded and scripted runs of the same
        workload agree on which physical event each ``(site, seq)`` is.
        """
        if site not in SITES:
            raise ChaosError(f"unknown fault site {site!r}; known: {SITES}")
        seq = self._seq[site]
        self._seq[site] = seq + 1
        if self._rng is None:
            ev = self._script.get((site, seq))
            if ev is not None:
                self.injected.append(ev)
            return ev
        cfg = self.config
        if cfg.max_faults and len(self.injected) >= cfg.max_faults:
            return None
        ev = self._draw(site, seq)
        if ev is not None:
            self.injected.append(ev)
        return ev

    def _draw(self, site: str, seq: int) -> Optional[FaultEvent]:
        rng = self._rng
        cfg = self.config
        r = rng.random()
        if site == "send":
            if r < cfg.drop_rate:
                return FaultEvent(site, seq, "drop")
            r -= cfg.drop_rate
            if r < cfg.delay_rate:
                ns = round(rng.uniform(cfg.delay_ns_min, cfg.delay_ns_max), 1)
                return FaultEvent(site, seq, "delay", ns)
            r -= cfg.delay_rate
            if r < cfg.dup_rate:
                ns = round(rng.uniform(cfg.delay_ns_min, cfg.delay_ns_max), 1)
                return FaultEvent(site, seq, "dup", ns)
            r -= cfg.dup_rate
            if r < cfg.reorder_rate:
                return FaultEvent(site, seq, "reorder")
        elif site == "migrate":
            if r < cfg.migrate_abort_rate:
                return FaultEvent(site, seq, "abort")
        elif site == "mig_delivery":
            if r < cfg.migrate_bounce_rate:
                return FaultEvent(site, seq, "bounce")
        elif site == "ckpt":
            if r < cfg.ckpt_error_rate:
                return FaultEvent(site, seq, "io_error")
            r -= cfg.ckpt_error_rate
            if r < cfg.ckpt_corrupt_rate:
                return FaultEvent(site, seq, "corrupt",
                                  round(rng.random(), 6))
        elif site == "barrier":
            if r < cfg.crash_rate:
                return FaultEvent(site, seq, "crash", round(rng.random(), 6))
            r -= cfg.crash_rate
            if r < cfg.evac_rate:
                return FaultEvent(site, seq, "evac", round(rng.random(), 6))
        return None

    # -- replay support -------------------------------------------------

    def script(self) -> List[FaultEvent]:
        """The applied faults, ready for :meth:`scripted` replay."""
        return list(self.injected)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        src = f"seed={self.seed}" if self.mode == "seeded" \
            else f"{len(self._script)} scripted"
        return f"<FaultSchedule {src}, {len(self.injected)} injected>"
