"""Deterministic fault injection and invariant checking (chaos testing).

The migration, checkpoint, and load-balancing machinery this library
reproduces exists *because* machines fail — so the test suite must be
able to make them fail, on purpose, reproducibly.  This package injects
processor crashes, message drop/delay/duplication/reorder, migration
aborts, and checkpoint-disk errors into unmodified :mod:`repro.sim` /
:mod:`repro.ampi` runs, checks a registry of runtime invariants at every
injection point, and reduces each run to a replayable, shrinkable
``(seed, schedule)`` pair:

* :mod:`~repro.chaos.faults` — :class:`FaultSchedule`: seeded or scripted
  decisions at stable ``(site, seq)`` points;
* :mod:`~repro.chaos.injector` — :class:`FaultInjector`: the hooks the
  cluster, migrator, and checkpointer call;
* :mod:`~repro.chaos.invariants` — the :func:`invariant` registry and
  :func:`check_invariants`;
* :mod:`~repro.chaos.harness` — wiring + outcome classification
  (:class:`ChaosResult`);
* :mod:`~repro.chaos.runner` — :class:`ChaosRunner`: sweep, replay,
  ddmin shrink, repro-script emission;
* :mod:`~repro.chaos.workloads` — self-checking stencil / samplesort /
  BT-MZ runs (and a deliberately fragile reduction for tool tests).
"""

from repro.chaos.faults import SITES, FaultConfig, FaultEvent, FaultSchedule
from repro.chaos.harness import (ChaosResult, drive_ampi_chaos,
                                 wire_ampi_faults)
from repro.chaos.injector import FaultInjector
from repro.chaos.invariants import (INVARIANTS, ChaosContext,
                                    check_invariants, invariant)
from repro.chaos.runner import ChaosRunner
from repro.chaos.workloads import (STANDARD_WORKLOADS, BTMZChaosWorkload,
                                   ChaosWorkload, FragileReduceWorkload,
                                   SampleSortChaosWorkload,
                                   StencilChaosWorkload)

__all__ = [
    "SITES", "FaultEvent", "FaultConfig", "FaultSchedule",
    "FaultInjector",
    "ChaosContext", "INVARIANTS", "invariant", "check_invariants",
    "ChaosResult", "wire_ampi_faults", "drive_ampi_chaos",
    "ChaosRunner",
    "ChaosWorkload", "StencilChaosWorkload", "SampleSortChaosWorkload",
    "BTMZChaosWorkload", "FragileReduceWorkload", "STANDARD_WORKLOADS",
]
