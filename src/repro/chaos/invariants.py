"""Runtime invariants checked at injection and quiescence points.

An invariant is a predicate over a :class:`ChaosContext` (the AMPI runtime
plus its fault injector) that must hold *no matter what faults fire*.
Faults may slow the run, deadlock it (a dropped message), or force
recovery — but they must never put the runtime into a state these checks
reject: a rank lost or duplicated, a load database lying about placement,
a clock running backwards, messages silently materializing.

Register new invariants with the :func:`invariant` decorator; the chaos
harness runs every registered check after each injected fault
(``point="inject"``) and once more when the run finishes
(``point="quiescence"``, where transient in-flight states are no longer
excused).  A failed check raises
:class:`~repro.errors.InvariantViolation` — the chaos subsystem's
*finding*, distinct from the faults it injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.core.pup import pack_value, pup_unseal, unpack_value
from repro.core.thread import ThreadState
from repro.errors import InvariantViolation, PupError

__all__ = ["ChaosContext", "INVARIANTS", "invariant", "check_invariants"]


@dataclass
class ChaosContext:
    """What the invariant checkers can see: runtime, injector, history."""

    runtime: object                    # AmpiRuntime
    injector: object                   # FaultInjector
    #: Per-processor high-water clock from the previous check (the
    #: monotonicity invariant's memory).
    last_clocks: Dict[int, float] = field(default_factory=dict)
    #: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when set,
    #: :func:`check_invariants` counts its passes and failures there.
    metrics: Optional[object] = None


#: Registry of invariant checkers: name -> fn(ctx, point) -> error or None.
#: Written only by the :func:`invariant` decorator at import time
#: (duplicates rejected); every checker keeps its run state on the
#: :class:`ChaosContext`, never here — the module-global-state hazard
#: OBS001 polices in the runtime packages.
INVARIANTS: Dict[str, Callable[[ChaosContext, str], Optional[str]]] = {}


def invariant(name: str):
    """Register an invariant checker under ``name`` (decorator).

    The checker receives ``(ctx, point)`` with ``point`` one of
    ``"inject"`` / ``"quiescence"`` and returns an error message, or
    ``None`` when the invariant holds.
    """
    def register(fn):
        if name in INVARIANTS:
            raise ValueError(f"invariant {name!r} already registered")
        INVARIANTS[name] = fn
        return fn
    return register


def check_invariants(ctx: ChaosContext, point: str = "inject") -> None:
    """Run every registered invariant; raise on any failure.

    Raises
    ------
    InvariantViolation
        Naming each failed invariant and what it saw.
    """
    failures = []
    for name, fn in INVARIANTS.items():
        msg = fn(ctx, point)
        if msg is not None:
            failures.append(f"[{name}] {msg}")
    if ctx.metrics is not None:
        ctx.metrics.counter("chaos.invariant_checks").inc(len(INVARIANTS))
        ctx.metrics.counter("chaos.invariant_failures").inc(len(failures))
    if failures:
        raise InvariantViolation(
            f"invariant violation at {point}: " + "; ".join(failures))


def _live_ranks(rt):
    """Ranks still tracked by the LB database (i.e. not finished)."""
    return [r for r in range(rt.num_ranks) if rt.db.tracks(r)]


# ---------------------------------------------------------------------------
# the registered invariants
# ---------------------------------------------------------------------------

@invariant("clock-monotonic")
def _clock_monotonic(ctx: ChaosContext, point: str) -> Optional[str]:
    """No processor's virtual clock ever moves backwards."""
    for proc in ctx.runtime.cluster.processors:
        last = ctx.last_clocks.get(proc.id, 0.0)
        if proc.now < last:
            return (f"pe{proc.id} clock went backwards: "
                    f"{last:.1f} -> {proc.now:.1f} ns")
        ctx.last_clocks[proc.id] = proc.now
    return None


@invariant("unique-rank-placement")
def _unique_rank_placement(ctx: ChaosContext, point: str) -> Optional[str]:
    """Every live rank's thread lives on exactly one scheduler.

    A thread mid-migration is on zero schedulers — excused while faults
    are still flying, a violation once the run has quiesced.
    """
    rt = ctx.runtime
    for rank in _live_ranks(rt):
        thread = rt.rank_thread[rank]
        if thread.state is ThreadState.MIGRATING:
            if point == "quiescence":
                return f"rank {rank} still MIGRATING at quiescence"
            continue
        hosts = [s.processor.id for s in rt.schedulers
                 if s.threads.get(thread.tid) is thread]
        if len(hosts) != 1:
            return f"rank {rank} hosted by processors {hosts} (want one)"
        if hosts[0] != thread.scheduler.processor.id:
            return (f"rank {rank}: thread.scheduler says "
                    f"pe{thread.scheduler.processor.id}, found on "
                    f"pe{hosts[0]}")
    return None


@invariant("lb-placement-consistent")
def _lb_placement(ctx: ChaosContext, point: str) -> Optional[str]:
    """The LB database's placement matches where ranks actually are.

    Skipped while a rebalance transaction is mid-flight: the manager
    records the decided placement first and the migrations catch up
    before the barrier releases, so inside that window the database
    legitimately leads reality.
    """
    rt = ctx.runtime
    if rt.rebalance_in_progress:
        return None
    placement = rt.db.placement()
    for rank, pe in placement.items():
        thread = rt.rank_thread[rank]
        if thread.state is ThreadState.MIGRATING:
            continue  # the arrival callback re-syncs the database
        actual = thread.scheduler.processor.id
        if actual != pe:
            return (f"rank {rank}: LBDatabase says pe{pe}, thread is on "
                    f"pe{actual}")
    return None


@invariant("no-rank-on-failed-pe")
def _no_rank_on_failed_pe(ctx: ChaosContext, point: str) -> Optional[str]:
    """Fail-stop means fail-stop: no live rank runs on a failed processor."""
    rt = ctx.runtime
    for rank in _live_ranks(rt):
        thread = rt.rank_thread[rank]
        if thread.state is ThreadState.MIGRATING:
            continue
        proc = thread.scheduler.processor
        if proc.failed:
            return f"rank {rank} resident on failed pe{proc.id}"
    return None


@invariant("send-arrival-conservation")
def _send_arrival_conservation(ctx: ChaosContext,
                               point: str) -> Optional[str]:
    """In-flight messages are conserved through the injector.

    Every faultable send schedules exactly one arrival, minus drops,
    plus duplicates — nothing silently appears or vanishes beyond what
    the schedule recorded.
    """
    c = ctx.injector.counters
    expect = c["sends_seen"] - c["dropped"] + c["duplicated"]
    got = ctx.injector.arrivals_scheduled
    if got != expect:
        return (f"{got} arrivals scheduled for {c['sends_seen']} sends "
                f"(- {c['dropped']} drops + {c['duplicated']} dups "
                f"= {expect} expected)")
    return None


@invariant("pup-roundtrip-stable")
def _pup_roundtrip_stable(ctx: ChaosContext, point: str) -> Optional[str]:
    """pack -> unpack -> pack of runtime state is byte-identical."""
    rt = ctx.runtime
    probe = {"placement": {int(r): int(pe)
                           for r, pe in rt.db.placement().items()},
             "epoch": int(rt.db.epoch),
             "finished": int(rt._finished)}
    blob = pack_value(probe)
    if pack_value(unpack_value(blob)) != blob:
        return "pack_value roundtrip of runtime state is not byte-stable"
    return None


@invariant("checkpoint-integrity")
def _checkpoint_integrity(ctx: ChaosContext, point: str) -> Optional[str]:
    """Stored checkpoints the injector did not corrupt still verify."""
    if point != "quiescence":
        return None  # checked once at the end; restores check en route
    for record in ctx.runtime.checkpointer.records():
        if record.key in ctx.injector.corrupted_keys:
            continue
        try:
            pup_unseal(record.blob)
        except PupError as e:
            return (f"checkpoint {record.key!r} failed its seal without "
                    f"an injected corruption: {e}")
    return None
