"""Self-checking workloads for the chaos harness.

Each workload builds a fresh, fully deterministic AMPI run with built-in
checkpoint barriers (the crash/evacuation injection points) and returns a
checker that judges the final answer against an independent reference —
so a run that limps to completion with wrong data is a *violation*, not a
pass.

:class:`FragileReduceWorkload` is deliberately broken: it assumes
at-most-once message delivery, so a single duplicated contribution makes
it produce a wrong sum.  It exists as a known-failing target for shrinker
and repro-script tests — it is not part of the "runtime must survive"
sweep.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ampi import AmpiRuntime
from repro.balance.strategies import GreedyLB, NullLB
from repro.workloads.btmz import BTMZConfig, make_btmz_main
from repro.workloads.stencil import (StencilConfig, ampi_stencil_main,
                                     initial_grid, jacobi_reference)

__all__ = ["ChaosWorkload", "StencilChaosWorkload",
           "SampleSortChaosWorkload", "BTMZChaosWorkload",
           "FragileReduceWorkload", "STANDARD_WORKLOADS"]


class ChaosWorkload:
    """A named, repeatable AMPI run with a correctness oracle.

    Subclasses implement :meth:`build`, returning a fresh
    ``(AmpiRuntime, check_fn)`` pair; ``check_fn(rt)`` returns whether
    the completed run produced the right answer.  ``build`` must be
    deterministic — the chaos runner's replay and shrink guarantees rest
    on every build being the same run.
    """

    name = "?"

    def build(self):
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class StencilChaosWorkload(ChaosWorkload):
    """The Figure 1 Jacobi stencil, checked against the serial reference."""

    name = "stencil"

    def __init__(self, rows: int = 16, cols: int = 8, iterations: int = 6,
                 npes: int = 3, nranks: int = 4,
                 checkpoint_period: int = 2):
        self.cfg = StencilConfig(rows=rows, cols=cols, iterations=iterations)
        self.npes = npes
        self.nranks = nranks
        self.checkpoint_period = checkpoint_period

    def build(self):
        results: Dict[int, np.ndarray] = {}
        rt = AmpiRuntime(self.npes, self.nranks,
                         ampi_stencil_main(self.cfg, results,
                                           self.checkpoint_period),
                         strategy=NullLB(),
                         slot_bytes=256 * 1024, stack_bytes=8 * 1024)
        expected = jacobi_reference(initial_grid(self.cfg),
                                    self.cfg.iterations)
        nranks = self.nranks

        def check(rt) -> bool:
            if len(results) != nranks:
                return False
            grid = np.vstack([results[r] for r in range(nranks)])
            return bool(np.allclose(grid, expected))

        return rt, check


class SampleSortChaosWorkload(ChaosWorkload):
    """A small parallel sample sort with migration and checkpoints.

    Exercises collectives (allgather / bcast / alltoall), an
    ``MPI_Migrate`` rebalance, and a checkpoint barrier, all on real
    data; the oracle is NumPy's own sort of the same input.
    """

    name = "samplesort"

    def __init__(self, n: int = 4096, nranks: int = 6, npes: int = 3,
                 input_seed: int = 2006):
        self.n = n
        self.nranks = nranks
        self.npes = npes
        self.input_seed = input_seed

    def build(self):
        rng = np.random.default_rng(self.input_seed)
        data = rng.integers(0, 10_000, size=self.n, dtype=np.int64)
        chunks = np.array_split(data, self.nranks)
        expected = np.sort(data)
        results: Dict[int, np.ndarray] = {}
        nranks = self.nranks

        def main(mpi):
            local = np.sort(chunks[mpi.rank])
            pos = np.linspace(0, len(local) - 1,
                              mpi.size + 2).astype(int)[1:-1]
            all_samples = yield from mpi.allgather(local[pos].tolist())
            yield from mpi.checkpoint()
            splitters = None
            if mpi.rank == 0:
                flat = np.sort(np.concatenate(
                    [np.asarray(s) for s in all_samples]))
                idx = np.linspace(0, len(flat) - 1,
                                  mpi.size + 1).astype(int)
                splitters = flat[idx][1:-1]
            splitters = yield from mpi.bcast(splitters, root=0)
            buckets = np.split(local, np.searchsorted(local, splitters))
            incoming = yield from mpi.alltoall(buckets)
            mine = np.sort(np.concatenate(incoming))
            mpi.charge(25.0 * len(mine))
            yield from mpi.migrate()
            yield from mpi.checkpoint()
            mpi.charge(25.0 * len(mine))
            results[mpi.rank] = mine

        rt = AmpiRuntime(self.npes, self.nranks, main, strategy=GreedyLB(),
                         slot_bytes=256 * 1024, stack_bytes=8 * 1024)

        def check(rt) -> bool:
            if len(results) != nranks:
                return False
            merged = np.concatenate([results[r] for r in range(nranks)])
            return bool(np.array_equal(merged, expected))

        return rt, check


class BTMZChaosWorkload(ChaosWorkload):
    """BT-MZ class S with rebalancing and periodic checkpoints.

    BT-MZ has no numeric output to check; the oracle is completion —
    every rank ran all iterations through the load-balance and
    checkpoint barriers despite the faults.
    """

    name = "btmz"

    def __init__(self, class_name: str = "S", nprocs: int = 4,
                 npes: int = 2, iterations: int = 4,
                 checkpoint_period: int = 2):
        self.cfg = BTMZConfig(class_name, nprocs, npes,
                              iterations=iterations, lb_period=2)
        self.checkpoint_period = checkpoint_period

    def build(self):
        rt = AmpiRuntime(self.cfg.npes, self.cfg.nprocs,
                         make_btmz_main(self.cfg, self.checkpoint_period),
                         strategy=GreedyLB(),
                         slot_bytes=256 * 1024, stack_bytes=8 * 1024)

        def check(rt) -> bool:
            return rt.done

        return rt, check


class FragileReduceWorkload(ChaosWorkload):
    """A reduction that wrongly assumes at-most-once delivery.

    Rank 0 (pinned alone on pe0, so every contribution crosses the
    faultable network) sums exactly ``size - 1`` received contributions.
    Duplicate one contribution and the loop terminates early, counting
    the duplicate and dropping a real value — a silently wrong sum.  The
    canonical deterministic target for shrinker and repro-script tests.
    """

    name = "fragile-reduce"

    def __init__(self, nranks: int = 4, npes: int = 2):
        self.nranks = nranks
        self.npes = npes

    def expected_total(self) -> int:
        """The sum a fault-free run produces."""
        return sum((r + 1) * 10 for r in range(1, self.nranks))

    def build(self):
        results: Dict[int, int] = {}
        expected = self.expected_total()

        def main(mpi):
            if mpi.rank == 0:
                total = 0
                for _ in range(mpi.size - 1):
                    v = yield from mpi.recv(tag="contrib")
                    total += v
                results[0] = total
            else:
                mpi.send(0, (mpi.rank + 1) * 10, tag="contrib")
                yield from mpi.yield_()

        rt = AmpiRuntime(self.npes, self.nranks, main, strategy=NullLB(),
                         placement=lambda rank: 0 if rank == 0 else 1,
                         slot_bytes=256 * 1024, stack_bytes=8 * 1024)

        def check(rt) -> bool:
            return results.get(0) == expected

        return rt, check


#: The workloads every chaos sweep runs (the fragile target is excluded
#: on purpose: it is a known-broken protocol used to test the tools).
STANDARD_WORKLOADS = (StencilChaosWorkload, SampleSortChaosWorkload,
                      BTMZChaosWorkload)
