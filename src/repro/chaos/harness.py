"""Wiring faults into an AMPI run and classifying what comes out.

:func:`wire_ampi_faults` attaches a :class:`FaultInjector` to a built
:class:`~repro.ampi.runtime.AmpiRuntime` — message faults on the cluster,
abort/bounce on the migrator, disk faults on the checkpointer, and
processor crash/evacuation at coordinated checkpoint barriers (the one
point where every live rank has a fresh image on disk and the event queue
is provably empty, so fail-stop recovery is well-defined).

:func:`drive_ampi_chaos` runs a chaos workload under a schedule and
reduces the run to a :class:`ChaosResult` with one of four outcomes:

* ``pass`` — the run finished, every invariant holds, the answer is right;
* ``detected`` — the runtime *cleanly* reported an injected problem (a
  deadlock from a dropped message, a checkpoint that failed its integrity
  check): acceptable behavior under fault;
* ``violation`` — an invariant failed or the run finished with a wrong
  answer: the finding chaos testing exists to surface;
* ``error`` — a non-library exception escaped: a bug, full stop.

The result also carries SHA-256 hashes of the message trace and final
state, so "reproduces byte-identically" is a string comparison.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chaos.faults import FaultEvent, FaultSchedule
from repro.chaos.injector import FaultInjector
from repro.chaos.invariants import ChaosContext, check_invariants
from repro.errors import ChaosError, InvariantViolation, ReproError

__all__ = ["ChaosResult", "wire_ampi_faults", "drive_ampi_chaos"]


@dataclass(frozen=True)
class ChaosResult:
    """One chaos run, reduced to its reproducible essentials."""

    workload: str
    seed: Optional[int]
    outcome: str                       # pass | detected | violation | error
    detail: str
    schedule: List[FaultEvent]         # faults actually applied
    trace_hash: str                    # SHA-256 of the message trace
    state_hash: str                    # SHA-256 of the final state
    makespan_ns: float
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        """Whether this run is a chaos *finding* (violation or error)."""
        return self.outcome in ("violation", "error")

    def fingerprint(self) -> str:
        """One hash identifying the run's full observable behavior."""
        return hashlib.sha256(
            (self.trace_hash + self.state_hash).encode()).hexdigest()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tail = f" ({self.detail})" if self.detail else ""
        return (f"[{self.workload} seed={self.seed}] {self.outcome}{tail}; "
                f"{len(self.schedule)} faults, "
                f"fingerprint {self.fingerprint()[:12]}")


# ---------------------------------------------------------------------------
# wiring
# ---------------------------------------------------------------------------

def wire_ampi_faults(rt, injector: FaultInjector) -> ChaosContext:
    """Attach an injector to every faultable layer of an AMPI runtime.

    Returns the :class:`ChaosContext` the invariant checkers run against.
    Invariants are checked after every applied fault; barrier faults
    (processor crash / proactive evacuation) are applied through the
    runtime's ``on_checkpoint`` hook, chained before any hook already
    installed.
    """
    injector.attach(rt.cluster, rt.checkpointer)
    ctx = ChaosContext(runtime=rt, injector=injector)
    injector.on_inject = lambda ev: check_invariants(ctx, "inject")
    prev_hook = rt.on_checkpoint
    bus = rt.cluster.queue.hooks

    def barrier_hook():
        ev = bus.decide("checkpoint.barrier")
        if ev is not None:
            _apply_barrier_fault(rt, injector, ev)
        if prev_hook is not None:
            prev_hook()

    rt.on_checkpoint = barrier_hook
    return ctx


def _pick_victim(rt, fraction: float) -> Optional[int]:
    """Map a schedule fraction onto a live processor, or None to skip.

    Barrier faults never take down the last live processor — a machine
    with no survivors has no recovery story to test.
    """
    live = [p.id for p in rt.cluster.processors if not p.failed]
    if len(live) < 2:
        return None
    return live[min(int(float(fraction) * len(live)), len(live) - 1)]


def _apply_barrier_fault(rt, injector: FaultInjector,
                         ev: FaultEvent) -> None:
    victim = _pick_victim(rt, ev.arg or 0.0)
    if victim is None:
        return
    survivors = [p.id for p in rt.cluster.processors
                 if not p.failed and p.id != victim]
    if ev.kind == "crash":
        _crash_processor(rt, victim, survivors)
    elif ev.kind == "evac":
        _evacuate_processor(rt, victim, survivors)
    else:
        raise ChaosError(f"unknown barrier fault kind {ev.kind!r}")
    injector.record_barrier(ev)


def _crash_processor(rt, victim: int, survivors: List[int]) -> None:
    """Fail-stop a processor right after a coordinated checkpoint.

    Every live rank has a fresh image on the simulated disk and the event
    queue is empty, so the lost ranks' threads are destroyed and rebuilt
    from their checkpoints on the survivors, round-robin.
    """
    sched = rt.schedulers[victim]
    lost = [r for r in range(rt.num_ranks)
            if rt.db.tracks(r) and rt.rank_pe(r) == victim]
    for rank in lost:
        thread = rt.rank_thread[rank]
        sched.remove(thread)
        sched.stack_manager.evacuate(thread.stack)
    rt.cluster[victim].failed = True
    for i, rank in enumerate(lost):
        rt.recover_rank(rank, survivors[i % len(survivors)])


def _evacuate_processor(rt, victim: int, survivors: List[int]) -> None:
    """Proactively drain a processor, then mark it failed once empty.

    The paper's "vacate a node that is expected to fail": threads migrate
    off while the node still works.  If fault injection aborts every
    attempt for some thread, the node stays up (a half-evacuated node
    cannot fail-stop without losing threads).
    """
    rt.checkpointer.evacuate(victim, targets=survivors)
    rt.cluster.run()  # complete the thread-image deliveries
    if not rt.schedulers[victim].threads:
        rt.cluster[victim].failed = True


# ---------------------------------------------------------------------------
# driving
# ---------------------------------------------------------------------------

def drive_ampi_chaos(workload, schedule: FaultSchedule,
                     seed: Optional[int] = None,
                     observe=None) -> ChaosResult:
    """Run one chaos workload under one fault schedule and classify it.

    ``workload`` is any object with ``name`` and
    ``build() -> (runtime, check_fn)`` (see
    :mod:`repro.chaos.workloads`); ``check_fn(rt)`` judges the final
    answer.

    ``observe``, if given, is called ``observe(rt, ctx)`` after the
    faults are wired but before the run starts — the attachment point
    for a :class:`~repro.obs.collect.RunObserver` (subscribe, set
    ``ctx.metrics``, ...).  Observation must be pure: the chaos
    channels' values pass through observers unchanged, so fingerprints
    are identical with or without one (pinned by the golden tests).
    """
    rt, check = workload.build()
    rt.cluster.enable_tracing()
    injector = FaultInjector(schedule)
    ctx = wire_ampi_faults(rt, injector)
    if observe is not None:
        observe(rt, ctx)
    outcome, detail = "pass", ""
    try:
        rt.run()
        check_invariants(ctx, "quiescence")
        if not check(rt):
            outcome = "violation"
            detail = "workload finished with an incorrect result"
    except InvariantViolation as e:
        outcome, detail = "violation", str(e)
    except ReproError as e:
        outcome, detail = "detected", f"{type(e).__name__}: {e}"
    except Exception as e:  # noqa: BLE001 - the whole point is to catch it
        outcome, detail = "error", f"{type(e).__name__}: {e}"
    return ChaosResult(
        workload=workload.name,
        seed=seed,
        outcome=outcome,
        detail=detail,
        schedule=schedule.script(),
        trace_hash=_hash_trace(rt),
        state_hash=_hash_state(rt, injector, outcome, detail),
        makespan_ns=rt.makespan_ns,
        counters=dict(injector.counters),
    )


def _hash_trace(rt) -> str:
    """SHA-256 of the full message trace.

    Trace tuples are (send_time, src, dst, tag, size): everything that
    identifies a message except its ``msg_id``, which is redundant with
    send order (and was once a process-global counter that broke
    replay comparison across runs — see ``Cluster._next_msg_id``).
    """
    h = hashlib.sha256()
    for entry in (rt.cluster.message_trace or []):
        h.update(repr(entry).encode())
        h.update(b"\n")
    return h.hexdigest()


def _hash_state(rt, injector: FaultInjector, outcome: str,
                detail: str) -> str:
    """SHA-256 of the final runtime state and fault bookkeeping."""
    state = (
        tuple(rt.pe_of_ranks()),
        rt.makespan_ns,
        rt._finished,
        tuple(p.failed for p in rt.cluster.processors),
        tuple(sorted(injector.counters.items())),
        tuple(repr(ev) for ev in injector.schedule.injected),
        outcome,
        detail,
    )
    return hashlib.sha256(repr(state).encode()).hexdigest()
