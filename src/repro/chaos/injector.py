"""The fault injector: hooks a :class:`FaultSchedule` into the runtimes.

One :class:`FaultInjector` subscribes to the cluster kernel's
:class:`~repro.kernel.HookBus` — the only sanctioned interception point.
:meth:`FaultInjector.attach` registers one adapter per channel the
runtimes publish (``"net.send"``, ``"migration.start"``,
``"migration.delivery"``, ``"checkpoint.write"``,
``"checkpoint.barrier"``); the subsystems themselves never learn the
injector exists, and no runtime call site is wrapped or subclassed —
chaos is purely additive.  The adapters call the ``on_*`` methods below,
whose consultation order against the schedule is the determinism
contract: one :meth:`~repro.chaos.faults.FaultSchedule.decide` per
channel visit, in kernel dispatch order.

Message faults only apply to tags in ``faultable_tags`` (application
traffic, ``"ampi"`` by default).  Thread-migration images are *never*
dropped or duplicated — losing one would lose a thread outright, which is
not a fault model the paper's runtime admits; migrations instead fail via
the dedicated abort (before any state moves) and bounce (the image returns
home intact) paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.chaos.faults import FaultEvent, FaultSchedule
from repro.core.pup import pup_seal
from repro.errors import ChaosError, CheckpointError

__all__ = ["FaultInjector"]

#: Size of the pup integrity-envelope header (magic + length + CRC32);
#: corruption flips payload bytes so the seal, not luck, catches it.
_SEAL_HEADER_LEN = len(pup_seal(b""))


class FaultInjector:
    """Applies a schedule's decisions at the runtime's faultable points."""

    def __init__(self, schedule: FaultSchedule,
                 faultable_tags: Tuple[str, ...] = ("ampi",)):
        self.schedule = schedule
        self.faultable_tags = tuple(faultable_tags)
        self.counters: Dict[str, int] = {
            "sends_seen": 0, "dropped": 0, "delayed": 0, "duplicated": 0,
            "reordered": 0, "migrations_vetoed": 0, "migrations_bounced": 0,
            "ckpt_io_errors": 0, "ckpt_corrupted": 0, "crashes": 0,
            "evacuations": 0,
        }
        #: Arrival events scheduled for faultable sends; the conservation
        #: invariant checks this against sends - drops + dups.
        self.arrivals_scheduled = 0
        #: Checkpoint keys whose blobs this injector corrupted (so the
        #: integrity invariant knows which failures are *expected*).
        self.corrupted_keys: set = set()
        #: Called with each applied :class:`FaultEvent` (the chaos harness
        #: runs the invariant checkers here).
        self.on_inject = None
        self.cluster = None
        self.checkpointer = None

    #: channel name -> adapter-method name, in subscription order.
    _CHANNELS = (
        ("net.send", "_net_send"),
        ("migration.start", "_migration_start"),
        ("migration.delivery", "_migration_delivery"),
        ("checkpoint.write", "_checkpoint_write"),
        ("checkpoint.barrier", "_checkpoint_barrier"),
    )

    # ------------------------------------------------------------------

    def attach(self, cluster, checkpointer=None) -> "FaultInjector":
        """Subscribe this injector on the cluster kernel's hook bus.

        Every faultable decision point in the runtimes is a named bus
        channel; one adapter per channel translates the channel protocol
        into the ``on_*`` methods.  Attaching twice (to any cluster)
        would double the schedule consultations and wreck determinism,
        so it is an error.
        """
        if self.cluster is not None:
            raise ChaosError("injector is already attached to a cluster")
        self.cluster = cluster
        self.checkpointer = checkpointer
        bus = cluster.queue.hooks
        for channel, method in self._CHANNELS:
            bus.subscribe(channel, getattr(self, method))
        return self

    def detach(self) -> None:
        """Unsubscribe all channel adapters from the cluster's bus."""
        if self.cluster is None:
            raise ChaosError("injector is not attached")
        bus = self.cluster.queue.hooks
        for channel, method in self._CHANNELS:
            bus.unsubscribe(channel, getattr(self, method))
        self.cluster = None
        self.checkpointer = None

    # -- bus channel adapters -------------------------------------------

    def _net_send(self, arrivals, msg) -> List[float]:
        out: List[float] = []
        for arrival in arrivals:
            out.extend(self.on_send(msg, arrival))
        return out

    def _migration_start(self, thread, src_pe, dst_pe):
        return True if self.on_migrate(thread, src_pe, dst_pe) else None

    def _migration_delivery(self, image, msg):
        return self.on_migration_delivery(image, msg)

    def _checkpoint_write(self, blob, key) -> bytes:
        return self.on_checkpoint_write(key, blob)

    def _checkpoint_barrier(self):
        return self.on_barrier()

    def notify(self, event: FaultEvent) -> None:
        """Fire the :attr:`on_inject` hook for an applied fault."""
        if self.on_inject is not None:
            self.on_inject(event)

    # -- cluster hook: message faults -----------------------------------

    def on_send(self, msg, arrival: float) -> List[float]:
        """Decide the arrival times of one sent message.

        Returns the (possibly empty) list of delivery times the cluster
        should schedule: ``[]`` drops the message, two entries duplicate
        it, an earlier-than-computed time reorders it ahead of traffic
        sent before it.
        """
        if msg.tag not in self.faultable_tags:
            return [arrival]
        self.counters["sends_seen"] += 1
        out = [arrival]
        ev = self.schedule.decide("send")
        if ev is not None:
            if ev.kind == "drop":
                out = []
                self.counters["dropped"] += 1
            elif ev.kind == "delay":
                out = [arrival + float(ev.arg)]
                self.counters["delayed"] += 1
            elif ev.kind == "dup":
                out = [arrival, arrival + float(ev.arg)]
                self.counters["duplicated"] += 1
            elif ev.kind == "reorder":
                # The cluster clamps this up to the current event time:
                # the message arrives as early as legally possible,
                # jumping ahead of slower traffic sent before it.
                out = [msg.send_time]
                self.counters["reordered"] += 1
            else:
                raise ChaosError(f"unknown send fault kind {ev.kind!r}")
        self.arrivals_scheduled += len(out)
        if ev is not None:
            self.notify(ev)  # after the ledger is consistent
        return out

    # -- migrator hooks: abort and bounce -------------------------------

    def on_migrate(self, thread, src_pe: int, dst_pe: int) -> bool:
        """Whether to veto a migration before any state moves."""
        ev = self.schedule.decide("migrate")
        if ev is not None and ev.kind == "abort":
            self.counters["migrations_vetoed"] += 1
            self.notify(ev)
            return True
        return False

    def on_migration_delivery(self, image, msg) -> Optional[str]:
        """``"bounce"`` to refuse an arriving thread image, else ``None``."""
        ev = self.schedule.decide("mig_delivery")
        if ev is not None and ev.kind == "bounce":
            self.counters["migrations_bounced"] += 1
            self.notify(ev)
            return "bounce"
        return None

    # -- checkpointer hook: disk errors ---------------------------------

    def on_checkpoint_write(self, key: str, blob: bytes) -> bytes:
        """Pass, corrupt, or refuse one checkpoint blob.

        ``io_error`` raises :class:`CheckpointError` (a transient write
        failure — the AMPI runtime retries once); ``corrupt`` flips one
        payload byte, which the blob's integrity seal turns into a loud
        :class:`CheckpointError` at restore time.
        """
        ev = self.schedule.decide("ckpt")
        if ev is None:
            return blob
        if ev.kind == "io_error":
            self.counters["ckpt_io_errors"] += 1
            self.notify(ev)
            raise CheckpointError(
                f"injected disk write error for checkpoint {key!r}")
        if ev.kind == "corrupt":
            payload = len(blob) - _SEAL_HEADER_LEN
            i = _SEAL_HEADER_LEN + min(int(float(ev.arg) * payload),
                                       payload - 1)
            blob = blob[:i] + bytes([blob[i] ^ 0xFF]) + blob[i + 1:]
            self.counters["ckpt_corrupted"] += 1
            self.corrupted_keys.add(key)
            self.notify(ev)
            return blob
        raise ChaosError(f"unknown ckpt fault kind {ev.kind!r}")

    # -- barrier hook: processor-level faults ---------------------------

    def on_barrier(self) -> Optional[FaultEvent]:
        """Consult the schedule at a checkpoint barrier.

        The harness interprets the returned ``crash``/``evac`` event (it
        knows which processors are live and performs the recovery), then
        reports back through :meth:`record_barrier`.
        """
        return self.schedule.decide("barrier")

    def record_barrier(self, event: FaultEvent) -> None:
        """Count and announce a barrier fault the harness applied."""
        key = {"crash": "crashes", "evac": "evacuations"}.get(event.kind)
        if key is None:
            raise ChaosError(f"unknown barrier fault kind {event.kind!r}")
        self.counters[key] += 1
        self.notify(event)

    # ------------------------------------------------------------------

    @property
    def faults_injected(self) -> int:
        """Total faults applied so far."""
        return len(self.schedule.injected)

    def export_metrics(self, registry) -> None:
        """Copy the fault ledger into a metrics registry as ``chaos.*``.

        One-shot, at end of run: each injector counter becomes a
        ``chaos.<name>`` counter (zero entries included, so snapshots
        have a stable shape), plus ``chaos.faults_injected``.
        """
        for name, value in self.counters.items():
            registry.counter(f"chaos.{name}").inc(value)
        registry.counter("chaos.faults_injected").inc(self.faults_injected)

    def summary(self) -> str:
        """One line of non-zero fault counters."""
        hits = [f"{k}={v}" for k, v in sorted(self.counters.items()) if v]
        return ", ".join(hits) or "no faults"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FaultInjector {self.schedule.mode}: {self.summary()}>"
