"""The Time-Warp engine: posers, rollback, antimessages, GVT."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.core.pup import pup_pack, pup_unpack
from repro.sim.cluster import Cluster
from repro.sim.dispatch import TagDispatcher
from repro.sim.network import Message

__all__ = ["Poser", "PoseEngine", "PoseStats"]

_TAG = "pose"


class Poser:
    """One optimistically-executed simulation object.

    Subclasses implement entry methods ``def on_<event>(self, data)``
    returning an iterable of ``(dst_poser, event, data, delay)`` tuples —
    the events this event schedules (``delay`` is in *virtual* time and
    must be positive: zero-delay self-loops would never advance VT).

    Posers must be ``pup_register``'ed: the engine snapshots state with
    the PUP framework before every event, exactly the machinery thread
    and chare migration use.
    """

    #: Engine-injected: this poser's name.
    poser_id: str = "?"

    def handle(self, event: str, data: Any):
        """Dispatch an event to its ``on_<event>`` method."""
        fn = getattr(self, f"on_{event}", None)
        if fn is None:
            raise ReproError(
                f"{type(self).__name__} has no handler on_{event}")
        return fn(data) or ()


@dataclass(frozen=True)
class _Event:
    """One timestamped simulation event (or its antimessage)."""

    vt: float
    uid: int
    dst: str
    name: str
    data: Any
    anti: bool = False

    def key(self) -> Tuple[float, int]:
        return (self.vt, self.uid)


@dataclass
class _ProcessedRecord:
    """History entry: the snapshot before an event, and its outputs."""

    event: _Event
    snapshot: bytes
    vt_before: float
    outputs: List[_Event] = field(default_factory=list)


@dataclass(frozen=True)
class PoseStats:
    """Run statistics."""

    events_processed: int
    rollbacks: int
    events_rolled_back: int
    antimessages: int
    gvt: float


class PoseEngine:
    """Optimistic PDES over the simulated cluster.

    Parameters
    ----------
    cluster:
        The host machine; posers are distributed over its processors and
        their events travel the simulated network (whose latencies are
        what reorders event arrival and makes rollback necessary).
    """

    @property
    def kernel(self):
        """The cluster's event kernel: every optimistic event delivery,
        deferral, and antimessage is dispatched through it (categories
        ``pose.deliver`` / ``pose.defer`` / ``net.pose``), so the POSE
        virtual-time machinery rides the same instrumented core as the
        other runtimes."""
        return self.cluster.queue.kernel

    def __init__(self, cluster: Cluster, throttle_window: Optional[float] = None,
                 batched_posts: bool = True):
        #: Optimism control (the actual contribution of the POSE paper the
        #: ICPP paper cites: adaptive speculation windows).  An event whose
        #: timestamp is more than ``throttle_window`` ahead of GVT is
        #: deferred instead of speculatively executed, trading a little
        #: latency for far fewer rollbacks.  ``None`` = unlimited optimism
        #: (classic Time Warp).
        self.throttle_window = throttle_window
        #: Post consecutive same-PE deliveries through the kernel's bulk
        #: ingress (:meth:`Cluster.post_after_batch`) instead of one
        #: ``after`` per event.  Dispatch order and traces are identical
        #: either way; the toggle exists so the producer-batching bench
        #: can measure the ingress saving (``tools/bench_kernel.py
        #: --compare compiled``).
        self.batched_posts = batched_posts
        self.deferrals = 0
        self.cluster = cluster
        self._posers: Dict[str, Poser] = {}
        self._pe: Dict[str, int] = {}
        self._lvt: Dict[str, float] = {}
        self._history: Dict[str, List[_ProcessedRecord]] = {}
        self._uid = itertools.count()
        #: Events sent but not yet processed (exact GVT bookkeeping; a
        #: single-host luxury that stands in for distributed GVT rounds).
        self._in_flight: Dict[int, float] = {}
        #: uids annihilated by an antimessage before their positive twin
        #: was processed; the twin is dropped on arrival.
        self._dead_uid: set = set()
        for proc in cluster.processors:
            TagDispatcher.of(proc).register(_TAG, self._on_message)
        # -- statistics ------------------------------------------------------
        self.events_processed = 0
        self.rollbacks = 0
        self.events_rolled_back = 0
        self.antimessages = 0
        self.snapshot_bytes = 0

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def register(self, poser_id: str, poser: Poser, pe: int) -> None:
        """Place a poser on a processor."""
        if poser_id in self._posers:
            raise ReproError(f"poser {poser_id!r} already registered")
        if not 0 <= pe < len(self.cluster):
            raise ReproError(f"bad processor {pe}")
        poser.poser_id = poser_id
        self._posers[poser_id] = poser
        self._pe[poser_id] = pe
        self._lvt[poser_id] = 0.0
        self._history[poser_id] = []

    def poser(self, poser_id: str) -> Poser:
        """Look up a poser's (current) state object."""
        return self._posers[poser_id]

    def schedule(self, dst: str, event: str, data: Any = None,
                 at: float = 0.0) -> None:
        """Inject an initial event at virtual time ``at`` (from outside)."""
        self._send(src_pe=0, ev=_Event(at, next(self._uid), dst, event,
                                       data))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, policy=None) -> PoseStats:
        """Process events until none remain; returns run statistics.

        ``policy`` (a :class:`~repro.kernel.RunPolicy`) bounds the
        underlying kernel drive; the default drains to quiescence.
        """
        self.cluster.run(policy=policy)
        self._fossil_collect()
        return PoseStats(
            events_processed=self.events_processed,
            rollbacks=self.rollbacks,
            events_rolled_back=self.events_rolled_back,
            antimessages=self.antimessages,
            gvt=self.gvt(),
        )

    def gvt(self) -> float:
        """Global virtual time: nothing older can ever arrive."""
        if self._in_flight:
            return min(self._in_flight.values())
        return float("inf") if self.events_processed else 0.0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _send(self, src_pe: int, ev: _Event) -> None:
        if ev.dst not in self._posers:
            raise ReproError(f"event for unknown poser {ev.dst!r}")
        if not ev.anti:
            self._in_flight[ev.uid] = ev.vt
        dst_pe = self._pe[ev.dst]
        if src_pe == dst_pe:
            # Local delivery still goes through the network queue (zero
            # hop) so ordering remains event-driven.
            self.cluster.after(dst_pe, self.cluster.platform.event_dispatch_ns,
                               self._deliver, ev,
                               category="pose.deliver", flow=ev.dst)
        else:
            self.cluster.send(src_pe, dst_pe, ev, size_bytes=64 + ev.uid % 7,
                              tag=_TAG)

    def _send_many(self, src_pe: int, evs: List[_Event]) -> None:
        """Send a run of events, batching consecutive local deliveries.

        A remote send charges the sender's clock (shifting the delivery
        time of everything after it), so only *consecutive* local
        deliveries may share one batched post — the pending run is
        flushed before every remote hop.  With ``batched_posts`` off
        this degenerates to the per-event :meth:`_send` loop.
        """
        if not self.batched_posts:
            for ev in evs:
                self._send(src_pe, ev)
            return
        pending: List[_Event] = []
        for ev in evs:
            if ev.dst not in self._posers:
                raise ReproError(f"event for unknown poser {ev.dst!r}")
            if not ev.anti:
                self._in_flight[ev.uid] = ev.vt
            if self._pe[ev.dst] == src_pe:
                pending.append(ev)
            else:
                self._flush_local(src_pe, pending)
                self.cluster.send(src_pe, self._pe[ev.dst], ev,
                                  size_bytes=64 + ev.uid % 7, tag=_TAG)
        self._flush_local(src_pe, pending)

    def _flush_local(self, pe: int, pending: List[_Event]) -> None:
        if not pending:
            return
        if len(pending) == 1:
            # A batch of one pays the trampoline without the ingress
            # saving; the plain timer path is cheaper and trace-identical.
            ev = pending.pop()
            self.cluster.after(pe, self.cluster.platform.event_dispatch_ns,
                               self._deliver, ev,
                               category="pose.deliver", flow=ev.dst)
            return
        self.cluster.post_after_batch(
            pe, self.cluster.platform.event_dispatch_ns, self._deliver,
            [(ev,) for ev in pending], category="pose.deliver",
            flows=[ev.dst for ev in pending])
        pending.clear()

    def _on_message(self, msg: Message) -> None:
        self._deliver(msg.payload)

    def _deliver(self, ev: _Event) -> None:
        if ev.anti:
            self._handle_anti(ev)
            return
        if ev.uid in self._dead_uid:
            # Annihilated by an antimessage that overtook it.
            self._dead_uid.discard(ev.uid)
            self._in_flight.pop(ev.uid, None)
            return
        if (self.throttle_window is not None
                and self._in_flight
                and ev.vt > self.gvt() + self.throttle_window):
            # Too far in the future: defer rather than speculate.
            self.deferrals += 1
            pe = self._pe[ev.dst]
            self.cluster.after(pe, 10 * self.cluster.platform.event_dispatch_ns,
                               self._deliver, ev,
                               category="pose.defer", flow=ev.dst)
            return
        if self._straggles(ev):
            self._rollback(ev.dst, ev.vt)
        self._process(ev)

    def _straggles(self, ev: _Event) -> bool:
        history = self._history[ev.dst]
        return bool(history) and ev.key() < history[-1].event.key()

    def _process(self, ev: _Event) -> None:
        poser = self._posers[ev.dst]
        record = _ProcessedRecord(
            event=ev,
            snapshot=pup_pack(poser),
            vt_before=self._lvt[ev.dst],
        )
        self.snapshot_bytes += len(record.snapshot)
        outputs = poser.handle(ev.name, ev.data)
        self._lvt[ev.dst] = max(self._lvt[ev.dst], ev.vt)
        pe = self._pe[ev.dst]
        self.cluster[pe].charge(self.cluster.platform.event_dispatch_ns)
        for dst, name, data, delay in outputs:
            if delay <= 0:
                raise ReproError(
                    f"{ev.dst}: event delay must be positive, got {delay}")
            record.outputs.append(
                _Event(ev.vt + delay, next(self._uid), dst, name, data))
        self._send_many(pe, record.outputs)
        self._history[ev.dst].append(record)
        self._in_flight.pop(ev.uid, None)
        self.events_processed += 1

    def _rollback(self, poser_id: str, to_vt: float) -> None:
        """Undo every processed event with vt >= ``to_vt`` (Time Warp)."""
        history = self._history[poser_id]
        undone: List[_ProcessedRecord] = []
        while history and history[-1].event.vt >= to_vt:
            undone.append(history.pop())
        if not undone:
            return
        self.rollbacks += 1
        self.events_rolled_back += len(undone)
        # Restore the oldest undone record's snapshot (state *before* it).
        oldest = undone[-1]
        restored = pup_unpack(oldest.snapshot)
        restored.poser_id = poser_id
        self._posers[poser_id] = restored
        self._lvt[poser_id] = oldest.vt_before
        pe = self._pe[poser_id]
        resends: List[_Event] = []
        for record in undone:
            # Cancel this record's outputs with antimessages...
            for out in record.outputs:
                self.antimessages += 1
                resends.append(_Event(out.vt, out.uid, out.dst, out.name,
                                      None, anti=True))
            # ...and re-enqueue its own event for re-execution (except the
            # straggler's successors are re-delivered; the events
            # themselves are still valid inputs).
            resends.append(record.event)
        self._send_many(pe, resends)

    def _handle_anti(self, ev: _Event) -> None:
        """An antimessage annihilates its positive twin, wherever it is.

        If the twin was already processed, the poser rolls back past it
        (which re-sends the twin along with the other undone events) and
        the twin is marked dead so the resend is dropped; if the twin is
        still in flight, the mark alone suffices.
        """
        if any(r.event.uid == ev.uid for r in self._history[ev.dst]):
            self._rollback(ev.dst, ev.vt)
        self._dead_uid.add(ev.uid)
        self._in_flight.pop(ev.uid, None)

    def _fossil_collect(self) -> None:
        """Discard history at or below GVT (bounds snapshot memory)."""
        gvt = self.gvt()
        for poser_id, history in self._history.items():
            self._history[poser_id] = [r for r in history
                                       if r.event.vt > gvt]
