"""POSE-style optimistic parallel discrete-event simulation.

The paper's first-page motivation list includes "parallel discrete event
simulations, where each simulation object can be treated as a separate flow
of control" (reference [39], POSE) — and BigSim itself was originally built
over POSE.  This package is a compact Time-Warp engine over the simulated
cluster:

* a :class:`Poser` is one simulation object with its own virtual time;
* posers process events *optimistically* as they arrive, snapshotting
  their state (via the PUP framework — the same serialization migration
  uses) before each event;
* a straggler (an event with a timestamp behind the poser's clock) forces
  a **rollback**: restore the snapshot, *cancel* the outputs sent from the
  rolled-back events with antimessages, and re-execute;
* a global-virtual-time (GVT) estimate advances behind the slowest
  in-flight event, and fossil collection discards history older than GVT.

The engine's correctness contract — optimistic execution produces exactly
the results of a sequential in-timestamp-order execution, whatever the
network reordering — is what the tests pin down.
"""

from repro.pose.engine import PoseEngine, Poser, PoseStats

__all__ = ["PoseEngine", "Poser", "PoseStats"]
