"""AMPI wire-size estimation and reduction operators."""

from __future__ import annotations

from typing import Any, Callable, Dict

import numpy as np

from repro.errors import AmpiError

__all__ = ["ANY_SOURCE", "ANY_TAG", "OPS", "wire_size", "apply_op"]

#: Wildcard source for :meth:`AmpiContext.recv`.
ANY_SOURCE = -1
#: Wildcard tag for :meth:`AmpiContext.recv`.
ANY_TAG = -1

#: Built-in reduction operators (MPI_SUM and friends).
OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "land": lambda a, b: bool(a) and bool(b),
    "lor": lambda a, b: bool(a) or bool(b),
}


def apply_op(op: str, values: list) -> Any:
    """Fold ``values`` (ordered by source rank) with operator ``op``."""
    if op not in OPS:
        raise AmpiError(f"unknown reduction op {op!r}; known: {sorted(OPS)}")
    if not values:
        raise AmpiError("reduction over no values")
    fn = OPS[op]
    acc = values[0]
    for v in values[1:]:
        acc = fn(acc, v)
    return acc


def wire_size(data: Any) -> int:
    """Estimated bytes of ``data`` on the simulated wire.

    NumPy arrays count their buffer exactly; containers are summed
    recursively; scalars cost one header's worth.  This drives bandwidth
    accounting only — payloads travel by reference inside the host process.
    """
    if data is None:
        return 16
    if isinstance(data, np.ndarray):
        return int(data.nbytes) + 64
    if isinstance(data, (bytes, bytearray, memoryview)):
        return len(data) + 32
    if isinstance(data, str):
        return len(data.encode("utf-8")) + 32
    if isinstance(data, (int, float, complex, bool)):
        return 32
    if isinstance(data, (list, tuple, set)):
        return 16 + sum(wire_size(x) for x in data)
    if isinstance(data, dict):
        return 16 + sum(wire_size(k) + wire_size(v) for k, v in data.items())
    # Arbitrary objects: a conservative flat estimate.
    return 256
