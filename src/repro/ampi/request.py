"""Non-blocking AMPI operations: requests and completion.

Mirrors MPI's ``MPI_Isend``/``MPI_Irecv``/``MPI_Wait*`` family.  Sends are
eager (the simulation buffers unboundedly), so a send request completes
immediately; receive requests complete when a matching message arrives —
posted receives match *before* the unexpected-message queue, the standard
MPI rule, which the tests pin down.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.errors import AmpiError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ampi.context import AmpiMessage

__all__ = ["Request"]


class Request:
    """Handle for one outstanding non-blocking operation."""

    __slots__ = ("kind", "rank", "source", "tag", "done", "_msg")

    def __init__(self, kind: str, rank: int, source: int = -1,
                 tag: Any = -1):
        self.kind = kind            # "send" | "recv"
        self.rank = rank            # owning rank
        self.source = source        # recv matching pattern
        self.tag = tag
        self.done = kind == "send"  # eager sends complete at once
        self._msg: Optional["AmpiMessage"] = None

    def _complete(self, msg: Optional["AmpiMessage"]) -> None:
        self._msg = msg
        self.done = True

    @property
    def data(self) -> Any:
        """The received payload (recv requests, after completion)."""
        if not self.done:
            raise AmpiError("request not complete; use wait()")
        if self.kind == "send":
            return None
        assert self._msg is not None
        return self._msg.data

    @property
    def message(self) -> Optional["AmpiMessage"]:
        """The full matched message (recv requests, after completion)."""
        if not self.done:
            raise AmpiError("request not complete; use wait()")
        return self._msg

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return (f"<Request {self.kind} rank={self.rank} "
                f"src={self.source} tag={self.tag!r} {state}>")
