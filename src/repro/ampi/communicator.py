"""Sub-communicators: MPI_Comm_split over AMPI ranks.

A :class:`Communicator` is an ordered group of world ranks with its own
rank numbering, tag namespace, and collective operations.  ``split`` is the
standard MPI collective: ranks calling with the same ``color`` end up in
one sub-communicator, ordered by ``key`` (ties by world rank).

Collectives here are implemented over the context's point-to-point layer
with tags carrying the communicator id, so traffic on different
communicators never cross-matches — pinned down by the tests.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import AmpiError
from repro.ampi.datatypes import ANY_SOURCE, ANY_TAG, apply_op

if TYPE_CHECKING:  # pragma: no cover
    from repro.ampi.context import AmpiContext

__all__ = ["Communicator"]

class Communicator:
    """An ordered group of world ranks with its own collectives.

    Attributes
    ----------
    members:
        World ranks in this communicator, in local-rank order.
    rank:
        This process's local rank within the communicator.
    """

    def __init__(self, ctx: "AmpiContext", members: List[int],
                 comm_id: int):
        if ctx.rank not in members:
            raise AmpiError(
                f"world rank {ctx.rank} is not a member of this communicator")
        self.ctx = ctx
        self.members = list(members)
        self.comm_id = comm_id
        self.rank = self.members.index(ctx.rank)
        self._seq = 0
        self._splits = 0

    @property
    def size(self) -> int:
        """Number of ranks in this communicator."""
        return len(self.members)

    def world_rank(self, local: int) -> int:
        """Translate a local rank to a world rank."""
        if not 0 <= local < self.size:
            raise AmpiError(f"bad local rank {local} (size {self.size})")
        return self.members[local]

    def _tag(self, kind: str, seq: int) -> Tuple:
        return ("__comm", self.comm_id, kind, seq)

    def _next(self) -> int:
        self._seq += 1
        return self._seq

    # ------------------------------------------------------------------
    # point-to-point in local ranks
    # ------------------------------------------------------------------

    def send(self, dest: int, data: Any, tag: Any = 0,
             size_bytes: Optional[int] = None) -> None:
        """Send to a *local* rank of this communicator."""
        self.ctx.send(self.world_rank(dest), data,
                      tag=("__comm", self.comm_id, "p2p", tag),
                      size_bytes=size_bytes)

    def recv(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG,
             ) -> Generator[Any, Any, Any]:
        """Receive from a *local* rank of this communicator."""
        world_src = (ANY_SOURCE if source == ANY_SOURCE
                     else self.world_rank(source))
        match_tag = (ANY_TAG if tag == ANY_TAG
                     else ("__comm", self.comm_id, "p2p", tag))
        if match_tag == ANY_TAG:
            # Constrain wildcard receives to this communicator's namespace
            # by polling for a namespaced match.
            while True:
                for world in (self.members if world_src == ANY_SOURCE
                              else [world_src]):
                    for m in list(self.ctx.runtime._queues[self.ctx.rank]):
                        if (m.src == world and isinstance(m.tag, tuple)
                                and len(m.tag) == 4
                                and m.tag[:3] == ("__comm", self.comm_id,
                                                  "p2p")):
                            got = yield from self.ctx.recv(source=m.src,
                                                           tag=m.tag)
                            return got
                yield "yield"
        out = yield from self.ctx.recv(source=world_src, tag=match_tag)
        return out

    # ------------------------------------------------------------------
    # collectives (local-rank semantics)
    # ------------------------------------------------------------------

    def barrier(self) -> Generator[Any, Any, None]:
        """Barrier over this communicator's members only."""
        seq = self._next()
        root = self.members[0]
        if self.ctx.rank == root:
            for _ in range(self.size - 1):
                yield from self.ctx.recv(tag=self._tag("bar", seq))
            for m in self.members[1:]:
                self.ctx.send(m, None, tag=self._tag("rel", seq))
        else:
            self.ctx.send(root, None, tag=self._tag("bar", seq))
            yield from self.ctx.recv(source=root, tag=self._tag("rel", seq))

    def bcast(self, data: Any, root: int = 0) -> Generator[Any, Any, Any]:
        """Broadcast from local rank ``root``."""
        seq = self._next()
        root_world = self.world_rank(root)
        if self.ctx.rank == root_world:
            for m in self.members:
                if m != root_world:
                    self.ctx.send(m, data, tag=self._tag("bc", seq))
            return data
        out = yield from self.ctx.recv(source=root_world,
                                       tag=self._tag("bc", seq))
        return out

    def reduce(self, value: Any, op: str = "sum", root: int = 0,
               ) -> Generator[Any, Any, Any]:
        """Reduce to local rank ``root``."""
        seq = self._next()
        root_world = self.world_rank(root)
        if self.ctx.rank == root_world:
            values: List[Tuple[int, Any]] = [(self.rank, value)]
            for _ in range(self.size - 1):
                msg = yield from self.ctx.recv_msg(tag=self._tag("red", seq))
                values.append((self.members.index(msg.src), msg.data))
            values.sort(key=lambda kv: kv[0])
            return apply_op(op, [v for _, v in values])
        self.ctx.send(root_world, value, tag=self._tag("red", seq))
        return None

    def allreduce(self, value: Any, op: str = "sum",
                  ) -> Generator[Any, Any, Any]:
        """Allreduce over this communicator."""
        partial = yield from self.reduce(value, op=op, root=0)
        out = yield from self.bcast(partial, root=0)
        return out

    def gather(self, value: Any, root: int = 0,
               ) -> Generator[Any, Any, Optional[List[Any]]]:
        """Gather to local rank ``root`` in local-rank order."""
        seq = self._next()
        root_world = self.world_rank(root)
        if self.ctx.rank == root_world:
            out: List[Any] = [None] * self.size
            out[self.rank] = value
            for _ in range(self.size - 1):
                msg = yield from self.ctx.recv_msg(tag=self._tag("gat", seq))
                out[self.members.index(msg.src)] = msg.data
            return out
        self.ctx.send(root_world, value, tag=self._tag("gat", seq))
        return None

    def allgather(self, value: Any) -> Generator[Any, Any, List[Any]]:
        """Allgather over this communicator."""
        gathered = yield from self.gather(value, root=0)
        out = yield from self.bcast(gathered, root=0)
        return out

    def scatter(self, values: Optional[List[Any]], root: int = 0,
                ) -> Generator[Any, Any, Any]:
        """Scatter from local rank ``root``: one value per member."""
        seq = self._next()
        root_world = self.world_rank(root)
        if self.ctx.rank == root_world:
            if values is None or len(values) != self.size:
                raise AmpiError(
                    f"scatter needs exactly {self.size} values at root")
            for i, m in enumerate(self.members):
                if m != root_world:
                    self.ctx.send(m, values[i], tag=self._tag("sca", seq))
            return values[self.rank]
        out = yield from self.ctx.recv(source=root_world,
                                       tag=self._tag("sca", seq))
        return out

    def alltoall(self, values: List[Any]) -> Generator[Any, Any, List[Any]]:
        """All-to-all within this communicator (local-rank indexed)."""
        seq = self._next()
        if len(values) != self.size:
            raise AmpiError(f"alltoall needs exactly {self.size} values")
        for i, m in enumerate(self.members):
            if i != self.rank:
                self.ctx.send(m, values[i],
                              tag=self._tag(("a2a", self.rank), seq))
        out: List[Any] = [None] * self.size
        out[self.rank] = values[self.rank]
        for i, m in enumerate(self.members):
            if i != self.rank:
                got = yield from self.ctx.recv(source=m,
                                               tag=self._tag(("a2a", i), seq))
                out[i] = got
        return out

    # ------------------------------------------------------------------
    # splitting
    # ------------------------------------------------------------------

    def split(self, color: Any, key: Optional[int] = None,
              ) -> Generator[Any, Any, Optional["Communicator"]]:
        """MPI_Comm_split: partition members by color, order by key.

        Every member must call this collectively.  ``color=None`` opts out
        (MPI_UNDEFINED) and yields ``None``.  Returns the new communicator
        for this rank's color group.
        """
        key = self.rank if key is None else key
        triples = yield from self.allgather((color, key, self.ctx.rank))
        if color is None:
            return None
        group = sorted((k, w) for (c, k, w) in triples
                       if c == color)
        members = [w for _, w in group]
        # Deterministic id without negotiation: split is collective, so
        # every member's per-parent split counter agrees; the group's first
        # member separates colors.  Ids are tuples, which tags carry fine.
        self._splits += 1
        comm_id = (self.comm_id, "split", self._splits, members[0])
        return Communicator(self.ctx, members, comm_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Communicator #{self.comm_id} rank {self.rank}/"
                f"{self.size} members={self.members}>")
