"""Adaptive MPI: MPI ranks as migratable user-level threads (Section 4.1).

AMPI "runs each MPI process in an AMPI thread" — a migratable user-level
thread with an isomalloc stack and heap and privatized globals — so that
many more ranks than processors can run, and ranks can migrate between
processors for load balance (the Figure 12 experiment).

Rank programs are generator functions receiving an :class:`AmpiContext`::

    def main(mpi):
        if mpi.rank == 0:
            mpi.send(1, {"hello": "world"})
        elif mpi.rank == 1:
            msg = yield from mpi.recv(source=0)
        total = yield from mpi.allreduce(mpi.rank, op="sum")
        yield from mpi.barrier()
        yield from mpi.migrate()          # MPI_Migrate: load-balance point

    rt = AmpiRuntime(num_procs=4, num_ranks=16, main=main)
    rt.run()

Blocking calls are ``yield from`` expressions — the generator-based
substitute for AMPI's thread-blocking receives (see DESIGN.md).
"""

from repro.ampi.datatypes import ANY_SOURCE, ANY_TAG, OPS, wire_size
from repro.ampi.context import AmpiContext, AmpiMessage
from repro.ampi.request import Request
from repro.ampi.communicator import Communicator
from repro.ampi.runtime import AmpiRuntime

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "OPS",
    "wire_size",
    "AmpiContext",
    "AmpiMessage",
    "Request",
    "Communicator",
    "AmpiRuntime",
]
