"""The per-rank AMPI API object.

Every blocking operation is a generator to be invoked with ``yield from``
inside the rank's main generator; non-blocking operations (``send``,
``iprobe``) are plain methods.  Collectives are built from point-to-point
messages with internal tags, so their traffic pays latency and bandwidth on
the simulated network like everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import AmpiError
from repro.ampi.datatypes import ANY_SOURCE, ANY_TAG, apply_op, wire_size
from repro.ampi.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.ampi.runtime import AmpiRuntime

__all__ = ["AmpiMessage", "AmpiContext"]


@dataclass
class AmpiMessage:
    """One rank-to-rank message."""

    src: int
    dst: int
    tag: Any
    data: Any
    size_bytes: int

    def matches(self, source: int, tag: Any) -> bool:
        """Whether this message satisfies a recv(source, tag) pattern."""
        if source != ANY_SOURCE and self.src != source:
            return False
        if tag != ANY_TAG and self.tag != tag:
            return False
        return True


class AmpiContext:
    """The MPI world as seen by one rank."""

    def __init__(self, runtime: "AmpiRuntime", rank: int):
        self.runtime = runtime
        self.rank = rank
        self._coll_seq = 0
        self._world: Optional["Communicator"] = None

    @property
    def size(self) -> int:
        """Number of ranks in the world (MPI_Comm_size)."""
        return self.runtime.num_ranks

    @property
    def thread(self):
        """The migratable user-level thread running this rank."""
        return self.runtime.rank_thread[self.rank]

    @property
    def world(self) -> "Communicator":
        """MPI_COMM_WORLD as a :class:`~repro.ampi.communicator.Communicator`.

        The plain context methods (barrier, bcast, ...) already operate on
        the world; this handle exists to call :meth:`Communicator.split`.
        """
        from repro.ampi.communicator import Communicator
        if self._world is None:
            self._world = Communicator(self, list(range(self.size)), 0)
        return self._world

    def comm_split(self, color: Any, key: Optional[int] = None):
        """MPI_Comm_split on the world (collective).  ``yield from`` it."""
        out = yield from self.world.split(color, key)
        return out

    # ------------------------------------------------------------------
    # point-to-point
    # ------------------------------------------------------------------

    def send(self, dest: int, data: Any, tag: Any = 0,
             size_bytes: Optional[int] = None) -> None:
        """Buffered send: enqueue ``data`` for ``dest`` and return.

        (MPI_Send with an eager protocol — the simulation has unbounded
        buffering, so sends never block.)
        """
        if not 0 <= dest < self.size:
            raise AmpiError(f"send to bad rank {dest} (size {self.size})")
        size = wire_size(data) if size_bytes is None else size_bytes
        self.runtime._send(self.rank, dest, data, tag, size)

    def send_many(self, items) -> None:
        """Buffered send to several ranks in one call.

        ``items`` is a sequence of ``(dest, data, tag, size_bytes)``
        tuples (``size_bytes`` may be None to derive from the data).
        Semantically a :meth:`send` loop — same charges, same message
        order — but the runtime batches runs of off-processor messages
        into one bulk network post, the producer-side fast path for
        exchange patterns like BigSim's per-step ghost scatter.
        """
        prepared = []
        for dest, data, tag, size_bytes in items:
            if not 0 <= dest < self.size:
                raise AmpiError(
                    f"send to bad rank {dest} (size {self.size})")
            size = wire_size(data) if size_bytes is None else size_bytes
            prepared.append((dest, data, tag, size))
        self.runtime._send_many(self.rank, prepared)

    def recv(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG,
             ) -> Generator[Any, Any, Any]:
        """Blocking receive; suspends the rank's thread until a match.

        Returns the message *data*; use :meth:`recv_msg` to also see the
        source and tag.
        """
        msg = yield from self.recv_msg(source, tag)
        return msg.data

    def recv_msg(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG,
                 ) -> Generator[Any, Any, AmpiMessage]:
        """Blocking receive returning the full :class:`AmpiMessage`."""
        while True:
            msg = self.runtime._match(self.rank, source, tag)
            if msg is not None:
                return msg
            self.runtime._set_waiting(self.rank, source, tag)
            yield "suspend"

    # -- non-blocking operations ------------------------------------------

    def isend(self, dest: int, data: Any, tag: Any = 0,
              size_bytes: Optional[int] = None) -> Request:
        """MPI_Isend: start a send; completes immediately (eager/buffered)."""
        self.send(dest, data, tag, size_bytes)
        return Request("send", self.rank)

    def irecv(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG) -> Request:
        """MPI_Irecv: post a receive; complete it with :meth:`wait`.

        Posted receives match arriving messages before the unexpected
        queue, in posting order.
        """
        req = Request("recv", self.rank, source, tag)
        self.runtime._post_recv(req)
        return req

    def test(self, req: Request) -> bool:
        """MPI_Test: non-blocking completion check."""
        return req.done

    def wait(self, req: Request) -> Generator[Any, Any, Any]:
        """MPI_Wait: suspend until the request completes; returns its data."""
        while not req.done:
            self.runtime._set_wait_pred(self.rank, lambda: req.done)
            yield "suspend"
        return req.data

    def waitall(self, reqs: List[Request]) -> Generator[Any, Any, List[Any]]:
        """MPI_Waitall: suspend until every request completes."""
        while not all(r.done for r in reqs):
            self.runtime._set_wait_pred(
                self.rank, lambda: all(r.done for r in reqs))
            yield "suspend"
        return [r.data for r in reqs]

    def waitany(self, reqs: List[Request],
                ) -> Generator[Any, Any, Tuple[int, Any]]:
        """MPI_Waitany: suspend until one completes; returns (index, data)."""
        if not reqs:
            raise AmpiError("waitany over no requests")
        while not any(r.done for r in reqs):
            self.runtime._set_wait_pred(
                self.rank, lambda: any(r.done for r in reqs))
            yield "suspend"
        for i, r in enumerate(reqs):
            if r.done:
                return i, r.data
        raise AssertionError("unreachable")

    def sendrecv(self, dest: int, data: Any, source: int = ANY_SOURCE,
                 tag: Any = 0) -> Generator[Any, Any, Any]:
        """Combined send + receive (MPI_Sendrecv)."""
        self.send(dest, data, tag)
        out = yield from self.recv(source, tag)
        return out

    def iprobe(self, source: int = ANY_SOURCE, tag: Any = ANY_TAG) -> bool:
        """Non-blocking check for a matching pending message."""
        return self.runtime._peek(self.rank, source, tag)

    # ------------------------------------------------------------------
    # collectives (every rank must call them in the same order)
    # ------------------------------------------------------------------

    def _seq(self) -> int:
        self._coll_seq += 1
        return self._coll_seq

    def barrier(self) -> Generator[Any, Any, None]:
        """MPI_Barrier: binomial reduce-to-0 then binomial release.

        2·log2(P) rounds instead of the linear gather a naive
        implementation uses — the root never handles more than log2(P)
        messages.
        """
        yield from self.reduce(0, op="sum", root=0)
        yield from self.bcast(None, root=0)

    def bcast(self, data: Any, root: int = 0) -> Generator[Any, Any, Any]:
        """MPI_Bcast: binomial-tree broadcast from ``root``.

        Round k: every rank that already has the value and whose
        root-relative id is below 2^k forwards it 2^k ranks ahead —
        log2(P) rounds, each rank sends at most log2(P) messages.
        """
        seq = self._seq()
        size = self.size
        me = (self.rank - root) % size
        if me != 0:
            parent_rel = me - (1 << (me.bit_length() - 1))
            parent = (parent_rel + root) % size
            data = yield from self.recv(source=parent, tag=("__bc", seq))
        k = 1
        while k < size:
            if me < k and me + k < size:
                self.send((me + k + root) % size, data, tag=("__bc", seq))
            k <<= 1
        return data

    def reduce(self, value: Any, op: str = "sum", root: int = 0,
               ) -> Generator[Any, Any, Any]:
        """MPI_Reduce: binomial-tree combine toward ``root``.

        Each rank combines its children's partials (in ascending child
        order, so the fold order is deterministic) and forwards one
        message to its parent — log2(P) rounds.
        """
        seq = self._seq()
        size = self.size
        me = (self.rank - root) % size
        acc = value
        k = 1
        while k < size:
            if me & k:
                parent = ((me - k) + root) % size
                self.send(parent, acc, tag=("__red", seq))
                return None
            if me + k < size:
                child = ((me + k) + root) % size
                partial = yield from self.recv(source=child,
                                               tag=("__red", seq))
                acc = apply_op(op, [acc, partial])
            k <<= 1
        return acc

    def allreduce(self, value: Any, op: str = "sum",
                  ) -> Generator[Any, Any, Any]:
        """MPI_Allreduce: reduce to rank 0, then broadcast."""
        partial = yield from self.reduce(value, op=op, root=0)
        out = yield from self.bcast(partial, root=0)
        return out

    def gather(self, value: Any, root: int = 0,
               ) -> Generator[Any, Any, Optional[List[Any]]]:
        """MPI_Gather: root returns the rank-ordered list, others None."""
        seq = self._seq()
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[self.rank] = value
            for _ in range(self.size - 1):
                msg = yield from self.recv_msg(tag=("__gat", seq))
                out[msg.src] = msg.data
            return out
        self.send(root, value, tag=("__gat", seq))
        return None

    def allgather(self, value: Any) -> Generator[Any, Any, List[Any]]:
        """MPI_Allgather: everyone gets the rank-ordered list."""
        gathered = yield from self.gather(value, root=0)
        out = yield from self.bcast(gathered, root=0)
        return out

    def scatter(self, values: Optional[List[Any]], root: int = 0,
                ) -> Generator[Any, Any, Any]:
        """MPI_Scatter: root distributes one value per rank."""
        seq = self._seq()
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise AmpiError(
                    f"scatter needs exactly {self.size} values at root")
            for r in range(self.size):
                if r != root:
                    self.send(r, values[r], tag=("__sca", seq))
            return values[root]
        out = yield from self.recv(source=root, tag=("__sca", seq))
        return out

    def alltoall(self, values: List[Any]) -> Generator[Any, Any, List[Any]]:
        """MPI_Alltoall: element j of my list goes to rank j."""
        seq = self._seq()
        if len(values) != self.size:
            raise AmpiError(f"alltoall needs exactly {self.size} values")
        for r in range(self.size):
            if r != self.rank:
                self.send(r, values[r], tag=("__a2a", seq))
        out: List[Any] = [None] * self.size
        out[self.rank] = values[self.rank]
        for _ in range(self.size - 1):
            msg = yield from self.recv_msg(tag=("__a2a", seq))
            out[msg.src] = msg.data
        return out

    # ------------------------------------------------------------------
    # scheduling, time, and migration
    # ------------------------------------------------------------------

    def yield_(self) -> Generator[Any, Any, None]:
        """MPI_Yield: give other ranks on this processor a turn."""
        yield "yield"

    def charge(self, ns: float) -> None:
        """Account ``ns`` of computation (feeds the load balancer too).

        The load database records the *measured* (wall) virtual time, not
        the nominal work — on a processor slowed by external load the same
        work measures longer, which is exactly what lets the balancer shed
        work from busy workstations (paper reference [10]).
        """
        proc = self.thread.scheduler.processor
        before = proc.now
        self.thread.charge(ns)
        self.runtime.db.record(self.rank, proc.now - before)

    def wtime(self) -> float:
        """MPI_Wtime: this rank's processor-local virtual time (ns)."""
        return self.thread.scheduler.processor.now

    @property
    def my_pe(self) -> int:
        """The processor this rank currently runs on."""
        return self.thread.scheduler.processor.id

    def checkpoint(self) -> Generator[Any, Any, None]:
        """Coordinated checkpoint barrier (reference [42]'s protocol).

        All ranks suspend; when the last arrives, every rank's full thread
        image is written to the simulated disk, then all resume.  After a
        failure, :meth:`AmpiRuntime.recover_rank` rebuilds lost ranks from
        these images.
        """
        self.runtime._at_checkpoint_point(self.rank)
        yield "suspend"

    def migrate(self) -> Generator[Any, Any, None]:
        """MPI_Migrate: collective load-balancing point.

        All ranks suspend here; when the last one arrives, the runtime's
        strategy decides a new placement and the thread migrator moves
        ranks accordingly — "transparent thread migration without having
        to change any of the benchmark code" (Section 4.5).
        """
        self.runtime._at_migrate_point(self.rank)
        yield "suspend"
