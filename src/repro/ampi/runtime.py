"""The AMPI runtime: virtual ranks on migratable threads over the cluster."""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.errors import AmpiError, CheckpointError, MigrationAborted
from repro.ampi.context import AmpiContext, AmpiMessage
from repro.ampi.datatypes import ANY_SOURCE, ANY_TAG
from repro.balance.instrument import LBDatabase
from repro.balance.manager import LBManager, RebalanceReport
from repro.balance.strategies import GreedyLB, Strategy
from repro.core.checkpoint import Checkpointer
from repro.core.isomalloc import IsomallocArena
from repro.core.scheduler import CthScheduler
from repro.core.migration import ThreadMigrator
from repro.core.stacks import (IsomallocStacks, MemoryAliasStacks,
                               StackCopyStacks)
from repro.core.swapglobal import GlobalRegistry
from repro.core.thread import ThreadState, UThread
from repro.sim.cluster import Cluster
from repro.sim.dispatch import TagDispatcher
from repro.sim.network import Message, Network

__all__ = ["AmpiRuntime"]

_TAG = "ampi"

#: Signature of a rank program: a generator function over the context.
RankMain = Callable[[AmpiContext], Generator]


class AmpiRuntime:
    """N virtual MPI ranks on P simulated processors.

    Parameters
    ----------
    num_procs:
        Physical (simulated) processors.  May also be an existing
        :class:`~repro.sim.cluster.Cluster`.
    num_ranks:
        Virtual processors — AMPI wants this "much larger than the actual
        number of processors" for load balancing to work (Section 4.5).
    main:
        The rank program (generator function taking an
        :class:`AmpiContext`).
    technique:
        Stack technique for the rank threads (isomalloc by default — the
        configuration the paper's Figure 12 runs use).
    strategy:
        Load-balancing strategy used at ``MPI_Migrate`` points
        (default GreedyLB; pass :class:`~repro.balance.strategies.NullLB`
        for the "without LB" arm).
    """

    def __init__(self, num_procs, num_ranks: int, main: RankMain, *,
                 platform: str = "linux_x86",
                 network: Optional[Network] = None,
                 technique: str = "isomalloc",
                 stack_bytes: int = 32 * 1024,
                 slot_bytes: int = 512 * 1024,
                 emulate_swap: bool = False,
                 strategy: Optional[Strategy] = None,
                 placement: Optional[Callable[[int], int]] = None,
                 globals_decl: Tuple[Tuple[str, int], ...] = ()):
        if isinstance(num_procs, Cluster):
            self.cluster = num_procs
        else:
            self.cluster = Cluster(num_procs, platform=platform,
                                   network=network)
        npes = len(self.cluster)
        if num_ranks <= 0:
            raise AmpiError("need at least one rank")
        self.num_ranks = num_ranks
        self.main = main
        layout = self.cluster.platform.layout()
        self.arena = IsomallocArena(layout, npes, slot_bytes=slot_bytes)
        self.schedulers: List[CthScheduler] = []
        for pe in range(npes):
            proc = self.cluster[pe]
            if technique == "isomalloc":
                mgr = IsomallocStacks(proc.space, proc.profile, self.arena,
                                      pe, stack_bytes=stack_bytes)
            elif technique == "stack_copy":
                mgr = StackCopyStacks(proc.space, proc.profile,
                                      stack_bytes=stack_bytes)
            elif technique == "memory_alias":
                mgr = MemoryAliasStacks(proc.space, proc.profile,
                                        stack_bytes=stack_bytes)
            else:
                raise AmpiError(f"unknown stack technique {technique!r}")
            registry = None
            if globals_decl:
                registry = GlobalRegistry(proc.space)
                for name, size in globals_decl:
                    registry.declare(name, size)
                registry.build()
            self.schedulers.append(
                CthScheduler(proc, mgr, globals_registry=registry,
                             emulate_swap=emulate_swap))
        self.migrator = ThreadMigrator(self.cluster, self.schedulers)
        self.migrator.on_arrival = self._thread_arrived
        self.db = LBDatabase(npes)
        self.strategy = strategy or GreedyLB()
        self.lb = LBManager(self.db, self.strategy, self._lb_migrate)
        # rank state
        self.rank_thread: List[UThread] = []
        self.rank_ctx: List[AmpiContext] = []
        self._queues: List[Deque[AmpiMessage]] = [deque()
                                                  for _ in range(num_ranks)]
        self._waiting: Dict[int, Tuple[int, Any]] = {}
        #: Posted (not yet matched) irecv requests, per rank, in post order.
        self._posted: List[List] = [[] for _ in range(num_ranks)]
        #: Generalized wait predicates for request-based waits, per rank.
        self._wait_pred: Dict[int, Any] = {}
        self._finished = 0
        self._at_migrate: set[int] = set()
        self._at_checkpoint: set[int] = set()
        #: rank -> key of its most recent coordinated checkpoint.
        self.last_checkpoint: Dict[int, str] = {}
        #: Hook called after a coordinated checkpoint is written, before
        #: ranks resume — the window in which a simulated failure can be
        #: recovered from the fresh checkpoints (tests inject faults here).
        self.on_checkpoint: Optional[Callable[[], None]] = None
        self.checkpointer = Checkpointer(self.migrator)
        self._lb_moves: List[Tuple[int, int]] = []
        #: tid -> rank, for placement bookkeeping on thread arrival (tids
        #: are stable across migration; never key runtime state on id()).
        self._rank_of_tid: Dict[tuple, int] = {}
        #: LB moves the migrator aborted twice; the rank stayed home.
        self.migrations_abandoned = 0
        #: True while a rebalance transaction is applying its moves; the
        #: LB database legitimately leads reality inside this window.
        self.rebalance_in_progress = False
        self.reports: List[RebalanceReport] = []
        for proc in self.cluster.processors:
            TagDispatcher.of(proc).register(_TAG, self._on_message)
        # spawn ranks; default placement is round-robin over processors
        for rank in range(num_ranks):
            pe = placement(rank) if placement else rank % npes
            if not 0 <= pe < npes:
                raise AmpiError(f"placement({rank}) = {pe} out of range")
            ctx = AmpiContext(self, rank)
            thread = self.schedulers[pe].create(
                self._make_body(ctx), name=f"rank{rank}",
                privatize_globals=bool(globals_decl))
            self.rank_thread.append(thread)
            self.rank_ctx.append(ctx)
            self._rank_of_tid[thread.tid] = rank
            self.db.register(rank, pe)

    # ------------------------------------------------------------------
    # rank bodies
    # ------------------------------------------------------------------

    def _make_body(self, ctx: AmpiContext):
        def body(th):
            try:
                # Runtime bookkeeping wrapper, never itself compiled to
                # events: the compiler (ROADMAP 2) transforms the user's
                # main, and this try/finally is the runtime's own
                # completion accounting around it.
                # migralint: disable=FLW002
                yield from self.main(ctx)
            finally:
                self._finished += 1
                self.db.unregister(ctx.rank)
        return body

    # ------------------------------------------------------------------
    # rank-to-rank messaging
    # ------------------------------------------------------------------

    def rank_pe(self, rank: int) -> int:
        """Current processor of a rank."""
        return self.rank_thread[rank].scheduler.processor.id

    def _send(self, src_rank: int, dst_rank: int, data: Any, tag: Any,
              size: int) -> None:
        msg = AmpiMessage(src=src_rank, dst=dst_rank, tag=tag, data=data,
                          size_bytes=size)
        src_pe = self.rank_pe(src_rank)
        dst_pe = self.rank_pe(dst_rank)
        if src_pe == dst_pe:
            # Same-processor ranks communicate through the scheduler —
            # "fast local message passing via the thread scheduler"
            # (Section 3.4) — no network traffic.
            self.cluster[src_pe].charge(
                self.cluster.platform.event_dispatch_ns)
            self._enqueue(msg)
        else:
            self.cluster.send(src_pe, dst_pe, msg, size_bytes=size, tag=_TAG)

    def _send_many(self, src_rank: int, items) -> None:
        """Send ``(dst_rank, data, tag, size)`` items, batching network hops.

        Order-equivalent to a :meth:`_send` loop: same-PE messages still
        charge and enqueue inline at their position (a local delivery can
        complete a posted receive, and its charge advances the clock that
        stamps every later send), while runs of *consecutive* off-PE
        messages go through :meth:`Cluster.send_batch`, which posts all
        their arrivals in one kernel batch.
        """
        src_pe = self.rank_pe(src_rank)
        pending = []  # consecutive cross-PE (dst_pe, msg, size) triples
        for dst_rank, data, tag, size in items:
            msg = AmpiMessage(src=src_rank, dst=dst_rank, tag=tag,
                              data=data, size_bytes=size)
            dst_pe = self.rank_pe(dst_rank)
            if src_pe == dst_pe:
                if pending:
                    self.cluster.send_batch(src_pe, pending, tag=_TAG)
                    pending = []
                self.cluster[src_pe].charge(
                    self.cluster.platform.event_dispatch_ns)
                self._enqueue(msg)
            else:
                pending.append((dst_pe, msg, size))
        if pending:
            self.cluster.send_batch(src_pe, pending, tag=_TAG)

    def _on_message(self, cluster_msg: Message) -> None:
        msg: AmpiMessage = cluster_msg.payload
        here = cluster_msg.dst
        current = self.rank_pe(msg.dst)
        if current != here:
            # The rank migrated while the message was in flight: forward.
            self.cluster.send(here, current, msg,
                              size_bytes=msg.size_bytes, tag=_TAG)
            return
        self._enqueue(msg)

    def _enqueue(self, msg: AmpiMessage) -> None:
        self.db.record_comm(msg.src, msg.dst, msg.size_bytes)
        # Posted receives match before the unexpected-message queue
        # (standard MPI matching semantics).
        for i, req in enumerate(self._posted[msg.dst]):
            if msg.matches(req.source, req.tag):
                del self._posted[msg.dst][i]
                req._complete(msg)
                self._wake_if_satisfied(msg.dst)
                return
        self._queues[msg.dst].append(msg)
        waiting = self._waiting.get(msg.dst)
        if waiting is not None and msg.matches(*waiting):
            del self._waiting[msg.dst]
            thread = self.rank_thread[msg.dst]
            if thread.state is ThreadState.SUSPENDED:
                thread.scheduler.awaken(thread)

    def _post_recv(self, req) -> None:
        """Post an irecv: match the unexpected queue first, else park it."""
        msg = self._match(req.rank, req.source, req.tag)
        if msg is not None:
            req._complete(msg)
        else:
            self._posted[req.rank].append(req)

    def _set_wait_pred(self, rank: int, pred) -> None:
        """Suspend-side of MPI_Wait*: resume when ``pred()`` turns true."""
        self._wait_pred[rank] = pred

    def _wake_if_satisfied(self, rank: int) -> None:
        pred = self._wait_pred.get(rank)
        if pred is not None and pred():
            del self._wait_pred[rank]
            thread = self.rank_thread[rank]
            if thread.state is ThreadState.SUSPENDED:
                thread.scheduler.awaken(thread)

    def _match(self, rank: int, source: int, tag: Any,
               ) -> Optional[AmpiMessage]:
        q = self._queues[rank]
        for i, msg in enumerate(q):
            if msg.matches(source, tag):
                del q[i]
                return msg
        return None

    def _peek(self, rank: int, source: int, tag: Any) -> bool:
        return any(m.matches(source, tag) for m in self._queues[rank])

    def _set_waiting(self, rank: int, source: int, tag: Any) -> None:
        self._waiting[rank] = (source, tag)

    # ------------------------------------------------------------------
    # MPI_Migrate / load balancing
    # ------------------------------------------------------------------

    def _at_migrate_point(self, rank: int) -> None:
        self._at_migrate.add(rank)

    def _at_checkpoint_point(self, rank: int) -> None:
        self._at_checkpoint.add(rank)

    def _run_checkpoint(self) -> None:
        """Coordinated checkpoint: every live rank is suspended at the
        barrier; write all images to the simulated disk, fire the hook,
        then resume everyone (reference [42]'s blocking coordinated
        protocol)."""
        ranks = sorted(self._at_checkpoint)
        self._at_checkpoint.clear()
        for rank in ranks:
            key = (f"ampi-r{rank}-"
                   f"e{self.checkpointer.checkpoints_taken}")
            try:
                self.last_checkpoint[rank] = self.checkpointer.checkpoint(
                    self.rank_thread[rank], key=key)
            except CheckpointError:
                # Transient disk error: one retry.  A second failure
                # propagates — a checkpoint the runtime cannot write is a
                # real outage, not something to paper over.
                self.last_checkpoint[rank] = self.checkpointer.checkpoint(
                    self.rank_thread[rank], key=key)
        if self.on_checkpoint is not None:
            self.on_checkpoint()
        for rank in ranks:
            thread = self.rank_thread[rank]
            if thread.state is ThreadState.SUSPENDED:
                thread.scheduler.awaken(thread)

    def recover_rank(self, rank: int, dst_pe: int) -> None:
        """Rebuild a failed rank from its last coordinated checkpoint.

        Valid while the rank has not run since that checkpoint (the rank
        was lost at or right after the barrier) — the emulation constraint
        documented in :mod:`repro.core.checkpoint`.
        """
        key = self.last_checkpoint.get(rank)
        if key is None:
            raise AmpiError(f"rank {rank} has no checkpoint to recover from")
        thread = self.checkpointer.restore(key, dst_pe)
        thread.scheduler.awaken(thread)
        self.db.moved(rank, dst_pe)

    def _lb_migrate(self, rank: int, dst_pe: int) -> None:
        self._lb_moves.append((rank, dst_pe))

    def _thread_arrived(self, thread: UThread) -> None:
        # Keep the LB database honest about where ranks really are —
        # matters when a migration bounced back to its source processor.
        rank = self._rank_of_tid.get(thread.tid)
        if rank is not None and self.db.tracks(rank):
            self.db.moved(rank, thread.scheduler.processor.id)

    def _run_rebalance(self) -> None:
        ranks = sorted(self._at_migrate)
        self._at_migrate.clear()
        self._lb_moves.clear()
        for pe, proc in enumerate(self.cluster.processors):
            self.db.set_pe_speed(pe, max(1e-6, 1.0 - proc.background_load))
        self.rebalance_in_progress = True
        try:
            report = self.lb.rebalance()      # fills _lb_moves
            for rank, dst in self._lb_moves:
                thread = self.rank_thread[rank]
                try:
                    self.migrator.migrate(thread, dst)
                except MigrationAborted:
                    # Abort-and-retry: the abort happened before any
                    # state moved, so one retry is safe; if that aborts
                    # too the rank stays home and the database is told
                    # the truth.
                    try:
                        self.migrator.migrate(thread, dst)
                    except MigrationAborted:
                        self.migrations_abandoned += 1
                        self.db.moved(rank,
                                      thread.scheduler.processor.id)
            self.cluster.run()                # deliver the thread images
        finally:
            self.rebalance_in_progress = False
        self.reports.append(report)
        for rank in ranks:
            thread = self.rank_thread[rank]
            if thread.state is ThreadState.SUSPENDED:
                thread.scheduler.awaken(thread)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every rank has finished."""
        return self._finished == self.num_ranks

    def run(self, max_rounds: int = 10_000_000,
            until: Optional[float] = None,
            max_net_events: Optional[int] = None) -> None:
        """Drive schedulers and the network until every rank finishes.

        Deliberately *not* a sixth run loop: every scheduler pass and
        every network drain below is a ``run()`` on one of the
        per-processor thread kernels or on the cluster's event kernel —
        this method only interleaves those kernels with the two AMPI
        collective barriers (MPI_Migrate rebalancing and coordinated
        checkpoints), whose ordering relative to in-flight traffic is
        part of the runtime's determinism contract.  The ``queue.empty``
        probe each round is O(1) on the kernel's live-event counter.

        ``until`` / ``max_net_events`` bound the *network* kernel — stop
        before any cluster event later than ``until``, or after that
        many cluster events in total — and turn the run into a partial
        replay for the time-travel tooling: the loop returns (instead of
        raising deadlock) once no bounded progress is possible, leaving
        the runtime frozen at a well-defined point — every network event
        inside the bound delivered, all resulting local computation
        settled, the still-live kernel events being exactly the
        in-flight messages beyond the horizon.  Unbounded (the default),
        behavior is unchanged.

        Raises
        ------
        AmpiError
            On deadlock (no rank runnable, no message in flight) with a
            description of what each live rank is waiting for.  Never
            raised for exhausting a replay bound.
        """
        bounded = until is not None or max_net_events is not None
        net_budget = max_net_events
        for _ in range(max_rounds):
            if self.done:
                return
            progressed = False
            for sched in self.schedulers:
                if sched.ready:
                    sched.run()
                    progressed = True
            if not self.cluster.queue.empty:
                if not bounded:
                    self.cluster.run()
                    progressed = True
                elif net_budget is None or net_budget > 0:
                    processed = self.cluster.run(until=until,
                                                 max_events=net_budget)
                    if net_budget is not None:
                        net_budget -= processed
                    if processed:
                        progressed = True
            if (self._at_migrate
                    and len(self._at_migrate) == self.num_ranks - self._finished):
                self._run_rebalance()
                progressed = True
            if (self._at_checkpoint
                    and len(self._at_checkpoint) == self.num_ranks - self._finished):
                self._run_checkpoint()
                progressed = True
            if not progressed:
                if bounded:
                    return
                self._raise_deadlock()
        raise AmpiError(f"run() exceeded {max_rounds} scheduling rounds")

    def _raise_deadlock(self) -> None:
        lines = []
        for rank, (source, tag) in sorted(self._waiting.items()):
            src = "ANY" if source == ANY_SOURCE else source
            tg = "ANY" if tag == ANY_TAG else tag
            lines.append(f"rank {rank} waiting for recv(source={src}, "
                         f"tag={tg})")
        for rank in sorted(self._wait_pred):
            pending = [f"{r}" for r in self._posted[rank]]
            lines.append(f"rank {rank} waiting on requests "
                         f"(posted: {pending or 'completed-pred pending'})")
        for rank in sorted(self._at_migrate):
            lines.append(f"rank {rank} at MPI_Migrate barrier")
        raise AmpiError("AMPI deadlock: no runnable rank and no message in "
                        "flight\n" + "\n".join(lines))

    # -- reporting ----------------------------------------------------------

    @property
    def makespan_ns(self) -> float:
        """Completion time: the latest processor clock."""
        return self.cluster.makespan

    def pe_of_ranks(self) -> List[int]:
        """Current processor of each rank (post-run placement)."""
        return [self.rank_pe(r) for r in range(self.num_ranks)]

    def rank_profile(self) -> List[tuple]:
        """Per-rank profile rows: (rank, pe, work_ms, switches, migrations).

        The observability counterpart of the load database: what each
        virtual processor actually did, for post-run analysis and the
        examples' reports.
        """
        rows = []
        for r in range(self.num_ranks):
            t = self.rank_thread[r]
            rows.append((r, self.rank_pe(r), t.work_ns / 1e6, t.switches,
                         t.migrations))
        return rows

    def summary(self) -> str:
        """Human-readable run report: time, traffic, migrations, balance.

        Intended for examples and interactive use, after :meth:`run`.
        """
        lines = [
            f"AMPI run: {self.num_ranks} ranks on {len(self.cluster)} "
            f"processors ({self.cluster.platform.name})",
            f"  virtual makespan : {self.makespan_ns / 1e6:.3f} ms",
            f"  finished ranks   : {self._finished}/{self.num_ranks}",
        ]
        sent = sum(p.messages_sent for p in self.cluster.processors)
        nbytes = sum(p.bytes_sent for p in self.cluster.processors)
        lines.append(f"  network          : {sent} messages, "
                     f"{nbytes / 1024:.1f} KiB")
        switches = sum(s.context_switches for s in self.schedulers)
        lines.append(f"  context switches : {switches}")
        if self.migrator.migrations_completed:
            lines.append(
                f"  migrations       : {self.migrator.migrations_completed} "
                f"({self.migrator.bytes_shipped / 1024:.1f} KiB shipped)")
        for r in self.reports:
            lines.append(f"  {r}")
        if self.checkpointer.checkpoints_taken:
            lines.append(
                f"  checkpoints      : {self.checkpointer.checkpoints_taken} "
                f"({self.checkpointer.bytes_written / 1024:.1f} KiB on disk)")
        per_pe = [0.0] * len(self.cluster)
        for p in self.cluster.processors:
            per_pe[p.id] = p.busy_ns
        busiest = max(per_pe)
        if busiest > 0:
            avg = sum(per_pe) / len(per_pe)
            lines.append(f"  processor load   : max/avg = "
                         f"{busiest / avg:.2f}" if avg else "")
        return "\n".join(lines)
