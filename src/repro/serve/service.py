"""The sweep service: an asyncio control plane over the deterministic executor.

:class:`SweepService` is the long-running front end from ROADMAP item 3.
Its layering follows the "Fibers are not (P)Threads" shape: an
*asynchronous* accept/dispatch plane loosely coupled — through thread
hand-off and the hook bus, never shared state — to the *synchronous*
deterministic execution substrate (:class:`~repro.exec.SweepExecutor`
over the registered backends).  Nothing asyncio ever runs inside a
cell; nothing a cell computes ever depends on the service.

What the service adds around the executor:

* **Dedupe.**  Cells are content-addressed (:meth:`Cell.cache_key`),
  so two identical submissions are *one computation*: results come from
  the sharded :class:`~repro.exec.cache.ResultCache`, and a submission
  overlapping a sweep already in flight waits for that computation
  instead of racing it (``serve.cells.deduped`` counts both forms of
  hit via the executor's ``cached`` progress payloads).
* **Durability.**  Every submission is fsync'd into the
  :class:`~repro.serve.journal.SubmissionJournal` before it runs; on
  restart, pending sweeps are replayed, resuming from their cache hits
  (the executor persists each finished cell incrementally).
* **Progress streaming.**  The executor's ``exec.sweep.*`` /
  ``exec.cell.*`` hook-bus channels are bridged thread-safely onto
  per-client asyncio queues, so any number of watchers follow a sweep
  live without the executor knowing.
* **Observability.**  Submissions, dedupe hits, executed cells, journal
  replays and rotations all land in a
  :class:`~repro.obs.metrics.MetricsRegistry`, served by the ``stats``
  op.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Set

from repro.errors import ReproError
from repro.exec import ResultCache, SweepExecutor, backend_from_spec
from repro.exec.progress import EXEC_CHANNELS
from repro.kernel import HookBus
from repro.obs import MetricsRegistry
from repro.serve import protocol
from repro.serve.journal import SubmissionJournal

__all__ = ["SweepService"]


class _Sweep:
    """Service-side state for one accepted sweep."""

    __slots__ = ("sweep_id", "name", "wire_cells", "state", "results",
                 "summary", "task", "watchers", "keys")

    def __init__(self, sweep_id: str, name: str,
                 wire_cells: List[Dict[str, Any]]):
        self.sweep_id = sweep_id
        self.name = name
        self.wire_cells = wire_cells
        self.state = "queued"           # queued | running | done | error
        self.results: Optional[List[Dict[str, Any]]] = None
        self.summary: Dict[str, Any] = {}
        self.task: Optional[asyncio.Task] = None
        self.watchers: List[asyncio.Queue] = []
        self.keys: Set[str] = set()


class SweepService:
    """Accept sweeps on a Unix socket; dedupe, journal, execute, stream."""

    def __init__(self, socket_path: str, cache_root: str,
                 journal_path: str, backend: str = "serial",
                 jobs: Optional[int] = None,
                 registry: Optional[MetricsRegistry] = None,
                 rotate_after: int = 256):
        self.socket_path = socket_path
        self.cache = ResultCache(cache_root)
        self.journal = SubmissionJournal(journal_path,
                                         rotate_after=rotate_after)
        self.backend_spec = backend
        self.jobs = jobs
        self.registry = registry if registry is not None else MetricsRegistry()
        self._sweeps: Dict[str, _Sweep] = {}
        #: cache_key -> sweep_id currently computing that cell.
        self._inflight_keys: Dict[str, str] = {}
        self._next_number = self.journal.next_sweep_number()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = asyncio.Event()
        for counter in ("serve.submissions", "serve.sweeps.completed",
                        "serve.cells.submitted", "serve.cells.deduped",
                        "serve.cells.executed", "serve.cells.failed",
                        "serve.journal.replayed",
                        "serve.protocol.errors"):
            self.registry.counter(counter)

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Replay pending journal entries, then open the socket.

        Replayed sweeps run as background tasks; the socket comes up
        immediately so clients can watch the replays catch up.
        """
        for record in self.journal.pending():
            try:
                sweep = self._register(record["sweep_id"], record["name"],
                                       record["cells"], journal=False)
            except ReproError:
                # A record that no longer validates (e.g. hand-edited
                # journal) must not keep the whole service down.
                self.registry.counter("serve.protocol.errors").inc()
                continue
            self.registry.counter("serve.journal.replayed").inc()
            sweep.task = asyncio.create_task(self._run_sweep(sweep))
        self._server = await asyncio.start_unix_server(
            self._handle_client, path=self.socket_path,
            limit=protocol.MAX_LINE_BYTES)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        try:
            await self._stopping.wait()
            await self._drain()
        finally:
            await self.close()

    async def _drain(self) -> None:
        """Let journaled in-flight sweeps finish before exit."""
        tasks = [s.task for s in self._sweeps.values()
                 if s.task is not None and not s.task.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.journal.close()

    # -- submission plumbing --------------------------------------------

    def _new_sweep_id(self) -> str:
        sid = f"sweep-{self._next_number:06d}"
        self._next_number += 1
        return sid

    def _register(self, sweep_id: str, name: str,
                  wire_cells: List[Dict[str, Any]],
                  journal: bool = True) -> _Sweep:
        """Validate, journal, and index a sweep (not yet running)."""
        spec = protocol.spec_from_wire(name, wire_cells)   # validate early
        sweep = _Sweep(sweep_id, name, wire_cells)
        sweep.keys = {cell.cache_key() for cell in spec.cells}
        if journal:
            # Durability before execution: once this returns, a crash
            # at *any* later point replays the sweep.
            self.journal.submit(sweep_id, name, wire_cells)
        self._sweeps[sweep_id] = sweep
        self.registry.counter("serve.submissions").inc()
        self.registry.counter("serve.cells.submitted").inc(len(wire_cells))
        return sweep

    async def _run_sweep(self, sweep: _Sweep) -> None:
        """One sweep end to end: wait out overlaps, execute, record."""
        # Dedupe against in-flight computations: if another sweep is
        # already computing any of our cells, wait for it — its results
        # land in the shared cache, so ours become hits.
        overlapping = {self._inflight_keys[k] for k in sweep.keys
                       if k in self._inflight_keys}
        for key in sweep.keys:
            self._inflight_keys.setdefault(key, sweep.sweep_id)
        for other_id in overlapping:
            other = self._sweeps.get(other_id)
            if other is not None and other.task is not None:
                await asyncio.wait({other.task})
        sweep.state = "running"
        spec = protocol.spec_from_wire(sweep.name, sweep.wire_cells)
        loop = asyncio.get_running_loop()
        hooks = HookBus()

        def forward(payload: dict, **ctx) -> dict:
            # Called on the executor thread: hop to the loop.
            channel = ctx.get("channel", "")
            loop.call_soon_threadsafe(self._on_progress, sweep,
                                      channel, dict(payload))
            return payload

        for channel in EXEC_CHANNELS:
            hooks.subscribe(channel,
                            (lambda ch: lambda payload, **ctx:
                             forward(payload, channel=ch, **ctx))(channel))
        executor = SweepExecutor(spec, backend=self._make_backend(),
                                 cache=self.cache, hooks=hooks)
        try:
            results = await asyncio.to_thread(executor.run)
        except Exception as e:  # noqa: BLE001 - a sweep must not kill the service
            sweep.state = "error"
            sweep.summary = {"error": f"{type(e).__name__}: {e}"}
            self._broadcast(sweep, "sweep.failed",
                            {"sweep_id": sweep.sweep_id,
                             "error": sweep.summary["error"]})
            return
        finally:
            for key in sweep.keys:
                if self._inflight_keys.get(key) == sweep.sweep_id:
                    del self._inflight_keys[key]
        ok = sum(1 for r in results if r.ok)
        cached = sum(1 for r in results if r.cached)
        sweep.results = [protocol.result_to_wire(r) for r in results]
        sweep.summary = {"ok": ok, "error": len(results) - ok,
                         "cached": cached,
                         "executed": len(results) - cached}
        sweep.state = "done"
        self.journal.done(sweep.sweep_id, ok=ok, error=len(results) - ok)
        self.registry.counter("serve.sweeps.completed").inc()
        self._broadcast(sweep, "sweep.end",
                        {"sweep_id": sweep.sweep_id, **sweep.summary,
                         "results": sweep.results})

    def _make_backend(self):
        return backend_from_spec(self.backend_spec, jobs=self.jobs)

    # -- progress fan-out -----------------------------------------------

    def _on_progress(self, sweep: _Sweep, channel: str,
                     payload: Dict[str, Any]) -> None:
        """Count and re-publish one executor event (on the loop)."""
        if channel == "exec.cell.done":
            if payload.get("cached"):
                self.registry.counter("serve.cells.deduped").inc()
            else:
                self.registry.counter("serve.cells.executed").inc()
            if payload.get("status") != "ok":
                self.registry.counter("serve.cells.failed").inc()
        self._broadcast(sweep, channel, payload)

    def _broadcast(self, sweep: _Sweep, event: str,
                   payload: Dict[str, Any]) -> None:
        msg = {"event": event, "sweep_id": sweep.sweep_id, **payload}
        for queue in list(sweep.watchers):
            queue.put_nowait(msg)

    # -- the protocol loop ----------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readuntil(b"\n")
                except asyncio.IncompleteReadError:
                    break
                except asyncio.LimitOverrunError:
                    self.registry.counter("serve.protocol.errors").inc()
                    writer.write(protocol.encode(
                        {"ok": False, "error": "message too long"}))
                    await writer.drain()
                    break
                if not line.strip():
                    continue
                try:
                    msg = protocol.decode(line)
                    done = await self._dispatch(msg, writer)
                except protocol.ProtocolError as e:
                    self.registry.counter("serve.protocol.errors").inc()
                    writer.write(protocol.encode(
                        {"ok": False, "error": str(e)}))
                    await writer.drain()
                    continue
                if done:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass                          # client vanished mid-reply
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, msg: Dict[str, Any],
                        writer: asyncio.StreamWriter) -> bool:
        """Handle one request; True means the connection should close."""
        op = msg.get("op")
        if op == "ping":
            await self._send(writer, {"ok": True, "pong": True,
                                      "v": protocol.PROTOCOL_VERSION})
        elif op == "submit":
            await self._op_submit(msg, writer)
        elif op == "result":
            await self._send(writer, self._op_result(msg))
        elif op == "status":
            await self._send(writer, self._op_status())
        elif op == "stats":
            await self._send(writer, self._op_stats())
        elif op == "shutdown":
            await self._send(writer, {"ok": True, "stopping": True})
            self._stopping.set()
            return True
        else:
            raise protocol.ProtocolError(f"unknown op {op!r}")
        return False

    async def _send(self, writer: asyncio.StreamWriter,
                    msg: Dict[str, Any]) -> None:
        writer.write(protocol.encode(msg))
        await writer.drain()

    async def _op_submit(self, msg: Dict[str, Any],
                         writer: asyncio.StreamWriter) -> None:
        sweep = self._register(self._new_sweep_id(), msg.get("name"),
                               msg.get("cells"))
        watch = bool(msg.get("watch", False))
        wait = bool(msg.get("wait", True))
        queue: Optional[asyncio.Queue] = None
        if wait or watch:
            queue = asyncio.Queue()
            sweep.watchers.append(queue)
        sweep.task = asyncio.create_task(self._run_sweep(sweep))
        await self._send(writer, {"ok": True, "sweep_id": sweep.sweep_id,
                                  "cells": len(sweep.wire_cells),
                                  "state": sweep.state})
        if queue is None:
            return
        try:
            while True:
                event = await queue.get()
                terminal = event["event"] in ("sweep.end", "sweep.failed")
                if watch or terminal:
                    await self._send(writer, event)
                if terminal:
                    break
        finally:
            if queue in sweep.watchers:
                sweep.watchers.remove(queue)

    def _op_result(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        sweep = self._sweeps.get(str(msg.get("sweep_id")))
        if sweep is None:
            return {"ok": False, "error": f"unknown sweep_id "
                                          f"{msg.get('sweep_id')!r}"}
        out = {"ok": True, "sweep_id": sweep.sweep_id,
               "state": sweep.state, **sweep.summary}
        if sweep.results is not None:
            out["results"] = sweep.results
        return out

    def _op_status(self) -> Dict[str, Any]:
        return {"ok": True, "sweeps": {
            sid: {"name": s.name, "state": s.state,
                  "cells": len(s.wire_cells)}
            for sid, s in sorted(self._sweeps.items())}}

    def _op_stats(self) -> Dict[str, Any]:
        return {"ok": True,
                "metrics": self.registry.snapshot(),
                "cache": self.cache.stats(),
                "journal": self.journal.stats()}
