"""``python -m repro.serve`` — run the sweep service.

Example::

    python -m repro.serve --socket /tmp/repro.sock \\
        --cache ~/.cache/repro-sweeps --journal ~/.cache/repro.journal \\
        --backend local --jobs 4

The service replays any pending journal entries (sweeps interrupted by
a previous shutdown or crash), then accepts newline-JSON submissions on
the Unix socket until a ``shutdown`` op or SIGINT/SIGTERM.  See
``docs/serve.md`` for the protocol and restart semantics.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import signal
import sys

from repro.exec import backend_names
from repro.serve.service import SweepService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Restartable sweep service with a sharded dedupe cache")
    parser.add_argument("--socket", required=True,
                        help="Unix socket path to listen on")
    parser.add_argument("--cache", required=True,
                        help="sharded ResultCache root directory")
    parser.add_argument("--journal", required=True,
                        help="append-only submission journal path")
    parser.add_argument("--backend", default="serial",
                        help=f"execution backend "
                             f"({', '.join(backend_names())}; "
                             f"default: serial)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker count for pooled backends")
    parser.add_argument("--rotate-after", type=int, default=256,
                        help="journal compaction threshold in completed "
                             "sweeps (default: 256)")
    return parser


async def amain(args: argparse.Namespace) -> int:
    if os.path.exists(args.socket):
        # A previous unclean exit leaves the socket file behind; binding
        # needs the path free.  Only ever remove a *socket*.
        import stat
        if stat.S_ISSOCK(os.stat(args.socket).st_mode):
            os.unlink(args.socket)
        else:
            print(f"refusing to remove non-socket {args.socket!r}",
                  file=sys.stderr)
            return 2
    service = SweepService(args.socket, cache_root=args.cache,
                           journal_path=args.journal,
                           backend=args.backend, jobs=args.jobs,
                           rotate_after=args.rotate_after)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, service._stopping.set)
    pending = service.journal.stats()["pending"]
    print(f"[serve] replaying {pending} pending sweep(s); "
          f"listening on {args.socket}", file=sys.stderr, flush=True)
    await service.serve_forever()
    print("[serve] stopped", file=sys.stderr, flush=True)
    with contextlib.suppress(OSError):
        os.unlink(args.socket)
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(amain(args))
    except KeyboardInterrupt:  # pragma: no cover - double Ctrl-C
        return 130


if __name__ == "__main__":
    sys.exit(main())
