"""repro.serve — the restartable sweep service.

The paper's virtualization argument, applied to a *service*: because
:mod:`repro.exec` cells are byte-deterministic — a cell's result is a
pure function of ``(runner, params, seed)``, independent of where and
when it runs — two identical submissions are one computation, and
caching is semantics-preserving rather than best-effort.  This package
is the long-running front end that exploits that:

* :class:`SweepService` — an asyncio control plane accepting
  newline-JSON sweep submissions on a local Unix socket, layered
  *above* the deterministic executor (never inside it);
* a **sharded** content-hash :class:`~repro.exec.cache.ResultCache`
  dedupes cells across submissions, both against disk and against
  computations still in flight;
* a fsync'd, write-rename-rotated :class:`SubmissionJournal` makes the
  service restartable: killed mid-sweep, it replays pending
  submissions on startup and resumes from its cache hits;
* progress streams to any number of clients by bridging the executor's
  ``exec.sweep.*`` / ``exec.cell.*`` hook-bus channels onto the socket;
* :class:`ServeClient` is the blocking client helper
  (``repro.serve.client``), and ``python -m repro.serve`` the entry
  point.

Service counters (submissions, dedupe hits, journal replays, ...) live
in a :class:`~repro.obs.metrics.MetricsRegistry` served by the
``stats`` op; the cache-hit fast path is benchmarked by the
``serve_dedupe`` cell in ``tools/bench_all.py``.
"""

from repro.serve.client import ServeClient, wait_until_up
from repro.serve.journal import SubmissionJournal
from repro.serve.protocol import (PROTOCOL_VERSION, ProtocolError,
                                  cell_to_wire, cells_from_wire, decode,
                                  encode, result_to_wire, spec_from_wire)
from repro.serve.service import SweepService

__all__ = [
    "PROTOCOL_VERSION", "ProtocolError",
    "encode", "decode", "cell_to_wire", "cells_from_wire",
    "result_to_wire", "spec_from_wire",
    "SubmissionJournal",
    "SweepService",
    "ServeClient", "wait_until_up",
]
