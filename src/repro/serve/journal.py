"""The append-only submission journal: what makes the service restartable.

Every accepted sweep is durably recorded *before* a single cell runs,
and marked done after its last cell — two record types on one
append-only JSON-lines file:

``{"type": "submit", "sweep_id": ..., "name": ..., "cells": [...]}``
    fsync'd to disk before the submit is acknowledged; the cells are in
    wire form (plain data), so the record alone can rebuild the sweep.
``{"type": "done", "sweep_id": ..., "ok": n, "error": m}``
    appended when the sweep's merged results are in hand.

A service killed at any point therefore restarts into one of two
states per sweep: *done* (both records present — nothing to do) or
*pending* (submit without done — re-run it).  Re-running is cheap
because the executor persists every finished cell to the
:class:`~repro.exec.cache.ResultCache` incrementally: replay re-submits
the sweep and the cells that completed before the kill come back as
cache hits, so an interrupted sweep finishes instead of starting over.

The journal only ever grows by appends; compaction is **write-rename
rotation**: the pending records are rewritten to ``<path>.rotate.tmp``,
fsync'd, and ``os.replace``'d over the journal, so a crash mid-rotation
leaves either the old complete journal or the new complete one — never
a torn file.  A torn *trailing* line (the kill landed mid-append) is
tolerated on read and dropped on the next rotation.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError

__all__ = ["SubmissionJournal"]


class SubmissionJournal:
    """Fsync'd append-only record of sweep submissions and completions."""

    def __init__(self, path: str, rotate_after: int = 256):
        self.path = path
        #: Rotate once this many completed sweeps are sitting in the
        #: journal as dead submit/done pairs.
        self.rotate_after = max(1, int(rotate_after))
        self.rotations = 0
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")

    # -- writing --------------------------------------------------------

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record (write + flush + fsync)."""
        if "type" not in record or "sweep_id" not in record:
            raise ReproError(
                f"journal records need type and sweep_id: {record!r}")
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def submit(self, sweep_id: str, name: str,
               cells: List[Dict[str, Any]]) -> None:
        """Record an accepted sweep; must land before execution starts."""
        self.append({"type": "submit", "sweep_id": sweep_id,
                     "name": name, "cells": cells})

    def done(self, sweep_id: str, ok: int, error: int) -> None:
        """Record a completed sweep, then compact if enough dead pairs
        have accumulated."""
        self.append({"type": "done", "sweep_id": sweep_id,
                     "ok": ok, "error": error})
        if self._completed_records() >= self.rotate_after:
            self.rotate()

    # -- reading --------------------------------------------------------

    def scan(self) -> Tuple[List[Dict[str, Any]], int]:
        """All decodable records plus the count of dropped torn lines.

        Only a *trailing* torn line is expected (a kill mid-append);
        mid-file garbage is also skipped rather than aborting the
        restart, because refusing to start over one bad line would turn
        a crash the journal exists to survive into an outage.
        """
        records: List[Dict[str, Any]] = []
        dropped = 0
        try:
            with open(self.path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        rec = json.loads(line)
                    except ValueError:
                        dropped += 1
                        continue
                    if isinstance(rec, dict) and "sweep_id" in rec:
                        records.append(rec)
                    else:
                        dropped += 1
        except OSError:
            return [], 0
        return records, dropped

    def pending(self) -> List[Dict[str, Any]]:
        """Submit records with no matching done — the replay worklist,
        in original submission order."""
        records, _ = self.scan()
        finished = {r["sweep_id"] for r in records if r["type"] == "done"}
        return [r for r in records
                if r["type"] == "submit" and r["sweep_id"] not in finished]

    def next_sweep_number(self) -> int:
        """1 + the highest numeric sweep id on record, so ids never
        repeat across restarts (results from two lives of the service
        must not collide)."""
        records, _ = self.scan()
        highest = 0
        for rec in records:
            sid = str(rec.get("sweep_id", ""))
            tail = sid.rsplit("-", 1)[-1]
            if tail.isdigit():
                highest = max(highest, int(tail))
        return highest + 1

    def _completed_records(self) -> int:
        records, _ = self.scan()
        done = {r["sweep_id"] for r in records if r["type"] == "done"}
        return sum(1 for r in records
                   if r["type"] == "submit" and r["sweep_id"] in done)

    # -- rotation -------------------------------------------------------

    def rotate(self) -> int:
        """Compact to pending-only via write-rename; returns the number
        of records dropped (dead pairs plus torn lines)."""
        records, dropped = self.scan()
        keep = self.pending()
        tmp = self.path + ".rotate.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for rec in keep:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._fh.close()
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")
        self.rotations += 1
        return len(records) - len(keep) + dropped

    def stats(self) -> Dict[str, int]:
        records, dropped = self.scan()
        return {"records": len(records), "pending": len(self.pending()),
                "dropped": dropped, "rotations": self.rotations}

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SubmissionJournal":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
