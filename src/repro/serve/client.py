"""`repro.serve.client` — the blocking client helper.

The service side is asyncio; the client side deliberately is not.
Submitting a sweep from a test, a notebook, or another tool is a
straight-line act — connect, write a line, read lines — so
:class:`ServeClient` wraps a plain Unix-domain socket and exposes the
protocol ops as methods.  Every method returns the decoded response
dict; :meth:`submit` can additionally yield streamed progress events to
a callback as they arrive.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.serve import protocol

__all__ = ["ServeClient", "wait_until_up"]


def wait_until_up(socket_path: str, timeout_s: float = 10.0) -> bool:
    """Poll until the service answers a ping (or the timeout passes).

    Host-side readiness polling for tests and the smoke driver; nothing
    deterministic depends on it.
    """
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if os.path.exists(socket_path):
            try:
                with ServeClient(socket_path) as client:
                    if client.ping().get("pong"):
                        return True
            except (OSError, ReproError):
                pass
        time.sleep(0.02)
    return False


class ServeClient:
    """One connection to a :class:`~repro.serve.service.SweepService`."""

    def __init__(self, socket_path: str, timeout_s: float = 600.0):
        self.socket_path = socket_path
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        self._sock.connect(socket_path)
        self._fh = self._sock.makefile("rb")

    # -- plumbing -------------------------------------------------------

    def _send(self, msg: Dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode(msg))

    def _recv(self) -> Dict[str, Any]:
        line = self._fh.readline()
        if not line:
            raise ReproError("service closed the connection")
        return protocol.decode(line)

    def request(self, msg: Dict[str, Any]) -> Dict[str, Any]:
        """One request, one response."""
        self._send(msg)
        return self._recv()

    def close(self) -> None:
        try:
            self._fh.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- ops ------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def result(self, sweep_id: str) -> Dict[str, Any]:
        return self.request({"op": "result", "sweep_id": sweep_id})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def submit(self, name: str, cells: Sequence[Dict[str, Any]],
               wait: bool = True, watch: bool = False,
               on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
               ) -> Dict[str, Any]:
        """Submit a sweep of wire cells.

        With ``wait`` (default) the call blocks until the terminal
        ``sweep.end``/``sweep.failed`` event and returns it (including
        the merged ``results``); with ``watch``, every streamed progress
        event is handed to ``on_event`` first.  With ``wait=False`` the
        submission ack (``sweep_id``) comes straight back and the
        caller polls :meth:`result`.
        """
        self._send({"op": "submit", "name": name, "cells": list(cells),
                    "wait": wait, "watch": watch})
        ack = self._recv()
        if not ack.get("ok") or not (wait or watch):
            return ack
        while True:
            event = self._recv()
            if on_event is not None and "event" in event:
                on_event(event)
            if event.get("event") in ("sweep.end", "sweep.failed"):
                event["ack"] = ack
                return event

    def submit_and_wait(self, name: str,
                        cells: Sequence[Dict[str, Any]],
                        ) -> List[Dict[str, Any]]:
        """Submit and return just the merged semantic results."""
        final = self.submit(name, cells, wait=True)
        if final.get("event") != "sweep.end":
            raise ReproError(f"sweep did not complete: {final!r}")
        return final["results"]
