"""The wire protocol: newline-delimited JSON over a local socket.

Every message — request, response, streamed progress event — is one
JSON object on one line, UTF-8, ``\\n``-terminated.  Requests carry an
``op``; responses carry ``ok`` (with ``error`` text when false);
streamed progress lines carry ``event`` instead of ``ok`` so a watching
client can tell them from the final response.

Ops:

``ping``
    liveness probe; answers ``{"ok": true, "pong": true, "v": 1}``.
``submit``
    ``{"op": "submit", "name": ..., "cells": [wire-cells],
    "watch": bool, "wait": bool}`` — register a sweep.  ``wait`` (the
    default) holds the response until the merged results are in hand;
    ``watch`` additionally streams ``exec.*`` progress events first.
    With ``wait: false`` the submit is acknowledged as soon as the
    journal holds it, and the client polls ``result``.
``result``
    fetch a sweep's state/results by ``sweep_id``.
``status``
    every known sweep and its state.
``stats``
    service counters, cache stats, journal stats.
``shutdown``
    graceful stop: in-flight sweeps finish (they are journaled either
    way), then the server exits.

A *wire cell* is the plain-data form of :class:`~repro.exec.spec.Cell`:
``{"experiment", "runner", "params", "seed"}``.  Results come back in
**semantic form** — ``{"cell_id", "status", "value", "error"}``, merged
in cell-id order — deliberately excluding host-side diagnostics
(durations, cache provenance), so the results document for a sweep is
byte-identical no matter which backend ran it, how many times it was
interrupted, or which cells came from cache.  The host-side story
(cached/executed counts, wall time) travels separately in the sweep
summary.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.errors import ReproError
from repro.exec.spec import Cell, CellResult, SweepSpec

__all__ = ["PROTOCOL_VERSION", "ProtocolError", "encode", "decode",
           "cell_to_wire", "cells_from_wire", "result_to_wire",
           "spec_from_wire"]

PROTOCOL_VERSION = 1

#: Hard cap on one protocol line; a submission larger than this is
#: almost certainly a runaway client, not a sweep.
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(ReproError):
    """A malformed message or an invalid payload."""


def encode(msg: Dict[str, Any]) -> bytes:
    """One message → one sorted-key JSON line (byte-stable for tests)."""
    try:
        return (json.dumps(msg, sort_keys=True, separators=(",", ":"))
                + "\n").encode("utf-8")
    except (TypeError, ValueError) as e:
        raise ProtocolError(f"message is not JSON-able plain data: {e}")


def decode(line: bytes) -> Dict[str, Any]:
    """One received line → a message dict, with decode errors typed."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"message exceeds {MAX_LINE_BYTES} bytes")
    try:
        msg = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as e:
        raise ProtocolError(f"undecodable message: {e}")
    if not isinstance(msg, dict):
        raise ProtocolError(f"message must be a JSON object, "
                            f"got {type(msg).__name__}")
    return msg


def cell_to_wire(cell: Cell) -> Dict[str, Any]:
    return {"experiment": cell.experiment, "runner": cell.runner,
            "params": dict(cell.params), "seed": cell.seed}


def cells_from_wire(raw: Sequence[Any]) -> List[Cell]:
    """Validate and rebuild wire cells; errors name the offending index."""
    if not isinstance(raw, (list, tuple)):
        raise ProtocolError("cells must be a list of wire-cell objects")
    cells = []
    for i, item in enumerate(raw):
        if not isinstance(item, dict):
            raise ProtocolError(f"cells[{i}] is not an object")
        unknown = set(item) - {"experiment", "runner", "params", "seed"}
        if unknown:
            raise ProtocolError(f"cells[{i}] has unknown fields: "
                                f"{sorted(unknown)}")
        experiment = item.get("experiment")
        runner = item.get("runner")
        if not isinstance(experiment, str) or not experiment:
            raise ProtocolError(f"cells[{i}].experiment must be a "
                                f"non-empty string")
        if not isinstance(runner, str) or ":" not in runner:
            raise ProtocolError(f"cells[{i}].runner must be a "
                                f"'package.module:function' path")
        params = item.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError(f"cells[{i}].params must be an object")
        seed = item.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ProtocolError(f"cells[{i}].seed must be an integer "
                                f"or null")
        cells.append(Cell(experiment=experiment, runner=runner,
                          params=params, seed=seed))
    return cells


def spec_from_wire(name: Any, raw_cells: Sequence[Any]) -> SweepSpec:
    """A validated :class:`SweepSpec` from a submit payload."""
    if not isinstance(name, str) or not name:
        raise ProtocolError("submit.name must be a non-empty string")
    try:
        return SweepSpec(name=name, cells=cells_from_wire(raw_cells))
    except ProtocolError:
        raise
    except ReproError as e:        # empty sweep, duplicate cell ids, ...
        raise ProtocolError(str(e))


def result_to_wire(result: CellResult) -> Dict[str, Any]:
    """The semantic (backend- and history-independent) result form."""
    return {"cell_id": result.cell_id, "status": result.status,
            "value": result.value, "error": result.error}
