"""Processes as flows of control (paper Section 2.1)."""

from __future__ import annotations

from typing import Optional

from repro.flows.base import FlowHandle, FlowMechanism
from repro.sim.processor import Processor

__all__ = ["ProcessFlow"]


class ProcessFlow(FlowMechanism):
    """fork()-created processes yielding with sched_yield().

    Each flow is a real child address space produced by
    :meth:`~repro.vm.AddressSpace.fork_copy` — "the substantial amount of
    per-process kernel state increases the amount of memory used by each
    process, and increases the overhead of process creation and switching".
    Creation hits the platform's per-user process limit (Table 2).
    """

    label = "process"
    cache_weight = 1.6          # an address-space switch re-touches the most

    def __init__(self, processor: Processor):
        super().__init__(processor)
        #: Modeled per-process kernel state, for memory accounting (bytes).
        self.kernel_state_bytes = 16 * 1024

    def _create(self, index: int) -> FlowHandle:
        self.processor.kernel.fork()
        # Modern fork is copy-on-write: creation pays kernel work plus
        # page-table duplication; the page copies come later, at first
        # write (see repro.vm's cow_breaks accounting).
        child = self.processor.space.fork_copy(f"child{index}", cow=True)
        space = self.processor.space
        pte_ns = (self.profile.mem.per_page_map_ns
                  * (space.resident_bytes // space.layout.page_size))
        kernel_copy_ns = self.profile.mem.memcpy_cost(self.kernel_state_bytes)
        self.processor.charge(self.profile.fork_ns + pte_ns + kernel_copy_ns)
        return FlowHandle(index, payload=child)

    def _destroy(self, handle: FlowHandle) -> None:
        child = handle.payload
        for mapping in list(child.mappings()):
            child.munmap(mapping)
        self.processor.kernel.exit_process()

    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """One sched_yield()-driven process switch.

        Kernel path: syscall in/out, scheduler pick (with the run-queue
        term of pre-O(1) kernels), address-space switch with TLB flush,
        and the cache penalty.  On kernels that ignore repeated
        sched_yield (IBM SP, Alpha), the call degenerates to a no-op and
        the measurement is "artificially low" (paper Figures 7–8).
        """
        n = n_flows if n_flows is not None else self.n_flows
        p = self.profile
        if p.ignores_repeated_sched_yield:
            return p.sched_yield_noop_ns
        return (p.syscall_ns + p.process_switch_ns
                + p.runqueue_ns_per_flow * n
                + p.tlb_flush_ns
                + self.cache_penalty_ns(n))
