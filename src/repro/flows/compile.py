"""Thread-to-continuation compiler (ROADMAP item 2's middle layer).

Mechanically transforms a generator-based thread body — the natural,
blocking-receive style of Section 2.3 — into the event-driven
continuation form of Section 2.4, without asking the programmer to
perform the inversion by hand (the route CPC and *Generating events
with style* take).  The output runs on the fast-path
:class:`~repro.kernel.EventKernel` through
:class:`~repro.flows.runtime.FlowWorld`, byte-identical in kernel trace
to the generator original.

Pipeline
--------
1. **Gate** — the live interprocedural analysis
   (:func:`repro.analysis.flow.compilability.classify_bodies`) must
   classify the body COMPILABLE; NEEDS-REWRITE/OPAQUE bodies are
   *refused* with their precise FLW002 blockers.  The checked-in
   ``results/flow_report.json`` is the same analysis, so the report is
   a contract, not documentation.
2. **Normalization** — the one conditional form real bodies use,
   ``x = (yield from E) if C else D``, is rewritten into an explicit
   ``if``/``else`` statement pair; everything else must already be in
   normal form (suspends only as expression statements or simple
   single-name assignments).
3. **Lowering** — the body is split at its suspend points (the same
   points :func:`repro.analysis.flow.cfg.build_cfg` reports) into a
   state machine of plain functions ``state(mpi, _f) -> next``.  Locals
   live in an explicit ``__slots__`` frame record; loops become
   back-edge state transfers (re-posted through the kernel whenever the
   iteration suspends); ``yield from`` delegation to another generator
   is chained through continuation hand-off frames; delegation to the
   runtime interface (``mpi.recv`` / ``mpi.barrier``) maps onto the
   continuation primitives of
   :class:`~repro.flows.runtime.CompiledContext`.
4. **Codegen** — the states are emitted as Python source
   (:data:`CompiledFlow.source`), compiled, and executed in a namespace
   seeded with the original function's globals and closure values.

Known deltas vs. real generators (documented in ``docs/flows.md``):
reading a local before assignment raises ``AttributeError`` (not
``UnboundLocalError``); closure cells and module globals are snapshot
at compile time; and a small statement subset (``try``/``with``
around suspends, nested defs, lambdas, walrus) is refused rather than
compiled.
"""

from __future__ import annotations

import ast
import functools
import inspect
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.astutil import local_names
from repro.analysis.flow.callgraph import runtime_interface
from repro.analysis.flow.cfg import build_cfg, classify_yield
from repro.analysis.flow.compilability import (COMPILABLE, BodyReport,
                                               classify_bodies)
from repro.errors import ReproError

__all__ = ["FlowCompileError", "CompiledFlow", "compile_flow",
           "classify_function"]

#: Runtime-interface delegations the compiler lowers onto continuation
#: primitives (method name -> CompiledContext op).
_PRIMITIVES = {"recv": "op_recv", "barrier": "op_barrier"}


class FlowCompileError(ReproError):
    """A body the compiler refuses, with the analysis blockers (if the
    refusal came from the FLW002 gate) attached."""

    def __init__(self, message: str, blockers: Sequence[Any] = ()):
        super().__init__(message)
        self.blockers = list(blockers)


@dataclass(frozen=True)
class CompiledFlow:
    """One compiled thread body, ready for
    :meth:`~repro.flows.runtime.FlowWorld.spawn_compiled`."""

    qualname: str
    path: str
    line: int
    #: Generated Python source of the full state machine.
    source: str
    #: Entry state function ``(ctx, frame) -> next``.
    entry: Callable[..., Any]
    #: Frame record class for the outermost function.
    frame_factory: Callable[[], Any]
    #: Number of generated state functions (all functions inlined).
    n_states: int
    #: Suspend points of the outermost body (== the CFG's count).
    suspend_points: int

    def new_frame(self) -> Any:
        return self.frame_factory()


# ---------------------------------------------------------------------------
# the analysis gate
# ---------------------------------------------------------------------------

@functools.lru_cache(maxsize=64)
def _classify_file(path: str, mtime: float) -> Tuple[BodyReport, ...]:
    """Classify every thread body in one file with the live analysis."""
    root, base = os.path.split(os.path.abspath(path))
    return tuple(classify_bodies(root, roots=(base,),
                                 interface=runtime_interface()))


def classify_function(fn: Callable[..., Any]) -> BodyReport:
    """The live-analysis verdict for one function object.

    Locates ``fn``'s source file, runs the same classifier that
    produces ``results/flow_report.json`` over it, and returns the
    matching :class:`BodyReport`.  Raises :class:`FlowCompileError` if
    the function is not a recognized thread body.
    """
    path = inspect.getsourcefile(fn)
    if path is None or not os.path.exists(path):
        raise FlowCompileError(
            f"{fn!r}: no source file (interactive or frozen functions "
            f"cannot be gated, hence not compiled)")
    qualname = fn.__qualname__.replace(".<locals>", "")
    line = fn.__code__.co_firstlineno
    reports = _classify_file(path, os.path.getmtime(path))
    for report in reports:
        if report.qualname == qualname and report.line == line:
            return report
    raise FlowCompileError(
        f"{qualname} ({path}:{line}) is not a recognized thread body — "
        f"the flow analysis found "
        f"{[r.qualname for r in reports] or 'no bodies'} in that file")


def _gate(fn: Callable[..., Any]) -> BodyReport:
    report = classify_function(fn)
    if report.classification != COMPILABLE:
        lines = [
            f"refusing to compile {report.qualname} "
            f"({report.path}:{report.line}): classified "
            f"{report.classification} by the flow analysis:"]
        for b in report.blockers:
            lines.append(f"  {b.rule} {b.path}:{b.line} [{b.kind}] "
                         f"{b.detail}")
        raise FlowCompileError("\n".join(lines), blockers=report.blockers)
    return report


# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------

def _function_ast(fn: Callable[..., Any]) -> Tuple[ast.Module,
                                                   ast.FunctionDef]:
    """Parse ``fn``'s whole source file and locate its def node.

    Parsing the file (rather than ``inspect.getsource`` of the nested
    function) sidesteps indentation stripping and keeps sibling helper
    defs resolvable for delegation inlining.
    """
    path = inspect.getsourcefile(fn)
    with open(path, encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    line = fn.__code__.co_firstlineno
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == fn.__name__ \
                and node.lineno == line:
            return tree, node
    raise FlowCompileError(
        f"cannot locate the def of {fn.__qualname__} at {path}:{line}")


def _has_suspend(node: ast.AST) -> bool:
    return any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in ast.walk(node))


def _refuse(node: ast.AST, why: str) -> FlowCompileError:
    line = getattr(node, "lineno", "?")
    return FlowCompileError(f"line {line}: {why}")


def _normalize_block(stmts: List[ast.stmt]) -> List[ast.stmt]:
    """Rewrite ``x = (yield from E) if C else D`` into if/else
    statements (recursively through compound statements)."""
    out: List[ast.stmt] = []
    for st in stmts:
        if (isinstance(st, ast.Assign) and len(st.targets) == 1
                and isinstance(st.targets[0], ast.Name)
                and isinstance(st.value, ast.IfExp)
                and (_has_suspend(st.value.body)
                     or _has_suspend(st.value.orelse))):
            if _has_suspend(st.value.test):
                raise _refuse(st, "suspend inside a conditional's test")
            name = st.targets[0].id

            def assign(expr: ast.expr) -> ast.stmt:
                new = ast.Assign(
                    targets=[ast.Name(id=name, ctx=ast.Store())],
                    value=expr)
                return ast.copy_location(new, st)

            cond = ast.If(test=st.value.test,
                          body=[assign(st.value.body)],
                          orelse=[assign(st.value.orelse)])
            out.append(ast.copy_location(cond, st))
            continue
        for attr in ("body", "orelse", "finalbody"):
            sub = getattr(st, attr, None)
            if isinstance(sub, list) and sub \
                    and isinstance(sub[0], ast.stmt):
                setattr(st, attr, _normalize_block(sub))
        out.append(st)
    return out


def _preflight(fn_node: ast.FunctionDef) -> None:
    """Refuse constructs the state-machine transform cannot carry."""
    for node in ast.walk(fn_node):
        if node is fn_node:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            raise _refuse(node, "nested def/class in a compiled body "
                                "(its closure would not survive the "
                                "frame transform)")
        if isinstance(node, ast.Lambda):
            raise _refuse(node, "lambda in a compiled body (it would "
                                "close over the dissolved locals)")
        if isinstance(node, ast.NamedExpr):
            raise _refuse(node, "walrus assignment in a compiled body")
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            raise _refuse(node, "global/nonlocal in a compiled body")
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            raise _refuse(node, "import inside a compiled body")
        if isinstance(node, (ast.Try, ast.With, ast.AsyncWith,
                             ast.Match)) and _has_suspend(node):
            raise _refuse(node, "suspend inside try/with/match — the "
                                "frame transform cannot split protected "
                                "regions; hoist the suspend out")


def _owned_break_continue(stmts: Sequence[ast.stmt]) -> Optional[ast.stmt]:
    """First break/continue belonging to *this* loop level (does not
    descend into nested loops, whose break/continue are their own)."""
    for st in stmts:
        if isinstance(st, (ast.Break, ast.Continue)):
            return st
        if isinstance(st, (ast.For, ast.While)):
            continue
        for attr in ("body", "orelse", "finalbody"):
            sub = getattr(st, attr, None)
            if isinstance(sub, list):
                found = _owned_break_continue(sub)
                if found is not None:
                    return found
    return None


class _BodyRewriter(ast.NodeTransformer):
    """Locals -> frame attributes; ``return`` -> continuation hand-off."""

    def __init__(self, locals_: set, receiver: str) -> None:
        self.locals = set(locals_) - {receiver}
        self.receiver = receiver
        self._shadow: List[set] = []

    def _shadowed(self, name: str) -> bool:
        return any(name in s for s in self._shadow)

    def visit_Name(self, node: ast.Name) -> ast.AST:
        if node.id in self.locals and not self._shadowed(node.id):
            attr = ast.Attribute(value=ast.Name(id="_f", ctx=ast.Load()),
                                 attr=node.id, ctx=node.ctx)
            return ast.copy_location(attr, node)
        return node

    def visit_Return(self, node: ast.Return) -> ast.AST:
        value = self.visit(node.value) if node.value is not None \
            else ast.Constant(value=None)
        call = ast.Call(
            func=ast.Attribute(
                value=ast.Name(id=self.receiver, ctx=ast.Load()),
                attr="op_return", ctx=ast.Load()),
            args=[ast.Name(id="_f", ctx=ast.Load()), value], keywords=[])
        return ast.copy_location(ast.Return(value=call), node)

    def _visit_comp(self, node):
        # The first generator's iterable evaluates in the enclosing
        # scope; the targets shadow frame locals for everything else.
        shadow = set()
        for gen in node.generators:
            for t in ast.walk(gen.target):
                if isinstance(t, ast.Name):
                    shadow.add(t.id)
        node.generators[0].iter = self.visit(node.generators[0].iter)
        self._shadow.append(shadow)
        try:
            for i, gen in enumerate(node.generators):
                if i > 0:
                    gen.iter = self.visit(gen.iter)
                gen.ifs = [self.visit(c) for c in gen.ifs]
            if isinstance(node, ast.DictComp):
                node.key = self.visit(node.key)
                node.value = self.visit(node.value)
            else:
                node.elt = self.visit(node.elt)
        finally:
            self._shadow.pop()
        return node

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_GeneratorExp = _visit_comp
    visit_DictComp = _visit_comp


# ---------------------------------------------------------------------------
# the lowering
# ---------------------------------------------------------------------------

class _FunctionLowering:
    """Lower one function's statements into state functions."""

    def __init__(self, compiler: "_Compiler", fn_node: ast.FunctionDef,
                 prefix: str) -> None:
        self.compiler = compiler
        self.fn_node = fn_node
        self.prefix = prefix
        args = fn_node.args
        if args.vararg or args.kwarg or args.kwonlyargs \
                or args.posonlyargs:
            raise _refuse(fn_node, "compiled bodies take plain "
                                   "positional parameters only")
        if not args.args:
            raise _refuse(fn_node, "a thread body needs its runtime "
                                   "receiver parameter")
        self.receiver = args.args[0].arg
        self.params = [a.arg for a in args.args[1:]]
        self.locals = set(local_names(fn_node)) - {self.receiver}
        self.hidden: List[str] = []
        self.rewriter = _BodyRewriter(self.locals, self.receiver)
        self.n_suspends = 0
        self._counter = 0
        self.states: List[ast.FunctionDef] = []
        self.frame_name = f"_Frame_{prefix}"

    # -- small builders -------------------------------------------------

    def _state_name(self) -> str:
        name = f"_{self.prefix}_s{self._counter}"
        self._counter += 1
        return name

    def _load(self, name: str) -> ast.expr:
        return ast.Name(id=name, ctx=ast.Load())

    def _goto(self, state: str) -> ast.stmt:
        return ast.Return(value=ast.Tuple(
            elts=[self._load(state), self._load("_f")], ctx=ast.Load()))

    def _emit(self, name: str, body: List[ast.stmt]) -> str:
        fn = ast.FunctionDef(
            name=name,
            args=ast.arguments(
                posonlyargs=[],
                args=[ast.arg(arg=self.receiver), ast.arg(arg="_f")],
                kwonlyargs=[], kw_defaults=[], defaults=[]),
            body=body, decorator_list=[])
        self.states.append(fn)
        return name

    def _op_call(self, op: str, args: List[ast.expr]) -> ast.stmt:
        call = ast.Call(
            func=ast.Attribute(value=self._load(self.receiver), attr=op,
                               ctx=ast.Load()),
            args=[self._load("_f"), *args], keywords=[])
        return ast.Return(value=call)

    def rewrite(self, node: ast.AST) -> ast.AST:
        return self.rewriter.visit(node)

    # -- the lowering proper --------------------------------------------

    def lower_function(self) -> str:
        body = _normalize_block(list(self.fn_node.body))
        done = self._emit(self._state_name(), [self._op_call(
            "op_return", [ast.Constant(value=None)])])
        return self.lower_block(body, done)

    def lower_block(self, stmts: List[ast.stmt], k: str) -> str:
        """Entry state executing ``stmts`` then continuing at ``k``."""
        split = None
        for i, st in enumerate(stmts):
            if _has_suspend(st) or isinstance(st, ast.Return):
                split = i
                break
        if split is None:
            if not stmts:
                return k
            body = [self.rewrite(s) for s in stmts]
            body.append(self._goto(k))
            return self._emit(self._state_name(), body)
        rest = self.lower_block(stmts[split + 1:], k)
        entry = self.lower_stmt(stmts[split], rest)
        prefix = stmts[:split]
        if not prefix:
            return entry
        body = [self.rewrite(s) for s in prefix]
        body.append(self._goto(entry))
        return self._emit(self._state_name(), body)

    def lower_stmt(self, st: ast.stmt, k: str) -> str:
        if isinstance(st, ast.Return):
            # rewrite() turns this into `return mpi.op_return(_f, v)`.
            return self._emit(self._state_name(), [self.rewrite(st)])
        if isinstance(st, ast.Expr) and isinstance(st.value, ast.Yield):
            return self.lower_directive(st.value, k)
        if isinstance(st, ast.Expr) \
                and isinstance(st.value, ast.YieldFrom):
            return self.lower_delegation(st.value, None, st, k)
        if isinstance(st, ast.Assign):
            if len(st.targets) == 1 and isinstance(st.targets[0], ast.Name) \
                    and isinstance(st.value, ast.YieldFrom):
                return self.lower_delegation(st.value, st.targets[0].id,
                                             st, k)
            raise _refuse(st, "suspend only compiles as an expression "
                              "statement or `x = yield from ...` — "
                              "normalize this assignment first")
        if isinstance(st, ast.If):
            return self.lower_if(st, k)
        if isinstance(st, ast.While):
            return self.lower_while(st, k)
        if isinstance(st, ast.For):
            return self.lower_for(st, k)
        raise _refuse(st, f"cannot compile a suspend inside "
                          f"{type(st).__name__}")

    def lower_directive(self, node: ast.Yield, k: str) -> str:
        kind, directive = classify_yield(node)
        self.n_suspends += 1
        if directive == "yield":
            return self._emit(self._state_name(),
                              [self._op_call("op_yield", [self._load(k)])])
        if directive == "exit":
            return self._emit(self._state_name(),
                              [self._op_call("op_exit", [])])
        raise _refuse(node, f"directive {directive!r} ({kind}) is not "
                            f"compilable — the flows runtime compiles "
                            f"yield/exit directives and runtime "
                            f"delegations only")

    def lower_delegation(self, node: ast.YieldFrom, var: Optional[str],
                         st: ast.stmt, k: str) -> str:
        call = node.value
        if not isinstance(call, ast.Call):
            raise _refuse(st, "yield from a non-call is not compilable")
        self.n_suspends += 1
        fn = call.func
        if isinstance(fn, ast.Attribute) and isinstance(fn.value, ast.Name) \
                and fn.value.id == self.receiver:
            return self.lower_primitive(fn.attr, call, var, st, k)
        if isinstance(fn, ast.Name):
            return self.lower_helper_call(fn.id, call, var, st, k)
        raise _refuse(st, "delegation target must be a runtime-interface "
                          "method or a sibling generator function")

    def lower_primitive(self, meth: str, call: ast.Call,
                        var: Optional[str], st: ast.stmt, k: str) -> str:
        if meth not in _PRIMITIVES:
            raise _refuse(st, f"runtime method {self.receiver}.{meth} has "
                              f"no continuation primitive (supported: "
                              f"{sorted(_PRIMITIVES)})")
        if meth == "barrier":
            if var is not None:
                raise _refuse(st, "barrier() returns nothing — drop the "
                                  "assignment")
            if call.args or call.keywords:
                raise _refuse(st, "barrier() takes no arguments")
            return self._emit(self._state_name(),
                              [self._op_call("op_barrier",
                                             [self._load(k)])])
        # recv(source=None, tag=None)
        source: ast.expr = ast.Constant(value=None)
        tag: ast.expr = ast.Constant(value=None)
        pos = list(call.args)
        if len(pos) > 2:
            raise _refuse(st, "recv() takes (source, tag)")
        if pos:
            source = pos[0]
        if len(pos) == 2:
            tag = pos[1]
        for kw in call.keywords:
            if kw.arg == "source":
                source = kw.value
            elif kw.arg == "tag":
                tag = kw.value
            else:
                raise _refuse(st, f"recv() got unexpected keyword "
                                  f"{kw.arg!r}")
        name = self._state_name()
        return self._emit(name, [self._op_call("op_recv", [
            self._load(name), self._load(k),
            ast.Constant(value=var),
            self.rewrite(source), self.rewrite(tag)])])

    def lower_helper_call(self, helper: str, call: ast.Call,
                          var: Optional[str], st: ast.stmt,
                          k: str) -> str:
        if not call.args or not (isinstance(call.args[0], ast.Name)
                                 and call.args[0].id == self.receiver):
            raise _refuse(st, f"delegation to {helper}() must pass the "
                              f"runtime receiver ({self.receiver}) as its "
                              f"first argument")
        entry, frame_cls, params = self.compiler.compile_helper(helper, st)
        # Bind arguments (positionally then by keyword) onto the child
        # frame, park the caller's continuation, and transfer.
        bindings: Dict[str, ast.expr] = {}
        for pname, arg in zip(params, call.args[1:]):
            bindings[pname] = arg
        if len(call.args) - 1 > len(params):
            raise _refuse(st, f"{helper}() takes {len(params)} "
                              f"argument(s) beside the receiver")
        for kw in call.keywords:
            if kw.arg not in params or kw.arg in bindings:
                raise _refuse(st, f"bad keyword {kw.arg!r} in delegation "
                                  f"to {helper}()")
            bindings[kw.arg] = kw.value
        missing = [p for p in params if p not in bindings]
        if missing:
            raise _refuse(st, f"delegation to {helper}() leaves "
                              f"{missing} unbound (defaults are not "
                              f"compiled)")
        body: List[ast.stmt] = [ast.Assign(
            targets=[ast.Name(id="_cf", ctx=ast.Store())],
            value=ast.Call(func=self._load(frame_cls), args=[],
                           keywords=[]))]
        for pname in params:
            body.append(ast.Assign(
                targets=[ast.Attribute(
                    value=ast.Name(id="_cf", ctx=ast.Load()),
                    attr=pname, ctx=ast.Store())],
                value=self.rewrite(bindings[pname])))
        body.append(ast.Assign(
            targets=[ast.Attribute(
                value=ast.Name(id="_cf", ctx=ast.Load()),
                attr="_ret", ctx=ast.Store())],
            value=ast.Tuple(elts=[
                self._load(k), self._load("_f"),
                ast.Constant(value=var)], ctx=ast.Load())))
        body.append(ast.Return(value=ast.Tuple(
            elts=[self._load(entry),
                  ast.Name(id="_cf", ctx=ast.Load())], ctx=ast.Load())))
        return self._emit(self._state_name(), body)

    def lower_if(self, st: ast.If, k: str) -> str:
        if _has_suspend(st.test):
            raise _refuse(st, "suspend inside an if-test")
        then_entry = self.lower_block(list(st.body), k)
        else_entry = self.lower_block(list(st.orelse), k)
        body = [ast.If(test=self.rewrite(st.test),
                       body=[self._goto(then_entry)],
                       orelse=[self._goto(else_entry)])]
        return self._emit(self._state_name(), body)

    def lower_while(self, st: ast.While, k: str) -> str:
        if _has_suspend(st.test):
            raise _refuse(st, "suspend inside a while-test")
        bad = _owned_break_continue(st.body)
        if bad is not None:
            raise _refuse(bad, "break/continue in a suspending loop is "
                               "not compiled — restructure the loop")
        header = self._state_name()
        exit_ = self.lower_block(list(st.orelse), k)
        body_entry = self.lower_block(list(st.body), header)
        self._emit(header, [ast.If(test=self.rewrite(st.test),
                                   body=[self._goto(body_entry)],
                                   orelse=[self._goto(exit_)])])
        return header

    def lower_for(self, st: ast.For, k: str) -> str:
        if _has_suspend(st.iter):
            raise _refuse(st, "suspend inside a for-iterable")
        bad = _owned_break_continue(st.body)
        if bad is not None:
            raise _refuse(bad, "break/continue in a suspending loop is "
                               "not compiled — restructure the loop")
        it_field = f"_it{len(self.hidden)}"
        self.hidden.append(it_field)
        header = self._state_name()
        exit_ = self.lower_block(list(st.orelse), k)
        body_entry = self.lower_block(list(st.body), header)
        it_attr = ast.Attribute(value=ast.Name(id="_f", ctx=ast.Load()),
                                attr=it_field, ctx=ast.Load())
        # header: advance the explicit iterator or leave the loop.
        self._emit(header, [
            ast.Try(
                body=[ast.Assign(
                    targets=[self.rewrite(st.target)],
                    value=ast.Call(func=self._load("next"),
                                   args=[it_attr], keywords=[]))],
                handlers=[ast.ExceptHandler(
                    type=self._load("StopIteration"), name=None,
                    body=[self._goto(exit_)])],
                orelse=[], finalbody=[]),
            self._goto(body_entry)])
        setup = [ast.Assign(
            targets=[ast.Attribute(
                value=ast.Name(id="_f", ctx=ast.Load()),
                attr=it_field, ctx=ast.Store())],
            value=ast.Call(func=self._load("iter"),
                           args=[self.rewrite(st.iter)], keywords=[])),
            self._goto(header)]
        return self._emit(self._state_name(), setup)

    # -- frame ----------------------------------------------------------

    def frame_class(self) -> ast.ClassDef:
        fields = sorted(self.locals | set(self.hidden)) + ["_ret"]
        init = ast.FunctionDef(
            name="__init__",
            args=ast.arguments(posonlyargs=[],
                               args=[ast.arg(arg="self")], kwonlyargs=[],
                               kw_defaults=[], defaults=[]),
            body=[ast.Assign(
                targets=[ast.Attribute(
                    value=ast.Name(id="self", ctx=ast.Load()),
                    attr="_ret", ctx=ast.Store())],
                value=ast.Constant(value=None))],
            decorator_list=[])
        return ast.ClassDef(
            name=self.frame_name, bases=[], keywords=[],
            body=[ast.Assign(
                targets=[ast.Name(id="__slots__", ctx=ast.Store())],
                value=ast.Tuple(
                    elts=[ast.Constant(value=f) for f in fields],
                    ctx=ast.Load())),
                init],
            decorator_list=[])


class _Compiler:
    """Compile one body plus its delegation closure into one module."""

    def __init__(self, module_ast: ast.Module) -> None:
        self.module_ast = module_ast
        self.lowerings: List[_FunctionLowering] = []
        self._helpers: Dict[str, Tuple[str, str, List[str]]] = {}
        self._in_progress: set = set()
        self._next_fn = 0

    def _prefix(self) -> str:
        p = f"f{self._next_fn}"
        self._next_fn += 1
        return p

    def compile_function(self, fn_node: ast.FunctionDef
                         ) -> Tuple[str, str, List[str]]:
        if fn_node.name in self._in_progress:
            raise _refuse(fn_node, f"recursive delegation through "
                                   f"{fn_node.name}() is not compilable")
        self._in_progress.add(fn_node.name)
        try:
            _preflight(fn_node)
            low = _FunctionLowering(self, fn_node, self._prefix())
            entry = low.lower_function()
            self.lowerings.append(low)
            return entry, low.frame_name, low.params
        finally:
            self._in_progress.discard(fn_node.name)

    def compile_helper(self, name: str,
                       at: ast.stmt) -> Tuple[str, str, List[str]]:
        if name in self._helpers:
            return self._helpers[name]
        candidates = [n for n in ast.walk(self.module_ast)
                      if isinstance(n, ast.FunctionDef) and n.name == name]
        if not candidates:
            raise _refuse(at, f"delegation target {name}() is not "
                              f"defined in this module")
        if len(candidates) > 1:
            raise _refuse(at, f"delegation target {name}() is ambiguous "
                              f"({len(candidates)} defs in the module)")
        result = self.compile_function(candidates[0])
        self._helpers[name] = result
        return result

    def module(self) -> ast.Module:
        body: List[ast.stmt] = []
        for low in self.lowerings:
            body.append(low.frame_class())
        for low in self.lowerings:
            body.extend(low.states)
        mod = ast.Module(body=body, type_ignores=[])
        return ast.fix_missing_locations(mod)


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def compile_flow(fn: Callable[..., Any], *,
                 gate: bool = True) -> CompiledFlow:
    """Compile a generator thread body into continuation form.

    ``gate=False`` skips the live-analysis refusal gate (unit tests of
    the lowering itself); everything real leaves it on.
    """
    if gate:
        _gate(fn)
    module_ast, fn_node = _function_ast(fn)
    compiler = _Compiler(module_ast)
    entry_name, frame_name, params = compiler.compile_function(fn_node)
    if params:
        raise FlowCompileError(
            f"{fn.__qualname__}: a compiled top-level body takes only "
            f"its receiver parameter (extra params {params} — close "
            f"over configuration instead)")
    generated = compiler.module()
    header = (f"# Continuation form of {fn.__qualname__} "
              f"({inspect.getsourcefile(fn)}:"
              f"{fn.__code__.co_firstlineno}), generated by "
              f"repro.flows.compile.\n")
    source = header + ast.unparse(generated)
    ns: Dict[str, Any] = dict(fn.__globals__)
    for name, cell in zip(fn.__code__.co_freevars, fn.__closure__ or ()):
        try:
            ns[name] = cell.cell_contents
        except ValueError:  # pragma: no cover - unfilled cell
            raise FlowCompileError(
                f"{fn.__qualname__}: closure cell {name!r} is empty at "
                f"compile time")
    code = compile(source, f"<compiled-flow {fn.__qualname__}>", "exec")
    exec(code, ns)  # noqa: S102 - the compiler's own codegen output

    # Cross-check the lowering against the CFG the analysis built: every
    # suspend point must have become exactly one continuation site.
    cfg = build_cfg(fn_node)
    top = compiler.lowerings[0]
    if top.n_suspends != len(cfg.suspends):
        raise FlowCompileError(
            f"internal: lowered {top.n_suspends} suspend sites but the "
            f"CFG reports {len(cfg.suspends)} — refusing the "
            f"mismatched translation")

    return CompiledFlow(
        qualname=fn.__qualname__,
        path=inspect.getsourcefile(fn) or "?",
        line=fn.__code__.co_firstlineno,
        source=source,
        entry=ns[entry_name],
        frame_factory=ns[frame_name],
        n_states=sum(len(low.states) for low in compiler.lowerings),
        suspend_points=len(cfg.suspends),
    )
