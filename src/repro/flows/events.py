"""Event-driven objects as flows of control (paper Section 2.4)."""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.flows.base import FlowHandle, FlowMechanism
from repro.flows.runtime import FlowProgram, FlowWorld
from repro.sim.processor import Processor

__all__ = ["EventObjectFlow"]


class EventObjectFlow(FlowMechanism):
    """Charm-style event-driven objects.

    "Because suspending and resuming execution is simply a function call,
    the event-driven style can also be very efficient" — a switch here is
    one scheduler dispatch, no register or stack work at all, and an
    object's footprint is just its application data.
    """

    label = "event"
    cache_weight = 0.3          # only the object's own data is re-touched
    #: Modeled per-object state (application data + scheduler entry).
    object_bytes = 256

    def __init__(self, processor: Processor):
        super().__init__(processor)

    def _create(self, index: int) -> FlowHandle:
        # An event-driven object is pure user data: no kernel resource,
        # no stack; just account a small allocation.
        self.processor.charge(self.profile.event_dispatch_ns)
        return FlowHandle(index, payload={"state": 0})

    def _destroy(self, handle: FlowHandle) -> None:
        handle.payload = None

    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """One scheduler dispatch to an object's entry method."""
        n = n_flows if n_flows is not None else self.n_flows
        return self.profile.event_dispatch_ns + self.cache_penalty_ns(n)

    def _spawn(self, world: FlowWorld, program: FlowProgram) -> None:
        if program.event_objects is None:
            raise ReproError(
                f"program {program.name!r} has no hand-written "
                f"event-object form — write one, or run it under a "
                f"thread/compiled mechanism")
        world.spawn_events(program.event_objects)
