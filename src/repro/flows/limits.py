"""Probing practical flow-count limits (paper Table 2).

The probe *executes* creation until the OS model (or the memory system)
refuses — the same experiment the paper ran on stock systems — rather than
reading a configuration constant.  Entries that reach the probe cap without
failing are reported with a trailing ``+``, matching the paper's "90000+"
notation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (OSLimitError, OutOfPhysicalMemory,
                          OutOfVirtualAddressSpace)
from repro.flows.base import FlowMechanism

__all__ = ["LimitProbe", "probe_limit"]


@dataclass(frozen=True)
class LimitProbe:
    """Result of one limit probe."""

    mechanism: str
    platform: str
    count: int
    hit_limit: bool
    limiting_factor: str

    def display(self) -> str:
        """Table 2 cell text: a number, or 'N+' when the cap was reached."""
        return str(self.count) if self.hit_limit else f"{self.count}+"


def probe_limit(mechanism: FlowMechanism, cap: int,
                chunk: int = 1) -> LimitProbe:
    """Create flows until refusal or ``cap``; returns what happened.

    Parameters
    ----------
    mechanism:
        A fresh flow mechanism on the platform under test.
    cap:
        Stop probing after this many successful creations (the paper's
        experiments also stopped somewhere, hence "90000+").
    chunk:
        Create in batches of this size (probe speed knob; the limit is
        still located exactly because refusals are per-creation).
    """
    count = 0
    factor = ""
    hit = False
    try:
        while count < cap:
            for _ in range(min(chunk, cap - count)):
                mechanism.create_flow()
                count += 1
    except OSLimitError as e:
        hit = True
        factor = "ulimit/kernel" if mechanism.label == "process" else \
            ("memory" if "memory" in str(e) else "kernel")
    except (OutOfPhysicalMemory, OutOfVirtualAddressSpace):
        hit = True
        factor = "memory"
    finally:
        mechanism.destroy_all()
    if not hit:
        factor = {"process": "ulimit/kernel", "pthread": "kernel",
                  "cth": "memory", "ampi": "memory",
                  "event": "memory"}.get(mechanism.label, "memory")
    return LimitProbe(mechanism.label, mechanism.profile.name,
                      count, hit, factor)
