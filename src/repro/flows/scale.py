"""Million-flow scale cells: where each mechanism's curve actually ends.

Table 2 reports where processes, kernel threads and user-level threads
stop *creating*; this module adds the column the 2006 paper could not
measure — compiled continuations — by actually *running* a spin
workload at 10⁴..10⁶ flows per PE through the workload-execution
contract.  Both probes are ``(params, seed) -> dict`` executor workers
(:mod:`repro.exec` purity discipline), so ``tools/flows_scale.py`` runs
them as cached, crash-contained sweep cells: a refusal or a host OOM in
one cell cannot take down the sweep, and a re-run with the same params
is a cache hit.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

__all__ = ["compiled_scale_cell", "mechanism_limit_cell"]


def compiled_scale_cell(params: Dict[str, Any],
                        seed: Optional[int]) -> Dict[str, Any]:
    """Run ``flows`` compiled-continuation flows to completion.

    ``params``: ``flows`` (count), ``rounds`` (yields per flow,
    default 2), ``platform`` (default ``linux_x86``), ``real_flows``
    (default True: create one real flow record per rank first, so the
    mechanism's creation path is exercised at full population).
    Returns counters plus host wall time and throughput.
    """
    import time

    from repro.flows import CompiledContinuationFlow
    from repro.flows.programs import spin_program
    from repro.sim import Processor, get_platform

    flows = int(params["flows"])
    rounds = int(params.get("rounds", 2))
    platform = params.get("platform", "linux_x86")
    mech = CompiledContinuationFlow(Processor(0, get_platform(platform)))
    program = spin_program(flows, rounds)
    # Host wall time is the cell's deliverable (the "can it actually
    # run" evidence); the workload itself is deterministic.
    # migralint: disable=DET001
    t0 = time.perf_counter()
    run = mech.run_workload(program,
                            real_flows=bool(params.get("real_flows",
                                                       True)))
    wall_s = time.perf_counter() - t0  # migralint: disable=DET001
    return {
        "mechanism": run.mechanism,
        "platform": run.platform,
        "flows": flows,
        "rounds": rounds,
        "completed": len(run.results),
        "dispatches": run.dispatches,
        "kernel_events": run.kernel_events,
        "modeled_switch_ns": run.modeled_switch_ns,
        "wall_s": round(wall_s, 3),
        "events_per_s": round(run.kernel_events / wall_s) if wall_s > 0
        else None,
    }


def mechanism_limit_cell(params: Dict[str, Any],
                         seed: Optional[int]) -> Dict[str, Any]:
    """Probe one mechanism's creation limit (a Table 2 point).

    ``params``: ``mechanism`` (a :data:`repro.flows.MECHANISMS` key),
    ``platform``, ``cap``, ``chunk`` (default 1024).  The probe creates
    until the platform's OS/memory model refuses, exactly like
    :func:`repro.flows.limits.probe_limit` — because it is that probe,
    wrapped in a cell.
    """
    from repro.flows import MECHANISMS
    from repro.sim import Processor, get_platform

    cls = MECHANISMS[params["mechanism"]]
    proc = Processor(0, get_platform(params.get("platform", "linux_x86")))
    mech = cls(proc)
    probe = mech.probe_limit(int(params["cap"]),
                             chunk=int(params.get("chunk", 1024)))
    return {
        "mechanism": probe.mechanism,
        "platform": probe.platform,
        "count": probe.count,
        "hit_limit": probe.hit_limit,
        "limiting_factor": probe.limiting_factor,
        "display": probe.display(),
    }
