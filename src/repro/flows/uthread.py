"""User-level threads as flows of control (paper Sections 2.3, 4.1).

Two variants are measured in Figures 4–8:

* **Cth** (Converse threads): non-migratable user-level threads.  A switch
  is a register swap plus a trivial scheduler operation — no kernel entry.
* **AMPI threads**: migratable user-level threads (isomalloc stacks plus
  swap-global), scheduled through the AMPI runtime's extra layer.  Slightly
  heavier than Cth but still far below kernel mechanisms.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ThreadLimitExceeded
from repro.core.isomalloc import IsomallocArena
from repro.flows.base import FlowHandle, FlowMechanism
from repro.sim.processor import Processor

__all__ = ["UserThreadFlow", "AmpiThreadFlow"]


class UserThreadFlow(FlowMechanism):
    """Cth user-level threads: CthCreate() / CthYield().

    Each flow owns a real stack mapping; there is no kernel object, so the
    only limits are memory — and on some systems an administrative
    per-user memory cap, which is how the IBM SP tops out near 15,000
    user-level threads in Table 2 (modeled via ``profile.max_uthreads``).
    """

    label = "cth"
    cache_weight = 1.0
    stack_bytes = 16 * 1024

    def __init__(self, processor: Processor):
        super().__init__(processor)

    def _create(self, index: int) -> FlowHandle:
        limit = self.profile.max_uthreads
        if limit is not None and self.n_flows >= limit:
            raise ThreadLimitExceeded(
                f"{self.profile.name}: per-user memory cap reached at "
                f"{limit} user-level threads")
        # Reserved in the mmap area, lazily faulted (first page touched) —
        # see the same pattern in KernelThreadFlow.
        stack = self.processor.space.mmap(self.stack_bytes, region="iso",
                                          reserve_only=True,
                                          tag=f"cth-stack{index}")
        touched = self.processor.space.physical.allocate_frames(1)
        self.processor.charge(self.profile.uthread_create_ns)
        return FlowHandle(index, payload=(stack, touched))

    def _destroy(self, handle: FlowHandle) -> None:
        stack, touched = handle.payload
        self.processor.space.munmap(stack)
        self.processor.space.physical.free_frames(touched)

    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """One CthYield(): register swap + scheduler, entirely in user code."""
        n = n_flows if n_flows is not None else self.n_flows
        return self.profile.uthread_switch_ns + self.cache_penalty_ns(n)


class AmpiThreadFlow(FlowMechanism):
    """AMPI migratable threads: MPI_Yield() through the AMPI runtime.

    Implemented with isomalloc stack allocation on top of Cth (paper
    Section 4.1), so creation consumes a real isomalloc slot and the
    switch adds the GOT swap and AMPI scheduling layer.  No migrations
    occur during the benchmark, as in the paper.
    """

    label = "ampi"
    cache_weight = 1.1
    stack_bytes = 16 * 1024

    def __init__(self, processor: Processor,
                 arena: Optional[IsomallocArena] = None,
                 slot_bytes: int = 64 * 1024):
        super().__init__(processor)
        self.arena = arena or IsomallocArena(
            processor.layout, 1, slot_bytes=slot_bytes)
        self._slots: dict[int, int] = {}

    def _create(self, index: int) -> FlowHandle:
        limit = self.profile.max_uthreads
        if limit is not None and self.n_flows >= limit:
            raise ThreadLimitExceeded(
                f"{self.profile.name}: per-user memory cap reached at "
                f"{limit} user-level threads")
        base = self.arena.allocate_slot(0)
        # The whole slot's virtual range is claimed, exactly as isomalloc
        # reserves it cluster-wide; only the first stack page is faulted.
        stack = self.processor.space.mmap(self.arena.slot_bytes, addr=base,
                                          reserve_only=True,
                                          tag=f"ampi-slot{index}")
        touched = self.processor.space.physical.allocate_frames(1)
        self._slots[index] = base
        self.processor.charge(self.profile.uthread_create_ns
                              + self.profile.ampi_overhead_ns)
        return FlowHandle(index, payload=(stack, touched))

    def _destroy(self, handle: FlowHandle) -> None:
        stack, touched = handle.payload
        self.processor.space.munmap(stack)
        self.processor.space.physical.free_frames(touched)
        self.arena.release_slot(self._slots.pop(handle.index))

    def switch_cost_ns(self, n_flows: Optional[int] = None) -> float:
        """One MPI_Yield(): Cth switch + GOT swap + AMPI scheduler layer."""
        n = n_flows if n_flows is not None else self.n_flows
        return (self.profile.uthread_switch_ns
                + self.profile.ampi_overhead_ns
                + self.cache_penalty_ns(n))
